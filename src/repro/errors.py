"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine bugs (``TypeError`` from numpy, ``KeyboardInterrupt``,
etc.)::

    try:
        model = LSIModel.fit(matrix, rank=40)
    except ReproError as exc:
        log.warning("LSI fit rejected: %s", exc)
"""

from __future__ import annotations

__all__ = [
    "ConvergenceError",
    "DispatcherClosedError",
    "DistributionError",
    "EmptyCorpusError",
    "NotFittedError",
    "PersistenceError",
    "RankError",
    "ReproError",
    "ShapeError",
    "ValidationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, range, or dtype).

    Subclasses :class:`ValueError` so that idiomatic ``except ValueError``
    call sites keep working.
    """


class ShapeError(ValidationError):
    """Array arguments have incompatible or unexpected shapes."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration budget."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        #: Number of iterations performed before giving up, if known.
        self.iterations = iterations
        #: Final residual norm, if known.
        self.residual = residual


class RankError(ValidationError):
    """A requested decomposition rank is infeasible for the given matrix."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted state was called before fitting."""


class PersistenceError(ReproError):
    """A saved index bundle is missing, foreign, corrupted, or unreadable.

    Raised by :mod:`repro.serving.bundle` when a bundle fails its format,
    schema-version, checksum, or shape-consistency checks on load.
    """


class DispatcherClosedError(ReproError, RuntimeError):
    """A query was submitted to a micro-batching dispatcher after close.

    Subclasses :class:`RuntimeError` (like :class:`NotFittedError`)
    because it reports object state, not a malformed argument.
    """


class EmptyCorpusError(ValidationError):
    """An operation required a non-empty corpus or document."""


class DistributionError(ValidationError):
    """A probability vector or stochastic matrix is malformed.

    Raised when weights are negative, do not sum to one within tolerance,
    or contain non-finite entries.
    """
