"""ASCII histograms — textual figures for terminal reports.

The paper's table summarises two angle *distributions* with four
numbers; the histogram shows their whole shape, which is where the LSI
collapse is most visible.  Used by the examples and the benchmark
reports.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["histogram", "side_by_side"]


def histogram(values: "Iterable[float]", *, bins: int = 20,
              width: int = 50,
              value_range: "tuple[float, float] | None" = None,
              title: str = "",
              label_format: str = "{:.2f}") -> str:
    """Render values as a horizontal-bar ASCII histogram.

    Args:
        values: the sample.
        bins: number of equal-width bins.
        width: maximum bar width in characters.
        value_range: optional ``(low, high)`` to fix the axis (useful
            for side-by-side comparisons); defaults to the data range.
        title: optional heading line.
        label_format: format applied to bin-edge labels.

    Returns:
        The rendered multi-line string.
    """
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValidationError("histogram needs at least one value")
    if not np.all(np.isfinite(data)):
        raise ValidationError("histogram values must be finite")
    bins = check_positive_int(bins, "bins")
    width = check_positive_int(width, "width")

    if value_range is None:
        low, high = float(data.min()), float(data.max())
        if low == high:
            high = low + 1.0
    else:
        low, high = float(value_range[0]), float(value_range[1])
        if not low < high:
            raise ValidationError(
                f"value_range must be increasing, got ({low}, {high})")

    counts, edges = np.histogram(data, bins=bins, range=(low, high))
    peak = max(int(counts.max()), 1)

    lines = []
    if title:
        lines.append(title)
    label_width = max(
        len(f"{label_format.format(edges[i])}-"
            f"{label_format.format(edges[i + 1])}")
        for i in range(bins))
    for i in range(bins):
        label = (f"{label_format.format(edges[i])}-"
                 f"{label_format.format(edges[i + 1])}")
        bar = "#" * int(round(width * counts[i] / peak))
        lines.append(f"{label:>{label_width}} | {bar} {counts[i]}")
    return "\n".join(lines)


def side_by_side(left: str, right: str, *, gap: int = 4) -> str:
    """Join two multi-line blocks horizontally."""
    left_lines = left.split("\n")
    right_lines = right.split("\n")
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    pad = max((len(line) for line in left_lines), default=0) + gap
    return "\n".join(
        f"{l:<{pad}}{r}" for l, r in zip(left_lines, right_lines))
