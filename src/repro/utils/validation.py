"""Argument-validation helpers.

These functions raise the library's :class:`~repro.errors.ValidationError`
family with messages that name the offending argument, so failures surface
at the public API boundary instead of deep inside numpy kernels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DistributionError, ShapeError, ValidationError

__all__ = [
    "PROBABILITY_ATOL",
    "check_fraction",
    "check_matrix",
    "check_non_negative_int",
    "check_positive_int",
    "check_probability_vector",
    "check_rank",
    "check_same_length",
    "check_stochastic_matrix",
    "check_top_k",
    "check_vector",
]

#: Default tolerance for "sums to one" checks on probability vectors.
PROBABILITY_ATOL = 1e-8


def check_positive_int(value, name: str) -> int:
    """Return ``value`` as an int, requiring it to be a positive integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value, name: str) -> int:
    """Return ``value`` as an int, requiring it to be a non-negative integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_top_k(top_k, n_documents, name: str = "top_k") -> int:
    """Normalise a retrieval cutoff: ``None`` = all, else a positive int.

    This is the single ``top_k`` policy shared by every retrieval engine
    (:class:`~repro.core.lsi.LSIModel`, the :mod:`repro.ir` baselines,
    and the serving layer): ``None`` means the whole corpus, any other
    value must be a positive integer, and cutoffs beyond the corpus size
    are clamped to it.

    Args:
        top_k: the requested cutoff (``None`` for "all documents").
        n_documents: corpus size the cutoff applies to.
        name: argument name used in error messages.

    Returns:
        The effective cutoff as an int in ``[0, n_documents]``.
    """
    n_documents = check_non_negative_int(n_documents, "n_documents")
    if top_k is None:
        return n_documents
    if isinstance(top_k, bool) or not isinstance(top_k, (int, np.integer)):
        raise ValidationError(
            f"{name} must be None or a positive integer, got {top_k!r}")
    if top_k <= 0:
        raise ValidationError(
            f"{name} must be None or a positive integer, got {top_k}")
    return min(int(top_k), n_documents)


def check_fraction(value, name: str, *, inclusive_low=True,
                   inclusive_high=True) -> float:
    """Return ``value`` as a float in the unit interval [0, 1].

    ``inclusive_low``/``inclusive_high`` control whether the endpoints are
    permitted.
    """
    value = float(value)
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        low = "[" if inclusive_low else "("
        high = "]" if inclusive_high else ")"
        raise ValidationError(
            f"{name} must lie in {low}0, 1{high}, got {value}")
    return value


def check_matrix(array, name: str, *, dtype=np.float64) -> np.ndarray:
    """Coerce ``array`` to a 2-D float ndarray, rejecting anything else."""
    matrix = np.asarray(array, dtype=dtype)
    if matrix.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got shape {matrix.shape}")
    if matrix.size and not np.all(np.isfinite(matrix)):
        raise ValidationError(f"{name} contains non-finite entries")
    return matrix


def check_vector(array, name: str, *, dtype=np.float64) -> np.ndarray:
    """Coerce ``array`` to a 1-D float ndarray, rejecting anything else."""
    vector = np.asarray(array, dtype=dtype)
    if vector.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {vector.shape}")
    if vector.size and not np.all(np.isfinite(vector)):
        raise ValidationError(f"{name} contains non-finite entries")
    return vector


def check_probability_vector(array, name: str, *,
                             atol: float = PROBABILITY_ATOL) -> np.ndarray:
    """Validate a probability vector: non-negative, finite, sums to one."""
    vector = check_vector(array, name)
    if vector.size == 0:
        raise DistributionError(f"{name} must be non-empty")
    if np.any(vector < 0):
        raise DistributionError(f"{name} has negative entries")
    total = float(vector.sum())
    if abs(total - 1.0) > atol:
        raise DistributionError(
            f"{name} must sum to 1 (got {total:.12g}, atol={atol:g})")
    return vector


def check_stochastic_matrix(array, name: str, *,
                            atol: float = PROBABILITY_ATOL) -> np.ndarray:
    """Validate a row-stochastic matrix (each row a probability vector)."""
    matrix = check_matrix(array, name)
    if matrix.shape[0] != matrix.shape[1]:
        raise ShapeError(
            f"{name} must be square, got shape {matrix.shape}")
    if np.any(matrix < 0):
        raise DistributionError(f"{name} has negative entries")
    row_sums = matrix.sum(axis=1)
    bad = np.flatnonzero(np.abs(row_sums - 1.0) > atol)
    if bad.size:
        raise DistributionError(
            f"{name} row {int(bad[0])} sums to {row_sums[bad[0]]:.12g}, "
            f"expected 1 (atol={atol:g})")
    return matrix


def check_rank(rank, max_rank: int, name: str = "rank") -> int:
    """Validate a truncation rank against the maximum usable rank."""
    rank = check_positive_int(rank, name)
    if rank > max_rank:
        from repro.errors import RankError

        raise RankError(
            f"{name}={rank} exceeds the maximum usable rank {max_rank}")
    return rank


def check_same_length(a, b, name_a: str, name_b: str) -> None:
    """Require two sized arguments to have equal length."""
    if len(a) != len(b):
        raise ShapeError(
            f"{name_a} and {name_b} must have the same length "
            f"({len(a)} != {len(b)})")
