"""Lloyd's k-means with k-means++ seeding, implemented from scratch.

The Theorem 6 experiments need to turn a spectral embedding into a
partition; this is the standard tool.  No external clustering library is
used anywhere in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["KMeansResult", "clustering_accuracy", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means run.

    Attributes:
        labels: cluster index per point.
        centers: ``(k, d)`` cluster centroids.
        inertia: total squared distance of points to their centroids.
        iterations: Lloyd iterations performed.
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int


def _plus_plus_seed(points: np.ndarray, k: int,
                    rng: np.random.Generator) -> np.ndarray:
    """k-means++ initial centers."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]))
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0:
            # All points coincide with chosen centers; any choice works.
            centers[i] = points[int(rng.integers(n))]
            continue
        chosen = rng.choice(n, p=closest_sq / total)
        centers[i] = points[chosen]
        distance_sq = np.sum((points - centers[i]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, distance_sq)
    return centers


def kmeans(points, k: int, *, n_restarts: int = 8,
           max_iter: int = 300, tol: float = 1e-10,
           seed: SeedLike = None) -> KMeansResult:
    """Cluster row-vectors into ``k`` groups (best of ``n_restarts`` runs).

    Args:
        points: ``(n, d)`` array, one point per row.
        k: number of clusters (1 ≤ k ≤ n).
        n_restarts: independent k-means++ restarts; best inertia wins.
        max_iter: Lloyd iteration cap per restart.
        tol: stop when inertia improvement falls below this.
        seed: RNG seed.
    """
    points = check_matrix(points, "points")
    k = check_positive_int(k, "k")
    n_restarts = check_positive_int(n_restarts, "n_restarts")
    if k > points.shape[0]:
        raise ValidationError(
            f"k={k} exceeds the number of points {points.shape[0]}")
    rng = as_generator(seed)

    best: KMeansResult | None = None
    for _ in range(n_restarts):
        result = _lloyd(points, k, rng, max_iter, tol)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best


def _lloyd(points, k, rng, max_iter, tol) -> KMeansResult:
    centers = _plus_plus_seed(points, k, rng)
    previous_inertia = float("inf")
    labels = np.zeros(points.shape[0], dtype=np.int64)
    for iteration in range(1, max_iter + 1):
        # Assignment step.
        distance_sq = (np.sum(points ** 2, axis=1)[:, None]
                       - 2.0 * points @ centers.T
                       + np.sum(centers ** 2, axis=1)[None, :])
        labels = np.argmin(distance_sq, axis=1)
        inertia = float(np.take_along_axis(
            distance_sq, labels[:, None], axis=1).sum())
        # Update step; re-seed empty clusters from the farthest points.
        for cluster in range(k):
            members = points[labels == cluster]
            if members.shape[0] == 0:
                farthest = int(np.argmax(
                    np.min(distance_sq, axis=1)))
                centers[cluster] = points[farthest]
            else:
                centers[cluster] = members.mean(axis=0)
        if previous_inertia - inertia <= tol * max(1.0, inertia):
            return KMeansResult(labels=labels, centers=centers,
                                inertia=inertia, iterations=iteration)
        previous_inertia = inertia
    raise ConvergenceError(
        f"k-means did not converge in {max_iter} iterations",
        iterations=max_iter, residual=previous_inertia)


def clustering_accuracy(predicted, truth) -> float:
    """Best-matching accuracy between two labelings.

    Maximises agreement over all assignments of predicted clusters to
    true clusters (Hungarian algorithm), so label permutation does not
    matter.  Returns the fraction of correctly assigned points.
    """
    from scipy.optimize import linear_sum_assignment

    predicted = np.asarray(predicted, dtype=np.int64)
    truth = np.asarray(truth, dtype=np.int64)
    if predicted.shape != truth.shape or predicted.ndim != 1:
        raise ValidationError("labelings must be parallel 1-D arrays")
    pred_values = np.unique(predicted)
    true_values = np.unique(truth)
    contingency = np.zeros((pred_values.size, true_values.size))
    pred_index = {v: i for i, v in enumerate(pred_values)}
    true_index = {v: i for i, v in enumerate(true_values)}
    for p, t in zip(predicted, truth):
        contingency[pred_index[p], true_index[t]] += 1
    rows, cols = linear_sum_assignment(-contingency)
    return float(contingency[rows, cols].sum() / predicted.size)
