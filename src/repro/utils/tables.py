"""Fixed-width ASCII table rendering.

The paper reports its experiment as small min/max/average/std tables; the
benchmark harness renders every reproduced artifact through :class:`Table`
so that terminal output reads like the paper's own layout.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import SupportsFloat

__all__ = ["Table", "format_float", "render_tables"]


def format_float(value: "SupportsFloat | str | None",
                 precision: int = 4) -> str:
    """Format a float compactly, matching the paper's 3-significant style.

    Integers print without a decimal point; NaN prints as ``-``.
    """
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    value = float(value)
    if value != value:  # NaN
        return "-"
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    if abs(value) >= 1000 or (abs(value) < 1e-3 and value != 0):
        return f"{value:.{precision}g}"
    return f"{value:.{precision}g}"


@dataclass
class Table:
    """A small fixed-width table with a title, headers, and rows.

    Cells may be strings or numbers; numbers are formatted with
    :func:`format_float`.

    Example::

        table = Table(title="Intratopic", headers=["", "Min", "Max"])
        table.add_row(["Original space", 0.801, 1.39])
        print(table.render())
    """

    title: str = ""
    headers: list = field(default_factory=list)
    rows: list = field(default_factory=list)
    precision: int = 4

    def add_row(self, cells: Iterable) -> None:
        """Append one row of cells (numbers or strings)."""
        self.rows.append(list(cells))

    def _formatted(self) -> list[list[str]]:
        out = []
        if self.headers:
            out.append([str(h) for h in self.headers])
        for row in self.rows:
            out.append([format_float(cell, self.precision) for cell in row])
        return out

    def render(self) -> str:
        """Render the table as a fixed-width string."""
        grid = self._formatted()
        if not grid:
            return self.title
        n_cols = max(len(row) for row in grid)
        for row in grid:
            row.extend([""] * (n_cols - len(row)))
        widths = [max(len(row[j]) for row in grid) for j in range(n_cols)]
        lines = []
        if self.title:
            lines.append(self.title)
        rule = "-+-".join("-" * w for w in widths)
        for i, row in enumerate(grid):
            lines.append(" | ".join(
                cell.ljust(widths[j]) for j, cell in enumerate(row)))
            if i == 0 and self.headers:
                lines.append(rule)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_tables(tables: "Iterable[Table]",
                  separator: str = "\n\n") -> str:
    """Render several tables separated by blank lines."""
    return separator.join(table.render() for table in tables)
