"""Random-number-generator plumbing.

Every stochastic function in the library accepts a ``seed`` argument that
may be ``None``, an integer, or an existing :class:`numpy.random.Generator`
and normalises it through :func:`as_generator`.  This gives callers three
ergonomic levels:

- ``seed=None`` — fresh OS entropy, for exploratory use;
- ``seed=1234`` — full reproducibility of a single call;
- ``seed=rng`` — share one generator across a pipeline so that successive
  calls consume one coherent stream (the discipline used by the experiment
  harness).
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

__all__ = ["SeedLike", "as_generator", "spawn_generators"]

#: Types accepted wherever the library takes a random seed.
SeedLike: TypeAlias = (
    "int | np.random.Generator | np.random.SeedSequence | None")


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (no copy), so a
    pipeline that threads one generator through many calls consumes a
    single stream.  Any other value accepted by
    :func:`numpy.random.default_rng` (``None``, int, ``SeedSequence``)
    creates a fresh PCG64 generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike,
                     count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Used by parameter sweeps so that each configuration gets its own
    stream: changing the number of sweep points never perturbs the stream
    any single point sees.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Child streams from an existing generator: jump via fresh seeds
        # drawn from the parent, which keeps the parent reusable.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
