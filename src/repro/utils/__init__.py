"""Shared utilities: RNG plumbing, validation, timing, and table rendering.

These helpers keep the rest of the library small and uniform:

- :mod:`repro.utils.rng` — the single-`numpy.random.Generator` discipline
  used by every stochastic component in the library.
- :mod:`repro.utils.validation` — argument checking that raises the
  library's own :class:`~repro.errors.ValidationError` family.
- :mod:`repro.utils.timing` — wall-clock timers for the cost experiments.
- :mod:`repro.utils.tables` — fixed-width ASCII tables in the style of the
  paper's results table, used by the benchmark harness.
"""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.tables import Table, format_float
from repro.utils.timing import Timer

__all__ = [
    "Table",
    "Timer",
    "as_generator",
    "format_float",
    "spawn_generators",
]
