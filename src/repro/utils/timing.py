"""Wall-clock timing helpers for the cost-model experiments (§5).

The paper's computational claim is asymptotic (two-step LSI runs in
``O(m·l·(l+c))`` against ``O(m·n·c)`` for direct LSI).  The timing
benchmarks measure wall-clock with :class:`Timer` and pair it with the
flop-count model from :mod:`repro.core.two_step` so that shape comparisons
do not depend on one machine's BLAS.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Timer", "time_callable"]


@dataclass
class Timer:
    """A context-manager stopwatch accumulating over repeated entries.

    Example::

        timer = Timer()
        for trial in range(5):
            with timer:
                expensive()
        print(timer.mean_seconds)
    """

    #: Total accumulated seconds over all completed ``with`` blocks.
    total_seconds: float = 0.0
    #: Number of completed ``with`` blocks.
    entries: int = 0
    #: Duration of the most recent completed block.
    last_seconds: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._started_at = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._started_at is None:  # pragma: no cover - defensive
            return
        self.last_seconds = time.perf_counter() - self._started_at
        self.total_seconds += self.last_seconds
        self.entries += 1
        self._started_at = None

    @property
    def mean_seconds(self) -> float:
        """Mean duration per completed block (0.0 before any block runs)."""
        if self.entries == 0:
            return 0.0
        return self.total_seconds / self.entries

    def reset(self) -> None:
        """Clear all accumulated measurements."""
        self.total_seconds = 0.0
        self.entries = 0
        self.last_seconds = 0.0
        self._started_at = None


def time_callable(fn: Callable[..., Any], *args: Any,
                  repeats: int = 1,
                  **kwargs: Any) -> "tuple[Any, Timer]":
    """Run ``fn(*args, **kwargs)`` ``repeats`` times; return (result, Timer).

    The result of the final invocation is returned so callers can both time
    and use a computation without running it twice.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    timer = Timer()
    result = None
    for _ in range(repeats):
        with timer:
            result = fn(*args, **kwargs)
    return result, timer
