"""Wall-clock timing helpers for the cost-model experiments (§5).

The paper's computational claim is asymptotic (two-step LSI runs in
``O(m·l·(l+c))`` against ``O(m·n·c)`` for direct LSI).  The timing
benchmarks measure wall-clock with :class:`Timer` and pair it with the
flop-count model from :mod:`repro.core.two_step` so that shape comparisons
do not depend on one machine's BLAS.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MeasuredRun", "Timer", "measure", "time_callable"]


@dataclass
class Timer:
    """A context-manager stopwatch accumulating over repeated entries.

    Example::

        timer = Timer()
        for trial in range(5):
            with timer:
                expensive()
        print(timer.mean_seconds)
    """

    #: Total accumulated seconds over all completed ``with`` blocks.
    total_seconds: float = 0.0
    #: Number of completed ``with`` blocks.
    entries: int = 0
    #: Duration of the most recent completed block.
    last_seconds: float = 0.0
    #: Per-entry durations, in completion order (one per ``with`` block).
    laps: list[float] = field(default_factory=list)
    _started_at: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._started_at = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._started_at is None:  # pragma: no cover - defensive
            return
        self.last_seconds = time.perf_counter() - self._started_at
        self.total_seconds += self.last_seconds
        self.entries += 1
        self.laps.append(self.last_seconds)
        self._started_at = None

    @property
    def mean_seconds(self) -> float:
        """Mean duration per completed block (0.0 before any block runs)."""
        if self.entries == 0:
            return 0.0
        return self.total_seconds / self.entries

    def reset(self) -> None:
        """Clear all accumulated measurements."""
        self.total_seconds = 0.0
        self.entries = 0
        self.last_seconds = 0.0
        self.laps = []
        self._started_at = None


@dataclass(frozen=True)
class MeasuredRun:
    """Warmup/repeat measurement of one callable (benchmark-harness use).

    Attributes:
        result: return value of the final timed invocation.
        wall_seconds: per-repeat durations, warmups excluded.
    """

    result: Any
    wall_seconds: tuple[float, ...]

    @property
    def mean_seconds(self) -> float:
        """Mean duration over the timed repeats."""
        return sum(self.wall_seconds) / len(self.wall_seconds)

    @property
    def best_seconds(self) -> float:
        """Fastest single repeat (the usual microbenchmark statistic)."""
        return min(self.wall_seconds)


def measure(fn: Callable[[], Any], *, warmup: int = 0,
            repeats: int = 1) -> MeasuredRun:
    """Run ``fn`` with ``warmup`` untimed then ``repeats`` timed calls.

    The benchmark harness's timing primitive: warmups absorb one-time
    costs (imports, allocator growth, BLAS thread spin-up) so the timed
    laps measure the steady state.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    timer = Timer()
    result = None
    for _ in range(repeats):
        with timer:
            result = fn()
    return MeasuredRun(result=result, wall_seconds=tuple(timer.laps))


def time_callable(fn: Callable[..., Any], *args: Any,
                  repeats: int = 1,
                  **kwargs: Any) -> "tuple[Any, Timer]":
    """Run ``fn(*args, **kwargs)`` ``repeats`` times; return (result, Timer).

    The result of the final invocation is returned so callers can both time
    and use a computation without running it twice.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    timer = Timer()
    result = None
    for _ in range(repeats):
        with timer:
            result = fn(*args, **kwargs)
    return result, timer
