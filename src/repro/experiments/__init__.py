"""Experiment harness: one module per reproduced table/experiment.

Each module exposes a frozen ``*Config`` dataclass with the paper's
defaults and a ``run_*`` function returning a result object with a
``render()`` method producing paper-style tables.  The ``benchmarks/``
tree calls these entry points; EXPERIMENTS.md records the outputs next
to the paper's numbers.

Index (ids match DESIGN.md):

- T1  :mod:`repro.experiments.angle_table` — the paper's §4 table.
- E2  :mod:`repro.experiments.skewness_sweep` — Theorems 2/3 shape.
- E3  :mod:`repro.experiments.rp_recovery` — Theorem 5.
- E4  :mod:`repro.experiments.jl_distortion` — Lemma 2.
- E5  :mod:`repro.experiments.timing` — the §5 cost claim.
- E6  :mod:`repro.experiments.synonymy_exp` — §4 synonymy.
- E7  :mod:`repro.experiments.graph_topics` — Theorem 6.
- E8  :mod:`repro.experiments.retrieval_exp` — precision/recall
       LSI vs VSM.
- E9  :mod:`repro.experiments.fkv_exp` — FKV vs sampling vs projection.
- E10 :mod:`repro.experiments.cf_exp` — collaborative filtering.

Extension experiments (the paper's §6 open questions, probed
empirically):

- X1 :mod:`repro.experiments.mixture_ext` — multi-topic documents.
- X2 :mod:`repro.experiments.style_robustness` — authorship styles.
- X3 :mod:`repro.experiments.polysemy_exp` — polysemy.
- X4 :mod:`repro.experiments.conductance_exp` — the Theorem 2 spectral
      engine (block Gram conductance and eigenvalue gaps).
- X5 :mod:`repro.experiments.folding_exp` — folding-in vs refitting.
- X6 :mod:`repro.experiments.classification_exp` — document
      clustering/classification per representation space.
- X7 :mod:`repro.experiments.prf_exp` — query repair (Rocchio PRF) vs
      space repair (LSI) on the synonymy probe.
"""

from repro.experiments.angle_table import AngleTableConfig, run_angle_table
from repro.experiments.cf_exp import CFConfig, run_cf_experiment
from repro.experiments.classification_exp import (
    ClassificationConfig,
    run_classification,
)
from repro.experiments.conductance_exp import (
    ConductanceConfig,
    run_conductance_experiment,
)
from repro.experiments.folding_exp import FoldingConfig, \
    run_folding_experiment
from repro.experiments.fkv_exp import FKVConfig, run_fkv_experiment
from repro.experiments.graph_topics import (
    GraphTopicsConfig,
    run_graph_topics,
)
from repro.experiments.jl_distortion import (
    JLDistortionConfig,
    run_jl_distortion,
)
from repro.experiments.mixture_ext import (
    MixtureConfig,
    run_mixture_experiment,
)
from repro.experiments.polysemy_exp import PolysemyConfig, run_polysemy
from repro.experiments.prf_exp import PRFConfig, run_prf_experiment
from repro.experiments.retrieval_exp import (
    RetrievalConfig,
    run_retrieval_experiment,
)
from repro.experiments.rp_recovery import RPRecoveryConfig, run_rp_recovery
from repro.experiments.skewness_sweep import (
    SkewnessSweepConfig,
    run_skewness_sweep,
)
from repro.experiments.style_robustness import (
    StyleRobustnessConfig,
    run_style_robustness,
)
from repro.experiments.synonymy_exp import SynonymyConfig, run_synonymy
from repro.experiments.timing import TimingConfig, run_timing

__all__ = [
    "AngleTableConfig",
    "CFConfig",
    "ClassificationConfig",
    "ConductanceConfig",
    "FKVConfig",
    "FoldingConfig",
    "GraphTopicsConfig",
    "JLDistortionConfig",
    "MixtureConfig",
    "PRFConfig",
    "PolysemyConfig",
    "RPRecoveryConfig",
    "RetrievalConfig",
    "SkewnessSweepConfig",
    "StyleRobustnessConfig",
    "SynonymyConfig",
    "TimingConfig",
    "run_angle_table",
    "run_cf_experiment",
    "run_classification",
    "run_conductance_experiment",
    "run_fkv_experiment",
    "run_folding_experiment",
    "run_graph_topics",
    "run_jl_distortion",
    "run_mixture_experiment",
    "run_polysemy",
    "run_prf_experiment",
    "run_retrieval_experiment",
    "run_rp_recovery",
    "run_skewness_sweep",
    "run_style_robustness",
    "run_synonymy",
    "run_timing",
]
