"""Experiment E3: Theorem 5 — random projection + LSI recovers ``Aₖ``.

For each projection dimension ``l`` the experiment measures the
two-step residual ``‖A − B₂ₖ‖_F²`` against the direct-LSI optimum
``‖A − Aₖ‖_F²`` and the Theorem 5 bound
``‖A − Aₖ‖_F² + 2ε‖A‖_F²``, reporting the recovery ratio (captured
energy relative to direct LSI — Theorem 5 says it approaches 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.two_step import RecoveryReport, TwoStepLSI
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.utils.rng import spawn_generators
from repro.utils.tables import Table

__all__ = ["RPRecoveryConfig", "RPRecoveryResult", "run_rp_recovery"]


@dataclass(frozen=True)
class RPRecoveryConfig:
    """Parameters of E3."""

    n_terms: int = 800
    n_topics: int = 10
    n_documents: int = 300
    primary_mass: float = 0.95
    projection_dims: tuple = (20, 40, 80, 160, 320)
    epsilon_labels: tuple = (0.5, 0.35, 0.25, 0.18, 0.12)
    projector_family: str = "orthonormal"
    rank_multiplier: int = 2
    seed: int = 11


@dataclass(frozen=True)
class RPRecoveryResult:
    """Per-``l`` recovery reports."""

    config: RPRecoveryConfig
    reports: dict[int, RecoveryReport]
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """One table: l, residuals, bound, holds, recovery ratio."""
        return "\n\n".join(t.render() for t in self.tables)

    def all_bounds_hold(self) -> bool:
        """Whether every sweep point respects Theorem 5's bound."""
        return all(report.holds for report in self.reports.values())

    def recovery_improves_with_l(self) -> bool:
        """Whether the largest ``l`` recovers at least as much as the
        smallest."""
        dims = sorted(self.reports)
        return (self.reports[dims[-1]].recovery_ratio
                >= self.reports[dims[0]].recovery_ratio - 0.05)


def run_rp_recovery(config: RPRecoveryConfig = RPRecoveryConfig()
                    ) -> RPRecoveryResult:
    """Sweep the projection dimension and measure Theorem 5."""
    if len(config.projection_dims) != len(config.epsilon_labels):
        from repro.errors import ValidationError

        raise ValidationError(
            "projection_dims and epsilon_labels must be parallel")
    model = build_separable_model(
        config.n_terms, config.n_topics, primary_mass=config.primary_mass)
    corpus = generate_corpus(model, config.n_documents, seed=config.seed)
    matrix = corpus.term_document_matrix()

    rngs = spawn_generators(config.seed, len(config.projection_dims))
    reports: dict[int, RecoveryReport] = {}
    for rng, l, epsilon in zip(rngs, config.projection_dims,
                               config.epsilon_labels):
        two_step = TwoStepLSI.fit(
            matrix, config.n_topics, int(l),
            projector_family=config.projector_family,
            rank_multiplier=config.rank_multiplier, seed=rng)
        reports[int(l)] = two_step.recovery_report(epsilon=float(epsilon))

    table = Table(
        title=("Theorem 5 recovery "
               f"(k={config.n_topics}, 2k LSI on the projection)"),
        headers=["l", "||A-B2k||_F^2", "||A-Ak||_F^2", "bound",
                 "holds", "recovery"])
    for l in sorted(reports):
        report = reports[l]
        table.add_row([l, report.two_step_residual_sq,
                       report.direct_residual_sq, report.bound,
                       "yes" if report.holds else "NO",
                       report.recovery_ratio])
    return RPRecoveryResult(config=config, reports=reports, tables=[table])
