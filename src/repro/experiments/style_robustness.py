"""Experiment X2 (extension): robustness to authorship styles.

§4 assumes the corpus model is style-free and calls removing that
assumption future work.  This experiment measures what styles actually
do to LSI: documents pass through a uniform-noise style (each term
occurrence survives with probability ``1 − noise``, else is rewritten
uniformly), which is exactly the kind of perturbation Theorem 3's
``O(ε)`` machinery should absorb — up to the point where the style
destroys separability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.lsi import LSIModel
from repro.core.skewness import skewness
from repro.corpus.model import CorpusModel, MixtureTopicFactors, \
    PureTopicFactors
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.corpus.style import Style
from repro.utils.rng import spawn_generators
from repro.utils.tables import Table

__all__ = [
    "StylePoint",
    "StyleRobustnessConfig",
    "StyleRobustnessResult",
    "run_style_robustness",
]


@dataclass(frozen=True)
class StyleRobustnessConfig:
    """Parameters of X2."""

    n_terms: int = 400
    n_topics: int = 8
    n_documents: int = 250
    primary_mass: float = 0.97
    noise_levels: tuple = (0.0, 0.1, 0.25, 0.5, 0.75)
    seed: int = 113


@dataclass(frozen=True)
class StylePoint:
    """Skewness at one style-noise level."""

    noise: float
    lsi_skewness: float
    raw_skewness: float


@dataclass(frozen=True)
class StyleRobustnessResult:
    """The noise sweep."""

    config: StyleRobustnessConfig
    points: list[StylePoint]
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """The sweep table."""
        return "\n\n".join(t.render() for t in self.tables)

    def graceful_degradation(self) -> bool:
        """Skewness grows with noise but survives moderate styles."""
        by_noise = {p.noise: p.lsi_skewness for p in self.points}
        levels = sorted(by_noise)
        return (by_noise[levels[-1]] >= by_noise[levels[0]] - 1e-9
                and by_noise[levels[0]] < 0.3)

    def lsi_beats_raw_under_style(self, *,
                                  max_noise: float = 0.5) -> bool:
        """For moderate styles LSI separates better than raw space.

        Beyond ``max_noise`` the style destroys separability itself and
        neither space retains topical structure — outside the Theorem 3
        perturbation regime.
        """
        return all(p.lsi_skewness <= p.raw_skewness + 1e-9
                   for p in self.points if p.noise <= max_noise)


class _StyledPureFactors(MixtureTopicFactors):
    """Pure topic choice + full weight on the single style."""

    def __init__(self, length_low, length_high):
        super().__init__(topics_per_document=1, length_low=length_low,
                         length_high=length_high, use_styles=True)


def run_style_robustness(
        config: StyleRobustnessConfig = StyleRobustnessConfig()
) -> StyleRobustnessResult:
    """Sweep style noise and measure skewness in both spaces."""
    base = build_separable_model(config.n_terms, config.n_topics,
                                 primary_mass=config.primary_mass)
    rngs = spawn_generators(config.seed, len(config.noise_levels))
    points: list[StylePoint] = []
    for rng, noise in zip(rngs, config.noise_levels):
        noise = float(noise)
        if noise == 0:
            model = base
        else:
            style = Style.uniform_noise(config.n_terms, noise)
            factors = _StyledPureFactors(length_low=50, length_high=100)
            model = CorpusModel(config.n_terms, base.topics, factors,
                                styles=[style],
                                name=f"styled(noise={noise})")
        corpus = generate_corpus(model, config.n_documents, rng)
        # Labels: a styled pure document still has a single topic.
        labels = [doc.factors.dominant_topic() for doc in corpus]
        matrix = corpus.term_document_matrix()
        lsi = LSIModel.fit(matrix, config.n_topics, engine="lanczos",
                           seed=rng)
        points.append(StylePoint(
            noise=noise,
            lsi_skewness=skewness(lsi.document_vectors(), labels),
            raw_skewness=skewness(matrix.to_dense(), labels)))

    table = Table(
        title=(f"X2: LSI under uniform-noise styles "
               f"(k={config.n_topics}, base mass "
               f"{config.primary_mass})"),
        headers=["style noise", "LSI skewness", "raw skewness"])
    for point in points:
        table.add_row([point.noise, point.lsi_skewness,
                       point.raw_skewness])
    return StyleRobustnessResult(config=config, points=points,
                                 tables=[table])
