"""Experiment E8: the headline IR claim — LSI beats the vector-space
model on precision/recall, especially under vocabulary mismatch.

Four retrieval engines are compared on one model-generated corpus:

- **VSM** — cosine in raw term space (the conventional baseline);
- **BM25** — Okapi BM25, the strongest exact-match ranker of the era;
- **LSI** — rank-``k`` cosine;
- **RP+LSI** — the §5 two-step pipeline.

Two query workloads stress them differently:

- *topic queries* — short samples from each topic's distribution;
- *single-term queries* — the extreme synonymy probe: under VSM only
  documents containing the exact term can match, while LSI retrieves the
  whole topic.

Reported: MAP, mean P@10, mean R-precision, and the 11-point
interpolated precision averaged over queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lsi import LSIModel
from repro.core.two_step import TwoStepLSI
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.ir.metrics import (
    average_precision,
    interpolated_precision_recall,
    precision_at_k,
    r_precision,
)
from repro.ir.queries import generate_topic_queries, single_term_queries
from repro.ir.relevance import relevance_from_labels
from repro.ir.vsm import VectorSpaceModel
from repro.utils.rng import as_generator
from repro.utils.tables import Table

__all__ = [
    "EngineScores",
    "RetrievalConfig",
    "RetrievalResult",
    "run_retrieval_experiment",
]


@dataclass(frozen=True)
class RetrievalConfig:
    """Parameters of E8."""

    n_terms: int = 800
    n_topics: int = 10
    n_documents: int = 400
    primary_mass: float = 0.95
    queries_per_topic: int = 5
    query_length: int = 3
    terms_per_topic: int = 3
    weighting: str = "count"
    projection_dim: int = 100
    precision_cutoff: int = 10
    seed: int = 61


@dataclass(frozen=True)
class EngineScores:
    """Aggregate retrieval quality of one engine on one workload.

    Attributes:
        map_score: mean average precision.
        mean_precision_at_k: mean P@cutoff.
        mean_r_precision: mean R-precision.
        pr_curve: 11-point interpolated precision, averaged over queries.
        per_query_ap: average precision per query (for significance
            testing between engines).
    """

    map_score: float
    mean_precision_at_k: float
    mean_r_precision: float
    pr_curve: np.ndarray
    per_query_ap: np.ndarray


@dataclass(frozen=True)
class RetrievalResult:
    """Engine × workload score grid."""

    config: RetrievalConfig
    scores: dict[tuple[str, str], EngineScores]
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """One table per workload."""
        return "\n\n".join(t.render() for t in self.tables)

    def lsi_wins_on_single_terms(self) -> bool:
        """The headline: LSI MAP ≥ VSM MAP on the synonymy probe."""
        return (self.scores[("lsi", "single-term")].map_score
                >= self.scores[("vsm", "single-term")].map_score - 1e-9)

    def lsi_beats_bm25_on_single_terms(self) -> bool:
        """Even BM25's superior exact-match ranking cannot reach
        documents that lack the query term."""
        return (self.scores[("lsi", "single-term")].map_score
                >= self.scores[("bm25", "single-term")].map_score - 1e-9)

    def significance(self, engine_a: str, engine_b: str,
                     workload: str, *, seed=0):
        """Paired bootstrap test on per-query AP between two engines.

        Returns a
        :class:`~repro.ir.significance.SignificanceResult` for
        ``engine_a − engine_b`` on the given workload.
        """
        from repro.ir.significance import paired_bootstrap_test

        a = self.scores[(engine_a, workload)].per_query_ap
        b = self.scores[(engine_b, workload)].per_query_ap
        return paired_bootstrap_test(a, b, seed=seed)


def _evaluate_engine(rank_fn, query_set, relevant_sets,
                     cutoff: int) -> EngineScores:
    rankings = [rank_fn(query) for query, _ in query_set]
    aps = [average_precision(r, s)
           for r, s in zip(rankings, relevant_sets)]
    p_at_k = [precision_at_k(r, s, cutoff)
              for r, s in zip(rankings, relevant_sets)]
    r_prec = [r_precision(r, s)
              for r, s in zip(rankings, relevant_sets)]
    curves = [interpolated_precision_recall(r, s)
              for r, s in zip(rankings, relevant_sets)]
    return EngineScores(
        map_score=float(np.mean(aps)),
        mean_precision_at_k=float(np.mean(p_at_k)),
        mean_r_precision=float(np.mean(r_prec)),
        pr_curve=np.mean(np.stack(curves), axis=0),
        per_query_ap=np.asarray(aps))


def run_retrieval_experiment(config: RetrievalConfig = RetrievalConfig()
                             ) -> RetrievalResult:
    """Compare VSM, LSI, and RP+LSI on topic and single-term queries."""
    rng = as_generator(config.seed)
    model = build_separable_model(
        config.n_terms, config.n_topics, primary_mass=config.primary_mass)
    corpus = generate_corpus(model, config.n_documents, rng)
    labels = corpus.topic_labels()
    matrix = corpus.term_document_matrix(weighting=config.weighting)

    vsm = VectorSpaceModel.fit(matrix)
    lsi = LSIModel.fit(matrix, config.n_topics, engine="lanczos", seed=rng)
    two_step = TwoStepLSI.fit(matrix, config.n_topics,
                              config.projection_dim, seed=rng)
    # BM25 needs raw counts regardless of the experiment's weighting.
    from repro.ir.bm25 import BM25Model

    bm25 = BM25Model.fit(corpus.term_document_matrix(weighting="count"))

    engines = {
        "vsm": lambda q: vsm.rank(q),
        "bm25": lambda q: bm25.rank(q),
        "lsi": lambda q: lsi.rank_documents(q),
        "rp-lsi": lambda q: two_step.rank_documents(q),
    }
    workloads = {
        "topic": generate_topic_queries(
            model, queries_per_topic=config.queries_per_topic,
            query_length=config.query_length, seed=rng),
        "single-term": single_term_queries(
            model, terms_per_topic=config.terms_per_topic, seed=rng),
    }

    scores: dict[tuple[str, str], EngineScores] = {}
    tables: list[Table] = []
    for workload_name, query_set in workloads.items():
        relevant_sets = relevance_from_labels(labels,
                                              query_set.topic_labels)
        table = Table(
            title=(f"Retrieval on {workload_name} queries "
                   f"({query_set.n_queries} queries, "
                   f"k={config.n_topics})"),
            headers=["engine", "MAP",
                     f"P@{config.precision_cutoff}", "R-prec"])
        for engine_name, rank_fn in engines.items():
            engine_scores = _evaluate_engine(
                rank_fn, query_set, relevant_sets,
                config.precision_cutoff)
            scores[(engine_name, workload_name)] = engine_scores
            table.add_row([engine_name, engine_scores.map_score,
                           engine_scores.mean_precision_at_k,
                           engine_scores.mean_r_precision])
        tables.append(table)
    return RetrievalResult(config=config, scores=scores, tables=tables)
