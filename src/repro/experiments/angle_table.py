"""Experiment T1: the paper's §4 angle-statistics table.

    "We generated 1000 documents (each 50 to 100 terms long) from a
    corpus model with 2000 terms and 20 topics.  Each topic is assigned a
    disjoint set of 100 terms as its primary set.  The probability
    distribution for each topic is such that 0.95 of its probability
    density is equally distributed among terms from the primary set, and
    the remaining 0.05 is equally distributed among all the 2000 terms.
    …  We measured the angle (not some function of the angle such as the
    cosine) between all pairs of documents in the original space and in
    the rank 20 LSI space."

The paper's reported numbers (radians):

    Intratopic — original: min 0.801, max 1.39, avg 1.09,  std 0.079
                 LSI:      min 0,     max 0.312, avg 0.0177, std 0.0374
    Intertopic — original: min 1.49,  max 1.57, avg 1.57,  std 0.00791
                 LSI:      min 0.101, max 1.57, avg 1.55,  std 0.153
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.lsi import LSIModel
from repro.core.skewness import (
    AngleStatistics,
    angle_statistics,
    pairwise_angle_table,
    skewness,
)
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import (
    PAPER_LENGTH_HIGH,
    PAPER_LENGTH_LOW,
    PAPER_N_DOCUMENTS,
    PAPER_N_TERMS,
    PAPER_N_TOPICS,
    PAPER_PRIMARY_MASS,
    PAPER_PRIMARY_SIZE,
    build_separable_model,
)
from repro.utils.tables import render_tables

__all__ = [
    "AngleTableConfig",
    "AngleTableResult",
    "AngleTableTrials",
    "PAPER_REPORTED",
    "collect_angle_samples",
    "run_angle_table",
    "run_angle_table_trials",
]

#: The paper's reported values, for EXPERIMENTS.md comparisons.
PAPER_REPORTED = {
    ("intratopic", "original"): (0.801, 1.39, 1.09, 0.079),
    ("intratopic", "lsi"): (0.0, 0.312, 0.0177, 0.0374),
    ("intertopic", "original"): (1.49, 1.57, 1.57, 0.00791),
    ("intertopic", "lsi"): (0.101, 1.57, 1.55, 0.153),
}


@dataclass(frozen=True)
class AngleTableConfig:
    """Parameters of the T1 experiment (defaults = the paper's)."""

    n_terms: int = PAPER_N_TERMS
    n_topics: int = PAPER_N_TOPICS
    primary_size: int = PAPER_PRIMARY_SIZE
    primary_mass: float = PAPER_PRIMARY_MASS
    n_documents: int = PAPER_N_DOCUMENTS
    length_low: int = PAPER_LENGTH_LOW
    length_high: int = PAPER_LENGTH_HIGH
    svd_engine: str = "lanczos"
    seed: int = 19980601  # PODS'98-flavoured default

    def scaled(self, factor: float) -> "AngleTableConfig":
        """A proportionally smaller instance (for quick benches/tests)."""
        return AngleTableConfig(
            n_terms=max(self.n_topics, int(self.n_terms * factor)),
            n_topics=self.n_topics,
            primary_size=max(1, int(self.primary_size * factor)),
            primary_mass=self.primary_mass,
            n_documents=max(self.n_topics * 2,
                            int(self.n_documents * factor)),
            length_low=self.length_low,
            length_high=self.length_high,
            svd_engine=self.svd_engine,
            seed=self.seed)


@dataclass(frozen=True)
class AngleTableResult:
    """Output of T1: both spaces' angle statistics plus skewness."""

    config: AngleTableConfig
    original: AngleStatistics
    lsi: AngleStatistics
    original_skewness: float
    lsi_skewness: float
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """The paper-style twin tables plus a skewness footer."""
        body = render_tables(self.tables)
        footer = (f"\nskewness: original={self.original_skewness:.4f} "
                  f"LSI={self.lsi_skewness:.4f}")
        return body + footer


@dataclass(frozen=True)
class AngleTableTrials:
    """T1 across repeated seeds — the paper's "repeated trials" remark.

    Attributes:
        results: one :class:`AngleTableResult` per trial.
        intratopic_lsi_means: per-trial intratopic LSI average angles.
        intertopic_lsi_means: per-trial intertopic LSI average angles.
    """

    results: list
    intratopic_lsi_means: list
    intertopic_lsi_means: list

    def summary(self) -> str:
        """Mean ± std of the headline quantities across trials."""
        import numpy as np

        intra = np.asarray(self.intratopic_lsi_means)
        inter = np.asarray(self.intertopic_lsi_means)
        return (f"{len(self.results)} trials — intratopic LSI mean "
                f"angle {intra.mean():.4f} ± {intra.std():.4f}; "
                f"intertopic LSI mean angle {inter.mean():.4f} ± "
                f"{inter.std():.4f}")

    def stable(self, *, intra_cap: float = 0.1) -> bool:
        """Whether the collapse reproduces in every single trial."""
        return all(value < intra_cap
                   for value in self.intratopic_lsi_means) and \
            all(value > 1.3 for value in self.intertopic_lsi_means)


def run_angle_table_trials(config: AngleTableConfig = AngleTableConfig(),
                           *, n_trials: int = 5) -> AngleTableTrials:
    """Run T1 ``n_trials`` times with derived seeds.

    The paper: "The following is a typical result; similar results are
    obtained from repeated trials."  This makes that claim checkable.
    """
    from dataclasses import replace

    from repro.utils.rng import spawn_generators

    seeds = [int(rng.integers(0, 2**31 - 1))
             for rng in spawn_generators(config.seed, n_trials)]
    results = [run_angle_table(replace(config, seed=seed))
               for seed in seeds]
    return AngleTableTrials(
        results=results,
        intratopic_lsi_means=[r.lsi.intratopic_mean for r in results],
        intertopic_lsi_means=[r.lsi.intertopic_mean for r in results])


def collect_angle_samples(config: AngleTableConfig = AngleTableConfig()):
    """Raw pairwise-angle samples for the T1 configuration.

    Returns ``(original, lsi)`` where each is a dict with
    ``"intratopic"`` and ``"intertopic"`` arrays of angles (radians) —
    the full distributions the table summarises, for histogramming.
    """
    import numpy as np

    from repro.core.skewness import _pair_masks
    from repro.linalg.dense import pairwise_angles

    model = build_separable_model(
        config.n_terms, config.n_topics,
        primary_size=config.primary_size,
        primary_mass=config.primary_mass,
        length_low=config.length_low, length_high=config.length_high)
    corpus = generate_corpus(model, config.n_documents, seed=config.seed)
    labels = corpus.topic_labels()
    matrix = corpus.term_document_matrix()
    lsi_model = LSIModel.fit(matrix, config.n_topics,
                             engine=config.svd_engine, seed=config.seed)
    intra_mask, inter_mask = _pair_masks(np.asarray(labels))

    def split(vectors):
        angles = pairwise_angles(vectors)
        return {"intratopic": angles[intra_mask],
                "intertopic": angles[inter_mask]}

    return (split(matrix.to_dense()),
            split(lsi_model.document_vectors()))


def run_angle_table(config: AngleTableConfig = AngleTableConfig()
                    ) -> AngleTableResult:
    """Generate the corpus, fit rank-``k`` LSI, measure pairwise angles."""
    model = build_separable_model(
        config.n_terms, config.n_topics,
        primary_size=config.primary_size,
        primary_mass=config.primary_mass,
        length_low=config.length_low, length_high=config.length_high)
    corpus = generate_corpus(model, config.n_documents, seed=config.seed)
    labels = corpus.topic_labels()
    matrix = corpus.term_document_matrix()

    lsi_model = LSIModel.fit(matrix, config.n_topics,
                             engine=config.svd_engine, seed=config.seed)
    original_vectors = matrix.to_dense()
    lsi_vectors = lsi_model.document_vectors()

    original_stats = angle_statistics(original_vectors, labels)
    lsi_stats = angle_statistics(lsi_vectors, labels)
    return AngleTableResult(
        config=config,
        original=original_stats,
        lsi=lsi_stats,
        original_skewness=skewness(original_vectors, labels),
        lsi_skewness=skewness(lsi_vectors, labels),
        tables=pairwise_angle_table(original_stats, lsi_stats))
