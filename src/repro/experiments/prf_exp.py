"""Experiment X7: fix the query (Rocchio PRF) vs fix the space (LSI).

The vocabulary-mismatch problem admits two classical remedies: expand
the query with pseudo-relevance feedback, or retrieve in a latent space.
This experiment pits them against each other — and composes them — on
the single-term synonymy probe of E8:

- **VSM** — the unrepaired baseline;
- **VSM+PRF** — Rocchio expansion of the query, retrieval still in raw
  space;
- **LSI** — retrieval in the rank-``k`` space, no expansion;
- **LSI+PRF** — expansion using LSI's initial ranking, final retrieval
  in the LSI space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lsi import LSIModel
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.ir.feedback import pseudo_relevance_feedback
from repro.ir.metrics import average_precision
from repro.ir.queries import single_term_queries
from repro.ir.relevance import relevance_from_labels
from repro.ir.vsm import VectorSpaceModel
from repro.utils.rng import as_generator
from repro.utils.tables import Table

__all__ = ["PRFConfig", "PRFResult", "run_prf_experiment"]


@dataclass(frozen=True)
class PRFConfig:
    """Parameters of X7."""

    n_terms: int = 500
    n_topics: int = 8
    n_documents: int = 320
    primary_mass: float = 0.95
    terms_per_topic: int = 3
    feedback_depth: int = 5
    seed: int = 163


@dataclass(frozen=True)
class PRFResult:
    """MAP per remedy arm on the single-term workload."""

    config: PRFConfig
    map_scores: dict[str, float]
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """The arm comparison table."""
        return "\n\n".join(t.render() for t in self.tables)

    def prf_helps_vsm(self) -> bool:
        """Rocchio expansion lifts raw-space retrieval."""
        return self.map_scores["vsm+prf"] >= \
            self.map_scores["vsm"] - 1e-9

    def lsi_beats_repaired_vsm(self) -> bool:
        """Changing the space beats repairing the query."""
        return self.map_scores["lsi"] >= \
            self.map_scores["vsm+prf"] - 1e-9


def run_prf_experiment(config: PRFConfig = PRFConfig()) -> PRFResult:
    """Compare PRF and LSI remedies on the synonymy probe."""
    rng = as_generator(config.seed)
    model = build_separable_model(
        config.n_terms, config.n_topics,
        primary_mass=config.primary_mass)
    corpus = generate_corpus(model, config.n_documents, rng)
    labels = corpus.topic_labels()
    matrix = corpus.term_document_matrix()

    vsm = VectorSpaceModel.fit(matrix)
    lsi = LSIModel.fit(matrix, config.n_topics, engine="lanczos",
                       seed=rng)
    queries = single_term_queries(model,
                                  terms_per_topic=config.terms_per_topic,
                                  seed=rng)
    relevant_sets = relevance_from_labels(labels, queries.topic_labels)

    def evaluate(rank_fn, expand_with=None) -> float:
        scores = []
        for (query, _), relevant in zip(queries, relevant_sets):
            if expand_with is not None:
                query = pseudo_relevance_feedback(
                    expand_with, query, matrix,
                    feedback_depth=config.feedback_depth)
            scores.append(average_precision(rank_fn(query), relevant))
        return float(np.mean(scores))

    map_scores = {
        "vsm": evaluate(vsm.rank),
        "vsm+prf": evaluate(vsm.rank, expand_with=vsm),
        "lsi": evaluate(lsi.rank_documents),
        "lsi+prf": evaluate(lsi.rank_documents, expand_with=lsi),
    }

    table = Table(
        title=(f"X7: query repair vs space repair "
               f"({queries.n_queries} single-term queries, "
               f"PRF depth {config.feedback_depth})"),
        headers=["arm", "MAP"])
    for arm in ("vsm", "vsm+prf", "lsi", "lsi+prf"):
        table.add_row([arm, map_scores[arm]])
    return PRFResult(config=config, map_scores=map_scores,
                     tables=[table])
