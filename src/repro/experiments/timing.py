"""Experiment E5: the §5 running-time claim.

Direct LSI on a sparse ``n × m`` matrix with ``c`` nonzeros per column
costs ``O(m·n·c)``; the two-step method costs ``O(m·l·(l+c))``.  The
experiment measures wall-clock for both pipelines across a sweep of
universe sizes ``n`` and prints the measured speedup next to the
flop-model prediction (shape, not constants, is the claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.lsi import LSIModel
from repro.core.two_step import TwoStepLSI, lsi_cost_model
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.utils.rng import spawn_generators
from repro.utils.tables import Table
from repro.utils.timing import Timer

__all__ = ["TimingConfig", "TimingPoint", "TimingResult", "run_timing"]


@dataclass(frozen=True)
class TimingConfig:
    """Parameters of E5."""

    universe_sizes: tuple = (500, 1000, 2000, 4000)
    n_topics: int = 10
    n_documents: int = 250
    projection_dim: int = 60
    repeats: int = 3
    direct_engine: str = "lanczos"
    seed: int = 31


@dataclass(frozen=True)
class TimingPoint:
    """One sweep point's measurements.

    Attributes:
        n_terms: universe size ``n``.
        nonzeros_per_document: measured ``c``.
        direct_seconds: mean direct-LSI wall-clock.
        two_step_seconds: mean two-step wall-clock.
        predicted_speedup: the flop-model ratio.
    """

    n_terms: int
    nonzeros_per_document: float
    direct_seconds: float
    two_step_seconds: float
    predicted_speedup: float

    @property
    def measured_speedup(self) -> float:
        """Wall-clock direct/two-step ratio."""
        if self.two_step_seconds == 0:
            return float("inf")
        return self.direct_seconds / self.two_step_seconds


@dataclass(frozen=True)
class TimingResult:
    """Sweep of timing points."""

    config: TimingConfig
    points: list[TimingPoint]
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """The timing table."""
        return "\n\n".join(t.render() for t in self.tables)

    def speedup_grows_with_n(self) -> bool:
        """The §5 shape: the two-step advantage grows with ``n``."""
        if len(self.points) < 2:
            return True
        return self.points[-1].measured_speedup >= \
            self.points[0].measured_speedup * 0.8


def run_timing(config: TimingConfig = TimingConfig()) -> TimingResult:
    """Time direct LSI vs the two-step pipeline across universe sizes."""
    rngs = spawn_generators(config.seed, len(config.universe_sizes))
    points: list[TimingPoint] = []
    for rng, n in zip(rngs, config.universe_sizes):
        model = build_separable_model(int(n), config.n_topics)
        corpus = generate_corpus(model, config.n_documents, seed=rng)
        matrix = corpus.term_document_matrix()
        c = matrix.mean_nonzeros_per_column()

        direct_timer = Timer()
        for _ in range(config.repeats):
            with direct_timer:
                LSIModel.fit(matrix, config.n_topics,
                             engine=config.direct_engine, seed=rng)

        two_step_timer = Timer()
        for _ in range(config.repeats):
            with two_step_timer:
                TwoStepLSI.fit(matrix, config.n_topics,
                               config.projection_dim, seed=rng)

        cost = lsi_cost_model(int(n), config.n_documents, c,
                              config.projection_dim)
        points.append(TimingPoint(
            n_terms=int(n), nonzeros_per_document=c,
            direct_seconds=direct_timer.mean_seconds,
            two_step_seconds=two_step_timer.mean_seconds,
            predicted_speedup=cost.speedup))

    table = Table(
        title=(f"Direct LSI vs two-step (m={config.n_documents}, "
               f"l={config.projection_dim}, k={config.n_topics})"),
        headers=["n", "c", "direct s", "two-step s", "speedup",
                 "model speedup"])
    for point in points:
        table.add_row([point.n_terms, point.nonzeros_per_document,
                       point.direct_seconds, point.two_step_seconds,
                       point.measured_speedup, point.predicted_speedup])
    return TimingResult(config=config, points=points, tables=[table])
