"""Experiment E4: Lemma 2 — pairwise distances survive random projection.

Projects corpus document vectors to a sweep of dimensions ``l`` and
measures the worst and mean pairwise-distance distortion, next to the
ε(l) that inverting the Lemma 2 tail bound predicts for that ``l``.
Also verifies the single-vector concentration statement directly via
:func:`repro.theory.jl.projected_length_statistics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.random_projection import (
    distance_distortions,
    make_projector,
)
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.theory.jl import ProjectionLengthReport, projected_length_statistics
from repro.utils.rng import spawn_generators
from repro.utils.tables import Table

__all__ = [
    "JLDistortionConfig",
    "JLDistortionResult",
    "epsilon_predicted_by_lemma2",
    "run_jl_distortion",
]


@dataclass(frozen=True)
class JLDistortionConfig:
    """Parameters of E4."""

    n_terms: int = 1000
    n_topics: int = 8
    n_documents: int = 120
    projection_dims: tuple = (25, 50, 100, 200, 400)
    projector_family: str = "orthonormal"
    concentration_epsilon: float = 0.25
    seed: int = 23


def epsilon_predicted_by_lemma2(projection_dim: int, n_pairs: int, *,
                                failure_probability: float = 0.05) -> float:
    """Invert the Lemma 2 union bound: the ε certified at dimension ``l``.

    Solves ``2·n_pairs·√l·e^{−(l−1)ε²/24} = failure_probability`` for ε
    (capped at 0.999 — small ``l`` certifies nothing useful).
    """
    l = int(projection_dim)
    log_term = np.log(2.0 * n_pairs * np.sqrt(l) / failure_probability)
    epsilon_sq = 24.0 * log_term / max(l - 1, 1)
    return float(min(np.sqrt(epsilon_sq), 0.999))


@dataclass(frozen=True)
class JLDistortionResult:
    """Distortion statistics per projection dimension."""

    config: JLDistortionConfig
    max_distortion: dict[int, float]
    mean_distortion: dict[int, float]
    predicted_epsilon: dict[int, float]
    concentration: ProjectionLengthReport
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """The distortion sweep table plus the concentration check."""
        body = "\n\n".join(t.render() for t in self.tables)
        footer = (
            f"\nLemma 2 concentration (l={self.concentration.n_trials} "
            f"trials): mean X={self.concentration.empirical_mean:.4f} "
            f"(expected {self.concentration.expected:.4f}), "
            f"failure rate {self.concentration.empirical_failure_rate:.3f}"
            f" <= bound {self.concentration.predicted_failure_bound:.3f}")
        return body + footer

    def distortion_shrinks_with_l(self) -> bool:
        """Max distortion at the largest ``l`` below that at the smallest."""
        dims = sorted(self.max_distortion)
        return self.max_distortion[dims[-1]] <= \
            self.max_distortion[dims[0]] + 1e-9


def run_jl_distortion(config: JLDistortionConfig = JLDistortionConfig()
                      ) -> JLDistortionResult:
    """Sweep ``l`` and measure pairwise distance distortion."""
    model = build_separable_model(config.n_terms, config.n_topics)
    corpus = generate_corpus(model, config.n_documents, seed=config.seed)
    dense = corpus.term_document_matrix().to_dense()
    n_pairs = config.n_documents * (config.n_documents - 1) // 2

    rngs = spawn_generators(config.seed, len(config.projection_dims) + 1)
    max_distortion: dict[int, float] = {}
    mean_distortion: dict[int, float] = {}
    predicted: dict[int, float] = {}
    for rng, l in zip(rngs, config.projection_dims):
        projector = make_projector(config.projector_family,
                                   config.n_terms, int(l), seed=rng)
        projected = projector.project(dense)
        ratios = distance_distortions(dense, projected)
        max_distortion[int(l)] = float(np.max(np.abs(ratios - 1.0)))
        mean_distortion[int(l)] = float(np.mean(np.abs(ratios - 1.0)))
        predicted[int(l)] = epsilon_predicted_by_lemma2(int(l), n_pairs)

    concentration = projected_length_statistics(
        config.n_terms, config.projection_dims[-1],
        config.concentration_epsilon, n_trials=300, seed=rngs[-1])

    table = Table(
        title=(f"JL distance distortion ({config.projector_family} "
               f"projector, {n_pairs} pairs)"),
        headers=["l", "max |ratio-1|", "mean |ratio-1|",
                 "Lemma-2 eps(l)"])
    for l in sorted(max_distortion):
        table.add_row([l, max_distortion[l], mean_distortion[l],
                       predicted[l]])
    return JLDistortionResult(
        config=config, max_distortion=max_distortion,
        mean_distortion=mean_distortion, predicted_epsilon=predicted,
        concentration=concentration, tables=[table])
