"""Experiment X1 (extension): documents on several topics.

The paper's conclusion asks: "Can Theorem 2 be extended to a model where
documents could belong to several topics?"  This experiment probes the
question empirically: documents blend ``t`` topics through a Dirichlet
draw, and we measure

- how well the rank-``k`` LSI space still captures the topic structure
  (energy of the top-``k`` subspace, and alignment between each
  document's LSI vector and the span of its constituent topics'
  directions);
- how retrieval against *dominant-topic* relevance degrades as ``t``
  grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lsi import LSIModel
from repro.corpus.model import CorpusModel, MixtureTopicFactors
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.utils.rng import spawn_generators
from repro.utils.tables import Table

__all__ = [
    "MixtureConfig",
    "MixturePoint",
    "MixtureResult",
    "run_mixture_experiment",
]


@dataclass(frozen=True)
class MixtureConfig:
    """Parameters of X1."""

    n_terms: int = 500
    n_topics: int = 8
    n_documents: int = 300
    primary_mass: float = 0.95
    topics_per_document: tuple = (1, 2, 3, 4)
    concentration: float = 1.0
    seed: int = 97


@dataclass(frozen=True)
class MixturePoint:
    """Measurements at one ``topics_per_document``.

    Attributes:
        topics_per_document: the blend size ``t``.
        subspace_alignment: mean over documents of the fraction of the
            document's LSI vector lying in the span of its constituent
            topics' centroid directions (1.0 = perfectly explained).
        dominant_topic_accuracy: fraction of documents whose
            nearest topic centroid is their highest-weight topic.
        energy_fraction: ‖Aₖ‖²/‖A‖² of the rank-k LSI fit.
    """

    topics_per_document: int
    subspace_alignment: float
    dominant_topic_accuracy: float
    energy_fraction: float


@dataclass(frozen=True)
class MixtureResult:
    """The sweep over blend sizes."""

    config: MixtureConfig
    points: list[MixturePoint]
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """The sweep table."""
        return "\n\n".join(t.render() for t in self.tables)

    def pure_case_is_best(self) -> bool:
        """Single-topic documents give the cleanest structure."""
        accuracies = {p.topics_per_document: p.dominant_topic_accuracy
                      for p in self.points}
        t_values = sorted(accuracies)
        return accuracies[t_values[0]] >= accuracies[t_values[-1]] - 0.02

    def alignment_stays_high(self, *, threshold: float = 0.8) -> bool:
        """LSI keeps explaining mixtures through topic directions."""
        return all(p.subspace_alignment >= threshold
                   for p in self.points)


def _topic_centroids(model, lsi: LSIModel) -> np.ndarray:
    """Unit LSI direction of each topic's *distribution* vector."""
    directions = np.zeros((model.n_topics, lsi.rank))
    for t, topic in enumerate(model.topics):
        projected = lsi.project_query(topic.probabilities)
        norm = np.linalg.norm(projected)
        directions[t] = projected / norm if norm > 0 else projected
    return directions


def run_mixture_experiment(config: MixtureConfig = MixtureConfig()
                           ) -> MixtureResult:
    """Sweep ``topics_per_document`` and measure structural recovery."""
    base = build_separable_model(config.n_terms, config.n_topics,
                                 primary_mass=config.primary_mass)
    rngs = spawn_generators(config.seed, len(config.topics_per_document))
    points: list[MixturePoint] = []
    for rng, t in zip(rngs, config.topics_per_document):
        factors = MixtureTopicFactors(
            topics_per_document=int(t),
            concentration=config.concentration,
            length_low=50, length_high=100)
        model = CorpusModel(config.n_terms, base.topics, factors,
                            name=f"mixture(t={t})")
        corpus = generate_corpus(model, config.n_documents, rng)
        matrix = corpus.term_document_matrix()
        lsi = LSIModel.fit(matrix, config.n_topics, engine="lanczos",
                           seed=rng)
        centroids = _topic_centroids(model, lsi)
        vectors = lsi.document_vectors()

        alignments = []
        correct = 0
        for j, document in enumerate(corpus):
            weights = document.factors.topic_weights
            constituents = np.flatnonzero(weights > 0)
            vector = vectors[:, j]
            norm = np.linalg.norm(vector)
            if norm == 0:
                continue
            # Fraction of the vector inside span(constituent centroids).
            basis = np.linalg.qr(centroids[constituents].T)[0]
            inside = np.linalg.norm(basis.T @ (vector / norm))
            alignments.append(min(float(inside), 1.0))
            # Dominant-topic classification by nearest centroid.
            scores = centroids @ (vector / norm)
            if int(np.argmax(scores)) == int(np.argmax(weights)):
                correct += 1

        points.append(MixturePoint(
            topics_per_document=int(t),
            subspace_alignment=float(np.mean(alignments)),
            dominant_topic_accuracy=correct / len(corpus),
            energy_fraction=lsi.energy_fraction()))

    table = Table(
        title=(f"X1: mixture documents (k={config.n_topics}, "
               f"Dirichlet concentration {config.concentration})"),
        headers=["topics/doc", "subspace alignment",
                 "dominant-topic acc.", "LSI energy"])
    for point in points:
        table.add_row([point.topics_per_document,
                       point.subspace_alignment,
                       point.dominant_topic_accuracy,
                       point.energy_fraction])
    return MixtureResult(config=config, points=points, tables=[table])
