"""Experiment E9: sampling-based speedups vs random projection.

Compares three fast approximations of ``Aₖ`` across their respective
budgets:

- FKV length-squared column sampling, sweeping the sample count ``s``
  (guarantee ``‖A−D‖_F² ≤ ‖A−Aₖ‖_F² + 2√(k/s)·‖A‖_F²``);
- uniform document sampling (folklore, no guarantee);
- the §5 two-step random projection at a comparable budget.

Reported per point: squared residual, the applicable bound, and the
fraction of direct LSI's captured energy recovered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.fkv import (
    fkv_error_bound,
    fkv_low_rank_approximation,
    sampled_lsi,
)
from repro.core.two_step import TwoStepLSI
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.linalg.svd import best_rank_k_error
from repro.utils.rng import spawn_generators
from repro.utils.tables import Table

__all__ = [
    "ApproximationPoint",
    "FKVConfig",
    "FKVResult",
    "run_fkv_experiment",
]


@dataclass(frozen=True)
class FKVConfig:
    """Parameters of E9."""

    n_terms: int = 600
    n_topics: int = 8
    n_documents: int = 300
    sample_counts: tuple = (20, 40, 80, 160)
    seed: int = 71


@dataclass(frozen=True)
class ApproximationPoint:
    """One (method, budget) measurement.

    Attributes:
        method: ``"fkv"``, ``"uniform"``, or ``"rp-lsi"``.
        budget: samples drawn / projection dimension.
        residual_sq: measured ``‖A − D‖_F²``.
        bound_sq: the method's guarantee on the squared residual
            (NaN for the unguaranteed uniform baseline).
        recovery_ratio: captured energy relative to direct LSI.
    """

    method: str
    budget: int
    residual_sq: float
    bound_sq: float
    recovery_ratio: float


@dataclass(frozen=True)
class FKVResult:
    """All (method, budget) points."""

    config: FKVConfig
    points: list[ApproximationPoint]
    direct_residual_sq: float
    matrix_energy: float
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """One table over all methods and budgets."""
        return "\n\n".join(t.render() for t in self.tables)

    def fkv_bounds_hold(self) -> bool:
        """Whether every FKV point respects its additive guarantee."""
        return all(p.residual_sq <= p.bound_sq + 1e-6
                   for p in self.points if p.method == "fkv")

    def fkv_improves_with_samples(self) -> bool:
        """Whether the largest FKV budget beats the smallest."""
        fkv = sorted((p for p in self.points if p.method == "fkv"),
                     key=lambda p: p.budget)
        return len(fkv) < 2 or fkv[-1].residual_sq <= \
            fkv[0].residual_sq + 1e-6


def run_fkv_experiment(config: FKVConfig = FKVConfig()) -> FKVResult:
    """Sweep budgets for FKV, uniform sampling, and RP+LSI."""
    model = build_separable_model(config.n_terms, config.n_topics)
    corpus = generate_corpus(model, config.n_documents, seed=config.seed)
    matrix = corpus.term_document_matrix()
    dense = matrix.to_dense()
    energy = float(np.sum(dense * dense))
    direct_sq = best_rank_k_error(dense, config.n_topics) ** 2
    direct_captured = energy - direct_sq

    def recovery(residual_sq: float) -> float:
        if direct_captured <= 0:
            return 1.0
        return (energy - residual_sq) / direct_captured

    rngs = spawn_generators(config.seed, 3 * len(config.sample_counts))
    rng_iter = iter(rngs)
    points: list[ApproximationPoint] = []
    for budget in config.sample_counts:
        budget = int(budget)

        fkv = fkv_low_rank_approximation(matrix, config.n_topics, budget,
                                         seed=next(rng_iter))
        fkv_sq = fkv.residual_norm(matrix) ** 2
        points.append(ApproximationPoint(
            method="fkv", budget=budget, residual_sq=fkv_sq,
            bound_sq=fkv_error_bound(matrix, config.n_topics, budget),
            recovery_ratio=recovery(fkv_sq)))

        sample_size = min(budget, config.n_documents)
        sample_size = max(sample_size, config.n_topics)
        uniform = sampled_lsi(matrix, config.n_topics, sample_size,
                              seed=next(rng_iter))
        uniform_sq = uniform.residual_norm(matrix) ** 2
        points.append(ApproximationPoint(
            method="uniform", budget=sample_size, residual_sq=uniform_sq,
            bound_sq=float("nan"), recovery_ratio=recovery(uniform_sq)))

        projection_dim = min(budget, config.n_terms)
        projection_dim = max(projection_dim, 2 * config.n_topics)
        two_step = TwoStepLSI.fit(matrix, config.n_topics, projection_dim,
                                  seed=next(rng_iter))
        report = two_step.recovery_report(epsilon=np.sqrt(
            24.0 * np.log(config.n_terms) / projection_dim))
        points.append(ApproximationPoint(
            method="rp-lsi", budget=projection_dim,
            residual_sq=report.two_step_residual_sq,
            bound_sq=report.bound,
            recovery_ratio=report.recovery_ratio))

    table = Table(
        title=(f"Fast low-rank approximations (k={config.n_topics}, "
               f"direct ||A-Ak||^2={direct_sq:.1f})"),
        headers=["method", "budget", "||A-D||^2", "bound", "recovery"])
    for point in sorted(points, key=lambda p: (p.method, p.budget)):
        table.add_row([point.method, point.budget, point.residual_sq,
                       point.bound_sq, point.recovery_ratio])
    return FKVResult(config=config, points=points,
                     direct_residual_sq=direct_sq, matrix_energy=energy,
                     tables=[table])
