"""Experiment E10: the §6 collaborative-filtering analogy.

"The rows and columns of A could in general be, instead of terms and
documents, consumers and products, viewers and movies."  The experiment
instantiates the latent-preference analogue of the topic model and
compares the spectral recommender against popularity and raw-space
cosine-kNN baselines on held-out interactions, sweeping the rank around
the true number of taste groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cf import (
    CosineKNNRecommender,
    ItemKNNRecommender,
    LatentPreferenceModel,
    PopularityRecommender,
    RecommenderEvaluation,
    SpectralRecommender,
    evaluate_recommender,
)
from repro.utils.rng import as_generator
from repro.utils.tables import Table

__all__ = ["CFConfig", "CFResult", "run_cf_experiment"]


@dataclass(frozen=True)
class CFConfig:
    """Parameters of E10."""

    n_items: int = 300
    n_groups: int = 6
    n_users: int = 200
    primary_mass: float = 0.9
    holdout_fraction: float = 0.25
    top_n: int = 10
    rank_sweep: tuple = (2, 6, 12)
    n_neighbors: int = 10
    seed: int = 83


@dataclass(frozen=True)
class CFResult:
    """Per-engine held-out evaluations."""

    config: CFConfig
    evaluations: dict[str, RecommenderEvaluation]
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """The engine comparison table."""
        return "\n\n".join(t.render() for t in self.tables)

    def spectral_beats_popularity(self) -> bool:
        """The §6 claim's minimum bar."""
        spectral = self.evaluations[f"spectral(k={self.config.n_groups})"]
        return spectral.precision_at_n >= \
            self.evaluations["popularity"].precision_at_n


def run_cf_experiment(config: CFConfig = CFConfig()) -> CFResult:
    """Generate interactions, evaluate all engines on the holdout."""
    rng = as_generator(config.seed)
    model = LatentPreferenceModel(
        config.n_items, config.n_groups, primary_mass=config.primary_mass)
    data = model.generate(config.n_users,
                          holdout_fraction=config.holdout_fraction,
                          seed=rng)

    engines = {"popularity": PopularityRecommender().fit(data.train),
               f"user-knn({config.n_neighbors})":
                   CosineKNNRecommender(config.n_neighbors).fit(data.train),
               f"item-knn({config.n_neighbors})":
                   ItemKNNRecommender(config.n_neighbors).fit(data.train)}
    for rank in config.rank_sweep:
        engines[f"spectral(k={int(rank)})"] = \
            SpectralRecommender(int(rank)).fit(data.train)
    if f"spectral(k={config.n_groups})" not in engines:
        engines[f"spectral(k={config.n_groups})"] = \
            SpectralRecommender(config.n_groups).fit(data.train)

    evaluations = {
        name: evaluate_recommender(engine, data, top_n=config.top_n)
        for name, engine in engines.items()}

    table = Table(
        title=(f"Collaborative filtering ({config.n_users} users, "
               f"{config.n_items} items, {config.n_groups} taste groups)"),
        headers=["engine", f"P@{config.top_n}", f"R@{config.top_n}",
                 "hit rate"])
    for name in sorted(evaluations):
        ev = evaluations[name]
        table.add_row([name, ev.precision_at_n, ev.recall_at_n,
                       ev.hit_rate])
    return CFResult(config=config, evaluations=evaluations,
                    tables=[table])
