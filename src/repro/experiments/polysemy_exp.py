"""Experiment X3 (extension): does LSI address polysemy?

The paper poses the question and leaves it open.  We merge one primary
term from each of two topics into a single ambiguous term and measure:

1. the polyseme's LSI vector is a *superposition* of its senses' topic
   directions (unlike a synonym pair, nothing gets projected out);
2. a bare one-word query on the polyseme stays ambiguous (precision
   against the intended sense ≈ the sense's share);
3. adding context terms disambiguates: the folded query lands near the
   intended topic's direction and precision recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lsi import LSIModel
from repro.core.polysemy import (
    ContextDisambiguation,
    SenseSuperposition,
    context_disambiguation,
    sense_superposition,
)
from repro.corpus.polysemy import merge_topic_terms
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.utils.rng import as_generator
from repro.utils.tables import Table

__all__ = [
    "PolysemeOutcome",
    "PolysemyConfig",
    "PolysemyResult",
    "run_polysemy",
]


@dataclass(frozen=True)
class PolysemyConfig:
    """Parameters of X3."""

    n_terms: int = 400
    n_topics: int = 8
    n_documents: int = 320
    primary_mass: float = 0.95
    n_polysemes: int = 3
    context_size: int = 2
    cutoff: int = 10
    seed: int = 131


@dataclass(frozen=True)
class PolysemeOutcome:
    """Measurements for one injected polyseme.

    Attributes:
        polyseme_term: the ambiguous term's row index.
        senses: the two merged topics.
        superposition: topic-direction split of the term's LSI vector.
        disambiguation: bare vs contextual precision for sense 0.
        bare_confusion: fraction of the bare query's top-``cutoff``
            results that belong to *either* sense — near 1 means the
            ambiguous query retrieves a mix of both meanings.
        contextual_other_precision: contextual query's precision against
            the *unintended* sense — near 0 means context suppressed it.
    """

    polyseme_term: int
    senses: tuple[int, int]
    superposition: SenseSuperposition
    disambiguation: ContextDisambiguation
    bare_confusion: float
    contextual_other_precision: float


@dataclass(frozen=True)
class PolysemyResult:
    """All injected polysemes."""

    config: PolysemyConfig
    outcomes: list[PolysemeOutcome]
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """One row per polyseme."""
        return "\n\n".join(t.render() for t in self.tables)

    def all_superposed(self) -> bool:
        """Every polyseme splits across both true senses."""
        return all(o.superposition.is_superposed for o in self.outcomes)

    def context_always_helps(self) -> bool:
        """Contextual queries never lose to bare queries."""
        return all(o.disambiguation.context_helps for o in self.outcomes)

    def bare_queries_confused(self, *, threshold: float = 0.8) -> bool:
        """Bare polyseme queries retrieve the senses' mixture."""
        return all(o.bare_confusion >= threshold for o in self.outcomes)

    def context_suppresses_other_sense(self, *,
                                       threshold: float = 0.3) -> bool:
        """Context steers retrieval away from the unintended sense."""
        return all(o.contextual_other_precision <= threshold
                   for o in self.outcomes)


def run_polysemy(config: PolysemyConfig = PolysemyConfig()
                 ) -> PolysemyResult:
    """Inject polysemes, fit LSI, measure superposition + context."""
    rng = as_generator(config.seed)
    model = build_separable_model(config.n_terms, config.n_topics,
                                  primary_mass=config.primary_mass)
    primary_size = config.n_terms // config.n_topics

    # Merge pairs one at a time; track merged-term positions.  Merging
    # removes one term, shifting later ids, so we merge from the end of
    # the topic list backwards to keep earlier ids stable.
    outcomes_plan = []
    for i in range(config.n_polysemes):
        sense_a = i
        sense_b = config.n_topics - 1 - i
        if sense_a >= sense_b:
            break
        term_a = sense_a * primary_size + 2 * i       # stays in place
        term_b = sense_b * primary_size + 2 * i       # gets merged away
        model = merge_topic_terms(model, term_a, term_b)
        outcomes_plan.append((term_a, (sense_a, sense_b)))

    corpus = generate_corpus(model, config.n_documents, rng)
    labels = corpus.topic_labels()
    matrix = corpus.term_document_matrix()
    lsi = LSIModel.fit(matrix, config.n_topics, engine="lanczos",
                       seed=rng)

    outcomes: list[PolysemeOutcome] = []
    for term, senses in outcomes_plan:
        superposition = sense_superposition(lsi, labels, term, senses)
        intended, other = senses
        # Context: other high-probability primary terms of the intended
        # sense (excluding the polyseme itself).
        topic = model.topics[intended]
        candidates = np.fromiter(
            (t for t in topic.primary_terms if t != term),
            dtype=np.int64)
        probs = topic.probabilities[candidates]
        context = candidates[np.argsort(-probs)][:config.context_size]
        disambiguation = context_disambiguation(
            lsi, labels, term, intended, context,
            cutoff=config.cutoff)

        # Bare-query confusion: the top results mix both senses.
        bare = np.zeros(lsi.n_terms)
        bare[term] = 1.0
        top = lsi.rank_documents(bare, top_k=config.cutoff)
        either = sum(1 for d in top if labels[d] in senses)
        bare_confusion = either / config.cutoff
        contextual_other = context_disambiguation(
            lsi, labels, term, other, context,
            cutoff=config.cutoff).contextual_precision

        outcomes.append(PolysemeOutcome(
            polyseme_term=int(term), senses=senses,
            superposition=superposition,
            disambiguation=disambiguation,
            bare_confusion=bare_confusion,
            contextual_other_precision=contextual_other))

    table = Table(
        title=(f"X3: polysemous terms under rank-{config.n_topics} LSI "
               f"(context = {config.context_size} terms)"),
        headers=["term", "senses", "sense mass", "bare either-sense",
                 "ctx P(intended)", "ctx P(other)"])
    for outcome in outcomes:
        table.add_row([
            outcome.polyseme_term,
            f"{outcome.senses[0]}+{outcome.senses[1]}",
            outcome.superposition.sense_mass_fraction,
            outcome.bare_confusion,
            outcome.disambiguation.contextual_precision,
            outcome.contextual_other_precision])
    return PolysemyResult(config=config, outcomes=outcomes,
                          tables=[table])
