"""Aggregate report: run a set of experiments and render one document.

``python -m repro report`` regenerates every experiment at its default
configuration and writes a single Markdown document in the style of
EXPERIMENTS.md — the whole evaluation, reproduced in one command.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ValidationError

__all__ = ["REPORT_SECTIONS", "generate_report", "write_report"]

#: Experiment id → (title, config class path, runner path).  Mirrors the
#: CLI registry; kept separate so the report module has no CLI import.
REPORT_SECTIONS = {
    "t1": "the paper's section-4 angle-statistics table",
    "e2": "delta-skewness vs corpus size and epsilon (Theorems 2/3)",
    "e3": "Theorem 5 random-projection recovery",
    "e4": "Johnson-Lindenstrauss distance distortion (Lemma 2)",
    "e5": "direct LSI vs two-step running time",
    "e6": "synonym pairs under LSI",
    "e7": "Theorem 6 spectral subgraph discovery",
    "e8": "retrieval quality: LSI vs VSM/BM25 vs RP+LSI",
    "e9": "FKV sampling vs uniform sampling vs projection",
    "e10": "spectral collaborative filtering",
    "x1": "extension: multi-topic documents",
    "x2": "extension: authorship styles",
    "x3": "extension: polysemy",
    "x4": "Theorem 2's spectral engine",
    "x5": "folding-in vs refitting",
    "x6": "document classification per space",
    "x7": "query repair (PRF) vs space repair (LSI)",
}


def _resolve(experiment_id: str):
    from repro.cli import _EXPERIMENTS, _load_experiment

    if experiment_id not in _EXPERIMENTS:
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; expected one of "
            f"{sorted(_EXPERIMENTS)}")
    return _load_experiment(experiment_id)


def generate_report(experiment_ids=None, *, configs=None,
                    title: str = "Reproduction report") -> str:
    """Run experiments and render one Markdown document.

    Args:
        experiment_ids: which experiments to include (default: all of
            :data:`REPORT_SECTIONS`, in index order).
        configs: optional mapping ``experiment id -> config instance``
            overriding the defaults (used for scaled-down runs).
        title: the document heading.

    Returns:
        The rendered Markdown string.
    """
    if experiment_ids is None:
        experiment_ids = list(REPORT_SECTIONS)
    configs = dict(configs or {})

    lines = [f"# {title}", ""]
    for experiment_id in experiment_ids:
        experiment_id = str(experiment_id).lower()
        config_cls, runner = _resolve(experiment_id)
        config = configs.get(experiment_id, config_cls())
        result = runner(config)
        heading = REPORT_SECTIONS.get(experiment_id, experiment_id)
        lines.append(f"## {experiment_id.upper()} — {heading}")
        lines.append("")
        lines.append("```")
        lines.append(result.render())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(path, experiment_ids=None, *, configs=None) -> Path:
    """Generate the report and write it to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generate_report(experiment_ids, configs=configs))
    return path
