"""Experiment X5: folding-in drift vs refitting.

Production LSI folds new documents into a stale basis.  Lemma 1 says a
batch of in-model documents is a small perturbation, so the refit basis
barely moves and folding stays accurate; out-of-model batches (new
topics) break that.  The experiment sweeps the folded fraction for both
regimes and reports subspace drift and residual excess.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.folding import FoldingDrift, folding_drift
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.utils.rng import spawn_generators
from repro.utils.tables import Table

__all__ = [
    "FoldingConfig",
    "FoldingPoint",
    "FoldingResult",
    "run_folding_experiment",
]


@dataclass(frozen=True)
class FoldingConfig:
    """Parameters of X5."""

    n_terms: int = 300
    n_topics: int = 6
    base_documents: int = 200
    folded_counts: tuple = (20, 60, 140)
    seed: int = 149


@dataclass(frozen=True)
class FoldingPoint:
    """Drift at one folded-batch size, in-model vs out-of-model."""

    n_folded: int
    in_model: FoldingDrift
    out_of_model: FoldingDrift


@dataclass(frozen=True)
class FoldingResult:
    """The folded-fraction sweep."""

    config: FoldingConfig
    points: list[FoldingPoint]
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """The sweep table."""
        return "\n\n".join(t.render() for t in self.tables)

    def in_model_folding_is_cheap(self, *,
                                  max_excess: float = 0.05) -> bool:
        """In-model batches barely degrade the stale basis."""
        return all(p.in_model.residual_excess <= max_excess
                   for p in self.points)

    def out_of_model_hurts_more(self) -> bool:
        """New-topic batches drift more than in-model batches."""
        return all(p.out_of_model.subspace_drift
                   >= p.in_model.subspace_drift - 1e-9
                   for p in self.points)


def run_folding_experiment(config: FoldingConfig = FoldingConfig()
                           ) -> FoldingResult:
    """Measure folding drift for in-model and new-topic batches."""
    model = build_separable_model(config.n_terms, config.n_topics)
    # The out-of-model source: same universe, different (shifted)
    # primary sets — genuinely new topics over the same terms.
    shifted = build_separable_model(config.n_terms, config.n_topics,
                                    primary_mass=0.95)
    half = config.n_terms // (2 * config.n_topics)
    from repro.corpus.topic import Topic

    new_topics = []
    for i, topic in enumerate(shifted.topics):
        rolled = list(range(
            (i * config.n_terms) // config.n_topics + half,
            (i * config.n_terms) // config.n_topics + half
            + config.n_terms // config.n_topics))
        rolled = [t % config.n_terms for t in rolled]
        new_topics.append(Topic.primary_set(config.n_terms, rolled,
                                            primary_mass=0.95))
    from repro.corpus.model import CorpusModel

    out_model = CorpusModel(config.n_terms, new_topics, shifted.factors,
                            name="shifted-topics")

    rngs = spawn_generators(config.seed, 1 + 2 * len(config.folded_counts))
    rng_iter = iter(rngs)
    base_corpus = generate_corpus(model, config.base_documents,
                                  next(rng_iter))
    base_matrix = base_corpus.term_document_matrix()

    points: list[FoldingPoint] = []
    for count in config.folded_counts:
        in_batch = generate_corpus(model, int(count), next(rng_iter)) \
            .term_document_matrix()
        out_batch = generate_corpus(out_model, int(count),
                                    next(rng_iter)) \
            .term_document_matrix()
        points.append(FoldingPoint(
            n_folded=int(count),
            in_model=folding_drift(base_matrix, in_batch,
                                   config.n_topics),
            out_of_model=folding_drift(base_matrix, out_batch,
                                       config.n_topics)))

    table = Table(
        title=(f"X5: folding-in drift (base={config.base_documents} "
               f"docs, k={config.n_topics})"),
        headers=["folded", "in-model drift", "in-model excess",
                 "new-topic drift", "new-topic excess"])
    for point in points:
        table.add_row([point.n_folded,
                       point.in_model.subspace_drift,
                       point.in_model.residual_excess,
                       point.out_of_model.subspace_drift,
                       point.out_of_model.residual_excess])
    return FoldingResult(config=config, points=points, tables=[table])
