"""Experiment E2: the shape of Theorems 2 and 3.

Theorem 2 (ε = 0): on a pure, 0-separable corpus rank-``k`` LSI is
0-skewed with probability ``1 − O(1/m)`` — so the measured skewness
should fall toward 0 as the corpus grows.  Theorem 3: on an ε-separable
corpus the skewness is ``O(ε)`` — so it should scale roughly linearly in
ε.  This experiment sweeps both knobs and reports δ-skewness per
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lsi import LSIModel
from repro.core.skewness import skewness
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.utils.rng import spawn_generators
from repro.utils.tables import Table

__all__ = [
    "SkewnessSweepConfig",
    "SkewnessSweepResult",
    "run_skewness_sweep",
]


@dataclass(frozen=True)
class SkewnessSweepConfig:
    """Parameters of E2 (a scaled-down T1 corpus per sweep point)."""

    n_terms: int = 600
    n_topics: int = 10
    corpus_sizes: tuple = (100, 200, 400, 800)
    epsilons: tuple = (0.0, 0.02, 0.05, 0.1, 0.2)
    fixed_corpus_size: int = 400
    fixed_epsilon: float = 0.05
    length_low: int = 50
    length_high: int = 100
    svd_engine: str = "lanczos"
    seed: int = 7


@dataclass(frozen=True)
class SkewnessSweepResult:
    """Two series: skewness vs corpus size, and skewness vs ε."""

    config: SkewnessSweepConfig
    by_corpus_size: dict[int, float]
    by_epsilon: dict[float, float]
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """Both series as tables."""
        return "\n\n".join(t.render() for t in self.tables)

    def size_series_decreasing(self) -> bool:
        """Theorem 2 shape: does skewness trend down as m grows?

        Compares the first and last sweep points (individual steps may
        wobble with sampling noise).
        """
        sizes = sorted(self.by_corpus_size)
        return self.by_corpus_size[sizes[-1]] <= \
            self.by_corpus_size[sizes[0]] + 1e-9

    def epsilon_series_increasing(self) -> bool:
        """Theorem 3 shape: does skewness trend up with ε?"""
        eps = sorted(self.by_epsilon)
        return self.by_epsilon[eps[-1]] >= self.by_epsilon[eps[0]] - 1e-9


def _measure_skewness(n_terms, n_topics, primary_mass, m, length_low,
                      length_high, engine, rng) -> float:
    model = build_separable_model(
        n_terms, n_topics, primary_mass=primary_mass,
        length_low=length_low, length_high=length_high)
    corpus = generate_corpus(model, m, seed=rng)
    matrix = corpus.term_document_matrix()
    lsi = LSIModel.fit(matrix, n_topics, engine=engine, seed=rng)
    return skewness(lsi.document_vectors(), corpus.topic_labels())


def run_skewness_sweep(config: SkewnessSweepConfig = SkewnessSweepConfig()
                       ) -> SkewnessSweepResult:
    """Sweep corpus size (at fixed ε) and ε (at fixed size)."""
    total_points = len(config.corpus_sizes) + len(config.epsilons)
    rngs = spawn_generators(config.seed, total_points)
    rng_iter = iter(rngs)

    by_size: dict[int, float] = {}
    for m in config.corpus_sizes:
        by_size[int(m)] = _measure_skewness(
            config.n_terms, config.n_topics,
            1.0 - config.fixed_epsilon, int(m),
            config.length_low, config.length_high,
            config.svd_engine, next(rng_iter))

    by_epsilon: dict[float, float] = {}
    for epsilon in config.epsilons:
        primary_mass = 1.0 - float(epsilon)
        # primary_mass must stay in (0, 1]; ε = 0 means mass exactly 1.
        primary_mass = min(max(primary_mass, 1e-6), 1.0)
        by_epsilon[float(epsilon)] = _measure_skewness(
            config.n_terms, config.n_topics, primary_mass,
            config.fixed_corpus_size,
            config.length_low, config.length_high,
            config.svd_engine, next(rng_iter))

    size_table = Table(
        title=f"Skewness vs corpus size (epsilon={config.fixed_epsilon})",
        headers=["m", "skewness"])
    for m in sorted(by_size):
        size_table.add_row([m, by_size[m]])

    epsilon_table = Table(
        title=f"Skewness vs epsilon (m={config.fixed_corpus_size})",
        headers=["epsilon", "skewness"])
    for epsilon in sorted(by_epsilon):
        epsilon_table.add_row([epsilon, by_epsilon[epsilon]])

    return SkewnessSweepResult(config=config, by_corpus_size=by_size,
                               by_epsilon=by_epsilon,
                               tables=[size_table, epsilon_table])
