"""Experiment X6: document classification in the LSI space.

The §4 claim made operational: cluster/classify the same corpus in raw
term space, the LSI space, and the §6 graph embedding, sweeping the
separability ε.  The prediction from δ-skewness: LSI clustering stays
near-perfect while ε is small and beats raw-space clustering as
sampling noise grows; the supervised nearest-centroid classifier shows
the same ordering on held-out documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clustering import (
    CLUSTER_SPACES,
    NearestCentroidClassifier,
    cluster_documents,
)
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.utils.kmeans import clustering_accuracy
from repro.utils.rng import spawn_generators
from repro.utils.tables import Table

__all__ = [
    "ClassificationConfig",
    "ClassificationPoint",
    "ClassificationResult",
    "run_classification",
]


@dataclass(frozen=True)
class ClassificationConfig:
    """Parameters of X6."""

    n_terms: int = 400
    n_topics: int = 8
    n_documents: int = 320
    epsilons: tuple = (0.05, 0.2, 0.4)
    # Short documents: the sparse/noisy regime where representation
    # choice actually matters (long documents make even raw space easy).
    length_low: int = 6
    length_high: int = 14
    train_fraction: float = 0.7
    seed: int = 157


@dataclass(frozen=True)
class ClassificationPoint:
    """Accuracies at one separability level.

    Attributes:
        epsilon: the model's off-primary mass.
        clustering: space → unsupervised clustering accuracy.
        supervised: space → held-out nearest-centroid accuracy
            (``"raw"`` and ``"lsi"`` only).
    """

    epsilon: float
    clustering: dict[str, float]
    supervised: dict[str, float]


@dataclass(frozen=True)
class ClassificationResult:
    """The ε sweep."""

    config: ClassificationConfig
    points: list[ClassificationPoint]
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """Clustering and supervised tables."""
        return "\n\n".join(t.render() for t in self.tables)

    def lsi_clusters_best_at_small_epsilon(self) -> bool:
        """At the cleanest ε, LSI clustering ≥ raw clustering."""
        first = self.points[0]
        return first.clustering["lsi"] >= first.clustering["raw"] - 0.02

    def lsi_classifies_well(self, *, threshold: float = 0.9) -> bool:
        """Supervised LSI accuracy stays high at small ε."""
        return self.points[0].supervised["lsi"] >= threshold


def run_classification(config: ClassificationConfig =
                       ClassificationConfig()) -> ClassificationResult:
    """Sweep ε; cluster and classify in each space."""
    rngs = spawn_generators(config.seed, len(config.epsilons))
    points: list[ClassificationPoint] = []
    for rng, epsilon in zip(rngs, config.epsilons):
        epsilon = float(epsilon)
        model = build_separable_model(
            config.n_terms, config.n_topics,
            primary_mass=max(1.0 - epsilon, 1e-6),
            length_low=config.length_low,
            length_high=config.length_high)
        corpus = generate_corpus(model, config.n_documents, rng)
        labels = corpus.topic_labels()
        matrix = corpus.term_document_matrix()

        clustering = {}
        for space in CLUSTER_SPACES:
            predicted = cluster_documents(matrix, config.n_topics,
                                          space=space, seed=rng)
            clustering[space] = clustering_accuracy(predicted, labels)

        train, test = corpus.split(config.train_fraction, seed=rng)
        train_matrix = train.term_document_matrix()
        test_matrix = test.term_document_matrix()
        supervised = {}
        for space in ("raw", "lsi"):
            classifier = NearestCentroidClassifier(
                space=space,
                rank=config.n_topics if space == "lsi" else None)
            classifier.fit(train_matrix, train.topic_labels(), seed=rng)
            supervised[space] = classifier.score(test_matrix,
                                                 test.topic_labels())
        points.append(ClassificationPoint(
            epsilon=epsilon, clustering=clustering,
            supervised=supervised))

    cluster_table = Table(
        title=(f"X6a: unsupervised clustering accuracy "
               f"(k={config.n_topics})"),
        headers=["epsilon"] + [f"{s} space" for s in CLUSTER_SPACES])
    for point in points:
        cluster_table.add_row(
            [point.epsilon] + [point.clustering[s]
                               for s in CLUSTER_SPACES])

    supervised_table = Table(
        title=(f"X6b: held-out nearest-centroid accuracy "
               f"({1 - config.train_fraction:.0%} held out)"),
        headers=["epsilon", "raw space", "LSI space"])
    for point in points:
        supervised_table.add_row([point.epsilon,
                                  point.supervised["raw"],
                                  point.supervised["lsi"]])

    return ClassificationResult(config=config, points=points,
                                tables=[cluster_table,
                                        supervised_table])
