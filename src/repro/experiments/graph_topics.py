"""Experiment E7: Theorem 6 — spectral discovery of high-conductance
subgraphs.

Sweeps the cross-block weight fraction ε on planted-partition graphs and
reports recovery accuracy of rank-``k`` spectral analysis, the Theorem 6
premises measured on the ground-truth partition, and the spectral
eigengap that certifies the block structure.  A second series applies
the same machinery to a *document similarity* graph derived from a
model-generated corpus (the paper's "could be derived from, or in fact
coincide with, A·Aᵀ" construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.spectral_graph import (
    Theorem6Premises,
    TopicDiscovery,
    discover_topics,
    theorem6_premises,
)
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.graphs.random_graphs import (
    document_similarity_graph,
    planted_partition_graph,
)
from repro.utils.rng import spawn_generators
from repro.utils.tables import Table

__all__ = [
    "GraphSweepPoint",
    "GraphTopicsConfig",
    "GraphTopicsResult",
    "run_graph_topics",
]


@dataclass(frozen=True)
class GraphTopicsConfig:
    """Parameters of E7."""

    n_blocks: int = 5
    block_size: int = 40
    inter_fractions: tuple = (0.01, 0.05, 0.1, 0.2, 0.4)
    corpus_n_terms: int = 400
    corpus_n_documents: int = 150
    seed: int = 53


@dataclass(frozen=True)
class GraphSweepPoint:
    """One planted-partition sweep point."""

    inter_fraction: float
    accuracy: float
    eigengap: float
    premises: Theorem6Premises


@dataclass(frozen=True)
class GraphTopicsResult:
    """Planted sweep plus the corpus-derived similarity graph check."""

    config: GraphTopicsConfig
    sweep: list[GraphSweepPoint]
    corpus_graph_accuracy: float
    corpus_graph_discovery: TopicDiscovery
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """Sweep table plus the corpus-graph footer."""
        body = "\n\n".join(t.render() for t in self.tables)
        footer = (f"\nDocument-similarity graph (A^T A weights): "
                  f"accuracy={self.corpus_graph_accuracy:.3f}, "
                  f"eigengap={self.corpus_graph_discovery.eigengap:.3f}")
        return body + footer

    def recovery_at_small_epsilon(self, *, epsilon_cap: float = 0.06,
                                  min_accuracy: float = 0.95) -> bool:
        """Theorem 6 shape: near-perfect recovery when ε is small."""
        small = [p for p in self.sweep if p.inter_fraction <= epsilon_cap]
        return bool(small) and all(p.accuracy >= min_accuracy
                                   for p in small)


def run_graph_topics(config: GraphTopicsConfig = GraphTopicsConfig()
                     ) -> GraphTopicsResult:
    """Sweep ε on planted partitions, then check the A·Aᵀ-derived graph."""
    rngs = spawn_generators(config.seed, len(config.inter_fractions) + 1)
    sweep: list[GraphSweepPoint] = []
    for rng, fraction in zip(rngs, config.inter_fractions):
        graph, labels = planted_partition_graph(
            [config.block_size] * config.n_blocks,
            inter_fraction=float(fraction), seed=rng)
        discovery = discover_topics(graph, config.n_blocks, seed=rng)
        sweep.append(GraphSweepPoint(
            inter_fraction=float(fraction),
            accuracy=discovery.accuracy_against(labels),
            eigengap=discovery.eigengap,
            premises=theorem6_premises(graph, labels)))

    # The §6 similarity-graph construction on a real generated corpus.
    corpus_rng = rngs[-1]
    model = build_separable_model(config.corpus_n_terms, config.n_blocks)
    corpus = generate_corpus(model, config.corpus_n_documents,
                             seed=corpus_rng)
    matrix = corpus.term_document_matrix()
    similarity = document_similarity_graph(matrix)
    discovery = discover_topics(similarity, config.n_blocks,
                                seed=corpus_rng)
    corpus_accuracy = discovery.accuracy_against(corpus.topic_labels())

    table = Table(
        title=(f"Theorem 6: planted partition recovery "
               f"({config.n_blocks} blocks x {config.block_size})"),
        headers=["epsilon", "accuracy", "eigengap",
                 "min block conductance", "max cross fraction"])
    for point in sweep:
        table.add_row([
            point.inter_fraction, point.accuracy, point.eigengap,
            float(point.premises.block_conductances.min()),
            point.premises.max_cross_fraction])
    return GraphTopicsResult(
        config=config, sweep=sweep,
        corpus_graph_accuracy=corpus_accuracy,
        corpus_graph_discovery=discovery, tables=[table])
