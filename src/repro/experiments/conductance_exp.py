"""Experiment X4: the spectral engine inside the Theorem 2 proof.

The proof shows each topic block's Gram matrix ``BᵢᵀBᵢ`` is "essentially
the adjacency matrix of a random bipartite multigraph", whose
conductance is ``Ω(t/|Tᵢ|)``, so the second eigenvalue is dominated by
the first as τ → 0 and the block count grows.  This experiment measures
the pieces directly:

- the eigenvalue ratio ``λ₂/λ₁`` of block Gram matrices as the number
  of documents grows (should fall);
- sweep-cut conductance of the Gram graph against the ``t/|Tᵢ|`` scale
  (should track proportionally);
- the global consequence: the k-th/(k+1)-th singular-value gap of the
  full corpus matrix (what Lemma 1 needs) as the corpus grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.graphs.conductance import sweep_cut_conductance
from repro.graphs.graph import WeightedGraph
from repro.graphs.random_graphs import random_bipartite_multigraph_gram
from repro.theory.bounds import conductance_lower_bound
from repro.utils.rng import spawn_generators
from repro.utils.tables import Table

__all__ = [
    "BlockPoint",
    "ConductanceConfig",
    "ConductanceResult",
    "GapPoint",
    "run_conductance_experiment",
]


@dataclass(frozen=True)
class ConductanceConfig:
    """Parameters of X4."""

    n_topic_terms: int = 60
    document_length: int = 80
    block_sizes: tuple = (10, 20, 40, 80)
    corpus_n_terms: int = 400
    corpus_n_topics: int = 8
    corpus_sizes: tuple = (80, 160, 320)
    seed: int = 139


@dataclass(frozen=True)
class BlockPoint:
    """One block-size measurement.

    Attributes:
        n_documents: documents in the block (the ``t``).
        eigenvalue_ratio: ``λ₂/λ₁`` of the block Gram matrix.
        conductance: sweep-cut conductance of the Gram graph.
        predicted_scale: the ``t/|Tᵢ|`` proportionality scale.
    """

    n_documents: int
    eigenvalue_ratio: float
    conductance: float
    predicted_scale: float


@dataclass(frozen=True)
class GapPoint:
    """Corpus-level singular gap at one corpus size."""

    n_documents: int
    gap_ratio: float     # (sigma_k - sigma_{k+1}) / sigma_1


@dataclass(frozen=True)
class ConductanceResult:
    """Block sweep plus corpus-gap sweep."""

    config: ConductanceConfig
    block_points: list[BlockPoint]
    gap_points: list[GapPoint]
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """Both tables."""
        return "\n\n".join(t.render() for t in self.tables)

    def eigenvalue_ratio_falls(self) -> bool:
        """λ₂/λ₁ falls as blocks grow (the Theorem 2 mechanism)."""
        ratios = [p.eigenvalue_ratio for p in self.block_points]
        return ratios[-1] < ratios[0]

    def conductance_tracks_scale(self) -> bool:
        """Conductance grows with the predicted t/|T| scale."""
        values = [p.conductance for p in self.block_points]
        return values[-1] > values[0]

    def corpus_gap_positive(self) -> bool:
        """The k/(k+1) singular gap Lemma 1 needs is present."""
        return all(p.gap_ratio > 0.05 for p in self.gap_points)


def run_conductance_experiment(
        config: ConductanceConfig = ConductanceConfig()
) -> ConductanceResult:
    """Measure the spectral quantities behind Theorem 2."""
    rngs = spawn_generators(
        config.seed, len(config.block_sizes) + len(config.corpus_sizes))
    rng_iter = iter(rngs)

    block_points: list[BlockPoint] = []
    for t in config.block_sizes:
        gram = random_bipartite_multigraph_gram(
            int(t), config.n_topic_terms, config.document_length,
            seed=next(rng_iter))
        eigenvalues = np.sort(np.linalg.eigvalsh(gram))[::-1]
        ratio = float(eigenvalues[1] / eigenvalues[0]) \
            if eigenvalues[0] > 0 else 0.0
        adjacency = gram.copy()
        np.fill_diagonal(adjacency, 0.0)
        conductance, _ = sweep_cut_conductance(
            WeightedGraph(adjacency), denominator="volume")
        block_points.append(BlockPoint(
            n_documents=int(t), eigenvalue_ratio=ratio,
            conductance=float(conductance),
            predicted_scale=conductance_lower_bound(
                int(t), config.n_topic_terms)))

    gap_points: list[GapPoint] = []
    model = build_separable_model(config.corpus_n_terms,
                                  config.corpus_n_topics)
    for m in config.corpus_sizes:
        corpus = generate_corpus(model, int(m), seed=next(rng_iter))
        dense = corpus.term_document_matrix().to_dense()
        sigma = np.linalg.svd(dense, compute_uv=False)
        k = config.corpus_n_topics
        gap_points.append(GapPoint(
            n_documents=int(m),
            gap_ratio=float((sigma[k - 1] - sigma[k]) / sigma[0])))

    block_table = Table(
        title=(f"X4a: topic-block Gram spectra "
               f"(|T|={config.n_topic_terms}, "
               f"len={config.document_length})"),
        headers=["t (docs)", "lambda2/lambda1", "conductance",
                 "t/|T| scale"])
    for point in block_points:
        block_table.add_row([point.n_documents, point.eigenvalue_ratio,
                             point.conductance, point.predicted_scale])

    gap_table = Table(
        title=(f"X4b: corpus singular gap "
               f"(k={config.corpus_n_topics})"),
        headers=["m (docs)", "(sigma_k - sigma_k+1)/sigma_1"])
    for point in gap_points:
        gap_table.add_row([point.n_documents, point.gap_ratio])

    return ConductanceResult(config=config, block_points=block_points,
                             gap_points=gap_points,
                             tables=[block_table, gap_table])
