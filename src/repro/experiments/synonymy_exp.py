"""Experiment E6: the §4 synonymy argument, measured.

Injects synonym pairs (identical co-occurrence by construction) into a
model-generated corpus and verifies the paper's chain of claims:

1. the pair's difference direction has a tiny Rayleigh quotient against
   ``A·Aᵀ`` relative to the top eigenvalue;
2. the rank-``k`` LSI space is nearly orthogonal to that direction
   ("LSI projects out the semantic difference between synonyms");
3. consequently the two terms' LSI representations nearly coincide,
   while control pairs (terms from different topics) stay apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.synonymy import (
    DifferenceDirectionReport,
    SynonymCollapseReport,
    difference_direction_analysis,
    synonym_collapse,
)
from repro.corpus.sampler import generate_corpus
from repro.corpus.separable import build_separable_model
from repro.corpus.synonyms import split_term_into_synonyms
from repro.utils.rng import as_generator
from repro.utils.tables import Table

__all__ = [
    "SynonymPairOutcome",
    "SynonymyConfig",
    "SynonymyResult",
    "run_synonymy",
]


@dataclass(frozen=True)
class SynonymyConfig:
    """Parameters of E6."""

    n_terms: int = 500
    n_topics: int = 8
    n_documents: int = 300
    primary_mass: float = 0.95
    n_synonym_pairs: int = 4
    seed: int = 41


@dataclass(frozen=True)
class SynonymPairOutcome:
    """Measurements for one injected pair (plus its control)."""

    term_a: int
    term_b: int
    direction: DifferenceDirectionReport
    collapse: SynonymCollapseReport
    control_lsi_cosine: float


@dataclass(frozen=True)
class SynonymyResult:
    """All injected-pair outcomes."""

    config: SynonymyConfig
    outcomes: list[SynonymPairOutcome]
    tables: list = field(default_factory=list)

    def render(self) -> str:
        """One row per pair: spectrum position, collapse, control."""
        return "\n\n".join(t.render() for t in self.tables)

    def all_pairs_collapse(self, *, min_lsi_cosine: float = 0.9) -> bool:
        """Whether every synonym pair ends up nearly parallel in LSI."""
        return all(outcome.collapse.lsi_cosine >= min_lsi_cosine
                   for outcome in self.outcomes)

    def controls_stay_apart(self, *, max_control_cosine: float = 0.5
                            ) -> bool:
        """Whether cross-topic control pairs stay non-parallel."""
        return all(outcome.control_lsi_cosine <= max_control_cosine
                   for outcome in self.outcomes)


def run_synonymy(config: SynonymyConfig = SynonymyConfig()
                 ) -> SynonymyResult:
    """Inject synonym pairs, measure the paper's three claims."""
    rng = as_generator(config.seed)
    model = build_separable_model(
        config.n_terms, config.n_topics, primary_mass=config.primary_mass)
    corpus = generate_corpus(model, config.n_documents, rng)
    matrix = corpus.term_document_matrix()

    primary_size = config.n_terms // config.n_topics
    outcomes: list[SynonymPairOutcome] = []
    for pair_index in range(config.n_synonym_pairs):
        # Split a primary term of topic `pair_index`; the synonym becomes
        # the new last row.
        topic = pair_index % config.n_topics
        source_term = topic * primary_size + int(
            rng.integers(primary_size))
        matrix = split_term_into_synonyms(matrix, source_term, seed=rng)
        synonym_term = matrix.shape[0] - 1

        direction = difference_direction_analysis(
            matrix, source_term, synonym_term, rank=config.n_topics)
        collapse = synonym_collapse(
            matrix, source_term, synonym_term, rank=config.n_topics)

        # Control: the same source term against a primary term of a
        # *different* topic.
        other_topic = (topic + 1) % config.n_topics
        control_term = other_topic * primary_size + int(
            rng.integers(primary_size))
        control = synonym_collapse(matrix, source_term, control_term,
                                   rank=config.n_topics)
        outcomes.append(SynonymPairOutcome(
            term_a=source_term, term_b=synonym_term,
            direction=direction, collapse=collapse,
            control_lsi_cosine=control.lsi_cosine))

    table = Table(
        title=(f"Synonym pairs under rank-{config.n_topics} LSI "
               "(difference direction vs spectrum; term cosines)"),
        headers=["pair", "rel. Rayleigh", "LSI alignment",
                 "raw cos", "LSI cos", "control LSI cos"])
    for i, outcome in enumerate(outcomes):
        table.add_row([
            f"{outcome.term_a}/{outcome.term_b}",
            outcome.direction.relative_energy,
            outcome.direction.alignment_with_lsi_space,
            outcome.collapse.raw_cosine,
            outcome.collapse.lsi_cosine,
            outcome.control_lsi_cosine])
    return SynonymyResult(config=config, outcomes=outcomes, tables=[table])
