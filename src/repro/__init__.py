"""repro — a reproduction of *Latent Semantic Indexing: A Probabilistic
Analysis* (Papadimitriou, Raghavan, Tamaki, Vempala; PODS 1998 /
JCSS 2000).

The package implements the paper end to end:

- the probabilistic corpus model of §3 (:mod:`repro.corpus`),
- rank-``k`` LSI with its δ-skewness analysis of §4 (:mod:`repro.core`),
- the random-projection speedup and Theorem 5 of §5
  (:mod:`repro.core.two_step`),
- the graph corpus model and Theorem 6 plus collaborative filtering of
  §6 (:mod:`repro.graphs`, :mod:`repro.core.spectral_graph`,
  :mod:`repro.core.cf`),
- every substrate from scratch: sparse matrices, truncated-SVD engines,
  perturbation theory (:mod:`repro.linalg`), an IR stack
  (:mod:`repro.ir`), and the paper's formulas as executable checks
  (:mod:`repro.theory`),
- a serving layer (:mod:`repro.serving`): persistent index bundles,
  batched query execution with result caching, and incremental fold-in
  with drift tracking behind the shared
  :class:`~repro.ir.retriever.Retriever` protocol.

Quick start::

    from repro import paper_experiment_model, generate_corpus, LSIModel

    model = paper_experiment_model()          # the paper's §4 corpus
    corpus = generate_corpus(model, 1000, seed=0)
    lsi = LSIModel.fit(corpus.term_document_matrix(), rank=20)
    ranking = lsi.rank_documents(some_query_vector)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced artifact.
"""

from repro.core.cf import (
    CosineKNNRecommender,
    ItemKNNRecommender,
    LatentPreferenceModel,
    PopularityRecommender,
    SpectralRecommender,
    evaluate_recommender,
)
from repro.core.fkv import fkv_low_rank_approximation, sampled_lsi
from repro.core.lsi import LSIModel
from repro.core.random_projection import (
    GaussianProjector,
    OrthonormalProjector,
    SignProjector,
    johnson_lindenstrauss_dimension,
    make_projector,
)
from repro.core.skewness import angle_statistics, skewness
from repro.core.spectral_graph import discover_topics
from repro.core.synonymy import (
    difference_direction_analysis,
    synonym_collapse,
)
from repro.core.two_step import TwoStepLSI, lsi_cost_model, theorem5_bound
from repro.corpus import (
    Corpus,
    CorpusModel,
    Document,
    MixtureTopicFactors,
    PureTopicFactors,
    Style,
    Topic,
    Vocabulary,
    build_separable_model,
    generate_corpus,
    generate_document,
    paper_experiment_model,
)
from repro.errors import (
    ConvergenceError,
    NotFittedError,
    RankError,
    ReproError,
    ValidationError,
)
from repro.graphs import WeightedGraph, planted_partition_graph
from repro.ir import Retriever, VectorSpaceModel, generate_topic_queries
from repro.linalg import CSRMatrix, SVDResult, truncated_svd
from repro.serving import ServedIndex

__version__ = "1.0.0"

__all__ = [
    "CSRMatrix",
    "ConvergenceError",
    "Corpus",
    "CorpusModel",
    "CosineKNNRecommender",
    "Document",
    "GaussianProjector",
    "ItemKNNRecommender",
    "LSIModel",
    "LatentPreferenceModel",
    "MixtureTopicFactors",
    "NotFittedError",
    "OrthonormalProjector",
    "PopularityRecommender",
    "PureTopicFactors",
    "RankError",
    "ReproError",
    "Retriever",
    "SVDResult",
    "ServedIndex",
    "SignProjector",
    "SpectralRecommender",
    "Style",
    "Topic",
    "TwoStepLSI",
    "ValidationError",
    "VectorSpaceModel",
    "Vocabulary",
    "WeightedGraph",
    "angle_statistics",
    "build_separable_model",
    "difference_direction_analysis",
    "discover_topics",
    "evaluate_recommender",
    "fkv_low_rank_approximation",
    "generate_corpus",
    "generate_document",
    "generate_topic_queries",
    "johnson_lindenstrauss_dimension",
    "lsi_cost_model",
    "make_projector",
    "paper_experiment_model",
    "planted_partition_graph",
    "sampled_lsi",
    "skewness",
    "synonym_collapse",
    "theorem5_bound",
    "truncated_svd",
    "__version__",
]
