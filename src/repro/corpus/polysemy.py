"""Polysemy construction: one surface term with several meanings.

The paper's second classical IR problem ("retrieving documents about the
Internet when querying on 'surfing'"), left open in its conclusion:
"does LSI address polysemy?".  The reproduction models a polysemous term
by the mirror image of the synonym construction: *merge* one primary
term from each of two topics into a single shared term, so the same
surface form occurs in both topics' documents with unrelated company.

Both levels are provided:

- :func:`merge_topic_terms` — model-level: a new corpus model over
  ``n − 1`` terms in which both topics emit the shared term;
- :func:`merge_matrix_terms` — corpus-level: add the two rows of an
  existing term–document matrix and drop one of them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.corpus.model import CorpusModel
from repro.corpus.topic import Topic
from repro.linalg.sparse import CSRMatrix

__all__ = ["merge_matrix_terms", "merge_topic_terms"]


def merge_topic_terms(model: CorpusModel, term_a: int,
                      term_b: int) -> CorpusModel:
    """Merge two terms of a model into one polysemous term.

    Term ``term_b``'s probability is moved onto ``term_a`` in every
    topic, and ``term_b`` is removed from the universe (all later term
    ids shift down by one).  Topics that had ``term_b`` in their primary
    set get ``term_a`` instead.

    Styles are not supported (the analysis here is style-free).
    """
    term_a, term_b = int(term_a), int(term_b)
    n = model.universe_size
    for term in (term_a, term_b):
        if not 0 <= term < n:
            raise ValidationError(
                f"term {term} out of range for universe of size {n}")
    if term_a == term_b:
        raise ValidationError("term_a and term_b must differ")
    if model.styles:
        raise ValidationError(
            "merge_topic_terms supports style-free models only")

    keep = [t for t in range(n) if t != term_b]
    old_to_new = {old: new for new, old in enumerate(keep)}

    new_topics = []
    for topic in model.topics:
        probs = topic.probabilities.copy()
        probs[term_a] += probs[term_b]
        new_probs = probs[keep]
        primary = {old_to_new[t] for t in topic.primary_terms
                   if t != term_b}
        if term_b in topic.primary_terms:
            primary.add(old_to_new[term_a])
        new_topics.append(Topic(new_probs, name=topic.name,
                                primary_terms=primary))
    return CorpusModel(n - 1, new_topics, model.factors,
                       name=f"{model.name}+polyseme({term_a},{term_b})")


def merge_matrix_terms(matrix: CSRMatrix, term_a: int,
                       term_b: int) -> CSRMatrix:
    """Merge two rows of a term–document matrix into one.

    Row ``term_a`` of the result carries the sum of the two original
    rows; row ``term_b`` is removed (later rows shift up).
    """
    term_a, term_b = int(term_a), int(term_b)
    n, m = matrix.shape
    for term in (term_a, term_b):
        if not 0 <= term < n:
            raise ValidationError(
                f"term {term} out of range for {n} rows")
    if term_a == term_b:
        raise ValidationError("term_a and term_b must differ")

    row_of_entry = np.repeat(np.arange(n), np.diff(matrix.indptr))
    new_rows = row_of_entry.copy()
    new_rows[new_rows == term_b] = term_a
    # Shift ids above term_b down by one.
    new_rows = np.where(new_rows > term_b, new_rows - 1, new_rows)
    return CSRMatrix.from_triplets(n - 1, m, new_rows, matrix.indices,
                                   matrix.data)
