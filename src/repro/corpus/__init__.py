"""The paper's probabilistic corpus model (§3) and corpus machinery.

The model, exactly as Definitions 1–4 state it:

- the **universe** ``U`` is a set of ``n`` terms (integer ids, optionally
  named through a :class:`~repro.corpus.vocabulary.Vocabulary`);
- a **topic** is a probability distribution on ``U``
  (:class:`~repro.corpus.topic.Topic`);
- a **style** is an ``n × n`` row-stochastic matrix
  (:class:`~repro.corpus.style.Style`);
- a **corpus model** ``C = (U, T, S, D)`` is a distribution over convex
  combinations of topics, convex combinations of styles, and document
  lengths (:class:`~repro.corpus.model.CorpusModel` with a
  :class:`~repro.corpus.model.FactorDistribution`);
- a **document** is drawn by the paper's two-step process: sample
  ``(T̄, S̄, ℓ)`` from ``D``, then sample ``ℓ`` terms from ``T̄·S̄``
  (:mod:`repro.corpus.sampler`).

On top of the model sit the generated :class:`~repro.corpus.corpus.Corpus`
(with term–document matrix construction), term-weighting schemes, the
ε-separable model builders used in §4 (including the paper's exact
experimental configuration), and synonym-pair injection for the §4
synonymy analysis.
"""

from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.corpus.io import (
    corpus_column_blocks,
    iter_column_blocks,
    load_corpus,
    load_matrix,
    save_corpus,
    save_matrix,
)
from repro.corpus.model import (
    CorpusModel,
    DocumentFactors,
    FactorDistribution,
    MixtureTopicFactors,
    PureTopicFactors,
)
from repro.corpus.pipeline import TextPipeline
from repro.corpus.polysemy import merge_matrix_terms, merge_topic_terms
from repro.corpus.sampler import generate_corpus, generate_document
from repro.corpus.separable import (
    build_separable_model,
    build_zipfian_separable_model,
    paper_experiment_model,
)
from repro.corpus.stemmer import porter_stem
from repro.corpus.stopwords import ENGLISH_STOP_WORDS, remove_stop_words
from repro.corpus.style import Style
from repro.corpus.synonyms import split_term_into_synonyms
from repro.corpus.topic import Topic
from repro.corpus.vocabulary import Vocabulary
from repro.corpus.weighting import WEIGHTING_SCHEMES, apply_weighting

__all__ = [
    "ENGLISH_STOP_WORDS",
    "WEIGHTING_SCHEMES",
    "Corpus",
    "CorpusModel",
    "Document",
    "DocumentFactors",
    "FactorDistribution",
    "MixtureTopicFactors",
    "PureTopicFactors",
    "Style",
    "TextPipeline",
    "Topic",
    "Vocabulary",
    "apply_weighting",
    "build_separable_model",
    "build_zipfian_separable_model",
    "corpus_column_blocks",
    "generate_corpus",
    "generate_document",
    "iter_column_blocks",
    "load_corpus",
    "load_matrix",
    "merge_matrix_terms",
    "merge_topic_terms",
    "paper_experiment_model",
    "porter_stem",
    "remove_stop_words",
    "save_corpus",
    "save_matrix",
    "split_term_into_synonyms",
]
