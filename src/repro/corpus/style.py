"""Styles: row-stochastic term-rewriting matrices (Definition 3).

A style modifies the frequency of terms — the paper's "formal" style maps
"car" to "automobile" and "vehicle" often, to "car" seldom, and to
"wheels" almost never.  Mathematically a style ``S`` is an ``n × n``
stochastic matrix, and a document's term distribution is ``T̄ · S̄`` for
the sampled topic combination ``T̄`` and style combination ``S̄``.

Dense ``n × n`` matrices are fine at the library's corpus scales
(n ≤ a few thousand); the constructors below build the structured styles
the experiments use without materialising anything larger.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability_vector,
    check_stochastic_matrix,
)

__all__ = ["Style", "mix_styles"]


class Style:
    """An ``n × n`` row-stochastic term-rewriting matrix.

    Row ``i`` is the distribution a sampled occurrence of term ``i`` is
    rewritten by.
    """

    def __init__(self, matrix, *, name: str = ""):
        self.matrix = check_stochastic_matrix(matrix, "matrix")
        self.matrix.setflags(write=False)
        self.name = str(name)

    @property
    def universe_size(self) -> int:
        """Number of terms ``n``."""
        return int(self.matrix.shape[0])

    def apply(self, distribution) -> np.ndarray:
        """Transform a term distribution: returns ``distribution @ S``.

        The result is again a probability vector (stochasticity of ``S``
        guarantees it up to float drift, which is renormalised away).
        """
        dist = check_probability_vector(distribution, "distribution")
        if dist.shape[0] != self.universe_size:
            raise ValidationError(
                f"distribution has {dist.shape[0]} terms; style expects "
                f"{self.universe_size}")
        out = dist @ self.matrix
        return out / out.sum()

    def is_identity(self, *, atol: float = 1e-12) -> bool:
        """True when this style leaves every distribution unchanged."""
        return bool(np.allclose(self.matrix, np.eye(self.universe_size),
                                atol=atol))

    def __repr__(self) -> str:
        label = self.name or "unnamed"
        return f"Style({label!r}, n={self.universe_size})"

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def identity(cls, universe_size: int) -> "Style":
        """The style-free style: every term maps to itself."""
        universe_size = check_positive_int(universe_size, "universe_size")
        return cls(np.eye(universe_size), name="identity")

    @classmethod
    def synonym_preference(cls, universe_size: int, rewrites, *,
                           name: str = "synonym") -> "Style":
        """A style rewriting selected terms toward preferred synonyms.

        Args:
            universe_size: ``n``.
            rewrites: mapping ``source_term -> {target_term: probability}``.
                Unlisted residual probability stays on the source term;
                listed probabilities must sum to at most 1 per source.

        Example — a formal style that says "automobile" where the topic
        said "car" 80% of the time::

            Style.synonym_preference(n, {car: {automobile: 0.8}})
        """
        universe_size = check_positive_int(universe_size, "universe_size")
        matrix = np.eye(universe_size)
        for source, targets in rewrites.items():
            source = int(source)
            if not 0 <= source < universe_size:
                raise ValidationError(
                    f"rewrite source {source} out of range")
            moved = 0.0
            for target, probability in targets.items():
                target = int(target)
                if not 0 <= target < universe_size:
                    raise ValidationError(
                        f"rewrite target {target} out of range")
                probability = check_fraction(
                    probability, f"rewrite[{source}][{target}]")
                matrix[source, target] += probability
                moved += probability
            if moved > 1.0 + 1e-12:
                raise ValidationError(
                    f"rewrites for term {source} sum to {moved} > 1")
            matrix[source, source] -= moved
            if matrix[source, source] < -1e-12:
                raise ValidationError(
                    f"rewrites for term {source} exceed available mass")
            matrix[source, source] = max(matrix[source, source], 0.0)
        return cls(matrix, name=name)

    @classmethod
    def uniform_noise(cls, universe_size: int, noise: float, *,
                      name: str = "noise") -> "Style":
        """A style that scatters a ``noise`` fraction uniformly.

        Each occurrence keeps its term with probability ``1 − noise`` and
        is replaced by a uniformly random term with probability ``noise``
        — the simplest style that degrades separability smoothly, used by
        the robustness (Theorem 3) experiments.
        """
        universe_size = check_positive_int(universe_size, "universe_size")
        noise = check_fraction(noise, "noise")
        matrix = np.full((universe_size, universe_size),
                         noise / universe_size)
        np.fill_diagonal(matrix, matrix.diagonal() + (1.0 - noise))
        return cls(matrix, name=name)

    @classmethod
    def permutation(cls, permutation_of_terms, *,
                    name: str = "permutation") -> "Style":
        """A deterministic relabelling style (term ``i`` becomes ``π(i)``)."""
        perm = np.asarray(list(permutation_of_terms), dtype=np.int64)
        n = perm.shape[0]
        if n == 0 or np.unique(perm).size != n or perm.min() < 0 \
                or perm.max() >= n:
            raise ValidationError(
                "permutation_of_terms must be a permutation of 0..n-1")
        matrix = np.zeros((n, n))
        matrix[np.arange(n), perm] = 1.0
        return cls(matrix, name=name)


def mix_styles(styles, weights) -> Style:
    """The convex combination ``Σ vⱼ Sⱼ`` — the paper's ``S̄ ∈ S̃``."""
    styles = list(styles)
    if not styles:
        raise ValidationError("styles must be non-empty")
    weights = check_probability_vector(np.asarray(weights, dtype=np.float64),
                                       "weights")
    if weights.shape[0] != len(styles):
        raise ValidationError(
            f"{len(styles)} styles but {weights.shape[0]} weights")
    n = styles[0].universe_size
    for style in styles:
        if style.universe_size != n:
            raise ValidationError("styles live in different universes")
    combined = np.zeros((n, n))
    for weight, style in zip(weights, styles):
        if weight > 0:
            combined += weight * style.matrix
    return Style(combined, name="mixture")
