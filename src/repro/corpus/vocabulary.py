"""Term universe with optional human-readable names.

The theory only needs integer term ids, but the examples and the
plain-text layer want pronounceable words.  :class:`Vocabulary` maps both
ways; :func:`synthetic_vocabulary` deterministically generates arbitrarily
many distinct pronounceable words so examples can render generated
documents as text.
"""

from __future__ import annotations

import itertools

from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["Vocabulary", "synthetic_words"]

#: Syllable inventory for synthetic word generation (consonant + vowel).
_ONSETS = ("b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t",
           "v", "z", "ch", "sh", "th", "br", "cr", "st")
_NUCLEI = ("a", "e", "i", "o", "u", "ai", "ea", "ou")


def _syllables():
    for onset in _ONSETS:
        for nucleus in _NUCLEI:
            yield onset + nucleus


def synthetic_words(count: int) -> list[str]:
    """Deterministically generate ``count`` distinct pronounceable words.

    Words are built from 2- and 3-syllable combinations in a fixed order,
    so the same count always yields the same list (no RNG involved).
    """
    count = check_positive_int(count, "count")
    syllables = list(_syllables())
    words: list[str] = []
    for n_syllables in (2, 3, 4):
        for combo in itertools.product(syllables, repeat=n_syllables):
            words.append("".join(combo))
            if len(words) == count:
                return words
    raise ValidationError(
        f"cannot generate {count} distinct words")  # pragma: no cover


class Vocabulary:
    """A bijection between term ids ``0..n-1`` and term strings.

    Args:
        terms: the term strings, position = term id.  Duplicates are
            rejected.
    """

    def __init__(self, terms):
        self._terms = list(terms)
        if not self._terms:
            raise ValidationError("vocabulary must be non-empty")
        self._ids = {term: i for i, term in enumerate(self._terms)}
        if len(self._ids) != len(self._terms):
            seen = set()
            dup = next(t for t in self._terms
                       if t in seen or seen.add(t))
            raise ValidationError(f"duplicate term {dup!r} in vocabulary")

    @classmethod
    def synthetic(cls, size: int) -> "Vocabulary":
        """A vocabulary of ``size`` generated pronounceable words."""
        return cls(synthetic_words(size))

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term) -> bool:
        return term in self._ids

    def __iter__(self):
        return iter(self._terms)

    def term(self, term_id: int) -> str:
        """The string for a term id."""
        if not 0 <= term_id < len(self._terms):
            raise ValidationError(
                f"term id {term_id} out of range for vocabulary of size "
                f"{len(self._terms)}")
        return self._terms[term_id]

    def term_id(self, term: str) -> int:
        """The id for a term string."""
        try:
            return self._ids[term]
        except KeyError:
            raise ValidationError(f"unknown term {term!r}") from None

    def terms(self, term_ids) -> list[str]:
        """Strings for a sequence of term ids."""
        return [self.term(int(i)) for i in term_ids]

    def term_ids(self, terms) -> list[int]:
        """Ids for a sequence of term strings."""
        return [self.term_id(t) for t in terms]

    def __repr__(self) -> str:
        preview = ", ".join(self._terms[:3])
        return f"Vocabulary(size={len(self)}, [{preview}, ...])"
