"""Term-weighting schemes for term–document matrices.

The paper (§2): "The i-th coordinate of a vector represents some function
of the number of times the i-th term occurs in the document … There are
several candidates for the right function to be used here (0-1,
frequency, etc.), and the precise choice does not affect our results."

This module implements the standard candidates so the weighting ablation
(experiment A3) can verify that claim empirically:

- ``count`` — raw occurrence counts;
- ``binary`` — 0/1 presence;
- ``tf`` — counts normalised by document length (term frequency);
- ``log_tf`` — ``1 + log(count)``, the sublinear damping of classic IR;
- ``tfidf`` — log-tf times inverse document frequency;
- ``log_entropy`` — log-tf times (1 − normalised term entropy), the
  scheme the original LSI papers favoured.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.linalg.sparse import CSRMatrix

__all__ = ["WEIGHTING_SCHEMES", "apply_weighting"]


def _counts(matrix: CSRMatrix) -> CSRMatrix:
    return matrix


def _binary(matrix: CSRMatrix) -> CSRMatrix:
    return matrix.map_data(lambda data: (data > 0).astype(np.float64))


def _tf(matrix: CSRMatrix) -> CSRMatrix:
    lengths = matrix.column_sums()
    safe = np.where(lengths > 0, lengths, 1.0)
    return matrix.scale_columns(1.0 / safe)


def _log_tf(matrix: CSRMatrix) -> CSRMatrix:
    return matrix.map_data(lambda data: np.where(
        data > 0, 1.0 + np.log(np.maximum(data, 1e-300)), 0.0))


def _idf_weights(matrix: CSRMatrix) -> np.ndarray:
    m = matrix.shape[1]
    df = matrix.document_frequency()
    # Smoothed idf; terms appearing in every document get weight ~0+.
    return np.log((1.0 + m) / (1.0 + df))


def _tfidf(matrix: CSRMatrix) -> CSRMatrix:
    return _log_tf(matrix).scale_rows(_idf_weights(matrix))


def _log_entropy(matrix: CSRMatrix) -> CSRMatrix:
    m = matrix.shape[1]
    if m <= 1:
        return _log_tf(matrix)
    global_freq = matrix.row_sums()
    safe_global = np.where(global_freq > 0, global_freq, 1.0)
    # Per-entry p_ij = count_ij / global_i ; entropy H_i = -Σ p log p.
    row_of_entry = np.repeat(np.arange(matrix.shape[0]),
                             np.diff(matrix.indptr))
    p = matrix.data / safe_global[row_of_entry]
    contributions = np.where(p > 0, p * np.log(np.maximum(p, 1e-300)), 0.0)
    entropy = np.zeros(matrix.shape[0])
    np.add.at(entropy, row_of_entry, contributions)
    # Weight 1 + H_i / log m ∈ [0, 1]; rare focused terms score high.
    weights = 1.0 + entropy / np.log(m)
    np.clip(weights, 0.0, 1.0, out=weights)
    return _log_tf(matrix).scale_rows(weights)


#: Scheme name → transformation on a raw count matrix.
WEIGHTING_SCHEMES = {
    "count": _counts,
    "binary": _binary,
    "tf": _tf,
    "log_tf": _log_tf,
    "tfidf": _tfidf,
    "log_entropy": _log_entropy,
}


def apply_weighting(count_matrix: CSRMatrix, scheme: str) -> CSRMatrix:
    """Apply a named weighting scheme to a raw count matrix.

    Args:
        count_matrix: the ``n × m`` raw term-count matrix.
        scheme: one of :data:`WEIGHTING_SCHEMES`.

    Returns:
        The reweighted matrix (the input is never mutated).
    """
    if not isinstance(count_matrix, CSRMatrix):
        raise ValidationError("count_matrix must be a CSRMatrix")
    try:
        transform = WEIGHTING_SCHEMES[scheme]
    except KeyError:
        raise ValidationError(
            f"unknown weighting scheme {scheme!r}; expected one of "
            f"{sorted(WEIGHTING_SCHEMES)}") from None
    return transform(count_matrix)
