"""Persistence: save and load corpora and term–document matrices.

Generated corpora are expensive to resample at paper scale, and the
benchmark harness benefits from fixed on-disk inputs.  Two formats:

- :func:`save_matrix` / :func:`load_matrix` — a CSR matrix in a single
  ``.npz`` file (numpy's compressed archive);
- :func:`save_corpus` / :func:`load_corpus` — a corpus (documents,
  labels, lengths) as ``.npz`` arrays; the generating model is *not*
  persisted (models are cheap to rebuild from their parameters, and
  factor distributions may hold arbitrary code).

On top of the whole-matrix loads sits the streaming ingestion path for
:mod:`repro.linalg.incremental`: :func:`iter_column_blocks` (re-exported
from the linalg layer) chunks an already-loaded matrix into fixed-width
column blocks with a final ragged block, and :func:`corpus_column_blocks`
builds those blocks *directly from the documents* — the full
term–document matrix is never materialised, which is what lets
``fit_streamed`` index corpora larger than memory.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ValidationError
from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.corpus.model import DocumentFactors
from repro.corpus.weighting import apply_weighting
from repro.linalg.incremental import iter_column_blocks
from repro.linalg.sparse import CSRMatrix
from repro.utils.validation import check_positive_int

__all__ = [
    "COLUMN_LOCAL_WEIGHTINGS",
    "corpus_column_blocks",
    "iter_column_blocks",
    "load_corpus",
    "load_matrix",
    "save_corpus",
    "save_matrix",
]

#: Weighting schemes computable one column at a time — the only ones a
#: streaming ingest can apply exactly (``tfidf``/``log_entropy`` need
#: global document frequencies, i.e. a full pass over the corpus).
COLUMN_LOCAL_WEIGHTINGS = ("count", "binary", "tf", "log_tf")

#: Format tag written into every archive, checked on load.
_MATRIX_FORMAT = "repro-csr-v1"
_CORPUS_FORMAT = "repro-corpus-v1"


def save_matrix(matrix: CSRMatrix, path) -> Path:
    """Write a CSR matrix to ``path`` (``.npz`` appended if missing)."""
    if not isinstance(matrix, CSRMatrix):
        raise ValidationError("save_matrix expects a CSRMatrix")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(
        path,
        format=np.asarray(_MATRIX_FORMAT),
        shape=np.asarray(matrix.shape, dtype=np.int64),
        indptr=matrix.indptr, indices=matrix.indices, data=matrix.data)
    return path


def load_matrix(path) -> CSRMatrix:
    """Read a CSR matrix written by :func:`save_matrix`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if str(archive["format"]) != _MATRIX_FORMAT:
            raise ValidationError(
                f"{path} is not a {_MATRIX_FORMAT} archive")
        shape = tuple(int(x) for x in archive["shape"])
        return CSRMatrix(shape, archive["indptr"], archive["indices"],
                         archive["data"])


def corpus_column_blocks(corpus: Corpus, block_size: int, *,
                         weighting: str = "count"):
    """Stream a corpus as fixed-width term–document column blocks.

    The streaming twin of
    :meth:`~repro.corpus.corpus.Corpus.term_document_matrix`: each
    yielded block is the CSR sub-matrix of ``block_size`` consecutive
    documents (the last block ragged), built straight from the
    documents' term counts — the full ``n × m`` matrix never exists.
    Feeding the blocks to
    :func:`~repro.linalg.incremental.block_updates` (or
    ``LSIModel.fit_streamed``) indexes the corpus in
    O(block + factors) memory.

    Args:
        corpus: the :class:`~repro.corpus.corpus.Corpus` to stream.
        block_size: documents per block (positive).
        weighting: a column-local scheme from
            :data:`COLUMN_LOCAL_WEIGHTINGS`; the global schemes
            (``tfidf``, ``log_entropy``) need document frequencies
            from a full pass and are rejected.

    Yields:
        :class:`~repro.linalg.sparse.CSRMatrix` blocks of shape
        ``(universe_size, ≤ block_size)``, in document order.

    Raises:
        ValidationError: on a non-positive ``block_size``, an unknown
            weighting, or a global (non-column-local) one.
    """
    if not isinstance(corpus, Corpus):
        raise ValidationError("corpus_column_blocks expects a Corpus")
    block_size = check_positive_int(block_size, "block_size")
    if weighting not in COLUMN_LOCAL_WEIGHTINGS:
        raise ValidationError(
            f"weighting {weighting!r} is not column-local; streaming "
            f"ingestion supports {COLUMN_LOCAL_WEIGHTINGS}")
    documents = list(corpus)
    for start in range(0, len(documents), block_size):
        chunk = documents[start:start + block_size]
        block = CSRMatrix.from_columns(
            corpus.universe_size,
            [doc.term_counts for doc in chunk])
        yield apply_weighting(block, weighting)


def save_corpus(corpus: Corpus, path) -> Path:
    """Write a corpus (documents + pure-topic labels) to ``.npz``.

    Stores each document's sparse counts as flat parallel arrays plus a
    per-document offset table.  Topic labels are stored when every
    document has one (pure corpora); factor details beyond the label are
    not persisted.
    """
    if not isinstance(corpus, Corpus):
        raise ValidationError("save_corpus expects a Corpus")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")

    terms, counts, offsets = [], [], [0]
    for document in corpus:
        for term, count in sorted(document.term_counts.items()):
            terms.append(term)
            counts.append(count)
        offsets.append(len(terms))
    labels = corpus.topic_labels() if corpus.has_labels() else \
        np.full(len(corpus), -1, dtype=np.int64)

    np.savez_compressed(
        path,
        format=np.asarray(_CORPUS_FORMAT),
        universe_size=np.asarray(corpus.universe_size, dtype=np.int64),
        terms=np.asarray(terms, dtype=np.int64),
        counts=np.asarray(counts, dtype=np.int64),
        offsets=np.asarray(offsets, dtype=np.int64),
        labels=labels)
    return path


def load_corpus(path) -> Corpus:
    """Read a corpus written by :func:`save_corpus`.

    Documents regain their topic labels (as single-topic factors) when
    labels were stored.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if str(archive["format"]) != _CORPUS_FORMAT:
            raise ValidationError(
                f"{path} is not a {_CORPUS_FORMAT} archive")
        universe_size = int(archive["universe_size"])
        terms = archive["terms"]
        counts = archive["counts"]
        offsets = archive["offsets"]
        labels = archive["labels"]

    n_topics = int(labels.max()) + 1 if labels.size and \
        labels.max() >= 0 else 0
    documents = []
    for i in range(offsets.shape[0] - 1):
        start, stop = int(offsets[i]), int(offsets[i + 1])
        term_counts = {int(t): int(c)
                       for t, c in zip(terms[start:stop],
                                       counts[start:stop])}
        factors = None
        if labels[i] >= 0:
            weights = np.zeros(n_topics)
            weights[int(labels[i])] = 1.0
            length = int(sum(term_counts.values()))
            factors = DocumentFactors(topic_weights=weights,
                                      style_weights=np.zeros(0),
                                      length=length)
        documents.append(Document(term_counts=term_counts,
                                  universe_size=universe_size,
                                  factors=factors, doc_id=i))
    return Corpus(documents)
