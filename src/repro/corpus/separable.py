"""Builders for pure, ε-separable corpus models (§4).

A corpus model is *ε-separable* when each topic has a primary set of
terms, the primary sets are mutually disjoint, and each topic places at
least ``1 − ε`` of its probability on its own primary set.  The paper's
experimental configuration (§4 "Experiments") is::

    2000 terms, 20 topics, disjoint primary sets of 100 terms each,
    0.95 of each topic's mass uniform on its primary set and 0.05
    uniform over all 2000 terms  →  a 0.05-separable model;
    1000 documents of 50–100 terms.

:func:`paper_experiment_model` reproduces exactly that;
:func:`build_separable_model` generalises every knob.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.corpus.model import CorpusModel, PureTopicFactors
from repro.corpus.topic import Topic
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
)

__all__ = [
    "PAPER_LENGTH_HIGH",
    "PAPER_LENGTH_LOW",
    "PAPER_N_DOCUMENTS",
    "PAPER_N_TERMS",
    "PAPER_N_TOPICS",
    "PAPER_PRIMARY_MASS",
    "PAPER_PRIMARY_SIZE",
    "build_separable_model",
    "build_zipfian_separable_model",
    "paper_experiment_model",
]


def build_separable_model(n_terms, n_topics, *, primary_size=None,
                          primary_mass: float = 0.95,
                          length_low: int = 50, length_high: int = 100,
                          name: str = "") -> CorpusModel:
    """A pure corpus model with disjoint primary sets.

    Args:
        n_terms: universe size ``n``.
        n_topics: number of topics ``k``.
        primary_size: terms per primary set; defaults to
            ``n_terms // n_topics`` (maximal disjoint packing).
        primary_mass: probability each topic puts on its primary set
            (the model is ``(1 − primary_mass)``-separable, up to the
            small uniform leak back onto the primary set itself).
        length_low / length_high: document length range for ``D``.
        name: optional model label.

    Returns:
        A pure, style-free :class:`~repro.corpus.model.CorpusModel` whose
        topic ``i`` owns primary terms
        ``[i * primary_size, (i+1) * primary_size)``.
    """
    n_terms = check_positive_int(n_terms, "n_terms")
    n_topics = check_positive_int(n_topics, "n_topics")
    if primary_size is None:
        primary_size = n_terms // n_topics
    primary_size = check_positive_int(primary_size, "primary_size")
    check_fraction(primary_mass, "primary_mass", inclusive_low=False)
    if n_topics * primary_size > n_terms:
        raise ValidationError(
            f"{n_topics} disjoint primary sets of {primary_size} terms "
            f"need {n_topics * primary_size} terms; universe has {n_terms}")

    topics = []
    for i in range(n_topics):
        primary = range(i * primary_size, (i + 1) * primary_size)
        topics.append(Topic.primary_set(
            n_terms, primary, primary_mass=primary_mass,
            name=f"topic-{i}"))
    factors = PureTopicFactors(length_low=length_low,
                               length_high=length_high)
    return CorpusModel(n_terms, topics, factors,
                       name=name or
                       f"separable(n={n_terms}, k={n_topics}, "
                       f"mass={primary_mass})")


def build_zipfian_separable_model(n_terms, n_topics, *,
                                  primary_size=None,
                                  primary_mass: float = 0.95,
                                  exponent: float = 1.0,
                                  length_low: int = 50,
                                  length_high: int = 100,
                                  seed=None,
                                  name: str = "") -> CorpusModel:
    """An ε-separable model with Zipf-distributed primary terms.

    Same disjoint-primary-set structure as :func:`build_separable_model`,
    but within each topic's primary set the probabilities follow
    ``1/rank^exponent`` (in a per-topic random rank order) instead of
    being uniform — the realistic term-frequency shape.  The residual
    ``1 − primary_mass`` stays uniform over all terms, preserving
    ε-separability; the per-term cap τ is however much larger (the rank-1
    term carries ``primary_mass/H``), which is exactly the knob the
    Theorem 2 hypothesis (small τ) cares about — see ablation A4.
    """
    import numpy as np

    from repro.corpus.topic import Topic
    from repro.utils.rng import as_generator

    n_terms = check_positive_int(n_terms, "n_terms")
    n_topics = check_positive_int(n_topics, "n_topics")
    if primary_size is None:
        primary_size = n_terms // n_topics
    primary_size = check_positive_int(primary_size, "primary_size")
    check_fraction(primary_mass, "primary_mass", inclusive_low=False)
    if exponent <= 0:
        raise ValidationError(
            f"exponent must be positive, got {exponent}")
    if n_topics * primary_size > n_terms:
        raise ValidationError(
            f"{n_topics} disjoint primary sets of {primary_size} terms "
            f"need {n_topics * primary_size} terms; universe has "
            f"{n_terms}")
    rng = as_generator(seed)

    zipf_weights = 1.0 / np.arange(1, primary_size + 1,
                                   dtype=np.float64) ** exponent
    zipf_weights /= zipf_weights.sum()

    topics = []
    for i in range(n_topics):
        primary = np.arange(i * primary_size, (i + 1) * primary_size)
        order = rng.permutation(primary_size)
        probs = np.full(n_terms, (1.0 - primary_mass) / n_terms)
        probs[primary[order]] += primary_mass * zipf_weights
        topics.append(Topic(probs, name=f"zipf-topic-{i}",
                            primary_terms=primary))
    factors = PureTopicFactors(length_low=length_low,
                               length_high=length_high)
    return CorpusModel(n_terms, topics, factors,
                       name=name or
                       f"zipf-separable(n={n_terms}, k={n_topics}, "
                       f"s={exponent})")


#: The paper's §4 experimental parameters.
PAPER_N_TERMS = 2000
PAPER_N_TOPICS = 20
PAPER_PRIMARY_SIZE = 100
PAPER_PRIMARY_MASS = 0.95
PAPER_N_DOCUMENTS = 1000
PAPER_LENGTH_LOW = 50
PAPER_LENGTH_HIGH = 100


def paper_experiment_model() -> CorpusModel:
    """The exact corpus model of the paper's §4 table experiment.

    2000 terms, 20 topics with disjoint 100-term primary sets, 0.95
    primary mass with the remaining 0.05 uniform over all terms
    (0.05-separable), pure single-topic documents of 50–100 terms.
    """
    return build_separable_model(
        PAPER_N_TERMS, PAPER_N_TOPICS,
        primary_size=PAPER_PRIMARY_SIZE,
        primary_mass=PAPER_PRIMARY_MASS,
        length_low=PAPER_LENGTH_LOW, length_high=PAPER_LENGTH_HIGH,
        name="paper-section4-experiment")
