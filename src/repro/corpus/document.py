"""Documents: bags of term occurrences with their generating factors.

A generated document remembers the :class:`~repro.corpus.model.DocumentFactors`
it was drawn from, so experiments can compare what LSI recovers against
ground truth (the topic a pure document "belongs to", in the paper's
words).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import EmptyCorpusError, ValidationError
from repro.corpus.model import DocumentFactors
from repro.utils.validation import check_non_negative_int

__all__ = ["Document"]


@dataclass(frozen=True)
class Document:
    """A bag-of-terms document.

    Attributes:
        term_counts: mapping term id → occurrence count (> 0 entries only).
        universe_size: size of the term universe the ids index into.
        factors: the generating factors, or ``None`` for documents built
            from raw text rather than the model.
        doc_id: position in its corpus (set by the corpus builder).
    """

    term_counts: dict[int, int]
    universe_size: int
    factors: DocumentFactors | None = None
    doc_id: int = field(default=-1, compare=False)

    def __post_init__(self):
        check_non_negative_int(self.universe_size, "universe_size")
        if not self.term_counts:
            raise EmptyCorpusError("a document must contain at least one "
                                   "term occurrence")
        for term, count in self.term_counts.items():
            if not 0 <= int(term) < self.universe_size:
                raise ValidationError(
                    f"term id {term} out of range for universe of size "
                    f"{self.universe_size}")
            if int(count) <= 0:
                raise ValidationError(
                    f"term {term} has non-positive count {count}")

    @property
    def length(self) -> int:
        """Total number of term occurrences ``ℓ``."""
        return int(sum(self.term_counts.values()))

    @property
    def distinct_terms(self) -> int:
        """Number of distinct terms (the column's nonzero count)."""
        return len(self.term_counts)

    @property
    def topic_label(self) -> int | None:
        """The generating topic for pure documents, else ``None``.

        The paper says a pure document "belongs to" its single topic;
        mixture documents have no single label.
        """
        if self.factors is None or not self.factors.is_pure:
            return None
        return self.factors.dominant_topic()

    def to_vector(self) -> np.ndarray:
        """Dense count vector of length ``universe_size``."""
        vector = np.zeros(self.universe_size)
        for term, count in self.term_counts.items():
            vector[term] = count
        return vector

    @classmethod
    def from_samples(cls, term_ids, universe_size, *,
                     factors: DocumentFactors | None = None,
                     doc_id: int = -1) -> "Document":
        """Build from a sequence of sampled term ids (with repeats)."""
        counts: dict[int, int] = {}
        for term in term_ids:
            term = int(term)
            counts[term] = counts.get(term, 0) + 1
        return cls(term_counts=counts, universe_size=universe_size,
                   factors=factors, doc_id=doc_id)

    @classmethod
    def from_count_vector(cls, vector, *,
                          factors: DocumentFactors | None = None,
                          doc_id: int = -1) -> "Document":
        """Build from a dense count vector (zeros dropped)."""
        vector = np.asarray(vector)
        counts = {int(i): int(vector[i])
                  for i in np.flatnonzero(vector > 0)}
        return cls(term_counts=counts, universe_size=int(vector.shape[0]),
                   factors=factors, doc_id=doc_id)

    def __repr__(self) -> str:
        return (f"Document(id={self.doc_id}, length={self.length}, "
                f"distinct={self.distinct_terms}, "
                f"topic={self.topic_label})")
