"""A generated corpus and its term–document matrix.

:class:`Corpus` holds the sampled documents plus (optionally) the model
they came from, and produces the ``n × m`` term–document matrix ``A`` the
paper's spectral machinery operates on — rows are terms, columns are
documents, matching the paper's orientation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EmptyCorpusError, ValidationError
from repro.corpus.document import Document
from repro.corpus.weighting import apply_weighting
from repro.linalg.sparse import CSRMatrix

__all__ = ["Corpus"]


class Corpus:
    """An ordered collection of documents over one term universe.

    Args:
        documents: the documents; ids are rewritten to positions.
        model: the generating :class:`~repro.corpus.model.CorpusModel`,
            when known (enables ground-truth topic labels).
    """

    def __init__(self, documents, *, model=None):
        documents = list(documents)
        if not documents:
            raise EmptyCorpusError("corpus must contain at least one "
                                   "document")
        universe = documents[0].universe_size
        for document in documents:
            if document.universe_size != universe:
                raise ValidationError(
                    "documents live in different universes: "
                    f"{document.universe_size} != {universe}")
        # Normalise ids to corpus positions without mutating inputs.
        self.documents: list[Document] = [
            doc if doc.doc_id == i else Document(
                term_counts=doc.term_counts, universe_size=universe,
                factors=doc.factors, doc_id=i)
            for i, doc in enumerate(documents)]
        self.model = model
        self.universe_size = universe

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self):
        return iter(self.documents)

    def __getitem__(self, index) -> Document:
        return self.documents[index]

    @property
    def size(self) -> int:
        """Number of documents ``m``."""
        return len(self.documents)

    def topic_labels(self) -> np.ndarray:
        """Ground-truth topic index per document (pure corpora only).

        Raises:
            ValidationError: if any document lacks a single-topic label.
        """
        labels = np.empty(len(self.documents), dtype=np.int64)
        for i, document in enumerate(self.documents):
            label = document.topic_label
            if label is None:
                raise ValidationError(
                    f"document {i} has no single-topic label (corpus is "
                    "not pure or was built from raw text)")
            labels[i] = label
        return labels

    def has_labels(self) -> bool:
        """Whether every document carries a single-topic label."""
        return all(doc.topic_label is not None for doc in self.documents)

    def term_document_matrix(self, *, weighting: str = "count") -> CSRMatrix:
        """The ``n × m`` term–document matrix under a weighting scheme.

        The paper notes several candidate coordinate functions (0-1,
        frequency, …) and that "the precise choice does not affect our
        results"; :mod:`repro.corpus.weighting` provides the common ones.
        """
        columns = [doc.term_counts for doc in self.documents]
        counts = CSRMatrix.from_columns(self.universe_size, columns)
        return apply_weighting(counts, weighting)

    def document_lengths(self) -> np.ndarray:
        """Length ``ℓ`` of every document."""
        return np.asarray([doc.length for doc in self.documents],
                          dtype=np.int64)

    def subcorpus(self, indices) -> "Corpus":
        """A new corpus containing the selected documents (re-numbered).

        Supports repeats, so sampling with replacement works.
        """
        indices = [int(i) for i in indices]
        for index in indices:
            if not 0 <= index < len(self.documents):
                raise ValidationError(
                    f"document index {index} out of range")
        if not indices:
            raise EmptyCorpusError("subcorpus selection is empty")
        return Corpus([self.documents[i] for i in indices],
                      model=self.model)

    def split(self, fraction: float, seed=None):
        """Random split into two corpora (e.g. index vs. held-out queries).

        Args:
            fraction: share of documents in the first part, in (0, 1).
            seed: RNG seed for the shuffle.

        Returns:
            ``(first, second)`` corpora.
        """
        from repro.utils.rng import as_generator
        from repro.utils.validation import check_fraction

        fraction = check_fraction(fraction, "fraction",
                                  inclusive_low=False, inclusive_high=False)
        rng = as_generator(seed)
        order = rng.permutation(len(self.documents))
        cut = int(round(fraction * len(self.documents)))
        cut = min(max(cut, 1), len(self.documents) - 1)
        return (self.subcorpus(order[:cut]), self.subcorpus(order[cut:]))

    def __repr__(self) -> str:
        return (f"Corpus(m={len(self)}, n={self.universe_size}, "
                f"labeled={self.has_labels()})")
