"""Synonym-pair construction for the §4 synonymy analysis.

The paper's model of (generalised) synonymy: *two terms with identical
co-occurrences*, each with small occurrence probability.  In the
term–term autocorrelation matrix ``A·Aᵀ`` the corresponding rows/columns
are then nearly identical, producing a very small eigenvalue whose
eigenvector is (±1) on the pair — the "difference direction" that LSI
projects out.

Two constructions are provided:

- :func:`split_topic_term` — model-level: extend the universe by one term
  and split a chosen term's probability equally between the original and
  the new term in every topic.  Documents then use the two
  interchangeably, giving identical co-occurrence *distributions*.
- :func:`split_term_into_synonyms` — corpus-level: rewrite an existing
  term–document count matrix, re-flipping a fair coin for each occurrence
  of the chosen term.  This is the exact generative equivalent of having
  sampled from the split model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.corpus.model import CorpusModel
from repro.corpus.topic import Topic
from repro.linalg.sparse import CSRMatrix
from repro.utils.rng import as_generator

__all__ = ["split_term_into_synonyms", "split_topic_term"]


def split_topic_term(model: CorpusModel, term: int) -> CorpusModel:
    """Extend the model with a synonym of ``term``.

    Returns a new model over ``n + 1`` terms in which every topic assigns
    half of ``term``'s original probability to ``term`` and half to the
    new term ``n`` (the synonym).  Styles are not supported (the §4
    analysis is style-free).

    The pair then has identical co-occurrence statistics by construction:
    conditioned on any document, both appear with equal probability and
    alongside the same companions.
    """
    term = int(term)
    if not 0 <= term < model.universe_size:
        raise ValidationError(
            f"term {term} out of range for universe of size "
            f"{model.universe_size}")
    if model.styles:
        raise ValidationError(
            "split_topic_term supports style-free models only")

    new_size = model.universe_size + 1
    new_topics = []
    for topic in model.topics:
        probs = np.zeros(new_size)
        probs[:model.universe_size] = topic.probabilities
        half = probs[term] / 2.0
        probs[term] = half
        probs[new_size - 1] = half
        primary = set(topic.primary_terms)
        if term in primary:
            primary.add(new_size - 1)
        new_topics.append(Topic(probs, name=topic.name,
                                primary_terms=primary))
    return CorpusModel(new_size, new_topics, model.factors,
                       name=f"{model.name}+synonym({term})")


def split_term_into_synonyms(matrix: CSRMatrix, term: int,
                             seed=None) -> CSRMatrix:
    """Split occurrences of ``term`` between it and a new synonym row.

    Each of the ``c`` occurrences of ``term`` in each document
    independently stays on ``term`` or moves to the new last row with
    probability 1/2 (one binomial draw per document).  Returns an
    ``(n + 1) × m`` matrix; all other rows are unchanged.

    The input must be a raw count matrix (non-negative integers); apply
    weighting schemes *after* splitting.
    """
    term = int(term)
    if not 0 <= term < matrix.shape[0]:
        raise ValidationError(
            f"term {term} out of range for {matrix.shape[0]} rows")
    counts = matrix.get_row(term)
    if np.any(counts < 0) or np.any(counts != np.round(counts)):
        raise ValidationError(
            "split_term_into_synonyms expects a raw count matrix")
    rng = as_generator(seed)
    stay = rng.binomial(counts.astype(np.int64), 0.5).astype(np.float64)
    move = counts - stay

    n, m = matrix.shape
    row_of_entry = np.repeat(np.arange(n), np.diff(matrix.indptr))
    keep_mask = row_of_entry != term
    rows = [row_of_entry[keep_mask]]
    cols = [matrix.indices[keep_mask]]
    vals = [matrix.data[keep_mask]]

    stay_cols = np.flatnonzero(stay > 0)
    rows.append(np.full(stay_cols.size, term, dtype=np.int64))
    cols.append(stay_cols)
    vals.append(stay[stay_cols])

    move_cols = np.flatnonzero(move > 0)
    rows.append(np.full(move_cols.size, n, dtype=np.int64))
    cols.append(move_cols)
    vals.append(move[move_cols])

    return CSRMatrix.from_triplets(
        n + 1, m, np.concatenate(rows), np.concatenate(cols),
        np.concatenate(vals))
