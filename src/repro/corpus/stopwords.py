"""Stop words: the high-frequency function words the paper assumes away.

§4: "the assumption that a corpus is ε-separable for some small value of
ε may be reasonably realistic, since documents are usually preprocessed
to eliminate commonly-occurring stop-words."  This module provides that
preprocessing step: a standard English stop list, plus *corpus-driven*
stop detection (terms whose document frequency exceeds a threshold — the
data-dependent analogue, which also works for synthetic vocabularies).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.linalg.sparse import CSRMatrix
from repro.utils.validation import check_fraction

__all__ = [
    "ENGLISH_STOP_WORDS",
    "high_document_frequency_terms",
    "is_stop_word",
    "low_document_frequency_terms",
    "prune_terms",
    "remove_stop_words",
]

#: A compact English stop list (the classic van Rijsbergen-style core).
ENGLISH_STOP_WORDS = frozenset("""
a about above after again against all am an and any are as at be because
been before being below between both but by can did do does doing down
during each few for from further had has have having he her here hers
herself him himself his how i if in into is it its itself just me more
most my myself no nor not now of off on once only or other our ours
ourselves out over own same she should so some such than that the their
theirs them themselves then there these they this those through to too
under until up very was we were what when where which while who whom why
will with you your yours yourself yourselves
""".split())


def is_stop_word(token: str) -> bool:
    """Whether a token is on the built-in English stop list."""
    return token.lower() in ENGLISH_STOP_WORDS


def remove_stop_words(tokens, *, extra=()) -> list[str]:
    """Filter stop words (built-in list plus any ``extra``) from tokens."""
    extra_set = {str(t).lower() for t in extra}
    return [token for token in tokens
            if token.lower() not in ENGLISH_STOP_WORDS
            and token.lower() not in extra_set]


def high_document_frequency_terms(matrix: CSRMatrix,
                                  max_df_fraction: float = 0.5
                                  ) -> np.ndarray:
    """Term ids appearing in more than ``max_df_fraction`` of documents.

    The corpus-driven stop criterion: a term occurring in most documents
    carries no topical signal and erodes ε-separability.
    """
    if not isinstance(matrix, CSRMatrix):
        raise ValidationError("expected a CSRMatrix")
    max_df_fraction = check_fraction(max_df_fraction, "max_df_fraction")
    df = matrix.document_frequency()
    return np.flatnonzero(df > max_df_fraction * matrix.shape[1])


def low_document_frequency_terms(matrix: CSRMatrix,
                                 min_documents: int = 2) -> np.ndarray:
    """Term ids appearing in fewer than ``min_documents`` documents.

    Hapax-style pruning: ultra-rare terms add dimensions without
    co-occurrence evidence.
    """
    if not isinstance(matrix, CSRMatrix):
        raise ValidationError("expected a CSRMatrix")
    if min_documents < 1:
        raise ValidationError(
            f"min_documents must be >= 1, got {min_documents}")
    df = matrix.document_frequency()
    return np.flatnonzero(df < min_documents)


def prune_terms(matrix: CSRMatrix, *, max_df_fraction: float = 1.0,
                min_documents: int = 1):
    """Drop high-DF and low-DF terms from a term–document matrix.

    Returns:
        ``(pruned_matrix, kept_term_ids)`` — the reduced matrix and the
        original ids of the surviving rows (for mapping back to a
        vocabulary).
    """
    drop = set()
    if max_df_fraction < 1.0:
        drop |= set(high_document_frequency_terms(
            matrix, max_df_fraction).tolist())
    if min_documents > 1:
        drop |= set(low_document_frequency_terms(
            matrix, min_documents).tolist())
    kept = np.asarray([t for t in range(matrix.shape[0])
                       if t not in drop], dtype=np.int64)
    if kept.size == 0:
        raise ValidationError("pruning removed every term")
    return matrix.select_rows(kept), kept
