"""The Porter stemming algorithm, implemented from scratch.

Conflating inflected forms ("connect", "connected", "connection", …)
onto one stem is the classical counterpart of the paper's synonymy
story: morphological variants are near-synonyms the *indexer* can merge
before any spectral machinery runs.  This is M. F. Porter's 1980
algorithm ("An algorithm for suffix stripping"), steps 1a–5b, ported
faithfully.

The measure ``m`` of a word counts VC transitions in its
consonant/vowel form ``[C](VC)^m[V]``; most rules fire only when the
remaining stem has measure above a threshold.
"""

from __future__ import annotations

__all__ = ["porter_stem", "stem_tokens"]

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    """Porter's consonant test; 'y' is a consonant after a vowel."""
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The measure m: number of VC sequences in [C](VC)^m[V]."""
    forms = []
    for i in range(len(stem)):
        form = "c" if _is_consonant(stem, i) else "v"
        if not forms or forms[-1] != form:
            forms.append(form)
    return "".join(forms).count("vc")


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (len(word) >= 2 and word[-1] == word[-2]
            and _is_consonant(word, len(word) - 1))


def _ends_cvc(word: str) -> bool:
    """Ends consonant-vowel-consonant, final consonant not w, x, or y."""
    if len(word) < 3:
        return False
    return (_is_consonant(word, len(word) - 3)
            and not _is_consonant(word, len(word) - 2)
            and _is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy")


def _replace_suffix(word: str, suffix: str, replacement: str,
                    min_measure: int) -> str | None:
    """Replace ``suffix`` when the remaining stem has m > min_measure."""
    if not word.endswith(suffix):
        return None
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > min_measure:
        return stem + replacement
    return word  # rule matched but condition failed: stop this step


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    for suffix in ("ed", "ing"):
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if not _contains_vowel(stem):
                return word
            # Post-rules: restore an 'e' or undo doubling.
            if stem.endswith(("at", "bl", "iz")):
                return stem + "e"
            if _ends_double_consonant(stem) and \
                    stem[-1] not in "lsz":
                return stem[:-1]
            if _measure(stem) == 1 and _ends_cvc(stem):
                return stem + "e"
            return stem
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_RULES = (
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
    ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
    ("alli", "al"), ("entli", "ent"), ("eli", "e"), ("ousli", "ous"),
    ("ization", "ize"), ("ation", "ate"), ("ator", "ate"),
    ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"),
    ("biliti", "ble"))

_STEP3_RULES = (
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""))

_STEP4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize")


def _step_2(word: str) -> str:
    for suffix, replacement in _STEP2_RULES:
        result = _replace_suffix(word, suffix, replacement, 0)
        if result is not None:
            return result
    return word


def _step_3(word: str) -> str:
    for suffix, replacement in _STEP3_RULES:
        result = _replace_suffix(word, suffix, replacement, 0)
        if result is not None:
            return result
    return word


def _step_4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    # (m>1 and (*S or *T)) ION -> drop ION.
    if word.endswith("ion"):
        stem = word[:-3]
        if _measure(stem) > 1 and stem and stem[-1] in "st":
            return stem
    return word


def _step_5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step_5b(word: str) -> str:
    if _measure(word) > 1 and _ends_double_consonant(word) and \
            word.endswith("l"):
        return word[:-1]
    return word


def porter_stem(word: str) -> str:
    """Stem one lowercase word with the Porter algorithm.

    Words of length ≤ 2 are returned unchanged (Porter's convention).
    """
    word = word.lower()
    if len(word) <= 2:
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _step_2(word)
    word = _step_3(word)
    word = _step_4(word)
    word = _step_5a(word)
    word = _step_5b(word)
    return word


def stem_tokens(tokens) -> list[str]:
    """Stem a token sequence."""
    return [porter_stem(token) for token in tokens]
