"""End-to-end text indexing pipeline: raw strings → term–document matrix.

The front end a downstream user actually runs documents through:

    tokenize → stop-word filter → (optional) Porter stemming →
    vocabulary construction → count matrix → DF pruning → weighting

:class:`TextPipeline` is fitted on a training collection (fixing the
vocabulary) and then transforms further documents/queries into the same
term space — the contract LSI query folding requires.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EmptyCorpusError, NotFittedError, ValidationError
from repro.corpus.stemmer import porter_stem
from repro.corpus.stopwords import ENGLISH_STOP_WORDS
from repro.corpus.text import tokenize
from repro.corpus.vocabulary import Vocabulary
from repro.corpus.weighting import WEIGHTING_SCHEMES, apply_weighting
from repro.linalg.sparse import CSRMatrix
from repro.utils.validation import check_fraction

__all__ = ["TextPipeline"]


class TextPipeline:
    """A fit/transform text front end over a fixed vocabulary.

    Args:
        stem: apply Porter stemming after stop-word removal.
        remove_stop_words: drop tokens on the English stop list.
        extra_stop_words: additional stop tokens (matched post-lowercase,
            pre-stemming).
        min_documents: drop terms appearing in fewer training documents.
        max_df_fraction: drop terms appearing in more than this fraction
            of training documents.
        weighting: scheme from
            :data:`repro.corpus.weighting.WEIGHTING_SCHEMES` applied by
            :meth:`fit_transform` (query vectors stay raw counts —
            cosine scoring makes query scaling irrelevant).
    """

    def __init__(self, *, stem: bool = True,
                 remove_stop_words: bool = True, extra_stop_words=(),
                 min_documents: int = 1, max_df_fraction: float = 1.0,
                 weighting: str = "count"):
        if weighting not in WEIGHTING_SCHEMES:
            raise ValidationError(
                f"unknown weighting {weighting!r}; expected one of "
                f"{sorted(WEIGHTING_SCHEMES)}")
        if min_documents < 1:
            raise ValidationError(
                f"min_documents must be >= 1, got {min_documents}")
        check_fraction(max_df_fraction, "max_df_fraction",
                       inclusive_low=False)
        self.stem = bool(stem)
        self.remove_stop_words = bool(remove_stop_words)
        self.extra_stop_words = frozenset(
            str(t).lower() for t in extra_stop_words)
        self.min_documents = int(min_documents)
        self.max_df_fraction = float(max_df_fraction)
        self.weighting = weighting
        self.vocabulary: Vocabulary | None = None

    # ------------------------------------------------------------------
    # Token-level processing
    # ------------------------------------------------------------------

    def process_text(self, text: str) -> list[str]:
        """Tokenise, filter, and stem one string."""
        tokens = tokenize(text)
        if self.remove_stop_words:
            tokens = [t for t in tokens
                      if t not in ENGLISH_STOP_WORDS
                      and t not in self.extra_stop_words]
        elif self.extra_stop_words:
            tokens = [t for t in tokens
                      if t not in self.extra_stop_words]
        if self.stem:
            tokens = [porter_stem(t) for t in tokens]
        return tokens

    # ------------------------------------------------------------------
    # Fit / transform
    # ------------------------------------------------------------------

    def fit_transform(self, texts) -> CSRMatrix:
        """Fix the vocabulary on ``texts`` and return their matrix.

        Document-frequency pruning happens here (against the training
        collection); the weighting scheme is applied to the result.
        """
        texts = list(texts)
        if not texts:
            raise EmptyCorpusError("fit_transform needs at least one "
                                   "document")
        processed = [self.process_text(text) for text in texts]
        term_ids: dict[str, int] = {}
        columns: list[dict[int, float]] = []
        for tokens in processed:
            column: dict[int, float] = {}
            for token in tokens:
                term = term_ids.setdefault(token, len(term_ids))
                column[term] = column.get(term, 0.0) + 1.0
            columns.append(column)
        if not term_ids:
            raise EmptyCorpusError(
                "no tokens survived preprocessing")

        matrix = CSRMatrix.from_columns(len(term_ids), columns)

        # DF pruning against the training collection.
        df = matrix.document_frequency()
        keep_mask = df >= self.min_documents
        if self.max_df_fraction < 1.0:
            keep_mask &= df <= self.max_df_fraction * matrix.shape[1]
        kept = np.flatnonzero(keep_mask)
        if kept.size == 0:
            raise EmptyCorpusError("pruning removed every term")
        matrix = matrix.select_rows(kept)

        id_to_term = {i: t for t, i in term_ids.items()}
        self.vocabulary = Vocabulary([id_to_term[int(i)] for i in kept])
        return apply_weighting(matrix, self.weighting)

    def _require_vocabulary(self) -> Vocabulary:
        if self.vocabulary is None:
            raise NotFittedError(
                "fit_transform must run before transform")
        return self.vocabulary

    def transform(self, texts) -> CSRMatrix:
        """Map new documents into the fitted term space (counts).

        Out-of-vocabulary tokens are dropped; documents may come out
        empty (all-zero columns), which cosine scoring handles.
        """
        vocabulary = self._require_vocabulary()
        columns: list[dict[int, float]] = []
        for text in texts:
            column: dict[int, float] = {}
            for token in self.process_text(text):
                if token in vocabulary:
                    term = vocabulary.term_id(token)
                    column[term] = column.get(term, 0.0) + 1.0
            columns.append(column)
        return CSRMatrix.from_columns(len(vocabulary), columns)

    def query_vector(self, text: str) -> np.ndarray:
        """One query as a dense count vector over the fitted vocabulary."""
        return self.transform([text]).get_column(0)

    def __repr__(self) -> str:
        fitted = "unfitted" if self.vocabulary is None else \
            f"vocab={len(self.vocabulary)}"
        return (f"TextPipeline(stem={self.stem}, "
                f"stop_words={self.remove_stop_words}, "
                f"weighting={self.weighting!r}, {fitted})")
