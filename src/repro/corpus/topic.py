"""Topics: probability distributions on the term universe (Definition 2).

A meaningful topic concentrates its mass on its own terms — the paper's
"space travel" topic favours "galaxy" and "starship" and rarely mentions
"misery".  The ε-separability analysis of §4 additionally associates a
*primary set* of terms with each topic; :class:`Topic` carries that set
(possibly empty for unconstrained topics) and exposes the quantities the
theorems are stated in: the per-term probability cap τ and the primary
mass ``1 − ε``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability_vector,
)

__all__ = ["Topic", "mix_topics"]


class Topic:
    """A probability distribution over term ids ``0..n-1``.

    Args:
        probabilities: length-``n`` probability vector.
        name: optional label used in reports.
        primary_terms: optional set of term ids designated as this topic's
            primary set ``U_T`` (for ε-separability accounting).
    """

    def __init__(self, probabilities, *, name: str = "",
                 primary_terms=None):
        self.probabilities = check_probability_vector(
            probabilities, "probabilities")
        self.probabilities.setflags(write=False)
        self.name = str(name)
        if primary_terms is None:
            self.primary_terms: frozenset[int] = frozenset()
        else:
            primary = frozenset(int(t) for t in primary_terms)
            n = self.probabilities.shape[0]
            bad = [t for t in primary if not 0 <= t < n]
            if bad:
                raise ValidationError(
                    f"primary term id {bad[0]} out of range for universe "
                    f"of size {n}")
            self.primary_terms = primary

    @property
    def universe_size(self) -> int:
        """Number of terms ``n`` in the universe."""
        return int(self.probabilities.shape[0])

    @property
    def support(self) -> np.ndarray:
        """Term ids with strictly positive probability."""
        return np.flatnonzero(self.probabilities > 0)

    def max_term_probability(self) -> float:
        """The paper's τ: the largest single-term probability."""
        return float(self.probabilities.max())

    def primary_mass(self) -> float:
        """Total probability on the primary set (0.0 if none declared)."""
        if not self.primary_terms:
            return 0.0
        idx = np.fromiter(self.primary_terms, dtype=np.int64)
        return float(self.probabilities[idx].sum())

    def epsilon(self) -> float:
        """This topic's ε: probability mass *outside* its primary set.

        Meaningful only when a primary set is declared; returns 1.0
        otherwise (no separability guarantee).
        """
        if not self.primary_terms:
            return 1.0
        return max(0.0, 1.0 - self.primary_mass())

    def sample_terms(self, count: int, seed=None) -> np.ndarray:
        """Draw ``count`` i.i.d. term ids from this distribution."""
        count = check_positive_int(count, "count")
        rng = as_generator(seed)
        return rng.choice(self.universe_size, size=count,
                          p=self.probabilities)

    def sample_counts(self, length: int, seed=None) -> np.ndarray:
        """Draw a length-``length`` document as a term-count vector.

        Equivalent to ``length`` independent term draws (the paper's
        sampling step) aggregated into counts — one multinomial draw.
        """
        length = check_positive_int(length, "length")
        rng = as_generator(seed)
        return rng.multinomial(length, self.probabilities).astype(np.float64)

    def __repr__(self) -> str:
        label = self.name or "unnamed"
        return (f"Topic({label!r}, n={self.universe_size}, "
                f"tau={self.max_term_probability():.4g}, "
                f"primary={len(self.primary_terms)})")

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def uniform(cls, universe_size: int, *, name: str = "uniform") -> "Topic":
        """The maximally *unfocused* topic: uniform over all terms."""
        universe_size = check_positive_int(universe_size, "universe_size")
        return cls(np.full(universe_size, 1.0 / universe_size), name=name)

    @classmethod
    def primary_set(cls, universe_size: int, primary_terms, *,
                    primary_mass: float = 0.95, name: str = "") -> "Topic":
        """The paper's experimental topic shape (§4 Experiments).

        ``primary_mass`` of the probability is spread uniformly over the
        primary set; the remaining ``1 − primary_mass`` is spread
        uniformly over the *whole* universe.  With ``primary_mass=0.95``
        this is exactly the 0.05-separable configuration of the paper's
        table experiment.
        """
        universe_size = check_positive_int(universe_size, "universe_size")
        primary_mass = check_fraction(primary_mass, "primary_mass",
                                      inclusive_low=False)
        primary = sorted(int(t) for t in set(primary_terms))
        if not primary:
            raise ValidationError("primary_terms must be non-empty")
        if primary[0] < 0 or primary[-1] >= universe_size:
            raise ValidationError("primary term ids out of range")
        probs = np.full(universe_size, (1.0 - primary_mass) / universe_size)
        probs[np.asarray(primary)] += primary_mass / len(primary)
        return cls(probs, name=name, primary_terms=primary)

    @classmethod
    def zipfian(cls, universe_size: int, term_order, *, exponent: float = 1.0,
                name: str = "", primary_terms=None) -> "Topic":
        """A Zipf-distributed topic over a given term preference order.

        ``term_order`` ranks term ids from most to least probable; ranks
        follow ``1/rank^exponent``, normalised.  More realistic term
        frequency shape for the extension experiments.
        """
        universe_size = check_positive_int(universe_size, "universe_size")
        order = np.asarray(list(term_order), dtype=np.int64)
        if order.size == 0 or order.size > universe_size:
            raise ValidationError(
                "term_order must have between 1 and universe_size entries")
        if np.unique(order).size != order.size:
            raise ValidationError("term_order contains duplicates")
        if order.min() < 0 or order.max() >= universe_size:
            raise ValidationError("term_order ids out of range")
        if exponent <= 0:
            raise ValidationError(
                f"exponent must be positive, got {exponent}")
        weights = 1.0 / np.arange(1, order.size + 1, dtype=np.float64) \
            ** exponent
        probs = np.zeros(universe_size)
        probs[order] = weights / weights.sum()
        return cls(probs, name=name, primary_terms=primary_terms)


def mix_topics(topics, weights) -> np.ndarray:
    """The convex combination ``Σ wᵢ Tᵢ`` as a probability vector.

    This is the paper's ``T̄ ∈ T̃`` — the first factor of the document
    distribution.  Weights must be a probability vector over ``topics``.
    """
    topics = list(topics)
    if not topics:
        raise ValidationError("topics must be non-empty")
    weights = check_probability_vector(np.asarray(weights, dtype=np.float64),
                                       "weights")
    if weights.shape[0] != len(topics):
        raise ValidationError(
            f"{len(topics)} topics but {weights.shape[0]} weights")
    n = topics[0].universe_size
    for topic in topics:
        if topic.universe_size != n:
            raise ValidationError(
                "topics live in different universes: "
                f"{topic.universe_size} != {n}")
    combined = np.zeros(n)
    for weight, topic in zip(weights, topics):
        if weight > 0:
            combined += weight * topic.probabilities
    # Renormalise away float drift so downstream samplers accept it.
    return combined / combined.sum()
