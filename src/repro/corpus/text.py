"""Plain-text rendering and parsing for generated corpora.

The theory works on integer term ids, but the examples want documents
that look like text.  This module renders a generated
:class:`~repro.corpus.corpus.Corpus` through a
:class:`~repro.corpus.vocabulary.Vocabulary` and parses token streams back
into documents, closing the loop: text in, matrix out.
"""

from __future__ import annotations

import re

from repro.errors import EmptyCorpusError, ValidationError
from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.corpus.vocabulary import Vocabulary
from repro.utils.rng import as_generator

__all__ = [
    "parse_corpus",
    "parse_document",
    "render_corpus",
    "render_document",
    "tokenize",
]

_TOKEN_PATTERN = re.compile(r"[a-z]+")


def render_document(document: Document, vocabulary: Vocabulary,
                    seed=None) -> str:
    """Render a document as a space-separated token string.

    Token order carries no information in the bag-of-terms model, so the
    occurrences are shuffled for a natural look.
    """
    if len(vocabulary) != document.universe_size:
        raise ValidationError(
            f"vocabulary size {len(vocabulary)} does not match universe "
            f"size {document.universe_size}")
    tokens: list[str] = []
    for term, count in sorted(document.term_counts.items()):
        tokens.extend([vocabulary.term(term)] * count)
    rng = as_generator(seed)
    rng.shuffle(tokens)
    return " ".join(tokens)


def render_corpus(corpus: Corpus, vocabulary: Vocabulary,
                  seed=None) -> list[str]:
    """Render every document of a corpus as text."""
    rng = as_generator(seed)
    return [render_document(doc, vocabulary, rng) for doc in corpus]


def tokenize(text: str) -> list[str]:
    """Lowercase and extract alphabetic tokens."""
    return _TOKEN_PATTERN.findall(text.lower())


def parse_document(text: str, vocabulary: Vocabulary, *,
                   skip_unknown: bool = True, doc_id: int = -1) -> Document:
    """Parse a text string back into a document over ``vocabulary``.

    Args:
        text: raw text; tokenised by :func:`tokenize`.
        vocabulary: the term universe.
        skip_unknown: drop out-of-vocabulary tokens (True) or raise
            (False).
        doc_id: document id to record.

    Raises:
        EmptyCorpusError: if no in-vocabulary token survives.
    """
    counts: dict[int, int] = {}
    for token in tokenize(text):
        if token in vocabulary:
            term = vocabulary.term_id(token)
            counts[term] = counts.get(term, 0) + 1
        elif not skip_unknown:
            raise ValidationError(f"unknown token {token!r}")
    if not counts:
        raise EmptyCorpusError(
            "document contains no in-vocabulary tokens")
    return Document(term_counts=counts, universe_size=len(vocabulary),
                    doc_id=doc_id)


def parse_corpus(texts, vocabulary: Vocabulary, *,
                 skip_unknown: bool = True) -> Corpus:
    """Parse a sequence of text strings into a corpus."""
    documents = [parse_document(text, vocabulary,
                                skip_unknown=skip_unknown, doc_id=i)
                 for i, text in enumerate(texts)]
    return Corpus(documents)
