"""The corpus model ``C = (U, T, S, D)`` (Definition 4).

``D`` is a distribution over triples (convex combination of topics,
convex combination of styles, document length).  It is represented by a
:class:`FactorDistribution` — an object that samples
:class:`DocumentFactors`.  Two concrete distributions cover the paper's
regimes:

- :class:`PureTopicFactors` — each document draws a *single* topic
  (the paper's "pure" assumption of §4) with uniform or custom topic
  priors, no style mixing, and uniformly random integer lengths;
- :class:`MixtureTopicFactors` — documents blend a few topics through a
  sparse Dirichlet draw (the "future work" regime of §6, used by the
  extension experiments).

Custom regimes implement the same two-method protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.corpus.style import Style, mix_styles
from repro.corpus.topic import Topic, mix_topics
from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_positive_int,
    check_probability_vector,
)

__all__ = [
    "CorpusModel",
    "DocumentFactors",
    "FactorDistribution",
    "MixtureTopicFactors",
    "PureTopicFactors",
]


@dataclass(frozen=True)
class DocumentFactors:
    """One sample from ``D``: the recipe a single document is drawn by.

    Attributes:
        topic_weights: probability vector over the model's topics — the
            convex combination ``T̄``.
        style_weights: probability vector over the model's styles, or an
            empty array when the model is style-free.
        length: number of term occurrences ``ℓ`` to sample.
    """

    topic_weights: np.ndarray
    style_weights: np.ndarray
    length: int

    def __post_init__(self):
        check_probability_vector(self.topic_weights, "topic_weights")
        if self.style_weights.size:
            check_probability_vector(self.style_weights, "style_weights")
        check_positive_int(self.length, "length")

    @property
    def is_pure(self) -> bool:
        """True when exactly one topic carries all the weight."""
        return bool(np.count_nonzero(self.topic_weights) == 1)

    def dominant_topic(self) -> int:
        """Index of the highest-weight topic (the label for pure docs)."""
        return int(np.argmax(self.topic_weights))


class FactorDistribution:
    """Protocol for ``D``: samples (topic combo, style combo, length).

    Subclasses implement :meth:`sample`; :attr:`is_pure` declares whether
    every sample puts all topic weight on a single topic, which the
    Theorem 2/3 machinery checks before labelling documents.
    """

    #: Whether every sampled document involves a single topic.
    is_pure: bool = False

    def sample(self, n_topics: int, n_styles: int,
               rng: np.random.Generator) -> DocumentFactors:
        """Draw one :class:`DocumentFactors` for a model with the given
        numbers of topics and styles."""
        raise NotImplementedError


@dataclass
class PureTopicFactors(FactorDistribution):
    """Single-topic documents with uniform random lengths.

    This is the paper's §4 regime: the corpus model is *pure* (each
    document is generated from one topic).  The paper's table experiment
    uses ``length_low=50, length_high=100``.

    Attributes:
        length_low: inclusive lower bound on document length.
        length_high: inclusive upper bound on document length.
        topic_prior: optional probability vector over topics; uniform
            when omitted.
        poisson_mean: when set, lengths are drawn as
            ``1 + Poisson(poisson_mean − 1)`` instead of uniformly —
            Definition 4 allows any distribution on Z⁺, and Poisson is
            the natural "random document length" alternative.
    """

    length_low: int = 50
    length_high: int = 100
    topic_prior: np.ndarray | None = None
    poisson_mean: float | None = None
    is_pure: bool = field(default=True, init=False)

    def __post_init__(self):
        check_positive_int(self.length_low, "length_low")
        check_positive_int(self.length_high, "length_high")
        if self.length_high < self.length_low:
            raise ValidationError(
                f"length_high={self.length_high} < length_low="
                f"{self.length_low}")
        if self.topic_prior is not None:
            self.topic_prior = check_probability_vector(
                np.asarray(self.topic_prior, dtype=np.float64),
                "topic_prior")
        if self.poisson_mean is not None and self.poisson_mean < 1.0:
            raise ValidationError(
                f"poisson_mean must be >= 1, got {self.poisson_mean}")

    def _sample_length(self, rng) -> int:
        if self.poisson_mean is not None:
            return 1 + int(rng.poisson(self.poisson_mean - 1.0))
        return int(rng.integers(self.length_low, self.length_high + 1))

    def sample(self, n_topics, n_styles, rng) -> DocumentFactors:
        """Draw a single-topic recipe: one topic, no styles."""
        if self.topic_prior is not None \
                and self.topic_prior.shape[0] != n_topics:
            raise ValidationError(
                f"topic_prior has {self.topic_prior.shape[0]} entries for "
                f"{n_topics} topics")
        topic = rng.choice(n_topics, p=self.topic_prior) \
            if self.topic_prior is not None else rng.integers(n_topics)
        weights = np.zeros(n_topics)
        weights[topic] = 1.0
        return DocumentFactors(topic_weights=weights,
                               style_weights=np.zeros(0),
                               length=self._sample_length(rng))


@dataclass
class MixtureTopicFactors(FactorDistribution):
    """Documents blending a few topics (sparse Dirichlet combinations).

    Each document picks ``topics_per_document`` distinct topics uniformly
    and weights them by a symmetric Dirichlet draw — "favoring
    combinations of a few related topics", the shape Definition 4's prose
    suggests.  Styles, when present, get an independent Dirichlet
    combination.

    Attributes:
        topics_per_document: how many topics each document blends.
        concentration: Dirichlet concentration; small values make one
            topic dominate, large values blend evenly.
        length_low / length_high: inclusive document-length bounds.
        use_styles: whether to sample style combinations (requires the
            model to have styles).
    """

    topics_per_document: int = 2
    concentration: float = 1.0
    length_low: int = 50
    length_high: int = 100
    use_styles: bool = False
    is_pure: bool = field(default=False, init=False)

    def __post_init__(self):
        check_positive_int(self.topics_per_document, "topics_per_document")
        check_positive_int(self.length_low, "length_low")
        check_positive_int(self.length_high, "length_high")
        if self.length_high < self.length_low:
            raise ValidationError(
                f"length_high={self.length_high} < length_low="
                f"{self.length_low}")
        if self.concentration <= 0:
            raise ValidationError(
                f"concentration must be positive, got {self.concentration}")

    def sample(self, n_topics, n_styles, rng) -> DocumentFactors:
        """Draw a sparse-Dirichlet blend of topics (and styles)."""
        count = min(self.topics_per_document, n_topics)
        chosen = rng.choice(n_topics, size=count, replace=False)
        dirichlet = rng.dirichlet(np.full(count, self.concentration))
        weights = np.zeros(n_topics)
        weights[chosen] = dirichlet
        if self.use_styles and n_styles > 0:
            style_weights = rng.dirichlet(np.ones(n_styles))
        else:
            style_weights = np.zeros(0)
        length = int(rng.integers(self.length_low, self.length_high + 1))
        return DocumentFactors(topic_weights=weights,
                               style_weights=style_weights, length=length)


class CorpusModel:
    """The quadruple ``C = (U, T, S, D)``.

    Args:
        universe_size: number of terms ``n`` (the universe ``U``).
        topics: the topic set ``T`` (non-empty; all over ``n`` terms).
        factors: the distribution ``D`` over
            (topic combo, style combo, length).
        styles: the style set ``S`` (may be empty for style-free models).
        name: optional label used in reports.
    """

    def __init__(self, universe_size, topics, factors: FactorDistribution,
                 *, styles=(), name: str = ""):
        self.universe_size = check_positive_int(universe_size,
                                                "universe_size")
        self.topics: list[Topic] = list(topics)
        if not self.topics:
            raise ValidationError("a corpus model needs at least one topic")
        for topic in self.topics:
            if topic.universe_size != self.universe_size:
                raise ValidationError(
                    f"topic {topic.name!r} lives in a universe of size "
                    f"{topic.universe_size}, expected {self.universe_size}")
        self.styles: list[Style] = list(styles)
        for style in self.styles:
            if style.universe_size != self.universe_size:
                raise ValidationError(
                    f"style {style.name!r} lives in a universe of size "
                    f"{style.universe_size}, expected {self.universe_size}")
        if not isinstance(factors, FactorDistribution):
            raise ValidationError(
                "factors must implement FactorDistribution")
        self.factors = factors
        self.name = str(name)

    @property
    def n_topics(self) -> int:
        """``|T|`` — the LSI rank the §4 theorems project to."""
        return len(self.topics)

    @property
    def n_styles(self) -> int:
        """``|S|``."""
        return len(self.styles)

    @property
    def is_pure(self) -> bool:
        """Whether ``D`` only emits single-topic documents."""
        return bool(self.factors.is_pure)

    @property
    def is_style_free(self) -> bool:
        """Whether the model has no styles (§4's assumption (a))."""
        return not self.styles

    def sample_factors(self, seed=None) -> DocumentFactors:
        """Step 1 of the two-step process: draw ``(T̄, S̄, ℓ)`` from D."""
        rng = as_generator(seed)
        return self.factors.sample(self.n_topics, self.n_styles, rng)

    def term_distribution(self, factors: DocumentFactors) -> np.ndarray:
        """The document distribution ``T̄·S̄`` for sampled factors."""
        if factors.topic_weights.shape[0] != self.n_topics:
            raise ValidationError(
                f"factors carry {factors.topic_weights.shape[0]} topic "
                f"weights for a model with {self.n_topics} topics")
        distribution = mix_topics(self.topics, factors.topic_weights)
        if factors.style_weights.size:
            if factors.style_weights.shape[0] != self.n_styles:
                raise ValidationError(
                    f"factors carry {factors.style_weights.shape[0]} style "
                    f"weights for a model with {self.n_styles} styles")
            style = mix_styles(self.styles, factors.style_weights)
            distribution = style.apply(distribution)
        return distribution

    # ------------------------------------------------------------------
    # Separability accounting (§4 definitions)
    # ------------------------------------------------------------------

    def primary_sets_disjoint(self) -> bool:
        """Whether declared primary sets are mutually disjoint."""
        seen: set[int] = set()
        for topic in self.topics:
            if topic.primary_terms & seen:
                return False
            seen |= topic.primary_terms
        return True

    def separability(self) -> float:
        """The model's ε: max over topics of off-primary mass.

        Returns 1.0 when primary sets are missing or overlap (no
        separability guarantee holds).
        """
        if not self.primary_sets_disjoint():
            return 1.0
        if any(not topic.primary_terms for topic in self.topics):
            return 1.0
        return max(topic.epsilon() for topic in self.topics)

    def max_term_probability(self) -> float:
        """The model's τ: max single-term probability over topics."""
        return max(topic.max_term_probability() for topic in self.topics)

    def __repr__(self) -> str:
        label = self.name or "unnamed"
        return (f"CorpusModel({label!r}, n={self.universe_size}, "
                f"topics={self.n_topics}, styles={self.n_styles}, "
                f"pure={self.is_pure})")
