"""Lemma 4 (the appendix's constant-explicit form of Lemma 1).

Lemma 4: let ``A`` have singular values with ``21/20 ≥ σ₁ ≥ … ≥ σₖ ≥
19/20`` and ``σₖ₊₁, …, σᵣ ≤ 1/20``, and let ``‖F‖₂ = ε ≤ 1/20``.  Then
the perturbed leading left singular basis satisfies ``U'ₖ = Uₖ·R + G``
with ``R`` orthonormal and ``‖G‖₂ ≤ 9ε``.

:func:`lemma4_check` verifies the hypotheses on concrete ``(A, F)`` and
measures the conclusion; :func:`make_lemma4_instance` manufactures
matrices that satisfy the hypotheses exactly, for tests and experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.linalg.dense import orthonormalize_columns
from repro.linalg.perturbation import residual_after_rotation
from repro.utils.rng import as_generator
from repro.utils.validation import check_matrix, check_rank

__all__ = [
    "CONCLUSION_FACTOR",
    "EPSILON_MAX",
    "Lemma4Report",
    "SIGMA_TAIL_MAX",
    "SIGMA_TOP_MAX",
    "SIGMA_TOP_MIN",
    "lemma4_check",
    "make_lemma4_instance",
]

#: Lemma 4's numerical constants.
SIGMA_TOP_MAX = 21.0 / 20.0
SIGMA_TOP_MIN = 19.0 / 20.0
SIGMA_TAIL_MAX = 1.0 / 20.0
EPSILON_MAX = 1.0 / 20.0
CONCLUSION_FACTOR = 9.0


@dataclass(frozen=True)
class Lemma4Report:
    """Hypotheses and conclusion of Lemma 4 on a concrete pair ``(A, F)``.

    Attributes:
        hypotheses_hold: whether all of Lemma 4's spectral/perturbation
            conditions are satisfied.
        epsilon: measured ``‖F‖₂``.
        measured_g_norm: measured ``‖G‖₂ = ‖U'ₖ − Uₖ·R‖₂`` with the
            Procrustes-optimal ``R``.
        guaranteed_bound: ``9ε`` (NaN when hypotheses fail).
    """

    hypotheses_hold: bool
    epsilon: float
    measured_g_norm: float
    guaranteed_bound: float

    @property
    def conclusion_holds(self) -> bool:
        """Whether ``‖G‖₂ ≤ 9ε`` (trivially true when ε = 0)."""
        if np.isnan(self.guaranteed_bound):
            return False
        return self.measured_g_norm <= self.guaranteed_bound + 1e-9


def lemma4_check(matrix, perturbation, rank) -> Lemma4Report:
    """Verify Lemma 4's hypotheses and measure its conclusion.

    Args:
        matrix: the unperturbed ``A``.
        perturbation: the perturbation ``F`` (same shape).
        rank: the split index ``k``.
    """
    a = check_matrix(matrix, "matrix")
    f = check_matrix(perturbation, "perturbation")
    if a.shape != f.shape:
        raise ValidationError(
            f"matrix and perturbation shapes differ: {a.shape} vs "
            f"{f.shape}")
    rank = check_rank(rank, min(a.shape) - 1, "rank")

    u_a, s_a, _ = np.linalg.svd(a, full_matrices=False)
    epsilon = float(np.linalg.svd(f, compute_uv=False)[0]) if f.size \
        else 0.0

    tol = 1e-9
    hypotheses = (
        s_a[0] <= SIGMA_TOP_MAX + tol
        and s_a[rank - 1] >= SIGMA_TOP_MIN - tol
        and (rank >= s_a.shape[0] or s_a[rank] <= SIGMA_TAIL_MAX + tol)
        and epsilon <= EPSILON_MAX + tol)

    u_b, _, _ = np.linalg.svd(a + f, full_matrices=False)
    uk_a = orthonormalize_columns(u_a[:, :rank])
    uk_b = orthonormalize_columns(u_b[:, :rank])
    g_norm = residual_after_rotation(uk_a, uk_b)

    return Lemma4Report(
        hypotheses_hold=bool(hypotheses),
        epsilon=epsilon,
        measured_g_norm=g_norm,
        guaranteed_bound=CONCLUSION_FACTOR * epsilon if hypotheses
        else float("nan"))


def make_lemma4_instance(n_rows: int, n_cols: int, rank: int, *,
                         epsilon: float = 0.02, seed=None):
    """Manufacture ``(A, F)`` satisfying Lemma 4's hypotheses exactly.

    ``A`` gets ``rank`` singular values uniform in [19/20, 21/20] and the
    rest uniform in [0, 1/20]; ``F`` is a random matrix rescaled to
    ``‖F‖₂ = ε``.

    Returns:
        ``(A, F)`` as dense arrays.
    """
    rng = as_generator(seed)
    rank = check_rank(rank, min(n_rows, n_cols) - 1, "rank")
    if not 0.0 <= epsilon <= EPSILON_MAX:
        raise ValidationError(
            f"epsilon must lie in [0, 1/20] for Lemma 4, got {epsilon}")

    r = min(n_rows, n_cols)
    left = orthonormalize_columns(rng.standard_normal((n_rows, r)))
    right = orthonormalize_columns(rng.standard_normal((n_cols, r)))
    top = np.sort(rng.uniform(SIGMA_TOP_MIN, SIGMA_TOP_MAX, rank))[::-1]
    tail = np.sort(rng.uniform(0.0, SIGMA_TAIL_MAX, r - rank))[::-1]
    singular_values = np.concatenate([top, tail])
    a = (left * singular_values) @ right.T

    f = rng.standard_normal((n_rows, n_cols))
    norm = float(np.linalg.svd(f, compute_uv=False)[0])
    f = f * (epsilon / norm) if norm > 0 else np.zeros_like(f)
    return a, f
