"""Lemma 3 / Corollary 4: the projected spectrum carries enough energy.

The inner steps of the Theorem 5 proof:

- **Lemma 3**: with ``l ≥ c·log n/ε²``, the p-th singular value of the
  projected matrix ``B = √(n/l)·Rᵀ·A`` satisfies
  ``λ_p² ≥ (1/k)·[(1−ε)·Σᵢ≤k σᵢ² − Σⱼ<p λⱼ²]``.
- **Corollary 4**: summing, ``Σ_{p≤2k} λ_p² ≥ (1−ε)·‖Aₖ‖_F²`` — the
  top-``2k`` projected spectrum retains a ``(1−ε)`` fraction of the
  energy direct rank-``k`` LSI captures.

:func:`corollary4_check` measures both sides on a concrete ``(A, B)``
pair, and :func:`lemma3_check` verifies the per-``p`` recursion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.linalg.operator import as_operator
from repro.utils.validation import check_rank

__all__ = ["Corollary4Report", "corollary4_check", "lemma3_check"]


def _singular_values(matrix) -> np.ndarray:
    return np.linalg.svd(as_operator(matrix).to_dense(),
                         compute_uv=False)


@dataclass(frozen=True)
class Corollary4Report:
    """Measured sides of Corollary 4.

    Attributes:
        projected_energy: ``Σ_{p≤2k} λ_p²`` of the projected matrix.
        direct_energy: ``‖Aₖ‖_F² = Σ_{i≤k} σᵢ²`` of the original.
        epsilon: the ε used in the right-hand side.
    """

    projected_energy: float
    direct_energy: float
    epsilon: float

    @property
    def bound(self) -> float:
        """The guaranteed floor ``(1−ε)·‖Aₖ‖_F²``."""
        return (1.0 - self.epsilon) * self.direct_energy

    @property
    def holds(self) -> bool:
        """Whether the projected spectrum clears the floor."""
        return self.projected_energy >= self.bound - 1e-9

    @property
    def energy_ratio(self) -> float:
        """``projected / direct`` — ≥ (1−ε) when the corollary holds."""
        if self.direct_energy == 0:
            return 1.0
        return self.projected_energy / self.direct_energy


def corollary4_check(original, projected, rank: int, *,
                     epsilon: float) -> Corollary4Report:
    """Measure Corollary 4 on a matrix and its random projection.

    Args:
        original: the ``n × m`` matrix ``A``.
        projected: the ``l × m`` projected-and-scaled matrix ``B``
            (e.g. an :class:`~repro.core.random_projection.
            OrthonormalProjector` output).
        rank: the LSI target ``k``.
        epsilon: the JL accuracy the projection dimension was chosen
            for.
    """
    if not 0.0 <= epsilon < 1.0:
        raise ValidationError(
            f"epsilon must lie in [0, 1), got {epsilon}")
    a_op = as_operator(original)
    b_op = as_operator(projected)
    if a_op.shape[1] != b_op.shape[1]:
        raise ValidationError(
            f"document counts differ: {a_op.shape[1]} vs "
            f"{b_op.shape[1]}")
    rank = check_rank(rank, min(a_op.shape), "rank")

    sigma = _singular_values(a_op)
    lam = _singular_values(b_op)
    top_2k = lam[:min(2 * rank, lam.shape[0])]
    return Corollary4Report(
        projected_energy=float(np.sum(top_2k ** 2)),
        direct_energy=float(np.sum(sigma[:rank] ** 2)),
        epsilon=float(epsilon))


def lemma3_check(original, projected, rank: int, *,
                 epsilon: float) -> bool:
    """Verify Lemma 3's recursion for every ``p`` up to ``2k``.

    Returns True when
    ``λ_p² ≥ (1/k)·[(1−ε)·Σᵢ≤k σᵢ² − Σⱼ<p λⱼ²]`` holds for all
    ``p = 1..min(2k, t)``.
    """
    if not 0.0 <= epsilon < 1.0:
        raise ValidationError(
            f"epsilon must lie in [0, 1), got {epsilon}")
    a_op = as_operator(original)
    rank = check_rank(rank, min(a_op.shape), "rank")
    sigma = _singular_values(a_op)
    lam = _singular_values(projected)
    direct = float(np.sum(sigma[:rank] ** 2))

    running = 0.0
    for p in range(min(2 * rank, lam.shape[0])):
        floor = ((1.0 - epsilon) * direct - running) / rank
        if lam[p] ** 2 < floor - 1e-9:
            return False
        running += float(lam[p] ** 2)
    return True
