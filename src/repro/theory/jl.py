"""Empirical verification of the Johnson–Lindenstrauss lemma (Lemma 2).

The lemma, as the paper states it: for a unit vector ``v ∈ Rⁿ`` and a
random ``l``-dimensional subspace ``H``, the squared projection length
``X`` satisfies ``E[X] = l/n`` and concentrates within ``(1 ± ε)·l/n``
with failure probability below ``2√l·e^{−(l−1)ε²/24}``.

:func:`projected_length_statistics` measures ``X`` over many random
subspaces (or many vectors — by rotational symmetry these are the same
experiment) and reports the empirical mean and failure rate next to the
lemma's prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.theory.bounds import lemma2_tail_probability
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["ProjectionLengthReport", "projected_length_statistics"]


@dataclass(frozen=True)
class ProjectionLengthReport:
    """Measured concentration of the squared projection length.

    Attributes:
        expected: the lemma's mean ``l/n``.
        empirical_mean: mean of the measured ``X`` values.
        empirical_failure_rate: fraction of trials with
            ``|X − l/n| > ε·l/n``.
        predicted_failure_bound: the lemma's tail bound.
        n_trials: number of independent trials.
    """

    expected: float
    empirical_mean: float
    empirical_failure_rate: float
    predicted_failure_bound: float
    n_trials: int

    @property
    def within_bound(self) -> bool:
        """Whether the measured failure rate respects the lemma's tail."""
        return self.empirical_failure_rate <= \
            self.predicted_failure_bound + 1e-12


def projected_length_statistics(ambient_dim: int, projection_dim: int,
                                epsilon: float, *, n_trials: int = 200,
                                seed=None) -> ProjectionLengthReport:
    """Measure ``X`` = squared length of a unit vector's projection.

    Each trial projects a fresh uniformly random unit vector onto a fixed
    random ``l``-dimensional coordinate-free subspace; by rotational
    invariance this matches the lemma's random-subspace formulation while
    needing only one QR factorisation.

    Args:
        ambient_dim: ``n``.
        projection_dim: ``l`` (must satisfy ``l ≤ n``).
        epsilon: the relative deviation threshold.
        n_trials: independent vectors measured.
        seed: RNG seed.
    """
    n = check_positive_int(ambient_dim, "ambient_dim")
    l = check_positive_int(projection_dim, "projection_dim")
    if l > n:
        raise ValidationError(f"projection_dim={l} exceeds ambient_dim={n}")
    if not 0.0 < epsilon < 0.5:
        raise ValidationError(
            f"Lemma 2 requires 0 < ε < 1/2, got {epsilon}")
    n_trials = check_positive_int(n_trials, "n_trials")
    rng = as_generator(seed)

    from repro.linalg.dense import orthonormalize_columns

    basis = orthonormalize_columns(rng.standard_normal((n, l)))
    vectors = rng.standard_normal((n, n_trials))
    vectors /= np.linalg.norm(vectors, axis=0)
    squared_lengths = np.sum((basis.T @ vectors) ** 2, axis=0)

    expected = l / n
    failures = np.abs(squared_lengths - expected) > epsilon * expected
    return ProjectionLengthReport(
        expected=expected,
        empirical_mean=float(squared_lengths.mean()),
        empirical_failure_rate=float(failures.mean()),
        predicted_failure_bound=lemma2_tail_probability(l, epsilon),
        n_trials=n_trials)
