"""Tail bounds and explicit constants from the paper.

Every formula is implemented exactly as printed so that tests and
experiments can quote the paper's own guarantees next to measured
values.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

__all__ = [
    "chernoff_hoeffding_tail",
    "conductance_lower_bound",
    "fkv_additive_error",
    "lemma2_tail_probability",
    "required_samples_for_fkv",
    "theorem5_additive_error",
]


def lemma2_tail_probability(projection_dim: int, epsilon: float) -> float:
    """Lemma 2's tail: ``Pr(|X − l/n| > ε·l/n) < 2√l · e^{−(l−1)ε²/24}``.

    Returns the right-hand side (clipped to 1).
    """
    l = check_positive_int(projection_dim, "projection_dim")
    if not 0.0 < epsilon < 0.5:
        raise ValidationError(
            f"Lemma 2 requires 0 < ε < 1/2, got {epsilon}")
    bound = 2.0 * np.sqrt(l) * np.exp(-(l - 1) * epsilon ** 2 / 24.0)
    return float(min(bound, 1.0))


def chernoff_hoeffding_tail(n_samples: int, deviation: float, *,
                            value_range: float = 1.0) -> float:
    """Hoeffding's inequality: ``Pr(|X̄ − μ| ≥ t) ≤ 2·e^{−2nt²/R²}``.

    The concentration tool behind the Theorem 2 conductance argument
    (sums of independent bounded term counts).

    Args:
        n_samples: number of independent bounded variables ``n``.
        deviation: the deviation ``t`` of the empirical mean.
        value_range: the width ``R`` of each variable's range.
    """
    n = check_positive_int(n_samples, "n_samples")
    if deviation < 0:
        raise ValidationError(
            f"deviation must be non-negative, got {deviation}")
    if value_range <= 0:
        raise ValidationError(
            f"value_range must be positive, got {value_range}")
    bound = 2.0 * np.exp(-2.0 * n * deviation ** 2 / value_range ** 2)
    return float(min(bound, 1.0))


def conductance_lower_bound(n_documents: int, n_topic_terms: int) -> float:
    """Theorem 2's conductance scale ``Ω(t / |T_i|)``.

    The proof shows the document–document Gram graph of one topic block
    has conductance at least of order ``t/|T_i|`` (``t`` documents,
    ``|T_i|`` primary terms).  We return the ratio itself — experiments
    check proportionality, not the hidden constant.
    """
    t = check_positive_int(n_documents, "n_documents")
    terms = check_positive_int(n_topic_terms, "n_topic_terms")
    return float(t) / float(terms)


def theorem5_additive_error(epsilon: float,
                            frobenius_norm_sq: float) -> float:
    """Theorem 5's additive term ``2ε·‖A‖_F²`` (on squared residuals)."""
    if epsilon < 0:
        raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
    if frobenius_norm_sq < 0:
        raise ValidationError("frobenius_norm_sq must be non-negative")
    return 2.0 * epsilon * frobenius_norm_sq


def fkv_additive_error(rank: int, n_samples: int,
                       frobenius_norm_sq: float) -> float:
    """FKV's additive term ``2√(k/s)·‖A‖_F²`` (on squared residuals)."""
    rank = check_positive_int(rank, "rank")
    n_samples = check_positive_int(n_samples, "n_samples")
    if frobenius_norm_sq < 0:
        raise ValidationError("frobenius_norm_sq must be non-negative")
    return 2.0 * np.sqrt(rank / n_samples) * frobenius_norm_sq


def required_samples_for_fkv(rank: int, epsilon: float) -> int:
    """Samples needed so the FKV additive term is ``≤ 2ε·‖A‖_F²``.

    Solving ``√(k/s) ≤ ε`` gives ``s ≥ k/ε²``.
    """
    rank = check_positive_int(rank, "rank")
    if not 0.0 < epsilon <= 1.0:
        raise ValidationError(f"epsilon must lie in (0, 1], got {epsilon}")
    return int(np.ceil(rank / epsilon ** 2))
