"""Theorem 1 (Eckart–Young): ``Aₖ`` is the best rank-``k`` approximation.

Among all ``n × m`` matrices ``C`` of rank at most ``k``, the truncated
SVD ``Aₖ`` minimises ``‖A − C‖_F``.  :func:`eckart_young_gap` pits ``Aₖ``
against random same-rank challengers and reports the worst (smallest)
margin — which must be non-negative, with equality only when a
challenger reproduces ``Aₖ``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.operator import as_operator
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int, check_rank

__all__ = ["EckartYoungReport", "eckart_young_gap"]


@dataclass(frozen=True)
class EckartYoungReport:
    """Outcome of the challenger experiment.

    Attributes:
        optimal_residual: ``‖A − Aₖ‖_F``.
        best_challenger_residual: smallest residual any challenger
            achieved.
        n_challengers: number of random rank-``k`` challengers tried.
    """

    optimal_residual: float
    best_challenger_residual: float
    n_challengers: int

    @property
    def margin(self) -> float:
        """``best challenger − optimum`` (≥ 0 iff Theorem 1 holds here)."""
        return self.best_challenger_residual - self.optimal_residual


def eckart_young_gap(matrix, rank, *, n_challengers: int = 20,
                     seed=None) -> EckartYoungReport:
    """Compare ``Aₖ`` against random rank-``k`` challengers.

    Challengers are drawn two ways (half each): random factor pairs
    ``X·Yᵀ`` least-squares-fitted to ``A`` on a random column space, and
    perturbed truncations (``Aₖ`` rebuilt from a jittered basis).  Both
    families are genuinely rank ≤ k, so Theorem 1 applies to every one.
    """
    op = as_operator(matrix)
    dense = op.to_dense()
    n, m = dense.shape
    rank = check_rank(rank, min(n, m), "rank")
    n_challengers = check_positive_int(n_challengers, "n_challengers")
    rng = as_generator(seed)

    u, s, vt = np.linalg.svd(dense, full_matrices=False)
    optimal = (u[:, :rank] * s[:rank]) @ vt[:rank]
    optimal_residual = float(np.linalg.norm(dense - optimal))

    best = float("inf")
    for challenger_index in range(n_challengers):
        if challenger_index % 2 == 0:
            # Random column space X; best C = X·X⁺·A (projection).
            x = rng.standard_normal((n, rank))
            q, _ = np.linalg.qr(x)
            challenger = q @ (q.T @ dense)
        else:
            # Jittered truncation: perturb the singular basis.
            noise = 0.1 * rng.standard_normal(u[:, :rank].shape)
            q, _ = np.linalg.qr(u[:, :rank] + noise)
            challenger = q @ (q.T @ dense)
        residual = float(np.linalg.norm(dense - challenger))
        best = min(best, residual)

    return EckartYoungReport(optimal_residual=optimal_residual,
                             best_challenger_residual=best,
                             n_challengers=n_challengers)
