"""The paper's explicit formulas and checkable theorem statements.

Each module turns one piece of the paper's mathematics into executable,
testable code:

- :mod:`repro.theory.bounds` — tail bounds and constants: the Lemma 2
  projection tail, Chernoff–Hoeffding, the Theorem 2 conductance lower
  bound, the FKV and Theorem 5 additive errors.
- :mod:`repro.theory.jl` — empirical verification of the
  Johnson–Lindenstrauss lemma exactly as stated (squared projected
  length of a unit vector concentrates at ``l/n``).
- :mod:`repro.theory.eckart_young` — Theorem 1: ``Aₖ`` beats every
  same-rank competitor in Frobenius norm.
- :mod:`repro.theory.stewart` — Lemma 4's hypotheses (the numerical
  constants 21/20, 19/20, 1/20) and its ``‖G‖₂ ≤ 9ε`` conclusion,
  measured on concrete matrices.
"""

from repro.theory.bounds import (
    chernoff_hoeffding_tail,
    conductance_lower_bound,
    fkv_additive_error,
    lemma2_tail_probability,
    theorem5_additive_error,
)
from repro.theory.corollary4 import corollary4_check, lemma3_check
from repro.theory.eckart_young import eckart_young_gap
from repro.theory.jl import projected_length_statistics
from repro.theory.stewart import Lemma4Report, lemma4_check

__all__ = [
    "Lemma4Report",
    "chernoff_hoeffding_tail",
    "conductance_lower_bound",
    "corollary4_check",
    "lemma3_check",
    "eckart_young_gap",
    "fkv_additive_error",
    "lemma2_tail_probability",
    "lemma4_check",
    "projected_length_statistics",
    "theorem5_additive_error",
]
