"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list`` — show the reproducible experiments with one-line summaries;
- ``run <experiment> [--scale f] [--seed n]`` — run one experiment and
  print its paper-style tables;
- ``paper-table [--scale f]`` — shorthand for the paper's §4 table (T1);
- ``report [ids...] [--output path]`` — run experiments and write one
  Markdown report (all of them by default);
- ``info`` — version and experiment inventory summary;
- ``lint [paths...] [--format {text,json,sarif,github}]
  [--select Rxxx,...] [--fix [--check]] [--cache] [--jobs N]
  [--changed [REF]] [--explain Rxxx]`` — run the repo's
  static-analysis engine (reprolint) over the source tree;
- ``bench [...]`` — the unified benchmark harness: run registered
  benchmarks into schema-versioned ``BENCH_*.json`` reports,
  ``bench list`` the registry, ``bench compare`` two reports as a
  regression gate (see ``repro bench --help``);
- ``serve-stats <bundle> [--json] [--verify]`` — inspect a saved index
  bundle's manifest: shape, drift accounting, and serving counters,
  without loading the array payload.

The CLI exists so a downstream user can regenerate any artifact without
writing Python; the benchmark harness remains the canonical driver.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro import __version__

__all__ = ["build_parser", "main"]

#: Experiment id → (module summary, config factory, runner import path).
_EXPERIMENTS = {
    "t1": ("the paper's section-4 angle-statistics table",
           "repro.experiments.angle_table",
           "AngleTableConfig", "run_angle_table"),
    "e2": ("skewness vs corpus size and epsilon (Theorems 2/3)",
           "repro.experiments.skewness_sweep",
           "SkewnessSweepConfig", "run_skewness_sweep"),
    "e3": ("Theorem 5 random-projection recovery",
           "repro.experiments.rp_recovery",
           "RPRecoveryConfig", "run_rp_recovery"),
    "e4": ("Johnson-Lindenstrauss distance distortion (Lemma 2)",
           "repro.experiments.jl_distortion",
           "JLDistortionConfig", "run_jl_distortion"),
    "e5": ("direct LSI vs two-step running time",
           "repro.experiments.timing",
           "TimingConfig", "run_timing"),
    "e6": ("synonym pairs under LSI",
           "repro.experiments.synonymy_exp",
           "SynonymyConfig", "run_synonymy"),
    "e7": ("Theorem 6 spectral subgraph discovery",
           "repro.experiments.graph_topics",
           "GraphTopicsConfig", "run_graph_topics"),
    "e8": ("retrieval quality: LSI vs VSM vs RP+LSI",
           "repro.experiments.retrieval_exp",
           "RetrievalConfig", "run_retrieval_experiment"),
    "e9": ("FKV sampling vs uniform sampling vs projection",
           "repro.experiments.fkv_exp",
           "FKVConfig", "run_fkv_experiment"),
    "e10": ("spectral collaborative filtering",
            "repro.experiments.cf_exp",
            "CFConfig", "run_cf_experiment"),
    "x1": ("extension: multi-topic (mixture) documents",
           "repro.experiments.mixture_ext",
           "MixtureConfig", "run_mixture_experiment"),
    "x2": ("extension: robustness to authorship styles",
           "repro.experiments.style_robustness",
           "StyleRobustnessConfig", "run_style_robustness"),
    "x3": ("extension: polysemous terms",
           "repro.experiments.polysemy_exp",
           "PolysemyConfig", "run_polysemy"),
    "x4": ("Theorem 2's spectral engine: block conductance and gaps",
           "repro.experiments.conductance_exp",
           "ConductanceConfig", "run_conductance_experiment"),
    "x5": ("folding-in drift vs refitting",
           "repro.experiments.folding_exp",
           "FoldingConfig", "run_folding_experiment"),
    "x6": ("document clustering/classification per space",
           "repro.experiments.classification_exp",
           "ClassificationConfig", "run_classification"),
    "x7": ("query repair (Rocchio PRF) vs space repair (LSI)",
           "repro.experiments.prf_exp",
           "PRFConfig", "run_prf_experiment"),
}


def _load_experiment(experiment_id: str):
    import importlib

    summary, module_name, config_name, runner_name = \
        _EXPERIMENTS[experiment_id]
    module = importlib.import_module(module_name)
    return getattr(module, config_name), getattr(module, runner_name)


def _apply_overrides(config, *, scale=None, seed=None):
    """Return a config with seed replaced and (for T1) scaling applied."""
    if scale is not None and hasattr(config, "scaled"):
        config = config.scaled(scale)
    if seed is not None and hasattr(config, "seed"):
        config = dataclasses.replace(config, seed=seed)
    return config


def _command_list(_args) -> int:
    width = max(len(k) for k in _EXPERIMENTS)
    for experiment_id, (summary, *_rest) in _EXPERIMENTS.items():
        print(f"  {experiment_id:<{width}}  {summary}")
    return 0


def _command_info(_args) -> int:
    print(f"repro {__version__} — reproduction of 'Latent Semantic "
          "Indexing: A Probabilistic Analysis' (PODS 1998)")
    print(f"{len(_EXPERIMENTS)} reproducible experiments; "
          "run `python -m repro list` to enumerate them")
    return 0


def _command_run(args) -> int:
    experiment_id = args.experiment.lower()
    if experiment_id not in _EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; choose from "
              f"{', '.join(_EXPERIMENTS)}", file=sys.stderr)
        return 2
    config_cls, runner = _load_experiment(experiment_id)
    config = _apply_overrides(config_cls(), scale=args.scale,
                              seed=args.seed)
    result = runner(config)
    print(result.render())
    return 0


def _command_report(args) -> int:
    from repro.experiments.report import write_report

    experiment_ids = args.experiments or None
    path = write_report(args.output, experiment_ids)
    print(f"wrote {path}")
    return 0


def _load_reprolint():
    """Import the reprolint CLI, reaching back to the repo checkout.

    reprolint lives in ``tools/`` (repository-side, not shipped in the
    wheel), so an src-layout import needs the repository root on
    ``sys.path``; for installed copies without the checkout we raise a
    clear error instead of an ImportError traceback.
    """
    try:
        from tools.reprolint import cli as reprolint_cli
    except ImportError:
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        if not (root / "tools" / "reprolint").is_dir():
            raise ModuleNotFoundError(
                "tools.reprolint not importable: `repro lint` runs "
                "from a repository checkout (tools/ is not packaged)")
        sys.path.insert(0, str(root))
        from tools.reprolint import cli as reprolint_cli
    return reprolint_cli


def _load_bench_harness():
    """Import the benchmark harness, reaching back to the checkout.

    Like reprolint, the harness lives repository-side
    (``benchmarks/harness``, not shipped in the wheel), so running
    ``repro bench`` needs the ``benchmarks/`` directory on ``sys.path``;
    installed copies without the checkout get a clear error.
    """
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    bench_dir = root / "benchmarks"
    if not (bench_dir / "harness").is_dir():
        raise ModuleNotFoundError(
            "benchmarks/harness not importable: `repro bench` runs "
            "from a repository checkout (benchmarks/ is not packaged)")
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    from harness import main as harness_main
    return harness_main


def _command_bench(bench_argv) -> int:
    """Delegate ``repro bench ...`` to the harness CLI."""
    try:
        harness_main = _load_bench_harness()
    except ModuleNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    return harness_main.main(list(bench_argv))


def _command_lint(args) -> int:
    try:
        reprolint_cli = _load_reprolint()
    except ModuleNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2
    argv = list(args.paths)
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.config:
        argv += ["--config", args.config]
    if args.list_rules:
        argv.append("--list-rules")
    if args.explain:
        argv += ["--explain", args.explain]
    if args.changed is not None:
        argv.append("--changed")
        if args.changed != "HEAD":
            argv.append(args.changed)
    if args.fix:
        argv.append("--fix")
    if args.check:
        argv.append("--check")
    if args.cache:
        argv.append("--cache")
    if args.cache_file:
        argv += ["--cache-file", args.cache_file]
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    return reprolint_cli.main(argv)


def _sharded_file_failures(directory, manifest) -> list:
    """Per-file checksum failures across a sharded-index directory.

    Covers every shard bundle's arrays (via
    :func:`repro.serving.bundle.checksum_failures`) plus the sharded
    layer's own id files; failure names are prefixed with their shard
    so the report pinpoints the damaged file.
    """
    from pathlib import Path

    from repro.errors import PersistenceError
    from repro.serving.bundle import checksum_failures, read_manifest, \
        sha256_file

    directory = Path(directory)
    failures = []
    extras = [(str(entry.get("ids_file", "")),
               entry.get("ids_sha256"))
              for entry in manifest.get("shards", [])]
    extras.append((str(manifest.get("retired_file",
                                    "retired_ids.npy")),
                   manifest.get("retired_sha256")))
    for name, expected in extras:
        path = directory / name
        if not path.is_file():
            failures.append(f"{name}: missing (expected {expected})")
        elif expected is not None:
            actual = sha256_file(path)
            if actual != expected:
                failures.append(f"{name}: expected {expected}, "
                                f"actual {actual}")
    for entry in manifest.get("shards", []):
        bundle_dir = directory / str(entry.get("bundle", ""))
        try:
            shard_manifest = read_manifest(bundle_dir)
        except PersistenceError as error:
            failures.append(f"{entry.get('bundle')}: {error}")
            continue
        for mismatch in checksum_failures(bundle_dir, shard_manifest):
            failures.append(
                f"{entry.get('bundle')}/{mismatch.describe()}")
    return failures


def _print_serving_counters(stats, threshold) -> None:
    """The shared counter block of the ``serve-stats`` text report."""
    print(f"drift             {stats.drift:.6f} "
          f"(threshold={'-' if threshold is None else threshold}, "
          f"refit recommended={stats.refit_recommended})")
    print(f"queries served    {stats.queries_served} "
          f"in {stats.batches_served} batches")
    print(f"result cache      hits={stats.cache_hits} "
          f"misses={stats.cache_misses} "
          f"evictions={stats.cache_evictions} "
          f"hit rate={stats.cache_hit_rate:.3f}")
    print(f"updates           fold-ins={stats.fold_ins_since_refit} "
          f"deletes={stats.deletes_since_refit} "
          f"refits={stats.refits}")


def _print_writer_state(manifest, stats) -> None:
    """The writer drift-state block of the ``serve-stats`` report.

    Bundles saved mid-write (folded/tombstoned documents not yet
    absorbed by a refit) get their pending state spelled out: how many
    documents each refit mode would absorb, the energy split behind
    the drift number, and the remaining headroom to the configured
    ``drift_threshold``.
    """
    n_documents = int(manifest.get("n_documents") or 0)
    n_original = int(manifest.get("n_original") or n_documents)
    folded = max(0, n_documents - n_original)
    tombstoned = int(manifest.get("n_tombstoned") or 0)
    unabsorbed = float(manifest.get("unabsorbed_energy") or 0.0)
    captured = manifest.get("captured_energy")
    threshold = manifest.get("drift_threshold")

    print(f"writer state      fold-ins pending={folded} "
          f"tombstoned={tombstoned}")
    if captured is not None:
        print(f"  energy          unabsorbed={unabsorbed:.6g} "
              f"captured={float(captured):.6g}")
    if threshold is None:
        print("  refit policy    disabled (no drift threshold)")
    else:
        headroom = float(threshold) - stats.drift
        state = "CROSSED — refit recommended" if headroom <= 0 \
            else f"headroom {headroom:.6f}"
        print(f"  refit policy    drift {stats.drift:.6f} of "
              f"threshold {threshold} ({state})")
    if folded > 0:
        print("  refit path      full refit(matrix) — bundles do not "
              "persist the term-space fold buffer the incremental "
              "merge needs")
    elif tombstoned > 0:
        print("  refit path      full refit(matrix) — tombstoned "
              "mass only leaves the basis on a from-scratch "
              "decomposition")
    else:
        print("  refit path      none pending (incremental refit() "
              "would be a no-op)")


def _report_verification(failures, n_checked: int) -> int:
    """Print the ``--verify`` outcome; returns the exit code."""
    if failures:
        print(f"checksum          FAILED ({len(failures)} file(s))")
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 2
    print(f"checksum          verified ({n_checked} file(s))")
    return 0


def _command_serve_stats_sharded(args) -> int:
    """``serve-stats`` for a sharded-index directory: per-shard rows."""
    import json
    from pathlib import Path

    from repro.errors import PersistenceError
    from repro.serving.bundle import read_manifest
    from repro.serving.sharded import read_sharded_manifest
    from repro.serving.stats import ServingStats

    directory = Path(args.bundle)
    try:
        manifest = read_sharded_manifest(directory)
        shard_manifests = []
        for entry in manifest.get("shards", []):
            shard_manifests.append(
                (str(entry.get("bundle", "")),
                 read_manifest(directory / str(entry.get("bundle",
                                                         "")))))
    except PersistenceError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.format == "json":
        payload = dict(manifest)
        payload["shard_manifests"] = {name: m
                                      for name, m in shard_manifests}
        if args.verify:
            failures = _sharded_file_failures(directory, manifest)
            payload["verification"] = {"ok": not failures,
                                       "failures": failures}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 2 if args.verify and failures else 0

    print(f"sharded index     {args.bundle}")
    print(f"format            {manifest.get('format')} "
          f"(schema v{manifest.get('schema_version')})")
    print(f"created           {manifest.get('created_at') or '-'}")
    print(f"layout            "
          f"assignment={manifest.get('assignment')} "
          f"shards={manifest.get('n_shards')} "
          f"cursor={manifest.get('cursor')}")
    print(f"documents         total={manifest.get('n_documents')} "
          f"active={manifest.get('n_active')} "
          f"retired={manifest.get('n_retired', 0)}")
    totals = ServingStats()
    rows = []
    for name, shard_manifest in shard_manifests:
        stats = ServingStats.from_dict(shard_manifest.get("stats")
                                       or {})
        rows.append((name, shard_manifest, stats))
        totals = ServingStats(
            queries_served=totals.queries_served
            + stats.queries_served,
            batches_served=totals.batches_served
            + stats.batches_served,
            cache_hits=totals.cache_hits + stats.cache_hits,
            cache_misses=totals.cache_misses + stats.cache_misses,
            cache_evictions=totals.cache_evictions
            + stats.cache_evictions,
            fold_ins_since_refit=totals.fold_ins_since_refit
            + stats.fold_ins_since_refit,
            deletes_since_refit=totals.deletes_since_refit
            + stats.deletes_since_refit,
            refits=totals.refits + stats.refits,
            dtype=stats.dtype)
    print(f"compute dtype     {totals.dtype}")
    print(f"queries served    {totals.queries_served} "
          f"in {totals.batches_served} batches (all shards)")
    print(f"result cache      hits={totals.cache_hits} "
          f"misses={totals.cache_misses} "
          f"evictions={totals.cache_evictions}")
    print(f"updates           "
          f"fold-ins={totals.fold_ins_since_refit} "
          f"deletes={totals.deletes_since_refit} "
          f"refits={totals.refits}")
    print("per-shard breakdown:")
    for name, shard_manifest, stats in rows:
        print(f"  {name}  "
              f"documents={shard_manifest.get('n_documents')} "
              f"(tombstoned={shard_manifest.get('n_tombstoned', 0)}) "
              f"queries={stats.queries_served} "
              f"hit rate={stats.cache_hit_rate:.3f} "
              f"drift={stats.drift:.6f}")
    if args.verify:
        failures = _sharded_file_failures(directory, manifest)
        n_checked = sum(len((m.get("checksums") or {}))
                        for _, m in shard_manifests) \
            + len(manifest.get("shards", [])) + 1
        return _report_verification(failures, n_checked)
    return 0


def _command_serve_stats(args) -> int:
    """Render a saved index's manifest summary and serving counters.

    Dispatches on the directory's format marker: sharded-index
    directories get a per-shard breakdown, plain bundles the classic
    single-index report.  With ``--verify``, checksum failures are
    reported per file (name plus expected/actual digest) and the
    command exits 2.
    """
    import json

    from repro.errors import PersistenceError
    from repro.serving.bundle import checksum_failures, read_manifest
    from repro.serving.sharded import is_sharded_bundle
    from repro.serving.stats import ServingStats

    if is_sharded_bundle(args.bundle):
        return _command_serve_stats_sharded(args)

    try:
        manifest = read_manifest(args.bundle)
    except PersistenceError as error:
        print(str(error), file=sys.stderr)
        return 2
    failures = []
    if args.verify:
        failures = [f.describe()
                    for f in checksum_failures(args.bundle, manifest)]
    if args.format == "json":
        payload = dict(manifest)
        if args.verify:
            payload["verification"] = {"ok": not failures,
                                       "failures": failures}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 2 if failures else 0

    stats = ServingStats.from_dict(manifest.get("stats") or {})
    print(f"bundle            {args.bundle}")
    print(f"format            {manifest.get('format')} "
          f"(schema v{manifest.get('schema_version')})")
    print(f"index version     {manifest.get('index_version') or '-'}")
    print(f"created           {manifest.get('created_at') or '-'}")
    print(f"shape             rank={manifest.get('rank')} "
          f"terms={manifest.get('n_terms')} "
          f"documents={manifest.get('n_documents')} "
          f"(original={manifest.get('n_original')}, "
          f"tombstoned={manifest.get('n_tombstoned', 0)})")
    print(f"compute dtype     "
          f"{manifest.get('compute_dtype', stats.dtype)}")
    threshold = manifest.get("drift_threshold")
    _print_serving_counters(stats, threshold)
    _print_writer_state(manifest, stats)
    if args.verify:
        n_checked = len(manifest.get("checksums") or {})
        return _report_verification(failures, n_checked)
    return 0


def _command_paper_table(args) -> int:
    config_cls, runner = _load_experiment("t1")
    config = _apply_overrides(config_cls(), scale=args.scale,
                              seed=args.seed)
    result = runner(config)
    print(result.render())
    from repro.experiments.angle_table import PAPER_REPORTED

    print("\npaper reported (radians):")
    for (kind, space), values in PAPER_REPORTED.items():
        print(f"  {kind:>10}/{space:<8} min={values[0]} max={values[1]} "
              f"avg={values[2]} std={values[3]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Latent Semantic Indexing: A "
                    "Probabilistic Analysis' (PODS 1998)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list reproducible experiments") \
        .set_defaults(handler=_command_list)
    subparsers.add_parser("info", help="version and inventory") \
        .set_defaults(handler=_command_info)

    run_parser = subparsers.add_parser(
        "run", help="run one experiment and print its tables")
    run_parser.add_argument("experiment",
                            help="experiment id (see `list`)")
    run_parser.add_argument("--scale", type=float, default=None,
                            help="scale factor for configs that "
                                 "support it (e.g. t1)")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override the experiment seed")
    run_parser.set_defaults(handler=_command_run)

    report_parser = subparsers.add_parser(
        "report",
        help="run experiments and write one Markdown report")
    report_parser.add_argument("--output", default="report.md",
                               help="output path (default report.md)")
    report_parser.add_argument("experiments", nargs="*",
                               help="experiment ids (default: all)")
    report_parser.set_defaults(handler=_command_report)

    table_parser = subparsers.add_parser(
        "paper-table",
        help="reproduce the paper's angle table (alias of `run t1`)")
    table_parser.add_argument("--scale", type=float, default=None)
    table_parser.add_argument("--seed", type=int, default=None)
    table_parser.set_defaults(handler=_command_paper_table)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the repo's static-analysis pass (reprolint)")
    lint_parser.add_argument("paths", nargs="*",
                             help="files or directories to lint "
                                  "(default: src/repro)")
    lint_parser.add_argument("--format", "-f",
                             choices=("text", "json", "sarif",
                                      "github"), default="text",
                             help="report format (default: text)")
    lint_parser.add_argument("--select", default=None,
                             metavar="Rxxx,...",
                             help="comma-separated rule codes to run")
    lint_parser.add_argument("--config", default=None,
                             metavar="PYPROJECT",
                             help="explicit pyproject.toml to read")
    lint_parser.add_argument("--list-rules", action="store_true",
                             help="print the rule catalogue and exit")
    lint_parser.add_argument("--explain", default=None,
                             metavar="Rxxx",
                             help="print one rule's catalogue entry "
                                  "and exit")
    lint_parser.add_argument("--changed", nargs="?", const="HEAD",
                             default=None, metavar="REF",
                             help="lint only files changed vs REF "
                                  "plus their reverse dependencies "
                                  "(implies --cache)")
    lint_parser.add_argument("--fix", action="store_true",
                             help="apply the safe autofixes before "
                                  "linting")
    lint_parser.add_argument("--check", action="store_true",
                             help="with --fix: dry-run; exit 1 if "
                                  "fixes are pending")
    lint_parser.add_argument("--cache", action="store_true",
                             help="reuse the incremental lint cache")
    lint_parser.add_argument("--cache-file", default=None,
                             metavar="PATH",
                             help="explicit cache location (implies "
                                  "--cache)")
    lint_parser.add_argument("--jobs", "-j", type=int, default=1,
                             metavar="N",
                             help="lint across N processes (0 = one "
                                  "per CPU)")
    lint_parser.set_defaults(handler=_command_lint)

    stats_parser = subparsers.add_parser(
        "serve-stats",
        help="inspect a saved index bundle's manifest and counters")
    stats_parser.add_argument("bundle",
                              help="path to a saved index bundle or "
                                   "sharded-index directory")
    stats_parser.add_argument("--json", dest="format",
                              action="store_const", const="json",
                              default="text",
                              help="print the raw manifest as JSON")
    stats_parser.add_argument("--verify", action="store_true",
                              help="recompute every array file's "
                                   "checksum; mismatches are listed "
                                   "per file")
    stats_parser.set_defaults(handler=_command_serve_stats)

    bench_parser = subparsers.add_parser(
        "bench",
        help="run/compare benchmarks (see `repro bench --help`)")
    bench_parser.add_argument("bench_args", nargs=argparse.REMAINDER,
                              help="arguments for the harness CLI")
    bench_parser.set_defaults(
        handler=lambda args: _command_bench(args.bench_args))
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # `bench` owns its argv (flags like --tag would trip argparse's
    # REMAINDER handling), so dispatch before the main parser runs.
    if argv and argv[0] == "bench":
        return _command_bench(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 1
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
