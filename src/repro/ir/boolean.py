"""Boolean retrieval: the "precise predicate" paradigm.

The paper's introduction contrasts database queries ("precise
predicates, the employee–manager–salary paradigm") with the nebulous
relevance of IR.  Boolean retrieval is exactly that paradigm applied to
text — documents either satisfy ``(car OR automobile) AND NOT truck`` or
they don't — and it is the third baseline the retrieval experiments can
compare LSI against.

The query language::

    query  := or
    or     := and ( "OR" and )*
    and    := unary ( ("AND")? unary )*      # juxtaposition = AND
    unary  := "NOT" unary | "(" query ")" | TERM

evaluated by a recursive-descent parser over set operations on the
inverted index's postings.
"""

from __future__ import annotations

import re

from repro.errors import ValidationError
from repro.ir.index import InvertedIndex
from repro.corpus.vocabulary import Vocabulary

__all__ = ["BooleanQueryError", "BooleanRetriever"]

_TOKEN_PATTERN = re.compile(r"\(|\)|[A-Za-z_][A-Za-z0-9_]*")

#: Reserved operator words (case-insensitive).
_OPERATORS = {"AND", "OR", "NOT"}


class BooleanQueryError(ValidationError):
    """A Boolean query failed to parse or referenced unusable syntax."""


class _Parser:
    """Recursive-descent parser producing a document-id set."""

    def __init__(self, tokens, evaluate_term, universe: frozenset):
        self._tokens = tokens
        self._position = 0
        self._evaluate_term = evaluate_term
        self._universe = universe

    def parse(self) -> set[int]:
        result = self._or()
        if self._position != len(self._tokens):
            raise BooleanQueryError(
                f"unexpected token {self._tokens[self._position]!r}")
        return result

    def _peek(self):
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self):
        token = self._peek()
        self._position += 1
        return token

    def _or(self) -> set[int]:
        result = self._and()
        while self._peek() is not None and \
                self._peek().upper() == "OR":
            self._advance()
            result = result | self._and()
        return result

    def _and(self) -> set[int]:
        result = self._unary()
        while True:
            token = self._peek()
            if token is None or token == ")" or token.upper() == "OR":
                return result
            if token.upper() == "AND":
                self._advance()
                token = self._peek()
                if token is None:
                    raise BooleanQueryError("query ends after AND")
            result = result & self._unary()

    def _unary(self) -> set[int]:
        token = self._peek()
        if token is None:
            raise BooleanQueryError("unexpected end of query")
        if token.upper() == "NOT":
            self._advance()
            return self._universe - self._unary()
        if token == "(":
            self._advance()
            result = self._or()
            if self._advance() != ")":
                raise BooleanQueryError("missing closing parenthesis")
            return result
        if token == ")":
            raise BooleanQueryError("unexpected ')'")
        self._advance()
        return self._evaluate_term(token)


class BooleanRetriever:
    """Set-semantics retrieval over an inverted index.

    Args:
        index: the postings source.
        vocabulary: optional term-string mapping; without it, queries
            must use ``t<id>`` pseudo-terms (e.g. ``t13 AND NOT t7``).
        process_token: optional callable applied to each query term
            before lookup (e.g. a pipeline's stem+lowercase step), so
            queries go through the same normalisation as documents.
    """

    def __init__(self, index: InvertedIndex, *,
                 vocabulary: Vocabulary | None = None,
                 process_token=None):
        if not isinstance(index, InvertedIndex):
            raise ValidationError("expected an InvertedIndex")
        self._index = index
        self._vocabulary = vocabulary
        self._process_token = process_token
        self._universe = frozenset(range(index.n_documents))

    @property
    def n_documents(self) -> int:
        """Number of retrievable documents."""
        return self._index.n_documents

    def _term_id(self, token: str) -> int | None:
        if self._process_token is not None:
            token = self._process_token(token)
        if self._vocabulary is not None:
            if token in self._vocabulary:
                return self._vocabulary.term_id(token)
            return None
        match = re.fullmatch(r"t(\d+)", token)
        if match is None:
            raise BooleanQueryError(
                f"no vocabulary attached; use t<id> pseudo-terms, got "
                f"{token!r}")
        term = int(match.group(1))
        if term >= self._index.n_terms:
            return None
        return term

    def _documents_containing(self, token: str) -> set[int]:
        term = self._term_id(token)
        if term is None:
            return set()
        doc_ids, _ = self._index.postings(term)
        return set(int(d) for d in doc_ids)

    def search(self, query: str) -> set[int]:
        """Evaluate a Boolean query; returns the satisfying document set."""
        tokens = _TOKEN_PATTERN.findall(query)
        if not tokens:
            raise BooleanQueryError("empty query")
        parser = _Parser(tokens, self._documents_containing,
                         self._universe)
        return parser.parse()

    def search_ranked(self, query: str) -> list[int]:
        """Boolean matching set in ascending-id order (no scores).

        The point of comparison with ranked engines: Boolean retrieval
        has no notion of graded relevance, so its "ranking" is
        arbitrary — the classic criticism the vector model answers.
        """
        return sorted(self.search(query))
