"""Relevance feedback: Rocchio reformulation and pseudo-relevance
feedback.

The classical complement to LSI's synonymy story: instead of changing
the *space* (LSI), change the *query* — pull it toward known-relevant
documents and away from known-irrelevant ones:

    ``q' = α·q + β·centroid(relevant) − γ·centroid(non-relevant)``

Pseudo-relevance feedback (PRF) applies the same update blindly,
treating the top-``k`` initial results as relevant.  Both operate in
raw term space here, so experiments can compare "fix the query"
against "fix the space" on the same vocabulary-mismatch workloads —
and compose them (PRF on top of LSI retrieval).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.linalg.operator import as_operator
from repro.utils.validation import check_positive_int, check_vector

__all__ = ["pseudo_relevance_feedback", "rocchio_update"]


def rocchio_update(query_vector, document_matrix, relevant_ids,
                   non_relevant_ids=(), *, alpha: float = 1.0,
                   beta: float = 0.75, gamma: float = 0.15,
                   clip_negative: bool = True) -> np.ndarray:
    """The Rocchio query reformulation.

    Args:
        query_vector: the original term-space query.
        document_matrix: the ``n × m`` (weighted) term–document matrix.
        relevant_ids: ids of documents judged relevant.
        non_relevant_ids: ids judged non-relevant.
        alpha / beta / gamma: the classic mixing weights.
        clip_negative: zero out negative coordinates of the result (the
            standard practice — negative term weights are meaningless
            for most retrieval functions).

    Returns:
        The reformulated query vector.
    """
    query = check_vector(query_vector, "query_vector")
    op = as_operator(document_matrix)
    if query.shape[0] != op.shape[0]:
        raise ValidationError(
            f"query has {query.shape[0]} terms; matrix has "
            f"{op.shape[0]}")

    def centroid(ids) -> np.ndarray:
        ids = [int(i) for i in ids]
        for doc in ids:
            if not 0 <= doc < op.shape[1]:
                raise ValidationError(
                    f"document id {doc} out of range")
        if not ids:
            return np.zeros(op.shape[0])
        indicator = np.zeros(op.shape[1])
        for doc in ids:
            indicator[doc] += 1.0 / len(ids)
        return op.matvec(indicator)

    updated = (alpha * query + beta * centroid(relevant_ids)
               - gamma * centroid(non_relevant_ids))
    if clip_negative:
        updated = np.maximum(updated, 0.0)
    return updated


def pseudo_relevance_feedback(retriever, query_vector, document_matrix,
                              *, feedback_depth: int = 5,
                              alpha: float = 1.0, beta: float = 0.75,
                              rounds: int = 1) -> np.ndarray:
    """Blind Rocchio: assume the current top-``k`` results are relevant.

    Args:
        retriever: any engine with a ranking method (``rank`` for VSM /
            inverted index, ``rank_documents`` for LSI-family models).
        query_vector: the starting query.
        document_matrix: the matrix the retriever indexed.
        feedback_depth: how many top results to treat as relevant.
        alpha / beta: Rocchio weights (γ is 0 — PRF has no judged
            negatives).
        rounds: feedback iterations.

    Returns:
        The expanded query vector after ``rounds`` updates.
    """
    check_positive_int(feedback_depth, "feedback_depth")
    check_positive_int(rounds, "rounds")
    rank = getattr(retriever, "rank_documents", None) or \
        getattr(retriever, "rank", None)
    if rank is None:
        raise ValidationError(
            "retriever must expose rank() or rank_documents()")

    query = check_vector(query_vector, "query_vector").copy()
    for _ in range(rounds):
        top = rank(query, top_k=feedback_depth)
        query = rocchio_update(query, document_matrix, top,
                               alpha=alpha, beta=beta, gamma=0.0)
    return query
