"""Ground-truth relevance judgments.

In the probabilistic corpus model, relevance has an unambiguous
definition the paper's analysis leans on: a query generated from topic
``T`` is relevant to exactly the documents generated from ``T``.
:func:`relevance_from_labels` materialises that rule as per-query
relevant sets for the metrics module.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["relevance_from_labels", "relevance_matrix"]


def relevance_from_labels(document_labels, query_labels) -> list[set[int]]:
    """Relevant-document sets for topically labelled queries.

    Args:
        document_labels: length-``m`` topic index per document.
        query_labels: length-``q`` topic index per query.

    Returns:
        A list of ``q`` sets; set ``j`` holds the ids of documents whose
        label equals query ``j``'s label.
    """
    document_labels = np.asarray(document_labels, dtype=np.int64)
    query_labels = np.asarray(query_labels, dtype=np.int64)
    if document_labels.ndim != 1 or query_labels.ndim != 1:
        raise ValidationError("labels must be 1-D arrays")
    by_topic: dict[int, set[int]] = {}
    for doc_id, label in enumerate(document_labels):
        by_topic.setdefault(int(label), set()).add(doc_id)
    return [set(by_topic.get(int(label), set())) for label in query_labels]


def relevance_matrix(document_labels, query_labels) -> np.ndarray:
    """Boolean ``(q, m)`` relevance matrix (row per query)."""
    document_labels = np.asarray(document_labels, dtype=np.int64)
    query_labels = np.asarray(query_labels, dtype=np.int64)
    if document_labels.ndim != 1 or query_labels.ndim != 1:
        raise ValidationError("labels must be 1-D arrays")
    return query_labels[:, None] == document_labels[None, :]
