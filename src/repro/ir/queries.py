"""Query generation from the corpus model.

Queries are treated exactly like (short) documents — the paper's setting,
where queries are projected into the LSI space the same way documents
are.  A query generated from topic ``T`` is relevant to the documents
generated from ``T``.

The short-query regime is what exposes the synonymy problem: a 2-term
query about a topic matches only the relevant documents that contain
those exact terms under the vector-space model, while LSI scores all
documents in the topic's subspace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.corpus.model import CorpusModel
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["QuerySet", "generate_topic_queries", "single_term_queries"]


@dataclass(frozen=True)
class QuerySet:
    """A batch of queries with ground-truth topic labels.

    Attributes:
        vectors: ``(n_terms, n_queries)`` dense array; column ``j`` is the
            term-count vector of query ``j``.
        topic_labels: length ``n_queries``; the generating topic of each
            query.
    """

    vectors: np.ndarray
    topic_labels: np.ndarray

    def __post_init__(self):
        if self.vectors.ndim != 2:
            raise ValidationError("vectors must be 2-D (terms × queries)")
        if self.topic_labels.shape != (self.vectors.shape[1],):
            raise ValidationError(
                f"{self.vectors.shape[1]} query columns but "
                f"{self.topic_labels.shape[0]} labels")

    @property
    def n_queries(self) -> int:
        """Number of queries in the set."""
        return int(self.vectors.shape[1])

    def query(self, index: int) -> np.ndarray:
        """The term vector of query ``index``."""
        return self.vectors[:, int(index)].copy()

    def __iter__(self):
        for j in range(self.n_queries):
            yield self.vectors[:, j], int(self.topic_labels[j])


def generate_topic_queries(model: CorpusModel, *, queries_per_topic: int = 5,
                           query_length: int = 3, seed=None,
                           primary_only: bool = False) -> QuerySet:
    """Sample short single-topic queries from every topic of the model.

    Args:
        model: the generating corpus model.
        queries_per_topic: queries drawn per topic.
        query_length: term occurrences per query (short queries stress
            the synonymy problem).
        seed: RNG seed.
        primary_only: restrict query terms to the topic's primary set
            (conditioning the topic distribution on it) — the "focused
            user" regime.

    Returns:
        A :class:`QuerySet` with ``n_topics * queries_per_topic`` queries.
    """
    queries_per_topic = check_positive_int(queries_per_topic,
                                           "queries_per_topic")
    query_length = check_positive_int(query_length, "query_length")
    rng = as_generator(seed)

    vectors = []
    labels = []
    for topic_index, topic in enumerate(model.topics):
        distribution = topic.probabilities
        if primary_only:
            if not topic.primary_terms:
                raise ValidationError(
                    f"topic {topic_index} has no primary set; cannot use "
                    "primary_only")
            mask = np.zeros(model.universe_size)
            idx = np.fromiter(topic.primary_terms, dtype=np.int64)
            mask[idx] = distribution[idx]
            distribution = mask / mask.sum()
        for _ in range(queries_per_topic):
            counts = rng.multinomial(query_length, distribution)
            vectors.append(counts.astype(np.float64))
            labels.append(topic_index)
    return QuerySet(vectors=np.column_stack(vectors),
                    topic_labels=np.asarray(labels, dtype=np.int64))


def single_term_queries(model: CorpusModel, *, terms_per_topic: int = 3,
                        seed=None) -> QuerySet:
    """One-hot queries on each topic's highest-probability primary terms.

    The most extreme vocabulary-mismatch probe: the query is a single
    term, so under VSM only documents containing that exact term can
    score above zero.
    """
    terms_per_topic = check_positive_int(terms_per_topic, "terms_per_topic")
    rng = as_generator(seed)
    vectors = []
    labels = []
    for topic_index, topic in enumerate(model.topics):
        if topic.primary_terms:
            candidates = np.fromiter(topic.primary_terms, dtype=np.int64)
        else:
            candidates = topic.support
        probs = topic.probabilities[candidates]
        order = candidates[np.argsort(-probs)]
        chosen = order[:terms_per_topic]
        if chosen.size < terms_per_topic:
            extra = rng.choice(candidates,
                               size=terms_per_topic - chosen.size)
            chosen = np.concatenate([chosen, extra])
        for term in chosen:
            vector = np.zeros(model.universe_size)
            vector[int(term)] = 1.0
            vectors.append(vector)
            labels.append(topic_index)
    return QuerySet(vectors=np.column_stack(vectors),
                    topic_labels=np.asarray(labels, dtype=np.int64))
