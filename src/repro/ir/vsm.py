"""The conventional vector-space model — LSI's baseline.

Documents and queries are vectors in raw term space; similarity is the
cosine.  This is the "more conventional vector-based method" the paper
reports LSI outperforming on precision and recall, so the reproduction
implements it faithfully as the control arm of every retrieval
experiment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, ValidationError
from repro.ir.index import InvertedIndex
from repro.linalg.sparse import CSRMatrix

__all__ = ["VectorSpaceModel"]


class VectorSpaceModel:
    """Cosine retrieval in raw term space over an inverted index.

    Shares the retrieval interface of
    :class:`~repro.core.lsi.LSIModel` (``score`` / ``rank``), so
    experiments can swap engines freely.
    """

    def __init__(self):
        self._index: InvertedIndex | None = None
        self._n_terms: int | None = None

    @classmethod
    def fit(cls, matrix: CSRMatrix) -> "VectorSpaceModel":
        """Index a (weighted) ``n × m`` term–document matrix."""
        if not isinstance(matrix, CSRMatrix):
            raise ValidationError("fit expects a CSRMatrix")
        model = cls()
        model._index = InvertedIndex.from_matrix(matrix)
        model._n_terms = matrix.shape[0]
        return model

    def _require_fitted(self) -> InvertedIndex:
        if self._index is None:
            raise NotFittedError(
                "VectorSpaceModel.fit must be called before retrieval")
        return self._index

    @property
    def n_documents(self) -> int:
        """Number of indexed documents."""
        return self._require_fitted().n_documents

    @property
    def n_terms(self) -> int:
        """Universe size."""
        index = self._require_fitted()
        return index.n_terms

    def score(self, query_vector) -> np.ndarray:
        """Cosine score of every document against the term-space query."""
        return self._require_fitted().score(query_vector)

    def rank_documents(self, query_vector, *, top_k=None) -> np.ndarray:
        """Documents ranked by descending cosine score (``None`` = all).

        Canonical :class:`~repro.ir.retriever.Retriever` entry point;
        :meth:`rank` is the historical spelling and delegates here.
        """
        return self._require_fitted().rank(query_vector, top_k=top_k)

    def rank(self, query_vector, *, top_k=None) -> np.ndarray:
        """Alias of :meth:`rank_documents`."""
        return self.rank_documents(query_vector, top_k=top_k)

    def __repr__(self) -> str:
        if self._index is None:
            return "VectorSpaceModel(unfitted)"
        return (f"VectorSpaceModel(n={self._index.n_terms}, "
                f"m={self._index.n_documents})")
