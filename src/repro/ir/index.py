"""An inverted index with cosine-ranked retrieval.

The conventional IR engine the paper contrasts LSI with is an inverted
file over terms.  :class:`InvertedIndex` stores postings
``term → [(doc, weight), …]`` and scores queries by sparse
accumulate-and-normalise — touching only the postings of the query's
terms, the standard term-at-a-time evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.linalg.sparse import CSRMatrix
from repro.utils.validation import check_top_k, check_vector

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Postings lists plus document norms for cosine scoring.

    Build with :meth:`from_matrix` from any (weighted) term–document
    matrix.
    """

    def __init__(self, postings, document_norms, n_terms: int):
        self._postings = postings
        self._document_norms = np.asarray(document_norms, dtype=np.float64)
        self._n_terms = int(n_terms)

    @classmethod
    def from_matrix(cls, matrix: CSRMatrix) -> "InvertedIndex":
        """Index an ``n × m`` term–document matrix.

        Rows are terms, so each CSR row is already a postings list.
        """
        if not isinstance(matrix, CSRMatrix):
            raise ValidationError("from_matrix expects a CSRMatrix")
        postings: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for term in range(matrix.shape[0]):
            start, stop = matrix.indptr[term], matrix.indptr[term + 1]
            if start == stop:
                continue
            postings[term] = (matrix.indices[start:stop].copy(),
                              matrix.data[start:stop].copy())
        return cls(postings, matrix.column_norms(), matrix.shape[0])

    @property
    def n_terms(self) -> int:
        """Universe size the index was built over."""
        return self._n_terms

    @property
    def n_documents(self) -> int:
        """Number of indexed documents."""
        return int(self._document_norms.shape[0])

    @property
    def indexed_terms(self) -> int:
        """Number of terms with non-empty postings."""
        return len(self._postings)

    def postings(self, term: int):
        """The postings list for a term: ``(doc_ids, weights)`` arrays."""
        term = int(term)
        if not 0 <= term < self._n_terms:
            raise ValidationError(
                f"term {term} out of range for {self._n_terms} terms")
        if term not in self._postings:
            return (np.zeros(0, dtype=np.int64), np.zeros(0))
        doc_ids, weights = self._postings[term]
        return doc_ids.copy(), weights.copy()

    def score(self, query_vector) -> np.ndarray:
        """Cosine scores of every document against a query vector.

        Only postings of the query's nonzero terms are touched.  Documents
        with zero norm score 0.
        """
        query = check_vector(query_vector, "query_vector")
        if query.shape[0] != self._n_terms:
            raise ValidationError(
                f"query has {query.shape[0]} terms; index expects "
                f"{self._n_terms}")
        scores = np.zeros(self.n_documents)
        for term in np.flatnonzero(query):
            entry = self._postings.get(int(term))
            if entry is None:
                continue
            doc_ids, weights = entry
            scores[doc_ids] += query[term] * weights
        query_norm = float(np.linalg.norm(query))
        if query_norm == 0:
            return np.zeros(self.n_documents)
        safe_norms = np.where(self._document_norms > 0,
                              self._document_norms, 1.0)
        scores /= (query_norm * safe_norms)
        scores[self._document_norms == 0] = 0.0
        return scores

    def rank(self, query_vector, *, top_k=None) -> np.ndarray:
        """Document ids sorted by descending score (stable tie-break by id)."""
        scores = self.score(query_vector)
        top_k = check_top_k(top_k, self.n_documents)
        order = np.argsort(-scores, kind="stable")
        return order[:top_k]
