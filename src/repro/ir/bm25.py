"""Okapi BM25: the strong probabilistic keyword baseline.

The paper compares LSI against "conventional vector-based methods"; by
1998 the strongest conventional ranker was Okapi BM25 (Robertson et
al.), so the retrieval experiments include it as the toughest exact-
match arm.  For a query with term frequencies ``qtf`` and a document
``d``:

    score(q, d) = Σ_t idf(t) · tf(t,d)·(k1+1) /
                  (tf(t,d) + k1·(1−b+b·|d|/avgdl)) · qtf(t)

with the standard Robertson–Sparck-Jones idf
``log((N − df + 0.5)/(df + 0.5) + 1)``.

BM25 still shares VSM's structural blindness: a document containing
none of the query's terms scores exactly zero, so the synonymy probe of
experiment E8 defeats it the same way — which is the point of including
it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, ValidationError
from repro.linalg.sparse import CSRMatrix
from repro.utils.validation import check_top_k, check_vector

__all__ = ["BM25Model"]


class BM25Model:
    """Okapi BM25 ranking over a term–document count matrix.

    Args:
        k1: term-frequency saturation (typical 1.2–2.0).
        b: length normalisation strength in [0, 1].
    """

    def __init__(self, *, k1: float = 1.5, b: float = 0.75):
        if k1 < 0:
            raise ValidationError(f"k1 must be non-negative, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ValidationError(f"b must lie in [0, 1], got {b}")
        self.k1 = float(k1)
        self.b = float(b)
        self._matrix: CSRMatrix | None = None
        self._idf: np.ndarray | None = None
        self._length_norm: np.ndarray | None = None

    @classmethod
    def fit(cls, matrix: CSRMatrix, *, k1: float = 1.5,
            b: float = 0.75) -> "BM25Model":
        """Index a raw term-count matrix (weights must be counts)."""
        if not isinstance(matrix, CSRMatrix):
            raise ValidationError("fit expects a CSRMatrix of counts")
        model = cls(k1=k1, b=b)
        n_docs = matrix.shape[1]
        df = matrix.document_frequency()
        model._idf = np.log((n_docs - df + 0.5) / (df + 0.5) + 1.0)
        lengths = matrix.column_sums()
        avg_length = float(lengths.mean()) if n_docs else 1.0
        if avg_length <= 0:
            avg_length = 1.0
        model._length_norm = model.k1 * (
            1.0 - model.b + model.b * lengths / avg_length)
        model._matrix = matrix
        return model

    def _require_fitted(self) -> CSRMatrix:
        if self._matrix is None:
            raise NotFittedError("BM25Model.fit must run before scoring")
        return self._matrix

    @property
    def n_documents(self) -> int:
        """Number of indexed documents."""
        return self._require_fitted().shape[1]

    @property
    def n_terms(self) -> int:
        """Universe size."""
        return self._require_fitted().shape[0]

    def score(self, query_vector) -> np.ndarray:
        """BM25 score of every document against term frequencies.

        Only the postings of the query's nonzero terms are touched.
        """
        matrix = self._require_fitted()
        query = check_vector(query_vector, "query_vector")
        if query.shape[0] != matrix.shape[0]:
            raise ValidationError(
                f"query has {query.shape[0]} terms; index expects "
                f"{matrix.shape[0]}")
        scores = np.zeros(matrix.shape[1])
        for term in np.flatnonzero(query):
            term = int(term)
            start, stop = matrix.indptr[term], matrix.indptr[term + 1]
            if start == stop:
                continue
            doc_ids = matrix.indices[start:stop]
            tf = matrix.data[start:stop]
            saturation = tf * (self.k1 + 1.0) / (
                tf + self._length_norm[doc_ids])
            scores[doc_ids] += (query[term] * self._idf[term]
                                * saturation)
        return scores

    def rank_documents(self, query_vector, *, top_k=None) -> np.ndarray:
        """Document ids by descending BM25 score (``None`` = all).

        Canonical :class:`~repro.ir.retriever.Retriever` entry point;
        :meth:`rank` is the historical spelling and delegates here.
        """
        scores = self.score(query_vector)
        top_k = check_top_k(top_k, self.n_documents)
        order = np.argsort(-scores, kind="stable")
        return order[:top_k]

    def rank(self, query_vector, *, top_k=None) -> np.ndarray:
        """Alias of :meth:`rank_documents`."""
        return self.rank_documents(query_vector, top_k=top_k)

    def __repr__(self) -> str:
        if self._matrix is None:
            return f"BM25Model(k1={self.k1}, b={self.b}, unfitted)"
        return (f"BM25Model(k1={self.k1}, b={self.b}, "
                f"n={self.n_terms}, m={self.n_documents})")
