"""The retrieval-engine contract every ranking backend satisfies.

The paper's experiments swap retrieval engines freely — LSI, the
conventional vector-space model, BM25, the two-step random-projection
pipeline, folding indexes, and (since the serving layer landed) a
persistent served index.  :class:`Retriever` pins that shared surface
down as a runtime-checkable :class:`typing.Protocol`, so experiment
harnesses can take "any retriever" and both mypy and ``isinstance`` can
verify a backend actually conforms.

The contract is deliberately small:

- ``n_documents`` — corpus size (scores are indexed ``0..m-1``);
- ``score(query_vector)`` — one score per document for a term-space
  query;
- ``rank_documents(query_vector, *, top_k=None)`` — document ids by
  descending score, with the shared ``top_k`` policy of
  :func:`repro.utils.validation.check_top_k` (``None`` = all, otherwise
  a validated positive integer, clamped to the corpus size).

Static conformance of the concrete engines is asserted (and mypy-checked
in CI) in :mod:`repro.serving.index`, which already imports every
backend and therefore carries the proof without creating import cycles.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["Retriever"]


@runtime_checkable
class Retriever(Protocol):
    """Structural type of a ranking backend over a fixed corpus.

    Implemented by :class:`~repro.core.lsi.LSIModel`,
    :class:`~repro.ir.vsm.VectorSpaceModel`,
    :class:`~repro.ir.bm25.BM25Model`,
    :class:`~repro.core.folding.FoldingIndex`,
    :class:`~repro.core.two_step.TwoStepLSI`,
    :class:`~repro.serving.index.ServedIndex`, and
    :class:`~repro.serving.sharded.ShardedIndex`.  ``isinstance(obj,
    Retriever)`` performs a structural (duck-typed) check; prefer
    checking fitted instances, since unfitted models may raise from
    their ``n_documents`` property.
    """

    @property
    def n_documents(self) -> int:
        """Number of scoreable documents."""
        ...

    def score(self, query_vector) -> np.ndarray:
        """Score every document against a term-space query vector."""
        ...

    def rank_documents(self, query_vector, *, top_k=None) -> np.ndarray:
        """Document ids by descending score (``top_k=None`` = all)."""
        ...
