"""Retrieval-effectiveness metrics.

All metrics take a *ranking* (document ids, best first) and a *relevant
set* (the ground-truth ids).  Ties are the caller's concern: rankings are
already fully ordered when they reach this module.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

__all__ = [
    "average_precision",
    "f1_score",
    "interpolated_precision_recall",
    "mean_average_precision",
    "ndcg_at_k",
    "precision_at_k",
    "precision_recall",
    "r_precision",
    "recall_at_k",
    "reciprocal_rank",
]


def _as_ranking(ranking) -> list[int]:
    ranking = [int(d) for d in ranking]
    if len(set(ranking)) != len(ranking):
        raise ValidationError("ranking contains duplicate document ids")
    return ranking


def _as_relevant(relevant) -> set[int]:
    return {int(d) for d in relevant}


def precision_recall(ranking, relevant, *, cutoff=None):
    """Precision and recall of the top-``cutoff`` results.

    Args:
        ranking: retrieved document ids, best first.
        relevant: ground-truth relevant ids.
        cutoff: consider only the first ``cutoff`` results (all when
            omitted).

    Returns:
        ``(precision, recall)``.  Precision of an empty result list is
        0.0; recall with an empty relevant set is 1.0 (nothing to find).
    """
    ranking = _as_ranking(ranking)
    relevant = _as_relevant(relevant)
    if cutoff is not None:
        cutoff = check_positive_int(cutoff, "cutoff")
        ranking = ranking[:cutoff]
    if not ranking:
        return 0.0, (1.0 if not relevant else 0.0)
    hits = sum(1 for doc in ranking if doc in relevant)
    precision = hits / len(ranking)
    recall = 1.0 if not relevant else hits / len(relevant)
    return precision, recall


def precision_at_k(ranking, relevant, k: int) -> float:
    """Precision of the top-``k`` results (P@k)."""
    precision, _ = precision_recall(ranking, relevant, cutoff=k)
    return precision


def recall_at_k(ranking, relevant, k: int) -> float:
    """Recall of the top-``k`` results (R@k)."""
    _, recall = precision_recall(ranking, relevant, cutoff=k)
    return recall


def f1_score(ranking, relevant, *, cutoff=None) -> float:
    """Harmonic mean of precision and recall at ``cutoff``."""
    precision, recall = precision_recall(ranking, relevant, cutoff=cutoff)
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def r_precision(ranking, relevant) -> float:
    """Precision at rank ``R`` where ``R = |relevant|``.

    The break-even point of the PR curve; 0.0 when the relevant set is
    empty.
    """
    relevant = _as_relevant(relevant)
    if not relevant:
        return 0.0
    return precision_at_k(ranking, relevant, len(relevant))


def average_precision(ranking, relevant) -> float:
    """Mean of precision values at each relevant hit (AP).

    Unretrieved relevant documents contribute 0, so AP rewards both
    ranking quality and coverage.  AP of an empty relevant set is 0.0.
    """
    ranking = _as_ranking(ranking)
    relevant = _as_relevant(relevant)
    if not relevant:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for position, doc in enumerate(ranking, start=1):
        if doc in relevant:
            hits += 1
            precision_sum += hits / position
    return precision_sum / len(relevant)


def mean_average_precision(rankings, relevant_sets) -> float:
    """MAP over parallel sequences of rankings and relevant sets."""
    rankings = list(rankings)
    relevant_sets = list(relevant_sets)
    if len(rankings) != len(relevant_sets):
        raise ValidationError(
            f"{len(rankings)} rankings but {len(relevant_sets)} relevant "
            "sets")
    if not rankings:
        raise ValidationError("need at least one query")
    return float(np.mean([average_precision(r, s)
                          for r, s in zip(rankings, relevant_sets)]))


def reciprocal_rank(ranking, relevant) -> float:
    """1/rank of the first relevant hit (0.0 when none retrieved)."""
    relevant = _as_relevant(relevant)
    for position, doc in enumerate(_as_ranking(ranking), start=1):
        if doc in relevant:
            return 1.0 / position
    return 0.0


def ndcg_at_k(ranking, relevant, k: int) -> float:
    """Normalised discounted cumulative gain with binary relevance.

    ``DCG@k = Σ rel_i / log2(i + 1)`` normalised by the ideal ordering.
    0.0 when the relevant set is empty.
    """
    k = check_positive_int(k, "k")
    ranking = _as_ranking(ranking)[:k]
    relevant = _as_relevant(relevant)
    if not relevant:
        return 0.0
    gains = np.array([1.0 if doc in relevant else 0.0 for doc in ranking])
    discounts = 1.0 / np.log2(np.arange(2, gains.size + 2))
    dcg = float(gains @ discounts)
    ideal_hits = min(len(relevant), k)
    ideal = float(np.sum(1.0 / np.log2(np.arange(2, ideal_hits + 2))))
    return dcg / ideal


def interpolated_precision_recall(ranking, relevant, *,
                                  levels=None) -> np.ndarray:
    """The classic 11-point interpolated precision–recall curve.

    At each recall level ``r`` the interpolated precision is the maximum
    precision achieved at any recall ≥ ``r``.  Returns an array parallel
    to ``levels`` (default 0.0, 0.1, …, 1.0).
    """
    if levels is None:
        levels = np.linspace(0.0, 1.0, 11)
    else:
        levels = np.asarray(list(levels), dtype=np.float64)
        if levels.size == 0 or np.any(levels < 0) or np.any(levels > 1):
            raise ValidationError("levels must be recall values in [0, 1]")
    ranking = _as_ranking(ranking)
    relevant = _as_relevant(relevant)
    if not relevant:
        return np.zeros(levels.size)

    recalls = [0.0]
    precisions = [0.0]
    hits = 0
    for position, doc in enumerate(ranking, start=1):
        if doc in relevant:
            hits += 1
            recalls.append(hits / len(relevant))
            precisions.append(hits / position)
    recalls = np.asarray(recalls)
    precisions = np.asarray(precisions)

    out = np.zeros(levels.size)
    for i, level in enumerate(levels):
        reachable = precisions[recalls >= level - 1e-12]
        out[i] = float(reachable.max()) if reachable.size else 0.0
    return out
