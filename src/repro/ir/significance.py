"""Statistical significance tests for retrieval comparisons.

"LSI beats VSM" is a claim about per-query score differences, and IR
evaluation practice demands a significance check before believing it.
Two standard paired tests, implemented from scratch:

- :func:`paired_sign_test` — the distribution-free sign test on the
  per-query win/loss counts (exact binomial tail);
- :func:`paired_bootstrap_test` — the paired bootstrap: resample query
  sets, count how often the mean difference direction flips.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int, check_same_length

__all__ = [
    "SignificanceResult",
    "paired_bootstrap_test",
    "paired_sign_test",
]


@dataclass(frozen=True)
class SignificanceResult:
    """Outcome of a paired significance test.

    Attributes:
        mean_difference: mean of (system_a − system_b) per query.
        p_value: two-sided p-value of the null "no difference".
        n_queries: queries compared.
        test: ``"sign"`` or ``"bootstrap"``.
    """

    mean_difference: float
    p_value: float
    n_queries: int
    test: str

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the null is rejected at level ``alpha``."""
        if not 0.0 < alpha < 1.0:
            raise ValidationError(
                f"alpha must lie in (0, 1), got {alpha}")
        return self.p_value < alpha


def _paired_differences(scores_a, scores_b) -> np.ndarray:
    a = np.asarray(list(scores_a), dtype=np.float64)
    b = np.asarray(list(scores_b), dtype=np.float64)
    check_same_length(a, b, "scores_a", "scores_b")
    if a.size == 0:
        raise ValidationError("need at least one query")
    return a - b


def paired_sign_test(scores_a, scores_b) -> SignificanceResult:
    """Exact two-sided sign test on per-query score differences.

    Ties (equal scores) are discarded, per the standard treatment.  The
    p-value is the exact binomial two-tail under p = 1/2.
    """
    differences = _paired_differences(scores_a, scores_b)
    wins = int(np.sum(differences > 0))
    losses = int(np.sum(differences < 0))
    decided = wins + losses
    if decided == 0:
        p_value = 1.0
    else:
        extreme = min(wins, losses)
        # Two-sided exact binomial tail.
        tail = sum(comb(decided, i) for i in range(extreme + 1))
        p_value = min(1.0, 2.0 * tail / 2 ** decided)
    return SignificanceResult(
        mean_difference=float(differences.mean()),
        p_value=p_value, n_queries=int(differences.size), test="sign")


def paired_bootstrap_test(scores_a, scores_b, *,
                          n_resamples: int = 10_000,
                          seed=None) -> SignificanceResult:
    """Paired bootstrap test on the mean per-query difference.

    Resamples queries with replacement; the two-sided p-value is twice
    the fraction of resampled means on the opposite side of zero from
    the observed mean (with the +1 small-sample correction).
    """
    differences = _paired_differences(scores_a, scores_b)
    n_resamples = check_positive_int(n_resamples, "n_resamples")
    rng = as_generator(seed)

    observed = float(differences.mean())
    indices = rng.integers(0, differences.size,
                           size=(n_resamples, differences.size))
    resampled_means = differences[indices].mean(axis=1)
    if observed >= 0:
        opposite = int(np.sum(resampled_means <= 0))
    else:
        opposite = int(np.sum(resampled_means >= 0))
    p_value = min(1.0, 2.0 * (opposite + 1) / (n_resamples + 1))
    return SignificanceResult(
        mean_difference=observed, p_value=p_value,
        n_queries=int(differences.size), test="bootstrap")
