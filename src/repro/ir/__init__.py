"""Information-retrieval substrate.

LSI's headline claim is improved *retrieval* — better precision and
recall than the conventional vector-space method, especially under
synonymy.  This package provides everything needed to measure that claim:

- :mod:`repro.ir.retriever` — the :class:`~repro.ir.retriever.Retriever`
  protocol every ranking backend (LSI, VSM, BM25, folding, serving)
  satisfies;
- :mod:`repro.ir.vsm` — the conventional vector-space model baseline
  (cosine ranking in raw term space), plus an inverted index
  (:mod:`repro.ir.index`) for sparse scoring;
- :mod:`repro.ir.queries` — query generation from the corpus model,
  including the synonym-swapped queries that expose VSM's vocabulary-
  mismatch weakness;
- :mod:`repro.ir.relevance` — ground-truth relevance judgments derived
  from topic labels;
- :mod:`repro.ir.metrics` — precision/recall/F1, P@k, R-precision,
  average precision, MAP, 11-point interpolated PR curves, nDCG, MRR.
"""

from repro.ir.bm25 import BM25Model
from repro.ir.boolean import BooleanQueryError, BooleanRetriever
from repro.ir.feedback import pseudo_relevance_feedback, rocchio_update
from repro.ir.index import InvertedIndex
from repro.ir.metrics import (
    average_precision,
    f1_score,
    interpolated_precision_recall,
    mean_average_precision,
    ndcg_at_k,
    precision_at_k,
    precision_recall,
    r_precision,
    recall_at_k,
    reciprocal_rank,
)
from repro.ir.queries import QuerySet, generate_topic_queries
from repro.ir.relevance import relevance_from_labels
from repro.ir.retriever import Retriever
from repro.ir.significance import (
    paired_bootstrap_test,
    paired_sign_test,
)
from repro.ir.vsm import VectorSpaceModel

__all__ = [
    "BM25Model",
    "BooleanQueryError",
    "BooleanRetriever",
    "InvertedIndex",
    "QuerySet",
    "Retriever",
    "VectorSpaceModel",
    "average_precision",
    "f1_score",
    "generate_topic_queries",
    "interpolated_precision_recall",
    "mean_average_precision",
    "ndcg_at_k",
    "paired_bootstrap_test",
    "paired_sign_test",
    "precision_at_k",
    "pseudo_relevance_feedback",
    "rocchio_update",
    "precision_recall",
    "r_precision",
    "recall_at_k",
    "reciprocal_rank",
    "relevance_from_labels",
]
