"""An undirected edge-weighted graph on integer vertices.

Stored as a dense symmetric adjacency matrix — the §6 experiments operate
on document-similarity graphs with at most a few thousand vertices, where
a dense representation is both simpler and faster than adjacency lists
for the spectral work this package does.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.utils.validation import check_matrix

__all__ = ["WeightedGraph"]


class WeightedGraph:
    """An undirected weighted graph with a dense adjacency matrix.

    Self-loops are permitted (diagonal entries); negative weights are
    rejected.
    """

    def __init__(self, adjacency):
        matrix = check_matrix(adjacency, "adjacency")
        if matrix.shape[0] != matrix.shape[1]:
            raise ShapeError(
                f"adjacency must be square, got {matrix.shape}")
        if not np.allclose(matrix, matrix.T, atol=1e-10):
            raise ValidationError("adjacency must be symmetric")
        if np.any(matrix < 0):
            raise ValidationError("edge weights must be non-negative")
        self.adjacency = 0.5 * (matrix + matrix.T)  # exact symmetry
        self.adjacency.setflags(write=False)

    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return int(self.adjacency.shape[0])

    def degrees(self) -> np.ndarray:
        """Weighted degree of every vertex (row sums)."""
        return self.adjacency.sum(axis=1)

    def total_weight(self) -> float:
        """Sum of all edge weights (each undirected edge counted once)."""
        off_diagonal = self.adjacency.sum() - np.trace(self.adjacency)
        return float(off_diagonal / 2.0 + np.trace(self.adjacency))

    def cut_weight(self, subset) -> float:
        """Total weight crossing the cut ``(S, V∖S)``."""
        mask = self._subset_mask(subset)
        return float(self.adjacency[mask][:, ~mask].sum())

    def volume(self, subset) -> float:
        """Sum of degrees inside the subset."""
        mask = self._subset_mask(subset)
        return float(self.degrees()[mask].sum())

    def subgraph(self, subset) -> "WeightedGraph":
        """The induced subgraph on ``subset`` (vertices renumbered)."""
        mask = self._subset_mask(subset)
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            raise ValidationError("subgraph selection is empty")
        return WeightedGraph(self.adjacency[np.ix_(idx, idx)])

    def row_normalized(self) -> np.ndarray:
        """Row-stochastic normalisation (each row sums to 1).

        The Theorem 6 proof uses exactly this normalisation ("sum of each
        row is 1").  Isolated vertices keep an all-zero row.
        """
        degrees = self.degrees()
        safe = np.where(degrees > 0, degrees, 1.0)
        return self.adjacency / safe[:, None]

    def connected_components(self) -> list[np.ndarray]:
        """Vertex sets of connected components (positive-weight edges)."""
        n = self.n_vertices
        unvisited = set(range(n))
        components = []
        while unvisited:
            start = unvisited.pop()
            frontier = [start]
            component = {start}
            while frontier:
                vertex = frontier.pop()
                neighbors = np.flatnonzero(self.adjacency[vertex] > 0)
                for neighbor in neighbors:
                    neighbor = int(neighbor)
                    if neighbor in unvisited:
                        unvisited.discard(neighbor)
                        component.add(neighbor)
                        frontier.append(neighbor)
            components.append(np.asarray(sorted(component)))
        return components

    def _subset_mask(self, subset) -> np.ndarray:
        if isinstance(subset, np.ndarray) and subset.dtype == bool:
            if subset.shape != (self.n_vertices,):
                raise ShapeError(
                    f"boolean mask must have length {self.n_vertices}")
            return subset
        mask = np.zeros(self.n_vertices, dtype=bool)
        for vertex in subset:
            vertex = int(vertex)
            if not 0 <= vertex < self.n_vertices:
                raise ValidationError(
                    f"vertex {vertex} out of range for "
                    f"{self.n_vertices} vertices")
            mask[vertex] = True
        return mask

    def __repr__(self) -> str:
        edges = int(np.count_nonzero(
            np.triu(self.adjacency, k=1)))
        return f"WeightedGraph(n={self.n_vertices}, edges={edges})"
