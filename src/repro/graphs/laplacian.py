"""Normalised adjacency/Laplacian spectra.

The Theorem 6 proof works with the row-normalised adjacency matrix (top
eigenvalue near ``1 − ε`` per high-conductance block, second eigenvalue
bounded away by a constant).  The symmetric normalised Laplacian
``L = I − D^{-1/2} A D^{-1/2}`` carries the same spectral information and
keeps eigenvectors orthogonal, so the computational routines use it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import WeightedGraph

__all__ = [
    "adjacency_eigengap",
    "normalized_adjacency",
    "normalized_laplacian",
    "spectral_gap",
]


def normalized_adjacency(graph: WeightedGraph) -> np.ndarray:
    """``D^{-1/2} A D^{-1/2}`` (isolated vertices contribute zero rows)."""
    if not isinstance(graph, WeightedGraph):
        raise ValidationError("expected a WeightedGraph")
    degrees = graph.degrees()
    inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.where(
        degrees > 0, degrees, 1.0)), 0.0)
    return inv_sqrt[:, None] * graph.adjacency * inv_sqrt[None, :]


def normalized_laplacian(graph: WeightedGraph) -> np.ndarray:
    """``L = I − D^{-1/2} A D^{-1/2}``; eigenvalues in [0, 2]."""
    return np.eye(graph.n_vertices) - normalized_adjacency(graph)


def spectral_gap(graph: WeightedGraph) -> float:
    """``λ₂`` of the normalised Laplacian — the connectivity strength.

    Zero iff the graph is disconnected; large for expanders.
    """
    eigenvalues = np.linalg.eigvalsh(normalized_laplacian(graph))
    if eigenvalues.shape[0] < 2:
        raise ValidationError("spectral gap needs at least two vertices")
    return float(max(eigenvalues[1], 0.0))


def adjacency_eigengap(graph: WeightedGraph, k: int) -> float:
    """Relative gap ``(μ_k − μ_{k+1}) / μ₁`` of the normalised adjacency.

    Theorem 6's discovery of ``k`` blocks hinges on this gap staying
    bounded away from zero.
    """
    if k < 1 or k >= graph.n_vertices:
        raise ValidationError(
            f"k must lie in [1, n_vertices), got {k}")
    eigenvalues = np.sort(
        np.linalg.eigvalsh(normalized_adjacency(graph)))[::-1]
    top = float(eigenvalues[0])
    if top <= 0:
        return 0.0
    return float((eigenvalues[k - 1] - eigenvalues[k]) / top)
