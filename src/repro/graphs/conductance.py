"""Conductance: the paper's notion of a "topic" in the graph model.

The paper (proof of Theorem 2) uses the conductance of an edge-weighted
graph ``G = (V, E)``:

    ``Φ(G) = min_{S ⊂ V} w(S, V∖S) / min(|S|, |V∖S|)``

(a vertex-count denominator — the *expansion*-flavoured variant the
paper cites).  This module provides:

- :func:`conductance_of_cut` — the objective for one cut, under either
  the paper's vertex-count denominator or the volume denominator of the
  Cheeger inequality;
- :func:`exact_conductance` — exhaustive minimisation (for the ≤ ~20
  vertex graphs the unit tests verify against);
- :func:`sweep_cut_conductance` — the spectral sweep-cut heuristic that
  scales to the experiment sizes and powers the Cheeger upper bound;
- :func:`cheeger_bounds` — ``λ₂/2 ≤ Φ ≤ √(2λ₂)`` for the volume-based
  conductance and the normalised Laplacian's ``λ₂``.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import WeightedGraph

__all__ = [
    "cheeger_bounds",
    "conductance_of_cut",
    "exact_conductance",
    "sweep_cut_conductance",
]


def conductance_of_cut(graph: WeightedGraph, subset, *,
                       denominator: str = "vertices") -> float:
    """Conductance of one cut ``(S, V∖S)``.

    Args:
        graph: the graph.
        subset: the vertex set ``S`` (indices or boolean mask).
        denominator: ``"vertices"`` for the paper's
            ``min(|S|, |V∖S|)``, or ``"volume"`` for the Cheeger-style
            ``min(vol(S), vol(V∖S))``.

    Returns:
        The ratio; ``inf`` for empty/full or zero-denominator cuts.
    """
    mask = graph._subset_mask(subset)
    size = int(mask.sum())
    if size == 0 or size == graph.n_vertices:
        return float("inf")
    cut = graph.cut_weight(mask)
    if denominator == "vertices":
        denom = float(min(size, graph.n_vertices - size))
    elif denominator == "volume":
        volumes = (graph.volume(mask), graph.volume(~mask))
        denom = float(min(volumes))
    else:
        raise ValidationError(
            f"denominator must be 'vertices' or 'volume', got "
            f"{denominator!r}")
    if denom == 0:
        return float("inf")
    return cut / denom


def exact_conductance(graph: WeightedGraph, *,
                      denominator: str = "vertices"):
    """Exhaustive minimum conductance over all non-trivial cuts.

    Exponential in the vertex count; refuses graphs with more than 22
    vertices.  Returns ``(conductance, best_subset)``.
    """
    n = graph.n_vertices
    if n < 2:
        raise ValidationError("conductance needs at least two vertices")
    if n > 22:
        raise ValidationError(
            f"exact conductance is exponential; {n} vertices exceeds the "
            "22-vertex cap (use sweep_cut_conductance)")
    best = float("inf")
    best_subset: tuple[int, ...] = ()
    vertices = range(n)
    # Fix vertex 0 on one side to halve the enumeration (complement
    # symmetry).
    for size in range(1, n // 2 + 1):
        for combo in itertools.combinations(vertices, size):
            value = conductance_of_cut(graph, combo,
                                       denominator=denominator)
            if value < best:
                best = value
                best_subset = combo
    return best, np.asarray(best_subset, dtype=np.int64)


def sweep_cut_conductance(graph: WeightedGraph, *,
                          denominator: str = "volume"):
    """Spectral sweep cut: order vertices by the Fiedler vector, take the
    best prefix cut.

    This is the constructive half of the Cheeger inequality; the returned
    conductance is an upper bound on the true minimum and at most
    ``√(2·λ₂)`` for the volume denominator.

    Returns:
        ``(conductance, subset)`` for the best prefix.
    """
    from repro.graphs.laplacian import normalized_laplacian

    n = graph.n_vertices
    if n < 2:
        raise ValidationError("conductance needs at least two vertices")
    laplacian = normalized_laplacian(graph)
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    fiedler = eigenvectors[:, 1]
    degrees = graph.degrees()
    # Degree-normalised embedding, as the Cheeger sweep prescribes.
    safe = np.where(degrees > 0, np.sqrt(degrees), 1.0)
    order = np.argsort(fiedler / safe)

    best = float("inf")
    best_prefix = order[:1]
    for cut_point in range(1, n):
        prefix = order[:cut_point]
        value = conductance_of_cut(graph, prefix, denominator=denominator)
        if value < best:
            best = value
            best_prefix = prefix
    return best, np.asarray(sorted(int(v) for v in best_prefix))


def cheeger_bounds(graph: WeightedGraph):
    """The Cheeger sandwich ``λ₂/2 ≤ Φ_vol(G) ≤ √(2·λ₂)``.

    Returns ``(lower, upper)`` computed from the normalised Laplacian's
    second-smallest eigenvalue.
    """
    from repro.graphs.laplacian import normalized_laplacian

    laplacian = normalized_laplacian(graph)
    eigenvalues = np.linalg.eigvalsh(laplacian)
    lambda2 = float(max(eigenvalues[1], 0.0))
    return lambda2 / 2.0, float(np.sqrt(2.0 * lambda2))
