"""Random graph generators for the §4 and §6 analyses.

- :func:`random_bipartite_multigraph_gram` — the object at the heart of
  the Theorem 2 proof: the Gram matrix ``BᵢᵀBᵢ`` of a topic block "is
  essentially the adjacency matrix of a random bipartite multigraph"
  between documents and terms; its top eigenvalue dominates the second
  with high probability as the per-term probability τ shrinks.
- :func:`planted_partition_graph` — ``k`` dense blocks plus ε-weight
  cross edges: the Theorem 6 workload.
- :func:`document_similarity_graph` — the §6 construction "this distance
  matrix could be derived from, or in fact coincide with, A·Aᵀ", applied
  to documents (``AᵀA``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import WeightedGraph
from repro.linalg.operator import as_operator
from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
)

__all__ = [
    "document_similarity_graph",
    "knn_similarity_graph",
    "planted_partition_graph",
    "random_bipartite_multigraph_gram",
]


def random_bipartite_multigraph_gram(n_documents: int, n_terms: int,
                                     document_length: int, *,
                                     seed=None) -> np.ndarray:
    """The Gram matrix ``BᵀB`` of one topic block.

    Documents draw ``document_length`` terms uniformly from the topic's
    ``n_terms`` primary terms (τ = 1/n_terms); ``B`` is the resulting
    term–document count matrix, and the returned ``BᵀB`` is the weighted
    adjacency among documents the Theorem 2 proof analyses.
    """
    n_documents = check_positive_int(n_documents, "n_documents")
    n_terms = check_positive_int(n_terms, "n_terms")
    document_length = check_positive_int(document_length, "document_length")
    rng = as_generator(seed)
    block = rng.multinomial(
        document_length,
        np.full(n_terms, 1.0 / n_terms),
        size=n_documents).astype(np.float64).T      # (terms, documents)
    return block.T @ block


def planted_partition_graph(block_sizes, *, intra_weight: float = 1.0,
                            inter_fraction: float = 0.05,
                            intra_density: float = 1.0,
                            seed=None) -> tuple[WeightedGraph, np.ndarray]:
    """``k`` high-conductance blocks joined by light cross edges.

    Theorem 6's hypothesis: the corpus consists of ``k`` disjoint
    subgraphs of high conductance, joined by edges whose total weight per
    vertex is at most an ε fraction.  This generator plants exactly
    that: each block is a (possibly sparsified) clique of weight
    ``intra_weight``; cross edges are sprinkled uniformly so that each
    vertex's expected cross weight is ``inter_fraction`` times its
    intra-block weight.

    Args:
        block_sizes: vertices per block.
        intra_weight: weight of intra-block edges.
        inter_fraction: the ε — per-vertex cross weight as a fraction of
            per-vertex intra weight.
        intra_density: probability an intra-block edge is present
            (1.0 = clique).
        seed: RNG seed.

    Returns:
        ``(graph, labels)`` with ground-truth block labels.
    """
    block_sizes = [check_positive_int(s, "block size") for s in block_sizes]
    if len(block_sizes) < 2:
        raise ValidationError("need at least two blocks")
    check_fraction(inter_fraction, "inter_fraction")
    check_fraction(intra_density, "intra_density", inclusive_low=False)
    if intra_weight <= 0:
        raise ValidationError(
            f"intra_weight must be positive, got {intra_weight}")
    rng = as_generator(seed)

    n = sum(block_sizes)
    labels = np.concatenate([
        np.full(size, b, dtype=np.int64)
        for b, size in enumerate(block_sizes)])
    adjacency = np.zeros((n, n))

    same_block = labels[:, None] == labels[None, :]
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)

    intra_mask = same_block & upper
    if intra_density < 1.0:
        keep = rng.random(n * n).reshape(n, n) < intra_density
        intra_mask &= keep
    adjacency[intra_mask] = intra_weight

    # Cross edges: per-vertex expected intra weight ≈ (block−1)·w·density;
    # scatter cross weight so each vertex carries ≈ ε of that.
    mean_block = float(np.mean(block_sizes))
    per_vertex_intra = (mean_block - 1.0) * intra_weight * intra_density
    inter_mask = (~same_block) & upper
    n_inter_slots = int(inter_mask.sum())
    if inter_fraction > 0 and n_inter_slots > 0:
        total_cross_weight = inter_fraction * per_vertex_intra * n / 2.0
        # Bernoulli sprinkle with per-edge weight = intra_weight, keeping
        # the expected total at total_cross_weight.
        edge_probability = min(
            1.0, total_cross_weight / (intra_weight * n_inter_slots))
        chosen = rng.random(n * n).reshape(n, n) < edge_probability
        adjacency[inter_mask & chosen] = intra_weight

    adjacency = adjacency + adjacency.T
    return WeightedGraph(adjacency), labels


def knn_similarity_graph(matrix, n_neighbors: int, *,
                         mutual: bool = False) -> WeightedGraph:
    """A kNN-sparsified document-similarity graph.

    The dense ``AᵀA`` graph keeps every weak cross-topic inner product;
    real spectral pipelines sparsify to each document's ``k`` nearest
    neighbours, which sharpens the block structure Theorem 6 needs.
    Edges are symmetrised by union (or intersection when ``mutual``),
    keeping the ``AᵀA`` weights on surviving edges.

    Args:
        matrix: the ``n × m`` term–document matrix.
        n_neighbors: neighbours retained per document.
        mutual: keep an edge only when *both* endpoints select it.
    """
    n_neighbors = check_positive_int(n_neighbors, "n_neighbors")
    if isinstance(matrix, np.ndarray):
        gram = np.asarray(matrix, dtype=np.float64).T @ matrix
    else:
        gram = matrix.gram()
    m = gram.shape[0]
    if n_neighbors >= m:
        raise ValidationError(
            f"n_neighbors={n_neighbors} must be below the document "
            f"count {m}")
    gram = np.maximum(gram, 0.0)
    np.fill_diagonal(gram, -np.inf)

    selected = np.zeros((m, m), dtype=bool)
    order = np.argpartition(-gram, n_neighbors - 1, axis=1)
    rows = np.repeat(np.arange(m), n_neighbors)
    selected[rows, order[:, :n_neighbors].ravel()] = True
    keep = (selected & selected.T) if mutual else \
        (selected | selected.T)

    gram[~keep] = 0.0  # also clears the -inf diagonal
    adjacency = np.maximum(gram, gram.T)  # symmetric union weights
    return WeightedGraph(adjacency)


def document_similarity_graph(matrix, *,
                              zero_diagonal: bool = True) -> WeightedGraph:
    """The document graph with weights ``AᵀA`` (inner-product proximity).

    The §6 construction: conceptual proximity of two documents measured
    by their term-vector inner product.  Negative entries cannot occur
    for count matrices; the diagonal (self-similarity) is dropped by
    default.
    """
    op = as_operator(matrix)
    if isinstance(matrix, np.ndarray):
        gram = np.asarray(matrix, dtype=np.float64).T @ matrix
    else:
        gram = matrix.gram()
    if np.any(gram < -1e-10):
        raise ValidationError(
            "similarity graph requires non-negative inner products")
    gram = np.maximum(gram, 0.0)
    if zero_diagonal:
        np.fill_diagonal(gram, 0.0)
    return WeightedGraph(gram)
