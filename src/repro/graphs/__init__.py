"""Graph substrate for the §6 graph-theoretic corpus model.

The paper's alternative model: documents are nodes of an edge-weighted
graph whose weights capture conceptual proximity (e.g. derived from
``A·Aᵀ``); a *topic* is a subgraph of high conductance, and Theorem 6
says rank-``k`` spectral analysis discovers ``k`` such subgraphs when the
cross-subgraph weight is an ε fraction per vertex.

- :mod:`repro.graphs.graph` — the weighted-graph container;
- :mod:`repro.graphs.conductance` — exact (exhaustive) conductance,
  sweep cuts, and the Cheeger bounds;
- :mod:`repro.graphs.laplacian` — normalised adjacency/Laplacian
  spectra;
- :mod:`repro.graphs.random_graphs` — planted-partition generators and
  the random bipartite multigraphs from the Theorem 2 proof.
"""

from repro.graphs.conductance import (
    cheeger_bounds,
    conductance_of_cut,
    exact_conductance,
    sweep_cut_conductance,
)
from repro.graphs.graph import WeightedGraph
from repro.graphs.laplacian import (
    normalized_adjacency,
    normalized_laplacian,
    spectral_gap,
)
from repro.graphs.random_graphs import (
    document_similarity_graph,
    knn_similarity_graph,
    planted_partition_graph,
    random_bipartite_multigraph_gram,
)

__all__ = [
    "WeightedGraph",
    "cheeger_bounds",
    "conductance_of_cut",
    "document_similarity_graph",
    "exact_conductance",
    "knn_similarity_graph",
    "normalized_adjacency",
    "normalized_laplacian",
    "planted_partition_graph",
    "random_bipartite_multigraph_gram",
    "spectral_gap",
    "sweep_cut_conductance",
]
