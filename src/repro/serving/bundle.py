"""Versioned on-disk persistence for LSI indexes.

A schema-3 bundle is a directory of flat ``.npy`` files plus a
manifest:

- one ``.npy`` per array — the truncated SVD factors (``u``,
  ``singular_values``, ``vt``, ``frobenius_norm_sq``), the (possibly
  fold-extended) document store ``doc_vectors``, the *pre-normalised*
  serving factors ``doc_unit``/``doc_norms``, and ``tombstones`` — all
  bit-exact float64 so a load reproduces in-memory rankings exactly;
- ``manifest.json`` — schema version, shape summary, the compute
  precision the index was served at, per-file SHA-256 checksums
  (corruption detection), an environment fingerprint (same spirit as
  the benchmark harness's ``BENCH_*.json`` fingerprints:
  informational, never used for matching), the serving counters, and
  the writer's drift accounting.

Flat ``.npy`` files exist for exactly one reason: ``np.load(...,
mmap_mode="r")`` only memory-maps plain ``.npy`` files (arrays inside
an ``.npz`` zip are always decompressed into fresh memory), and the
O(manifest) cold-start path depends on mapping the large factors
read-only.  ``read_bundle(path, mmap=True)`` does exactly that — large
arrays stay on disk until a query's GEMM first touches their pages —
and skips checksum verification, since hashing every byte would defeat
the point; eager reads always verify.

Loading is strict: a missing or unparsable manifest, a foreign
``format`` marker, an unsupported ``schema_version``, a checksum
mismatch, or shape disagreement between manifest and arrays all raise
:class:`~repro.errors.PersistenceError`.  Older bundles still load:
schema 1 (factors-only ``arrays.npz``, no serving state) and schema 2
(``arrays.npz`` with serving state) fall back to the eager npz path
with pre-normalised factors recomputed on the fly — the
backward-compatibility contract for bundles written before this
layout.
"""

from __future__ import annotations

import hashlib
import json
import platform
import zipfile
from dataclasses import dataclass, field, replace
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.errors import PersistenceError, ValidationError
from repro.linalg.dense import normalize_columns
from repro.linalg.svd import SVDResult
from repro.serving.stats import ServingStats

__all__ = [
    "ARRAYS_NAME",
    "BUNDLE_FORMAT",
    "BUNDLE_SCHEMA_VERSION",
    "ChecksumMismatch",
    "IndexBundle",
    "checksum_failures",
    "environment_fingerprint",
    "read_bundle",
    "read_manifest",
    "sha256_file",
    "write_bundle",
]

#: Marker distinguishing our bundles from arbitrary array+json directories.
BUNDLE_FORMAT = "repro-lsi-index"

#: Current manifest schema version
#: (1 = factors-only npz, 2 = npz + serving state, 3 = flat mmap-able npy).
BUNDLE_SCHEMA_VERSION = 3

#: File names inside a bundle directory.
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

#: Arrays every schema version must provide.
_REQUIRED_ARRAYS = ("u", "singular_values", "vt", "frobenius_norm_sq")

#: Arrays a schema-3 bundle stores, one ``<name>.npy`` file each.
_V3_ARRAYS = ("u", "singular_values", "vt", "frobenius_norm_sq",
              "doc_vectors", "doc_unit", "doc_norms", "tombstones")

#: Schema-3 arrays worth memory-mapping (the O(n·k)/O(k·m) payloads);
#: the rest are O(k)/O(m) vectors loaded eagerly even under ``mmap``.
_V3_LARGE_ARRAYS = ("u", "vt", "doc_vectors", "doc_unit")


def environment_fingerprint() -> dict:
    """A JSON-ready description of the interpreter that wrote a bundle.

    Mirrors the benchmark harness's report fingerprint: recorded for
    provenance and debugging (a ranking diff across machines usually
    starts with "different BLAS"), never consulted when loading.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def sha256_file(path: Path) -> str:
    """``sha256:<hex>`` digest of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return f"sha256:{digest.hexdigest()}"


# Backwards-compatible private alias (pre-sharding internal name).
_sha256_file = sha256_file


@dataclass(frozen=True)
class ChecksumMismatch:
    """One array file that failed bundle checksum verification.

    Attributes:
        name: the file name inside the bundle directory.
        expected: the digest recorded in the manifest (``None`` when
            the manifest records no checksum for the file).
        actual: the recomputed digest (``None`` when the file is
            missing on disk).
    """

    name: str
    expected: "str | None"
    actual: "str | None"

    def describe(self) -> str:
        """A one-line human-readable account of the failure."""
        if self.actual is None:
            return f"{self.name}: missing (expected {self.expected})"
        if self.expected is None:
            return (f"{self.name}: no recorded checksum "
                    f"(actual {self.actual})")
        return (f"{self.name}: expected {self.expected}, "
                f"actual {self.actual}")


@dataclass(frozen=True)
class IndexBundle:
    """The in-memory image of a persisted LSI index.

    Attributes:
        svd: the truncated SVD the index serves from.
        doc_vectors: ``(k, m_total)`` LSI document store — fitted
            documents plus any folded-in columns.
        n_original: how many leading columns of ``doc_vectors`` came
            from the fit (the rest were folded in).
        tombstones: ids of deleted (masked-out) documents.
        unabsorbed_energy: the writer's accumulated out-of-subspace /
            deleted energy (drift numerator).
        drift_threshold: drift level past which a refit is recommended
            (``None`` disables the recommendation).
        stats: serving counters at save time.
        vocabulary: optional term strings (position = term id).
        doc_unit: ``(k, m_total)`` unit-normalised document store, the
            precomputed cosine denominator (``None`` until written or
            read from a schema-3 bundle).
        doc_norms: length-``m_total`` original column norms paired with
            ``doc_unit``.
        compute_dtype: precision the index was served at when saved
            (``"float64"`` or ``"float32"``); loads default to it.
        mmapped: whether this image's large arrays are read-only
            memory maps (set by ``read_bundle(mmap=True)``).
        schema_version: manifest schema the bundle was read from /
            will be written with.
        index_version: content hash of the array payload (filled on
            write/read; empty for bundles never persisted).
        created_at: ISO-8601 UTC write timestamp (filled on write).
        env: environment fingerprint of the writing interpreter.
    """

    svd: SVDResult
    doc_vectors: np.ndarray
    n_original: int
    tombstones: tuple = ()
    unabsorbed_energy: float = 0.0
    drift_threshold: "float | None" = 0.1
    stats: ServingStats = field(default_factory=ServingStats)
    vocabulary: "tuple | None" = None
    doc_unit: "np.ndarray | None" = None
    doc_norms: "np.ndarray | None" = None
    compute_dtype: str = "float64"
    mmapped: bool = False
    schema_version: int = BUNDLE_SCHEMA_VERSION
    index_version: str = ""
    created_at: str = ""
    env: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.doc_vectors.ndim != 2 \
                or self.doc_vectors.shape[0] != self.svd.rank:
            raise ValidationError(
                f"doc_vectors must be (rank, m); got "
                f"{self.doc_vectors.shape} for rank {self.svd.rank}")
        if not 0 <= self.n_original <= self.doc_vectors.shape[1]:
            raise ValidationError(
                f"n_original={self.n_original} out of range for "
                f"{self.doc_vectors.shape[1]} stored documents")
        bad = [d for d in self.tombstones
               if not 0 <= int(d) < self.doc_vectors.shape[1]]
        if bad:
            raise ValidationError(
                f"tombstoned ids {bad} out of range for "
                f"{self.doc_vectors.shape[1]} stored documents")
        if self.vocabulary is not None \
                and len(self.vocabulary) != self.svd.u.shape[0]:
            raise ValidationError(
                f"vocabulary has {len(self.vocabulary)} terms; the index "
                f"has {self.svd.u.shape[0]}")
        if (self.doc_unit is None) != (self.doc_norms is None):
            raise ValidationError(
                "doc_unit and doc_norms must be provided together")
        if self.doc_unit is not None:
            if self.doc_unit.shape != self.doc_vectors.shape:
                raise ValidationError(
                    f"doc_unit shape {self.doc_unit.shape} does not match "
                    f"doc_vectors {self.doc_vectors.shape}")
            if self.doc_norms.shape != (self.doc_vectors.shape[1],):
                raise ValidationError(
                    f"doc_norms shape {self.doc_norms.shape} does not "
                    f"match {self.doc_vectors.shape[1]} documents")
        if self.compute_dtype not in ("float64", "float32"):
            raise ValidationError(
                f"compute_dtype must be 'float64' or 'float32', got "
                f"{self.compute_dtype!r}")

    @classmethod
    def from_model(cls, model, *, vocabulary=None,
                   drift_threshold: "float | None" = 0.1) -> "IndexBundle":
        """Snapshot a plain fitted :class:`~repro.core.lsi.LSIModel`."""
        terms = None
        if vocabulary is not None:
            terms = tuple(getattr(vocabulary, "terms", vocabulary))
        return cls(svd=model.svd,
                   doc_vectors=model.document_vectors(),
                   n_original=model.n_documents,
                   drift_threshold=drift_threshold,
                   vocabulary=terms,
                   env=environment_fingerprint())

    def to_model(self):
        """The bundled SVD as a fresh :class:`~repro.core.lsi.LSIModel`."""
        from repro.core.lsi import LSIModel

        return LSIModel(self.svd)

    @property
    def n_documents(self) -> int:
        """Total stored documents (fitted + folded, incl. tombstoned)."""
        return int(self.doc_vectors.shape[1])

    def manifest(self) -> dict:
        """The JSON-ready manifest describing this bundle."""
        return {
            "format": BUNDLE_FORMAT,
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "index_version": self.index_version,
            "rank": self.svd.rank,
            "n_terms": int(self.svd.u.shape[0]),
            "n_documents": self.n_documents,
            "n_original": int(self.n_original),
            "n_tombstoned": len(self.tombstones),
            "unabsorbed_energy": float(self.unabsorbed_energy),
            "captured_energy": float(self.svd.captured_energy()),
            "drift_threshold": self.drift_threshold,
            "compute_dtype": self.compute_dtype,
            "stats": self.stats.as_dict(),
            "vocabulary": (list(self.vocabulary)
                           if self.vocabulary is not None else None),
            "env": self.env,
            "checksums": {},
        }


def write_bundle(path, bundle: IndexBundle) -> Path:
    """Persist ``bundle`` to directory ``path`` (created if needed).

    Always writes the current schema (one ``.npy`` per array).  The
    pre-normalised serving factors are computed here in float64 when
    the bundle does not carry them, so every bundle on disk is
    mmap-servable with rankings bit-identical to an eager load.

    Returns the bundle directory.  Overwrites an existing bundle at the
    same path; refuses to write into a path occupied by a file.

    Raises:
        PersistenceError: if ``path`` exists and is not a directory.
        ShapeError: if the bundle's document factors are not the 2-D
            blocks normalisation expects.
        ValidationError: if the factors carry non-finite entries.
    """
    directory = Path(path)
    if directory.exists() and not directory.is_dir():
        raise PersistenceError(
            f"bundle path {directory} exists and is not a directory")
    directory.mkdir(parents=True, exist_ok=True)

    doc_unit, doc_norms = bundle.doc_unit, bundle.doc_norms
    if doc_unit is None:
        doc_unit, doc_norms = normalize_columns(bundle.doc_vectors)

    arrays = {
        "u": bundle.svd.u,
        "singular_values": bundle.svd.singular_values,
        "vt": bundle.svd.vt,
        "frobenius_norm_sq": np.float64(bundle.svd.frobenius_norm_sq),
        "doc_vectors": bundle.doc_vectors,
        "doc_unit": doc_unit,
        "doc_norms": doc_norms,
        "tombstones": np.asarray(sorted(bundle.tombstones),
                                 dtype=np.int64),
    }
    checksums = {}
    for name in _V3_ARRAYS:
        array_path = directory / f"{name}.npy"
        np.save(array_path, np.asarray(arrays[name]),
                allow_pickle=False)
        checksums[f"{name}.npy"] = _sha256_file(array_path)
    # A superseded v1/v2 payload in the same directory would shadow
    # nothing (readers dispatch on schema_version) but waste space and
    # confuse checksum audits; drop it.
    legacy = directory / ARRAYS_NAME
    if legacy.exists():
        legacy.unlink()

    version_digest = hashlib.sha256(
        "".join(checksums[key] for key in sorted(checksums))
        .encode("ascii")).hexdigest()
    stamped = replace(bundle,
                      doc_unit=doc_unit,
                      doc_norms=doc_norms,
                      schema_version=BUNDLE_SCHEMA_VERSION,
                      index_version=version_digest[:16],
                      created_at=datetime.now(timezone.utc).isoformat(),
                      env=bundle.env or environment_fingerprint())
    manifest = stamped.manifest()
    manifest["checksums"] = checksums
    with open(directory / MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return directory


def read_manifest(path, *, verify_arrays: bool = False) -> dict:
    """Load and validate a bundle's manifest without loading arrays.

    Args:
        path: the bundle directory.
        verify_arrays: also recompute the array payload checksums.

    Raises:
        PersistenceError: missing/unparsable manifest, foreign format,
            unsupported schema version, or (with ``verify_arrays``) a
            checksum mismatch.
    """
    directory = Path(path)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise PersistenceError(
            f"{directory} is not an index bundle: no {MANIFEST_NAME}")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise PersistenceError(
            f"unreadable bundle manifest {manifest_path}: {error}"
        ) from error
    if not isinstance(manifest, dict):
        raise PersistenceError(
            f"{directory} manifest is not a JSON object")
    if manifest.get("format") != BUNDLE_FORMAT:
        raise PersistenceError(
            f"{directory} is not a {BUNDLE_FORMAT} bundle (format marker "
            f"is {manifest.get('format')!r}); refusing to load a foreign "
            "bundle")
    version = manifest.get("schema_version")
    if version not in (1, 2, BUNDLE_SCHEMA_VERSION):
        raise PersistenceError(
            f"unsupported bundle schema_version {version!r}; this "
            f"reader handles 1..{BUNDLE_SCHEMA_VERSION}")
    if verify_arrays:
        _verify_checksums(directory, manifest)
    return manifest


def checksum_failures(directory, manifest: dict
                      ) -> "list[ChecksumMismatch]":
    """Every array file whose digest disagrees with the manifest.

    Checks *all* recorded files instead of stopping at the first
    problem, so a corruption report (``repro serve-stats --verify``)
    names each damaged file with its expected and actual digests.

    Args:
        directory: the bundle directory.
        manifest: its parsed manifest (see :func:`read_manifest`).

    Returns:
        One :class:`ChecksumMismatch` per failing file (empty when the
        payload is intact), in manifest array order.
    """
    directory = Path(directory)
    recorded = manifest.get("checksums") or {}
    if manifest.get("schema_version") in (1, 2):
        names = [ARRAYS_NAME]
    else:
        names = [f"{name}.npy" for name in _V3_ARRAYS]
    failures = []
    for name in names:
        array_path = directory / name
        expected = recorded.get(name)
        if not array_path.is_file():
            failures.append(ChecksumMismatch(name, expected, None))
            continue
        actual = sha256_file(array_path)
        if expected is None or actual != expected:
            failures.append(ChecksumMismatch(name, expected, actual))
    return failures


def _verify_checksums(directory: Path, manifest: dict) -> None:
    """Recompute the array payload digests and compare to the manifest.

    Raises one :class:`~repro.errors.PersistenceError` listing *every*
    mismatching file individually, not just the first.
    """
    failures = checksum_failures(directory, manifest)
    if failures:
        details = "; ".join(f.describe() for f in failures)
        raise PersistenceError(
            f"bundle {directory} failed checksum verification for "
            f"{len(failures)} file(s): {details}")


def _load_npz_arrays(directory: Path) -> dict:
    """Eagerly load a legacy (schema 1/2) ``arrays.npz`` payload."""
    arrays_path = directory / ARRAYS_NAME
    try:
        # npz members cannot be memory-mapped (np.load silently copies
        # them), so the legacy path is eager by necessity.
        with np.load(arrays_path,  # reprolint: disable=R111
                     allow_pickle=False) as payload:
            return {name: payload[name] for name in payload.files}
    except (OSError, ValueError, zipfile.BadZipFile) as error:
        raise PersistenceError(
            f"unreadable bundle arrays {arrays_path}: {error}") from error


def _load_npy_arrays(directory: Path, *, mmap: bool) -> dict:
    """Load a schema-3 payload, optionally mapping the large arrays.

    Under ``mmap`` the :data:`_V3_LARGE_ARRAYS` come back as read-only
    ``np.memmap`` views — O(page table) now, real I/O deferred to first
    touch — while the small per-column vectors load eagerly.
    """
    arrays = {}
    for name in _V3_ARRAYS:
        array_path = directory / f"{name}.npy"
        if not array_path.is_file():
            raise PersistenceError(
                f"bundle {directory} (schema 3) is missing {name}.npy")
        mode = "r" if mmap and name in _V3_LARGE_ARRAYS else None
        try:
            arrays[name] = np.load(array_path, allow_pickle=False,
                                   mmap_mode=mode)
        except (OSError, ValueError) as error:
            raise PersistenceError(
                f"unreadable bundle array {array_path}: {error}"
            ) from error
    return arrays


def read_bundle(path, *, mmap: bool = False) -> IndexBundle:
    """Load, verify, and shape-check a bundle from disk.

    Args:
        path: the bundle directory.
        mmap: map the large arrays read-only instead of loading them
            (schema 3 only; legacy npz bundles fall back to an eager
            load).  The mmap path is the O(manifest) cold start: it
            skips checksum verification — hashing the payload would
            read every byte and defeat the deferral — so corruption
            surfaces as wrong scores, not a load-time error.  Eager
            loads always verify.

    Raises:
        PersistenceError: on any integrity failure — see
            :func:`read_manifest` plus array/shape validation.
    """
    directory = Path(path)
    manifest = read_manifest(directory)
    version = int(manifest["schema_version"])
    use_mmap = bool(mmap) and version >= 3
    if not use_mmap:
        _verify_checksums(directory, manifest)
    if version >= 3:
        arrays = _load_npy_arrays(directory, mmap=use_mmap)
    else:
        arrays = _load_npz_arrays(directory)

    missing = [name for name in _REQUIRED_ARRAYS if name not in arrays]
    if missing:
        raise PersistenceError(
            f"bundle {directory} is missing arrays {missing}")
    try:
        svd = SVDResult(arrays["u"], arrays["singular_values"],
                        arrays["vt"],
                        float(arrays["frobenius_norm_sq"]))
    except ValidationError as error:
        raise PersistenceError(
            f"bundle {directory} holds an inconsistent SVD: {error}"
        ) from error

    doc_unit = doc_norms = None
    if version == 1:
        doc_vectors = svd.document_vectors()
        n_original = doc_vectors.shape[1]
        tombstones: tuple = ()
        stats = ServingStats()
        unabsorbed = 0.0
        threshold: "float | None" = 0.1
    else:
        if "doc_vectors" not in arrays:
            raise PersistenceError(
                f"bundle {directory} (schema {version}) is missing "
                "doc_vectors")
        doc_vectors = arrays["doc_vectors"]
        n_original = int(manifest.get("n_original",
                                      doc_vectors.shape[1]))
        tombstones = tuple(
            int(d) for d in arrays.get("tombstones",
                                       np.empty(0, dtype=np.int64)))
        stats = ServingStats.from_dict(manifest.get("stats") or {})
        unabsorbed = float(manifest.get("unabsorbed_energy", 0.0))
        threshold = manifest.get("drift_threshold")
        if version >= 3:
            doc_unit = arrays["doc_unit"]
            doc_norms = arrays["doc_norms"]

    expected = {"rank": svd.rank, "n_terms": int(svd.u.shape[0]),
                "n_documents": int(doc_vectors.shape[1])}
    for key, actual in expected.items():
        recorded = manifest.get(key)
        if recorded is not None and int(recorded) != actual:
            raise PersistenceError(
                f"bundle {directory} manifest/array mismatch: manifest "
                f"says {key}={recorded}, arrays say {actual}")

    vocabulary = manifest.get("vocabulary")
    try:
        return IndexBundle(
            svd=svd,
            doc_vectors=doc_vectors,
            n_original=n_original,
            tombstones=tombstones,
            unabsorbed_energy=unabsorbed,
            drift_threshold=threshold,
            stats=stats,
            vocabulary=tuple(vocabulary) if vocabulary else None,
            doc_unit=doc_unit,
            doc_norms=doc_norms,
            compute_dtype=str(manifest.get("compute_dtype", "float64")),
            mmapped=use_mmap,
            schema_version=version,
            index_version=str(manifest.get("index_version", "")),
            created_at=str(manifest.get("created_at", "")),
            env=dict(manifest.get("env") or {}))
    except ValidationError as error:
        raise PersistenceError(
            f"bundle {directory} failed validation: {error}") from error
