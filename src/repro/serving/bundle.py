"""Versioned on-disk persistence for LSI indexes.

A bundle is a directory with two files:

- ``arrays.npz`` — the numerical payload: the truncated SVD factors
  (``u``, ``singular_values``, ``vt``), the (possibly fold-extended)
  document store ``doc_vectors``, tombstoned ids, and
  ``frobenius_norm_sq``, all bit-exact float64 so a load reproduces
  in-memory rankings exactly;
- ``manifest.json`` — schema version, shape summary, a SHA-256 checksum
  of the array payload (corruption detection), an environment
  fingerprint (same spirit as the benchmark harness's
  ``BENCH_*.json`` fingerprints: informational, never used for
  matching), the serving counters, and the writer's drift accounting.

Loading is strict: a missing or unparsable manifest, a foreign
``format`` marker, an unsupported ``schema_version``, a checksum
mismatch, or shape disagreement between manifest and arrays all raise
:class:`~repro.errors.PersistenceError`.  Schema version 1 (factors
only, no serving state) still loads, with serving state defaulted — the
backward-compatibility contract for bundles written before the serving
layer existed.
"""

from __future__ import annotations

import hashlib
import json
import platform
import zipfile
from dataclasses import dataclass, field, replace
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.errors import PersistenceError, ValidationError
from repro.linalg.svd import SVDResult
from repro.serving.stats import ServingStats

__all__ = [
    "ARRAYS_NAME",
    "BUNDLE_FORMAT",
    "BUNDLE_SCHEMA_VERSION",
    "IndexBundle",
    "environment_fingerprint",
    "read_bundle",
    "read_manifest",
    "write_bundle",
]

#: Marker distinguishing our bundles from arbitrary npz+json directories.
BUNDLE_FORMAT = "repro-lsi-index"

#: Current manifest schema version (1 = factors only, 2 = serving state).
BUNDLE_SCHEMA_VERSION = 2

#: File names inside a bundle directory.
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

#: Arrays every schema version must provide.
_REQUIRED_ARRAYS = ("u", "singular_values", "vt", "frobenius_norm_sq")


def environment_fingerprint() -> dict:
    """A JSON-ready description of the interpreter that wrote a bundle.

    Mirrors the benchmark harness's report fingerprint: recorded for
    provenance and debugging (a ranking diff across machines usually
    starts with "different BLAS"), never consulted when loading.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def _sha256_file(path: Path) -> str:
    """``sha256:<hex>`` digest of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return f"sha256:{digest.hexdigest()}"


@dataclass(frozen=True)
class IndexBundle:
    """The in-memory image of a persisted LSI index.

    Attributes:
        svd: the truncated SVD the index serves from.
        doc_vectors: ``(k, m_total)`` LSI document store — fitted
            documents plus any folded-in columns.
        n_original: how many leading columns of ``doc_vectors`` came
            from the fit (the rest were folded in).
        tombstones: ids of deleted (masked-out) documents.
        unabsorbed_energy: the writer's accumulated out-of-subspace /
            deleted energy (drift numerator).
        drift_threshold: drift level past which a refit is recommended
            (``None`` disables the recommendation).
        stats: serving counters at save time.
        vocabulary: optional term strings (position = term id).
        schema_version: manifest schema the bundle was read from /
            will be written with.
        index_version: content hash of the array payload (filled on
            write/read; empty for bundles never persisted).
        created_at: ISO-8601 UTC write timestamp (filled on write).
        env: environment fingerprint of the writing interpreter.
    """

    svd: SVDResult
    doc_vectors: np.ndarray
    n_original: int
    tombstones: tuple = ()
    unabsorbed_energy: float = 0.0
    drift_threshold: "float | None" = 0.1
    stats: ServingStats = field(default_factory=ServingStats)
    vocabulary: "tuple | None" = None
    schema_version: int = BUNDLE_SCHEMA_VERSION
    index_version: str = ""
    created_at: str = ""
    env: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.doc_vectors.ndim != 2 \
                or self.doc_vectors.shape[0] != self.svd.rank:
            raise ValidationError(
                f"doc_vectors must be (rank, m); got "
                f"{self.doc_vectors.shape} for rank {self.svd.rank}")
        if not 0 <= self.n_original <= self.doc_vectors.shape[1]:
            raise ValidationError(
                f"n_original={self.n_original} out of range for "
                f"{self.doc_vectors.shape[1]} stored documents")
        bad = [d for d in self.tombstones
               if not 0 <= int(d) < self.doc_vectors.shape[1]]
        if bad:
            raise ValidationError(
                f"tombstoned ids {bad} out of range for "
                f"{self.doc_vectors.shape[1]} stored documents")
        if self.vocabulary is not None \
                and len(self.vocabulary) != self.svd.u.shape[0]:
            raise ValidationError(
                f"vocabulary has {len(self.vocabulary)} terms; the index "
                f"has {self.svd.u.shape[0]}")

    @classmethod
    def from_model(cls, model, *, vocabulary=None,
                   drift_threshold: "float | None" = 0.1) -> "IndexBundle":
        """Snapshot a plain fitted :class:`~repro.core.lsi.LSIModel`."""
        terms = None
        if vocabulary is not None:
            terms = tuple(getattr(vocabulary, "terms", vocabulary))
        return cls(svd=model.svd,
                   doc_vectors=model.document_vectors(),
                   n_original=model.n_documents,
                   drift_threshold=drift_threshold,
                   vocabulary=terms,
                   env=environment_fingerprint())

    def to_model(self):
        """The bundled SVD as a fresh :class:`~repro.core.lsi.LSIModel`."""
        from repro.core.lsi import LSIModel

        return LSIModel(self.svd)

    @property
    def n_documents(self) -> int:
        """Total stored documents (fitted + folded, incl. tombstoned)."""
        return int(self.doc_vectors.shape[1])

    def manifest(self) -> dict:
        """The JSON-ready manifest describing this bundle."""
        return {
            "format": BUNDLE_FORMAT,
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "index_version": self.index_version,
            "rank": self.svd.rank,
            "n_terms": int(self.svd.u.shape[0]),
            "n_documents": self.n_documents,
            "n_original": int(self.n_original),
            "n_tombstoned": len(self.tombstones),
            "unabsorbed_energy": float(self.unabsorbed_energy),
            "drift_threshold": self.drift_threshold,
            "stats": self.stats.as_dict(),
            "vocabulary": (list(self.vocabulary)
                           if self.vocabulary is not None else None),
            "env": self.env,
            "checksums": {},
        }


def write_bundle(path, bundle: IndexBundle) -> Path:
    """Persist ``bundle`` to directory ``path`` (created if needed).

    Returns the bundle directory.  Overwrites an existing bundle at the
    same path; refuses to write into a path occupied by a file.
    """
    directory = Path(path)
    if directory.exists() and not directory.is_dir():
        raise PersistenceError(
            f"bundle path {directory} exists and is not a directory")
    directory.mkdir(parents=True, exist_ok=True)

    arrays_path = directory / ARRAYS_NAME
    with open(arrays_path, "wb") as handle:
        np.savez(handle,
                 u=bundle.svd.u,
                 singular_values=bundle.svd.singular_values,
                 vt=bundle.svd.vt,
                 frobenius_norm_sq=np.float64(
                     bundle.svd.frobenius_norm_sq),
                 doc_vectors=bundle.doc_vectors,
                 tombstones=np.asarray(sorted(bundle.tombstones),
                                       dtype=np.int64))
    checksum = _sha256_file(arrays_path)

    stamped = replace(bundle,
                      schema_version=BUNDLE_SCHEMA_VERSION,
                      index_version=checksum.split(":", 1)[1][:16],
                      created_at=datetime.now(timezone.utc).isoformat(),
                      env=bundle.env or environment_fingerprint())
    manifest = stamped.manifest()
    manifest["checksums"] = {ARRAYS_NAME: checksum}
    with open(directory / MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return directory


def read_manifest(path, *, verify_arrays: bool = False) -> dict:
    """Load and validate a bundle's manifest without loading arrays.

    Args:
        path: the bundle directory.
        verify_arrays: also recompute the array payload's checksum.

    Raises:
        PersistenceError: missing/unparsable manifest, foreign format,
            unsupported schema version, or (with ``verify_arrays``) a
            checksum mismatch.
    """
    directory = Path(path)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise PersistenceError(
            f"{directory} is not an index bundle: no {MANIFEST_NAME}")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise PersistenceError(
            f"unreadable bundle manifest {manifest_path}: {error}"
        ) from error
    if not isinstance(manifest, dict):
        raise PersistenceError(
            f"{directory} manifest is not a JSON object")
    if manifest.get("format") != BUNDLE_FORMAT:
        raise PersistenceError(
            f"{directory} is not a {BUNDLE_FORMAT} bundle (format marker "
            f"is {manifest.get('format')!r}); refusing to load a foreign "
            "bundle")
    version = manifest.get("schema_version")
    if version not in (1, BUNDLE_SCHEMA_VERSION):
        raise PersistenceError(
            f"unsupported bundle schema_version {version!r}; this "
            f"reader handles 1..{BUNDLE_SCHEMA_VERSION}")
    if verify_arrays:
        _verify_checksum(directory, manifest)
    return manifest


def _verify_checksum(directory: Path, manifest: dict) -> None:
    """Recompute the array payload digest and compare to the manifest."""
    arrays_path = directory / ARRAYS_NAME
    if not arrays_path.is_file():
        raise PersistenceError(f"bundle {directory} has no {ARRAYS_NAME}")
    recorded = (manifest.get("checksums") or {}).get(ARRAYS_NAME)
    if recorded is None:
        raise PersistenceError(
            f"bundle {directory} manifest records no checksum for "
            f"{ARRAYS_NAME}")
    actual = _sha256_file(arrays_path)
    if actual != recorded:
        raise PersistenceError(
            f"bundle {directory} is corrupted: {ARRAYS_NAME} checksum "
            f"{actual} does not match recorded {recorded}")


def read_bundle(path) -> IndexBundle:
    """Load, checksum-verify, and shape-check a bundle from disk.

    Raises:
        PersistenceError: on any integrity failure — see
            :func:`read_manifest` plus array/shape validation.
    """
    directory = Path(path)
    manifest = read_manifest(directory, verify_arrays=True)
    arrays_path = directory / ARRAYS_NAME
    try:
        with np.load(arrays_path, allow_pickle=False,
                     mmap_mode="r") as payload:
            arrays = {name: payload[name] for name in payload.files}
    except (OSError, ValueError, zipfile.BadZipFile) as error:
        raise PersistenceError(
            f"unreadable bundle arrays {arrays_path}: {error}") from error

    missing = [name for name in _REQUIRED_ARRAYS if name not in arrays]
    if missing:
        raise PersistenceError(
            f"bundle {directory} is missing arrays {missing}")
    try:
        svd = SVDResult(arrays["u"], arrays["singular_values"],
                        arrays["vt"],
                        float(arrays["frobenius_norm_sq"]))
    except ValidationError as error:
        raise PersistenceError(
            f"bundle {directory} holds an inconsistent SVD: {error}"
        ) from error

    if manifest["schema_version"] == 1:
        doc_vectors = svd.document_vectors()
        n_original = doc_vectors.shape[1]
        tombstones: tuple = ()
        stats = ServingStats()
        unabsorbed = 0.0
        threshold: "float | None" = 0.1
    else:
        if "doc_vectors" not in arrays:
            raise PersistenceError(
                f"bundle {directory} (schema 2) is missing doc_vectors")
        doc_vectors = arrays["doc_vectors"]
        n_original = int(manifest.get("n_original",
                                      doc_vectors.shape[1]))
        tombstones = tuple(
            int(d) for d in arrays.get("tombstones",
                                       np.empty(0, dtype=np.int64)))
        stats = ServingStats.from_dict(manifest.get("stats") or {})
        unabsorbed = float(manifest.get("unabsorbed_energy", 0.0))
        threshold = manifest.get("drift_threshold")

    expected = {"rank": svd.rank, "n_terms": int(svd.u.shape[0]),
                "n_documents": int(doc_vectors.shape[1])}
    for key, actual in expected.items():
        recorded = manifest.get(key)
        if recorded is not None and int(recorded) != actual:
            raise PersistenceError(
                f"bundle {directory} manifest/array mismatch: manifest "
                f"says {key}={recorded}, arrays say {actual}")

    vocabulary = manifest.get("vocabulary")
    try:
        return IndexBundle(
            svd=svd,
            doc_vectors=doc_vectors,
            n_original=n_original,
            tombstones=tombstones,
            unabsorbed_energy=unabsorbed,
            drift_threshold=threshold,
            stats=stats,
            vocabulary=tuple(vocabulary) if vocabulary else None,
            schema_version=int(manifest["schema_version"]),
            index_version=str(manifest.get("index_version", "")),
            created_at=str(manifest.get("created_at", "")),
            env=dict(manifest.get("env") or {}))
    except ValidationError as error:
        raise PersistenceError(
            f"bundle {directory} failed validation: {error}") from error
