"""The served LSI index: persistence + batching + incremental updates.

:class:`ServedIndex` is the runtime object a retrieval service holds:
it conforms to the :class:`~repro.ir.retriever.Retriever` protocol, so
anything written against the experiment engines runs against it
unchanged, and adds what production traffic needs:

- ``rank_batch`` — whole query blocks in single GEMMs, with an LRU
  result cache keyed on (index generation, query hash, cutoff);
- ``add_documents`` / ``remove_documents`` — fold-in and tombstoning
  through an :class:`~repro.serving.writer.IndexWriter`, with monotone
  drift tracking and a refit recommendation;
- ``save`` / ``load`` — checksummed, schema-versioned bundles
  (:mod:`repro.serving.bundle`) that reproduce in-memory rankings
  exactly;
- ``stats`` — the :class:`~repro.serving.stats.ServingStats` counters
  behind ``repro serve-stats``.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.lsi import LSIModel
from repro.serving.bundle import IndexBundle, read_bundle, write_bundle
from repro.serving.engine import BatchQueryEngine, LRUResultCache, \
    QueryBatch
from repro.serving.stats import ServingStats
from repro.serving.writer import DriftReport, IndexWriter
from repro.utils.validation import check_top_k, check_vector

if TYPE_CHECKING:
    from repro.core.folding import FoldingIndex
    from repro.core.two_step import TwoStepLSI
    from repro.ir.bm25 import BM25Model
    from repro.ir.retriever import Retriever
    from repro.ir.vsm import VectorSpaceModel

__all__ = ["ServedIndex"]


class ServedIndex:
    """A persistent, batched, incrementally-updatable LSI index.

    Build with :meth:`fit` (or wrap an existing model), serve with
    :meth:`score` / :meth:`rank_documents` / :meth:`rank_batch`, evolve
    with :meth:`add_documents` / :meth:`remove_documents` /
    :meth:`refit`, persist with :meth:`save` / :meth:`load`.

    Args:
        model: a fitted :class:`~repro.core.lsi.LSIModel`.
        vocabulary: optional term strings persisted with the index.
        drift_threshold: drift level past which a refit is recommended.
        cache_capacity: LRU result-cache size (0 disables caching).
    """

    def __init__(self, model: LSIModel, *, vocabulary=None,
                 drift_threshold: "float | None" = 0.1,
                 cache_capacity: int = 256):
        self._writer = IndexWriter(model,
                                   drift_threshold=drift_threshold)
        self._cache = LRUResultCache(cache_capacity)
        self._vocabulary = (tuple(getattr(vocabulary, "terms",
                                          vocabulary))
                            if vocabulary is not None else None)
        self._generation = 0
        self._engine_cache: "BatchQueryEngine | None" = None
        self._engine_generation = -1
        self._base_version = "unsaved"
        self._queries_served = 0
        self._batches_served = 0
        self._base_stats = ServingStats()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def fit(cls, matrix, rank, *, engine: str = "lanczos", seed=None,
            vocabulary=None, drift_threshold: "float | None" = 0.1,
            cache_capacity: int = 256, **engine_kwargs) -> "ServedIndex":
        """Fit rank-``rank`` LSI on a term–document matrix and serve it.

        Arguments mirror :meth:`repro.core.lsi.LSIModel.fit` plus the
        serving knobs of the constructor.
        """
        model = LSIModel.fit(matrix, rank, engine=engine, seed=seed,
                             **engine_kwargs)
        return cls(model, vocabulary=vocabulary,
                   drift_threshold=drift_threshold,
                   cache_capacity=cache_capacity)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def model(self) -> LSIModel:
        """The LSI model currently backing the index."""
        return self._writer.model

    @property
    def rank(self) -> int:
        """The LSI dimension ``k``."""
        return self._writer.model.rank

    @property
    def n_terms(self) -> int:
        """Term-space dimensionality queries must have."""
        return self._writer.model.n_terms

    @property
    def n_documents(self) -> int:
        """Total stored documents (scores are indexed ``0..m-1``)."""
        return self._writer.n_documents

    @property
    def n_active(self) -> int:
        """Documents eligible to appear in rankings."""
        return self._writer.n_active

    @property
    def vocabulary(self) -> "tuple | None":
        """Term strings persisted with the index, if any."""
        return self._vocabulary

    @property
    def index_version(self) -> str:
        """Cache-key identity: bundle content hash + live generation."""
        return f"{self._base_version}@gen{self._generation}"

    @property
    def drift(self) -> float:
        """Current fold-in drift (see :mod:`repro.serving.writer`)."""
        return self._writer.drift

    @property
    def needs_refit(self) -> bool:
        """Whether drift has crossed the configured threshold."""
        return self._writer.needs_refit

    def drift_report(self) -> DriftReport:
        """The writer's frozen drift accounting."""
        return self._writer.drift_report()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def _engine(self) -> BatchQueryEngine:
        """The query engine for the current generation (lazily built)."""
        if self._engine_generation != self._generation:
            self._engine_cache = BatchQueryEngine(
                self._writer.model.term_basis,
                self._writer.document_vectors(),
                tombstones=self._writer.tombstones)
            self._engine_generation = self._generation
        assert self._engine_cache is not None
        return self._engine_cache

    def score(self, query_vector) -> np.ndarray:
        """Cosine scores of every stored document (tombstoned → 0)."""
        self._queries_served += 1
        return self._engine().score(query_vector)

    def rank_documents(self, query_vector, *, top_k=None) -> np.ndarray:
        """Ranked document ids for one query (``top_k=None`` = all).

        Consults the LRU result cache first; a miss computes through
        the batched kernel and populates the cache.
        """
        query = check_vector(query_vector, "query_vector")
        return self.rank_batch(query[:, None], top_k=top_k)[0]

    def rank_batch(self, queries, *, top_k=None) -> np.ndarray:
        """Ranked ids for a query block, ``(q, top_k_eff)``.

        Cached queries are answered from the LRU cache; the remaining
        columns are projected and ranked in single GEMMs.  Results are
        identical to calling :meth:`rank_documents` per query.

        Args:
            queries: a :class:`~repro.serving.engine.QueryBatch`, a
                dense ``(n_terms, q)`` array, or a sequence of 1-D
                query vectors.
            top_k: shared cutoff policy (``None`` = all), clamped to
                the number of active documents.
        """
        engine = self._engine()
        batch = engine._as_batch(queries)
        top_k = min(check_top_k(top_k, self.n_documents),
                    self._writer.n_active)
        self._batches_served += 1
        self._queries_served += batch.n_queries

        out = np.empty((batch.n_queries, top_k), dtype=np.int64)
        missing = []
        keys = []
        for i in range(batch.n_queries):
            key = (self._generation, batch.query_hash(i), top_k)
            keys.append(key)
            cached = self._cache.get(key)
            if cached is None:
                missing.append(i)
            else:
                out[i] = cached
        if missing:
            sub = QueryBatch(batch.matrix[:, missing])
            computed = engine.rank_batch(sub, top_k=top_k)
            for row, i in enumerate(missing):
                out[i] = computed[row]
                self._cache.put(keys[i], computed[row])
        return out

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add_documents(self, columns) -> np.ndarray:
        """Fold new documents in; returns their assigned ids.

        Bumps the index generation, so cached rankings for the previous
        corpus can never be served against the new one.
        """
        ids = self._writer.add_documents(columns)
        self._bump()
        return ids

    def remove_documents(self, doc_ids) -> None:
        """Tombstone documents; they stop appearing in rankings."""
        self._writer.remove_documents(doc_ids)
        self._bump()

    def refit(self, matrix, *, rank=None, engine: str = "lanczos",
              seed=None, **engine_kwargs) -> LSIModel:
        """Re-run the SVD on an authoritative matrix and reset drift."""
        model = self._writer.refit(matrix, rank=rank, engine=engine,
                                   seed=seed, **engine_kwargs)
        self._bump()
        return model

    def _bump(self) -> None:
        """Advance the generation and drop stale cache entries."""
        self._generation += 1
        self._cache.clear()

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def stats(self) -> ServingStats:
        """A snapshot of the serving counters (see ``serve-stats``).

        Counters accumulate across save/load: loading a bundle restores
        its persisted totals as the new baseline.
        """
        base = self._base_stats
        return ServingStats(
            queries_served=base.queries_served + self._queries_served,
            batches_served=base.batches_served + self._batches_served,
            cache_hits=base.cache_hits + self._cache.hits,
            cache_misses=base.cache_misses + self._cache.misses,
            cache_evictions=base.cache_evictions
            + self._cache.evictions,
            fold_ins_since_refit=self._writer.fold_ins_since_refit,
            deletes_since_refit=self._writer.deletes_since_refit,
            refits=base.refits + self._writer.refits,
            drift=self._writer.drift,
            refit_recommended=self._writer.needs_refit)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path) -> Path:
        """Persist the index as a bundle directory; returns the path."""
        bundle = IndexBundle(
            svd=self._writer.model.svd,
            doc_vectors=self._writer.document_vectors(),
            n_original=self._writer.n_original,
            tombstones=self._writer.tombstones,
            unabsorbed_energy=self._writer.unabsorbed_energy,
            drift_threshold=self._writer.drift_threshold,
            stats=self.stats(),
            vocabulary=self._vocabulary)
        return write_bundle(path, bundle)

    @classmethod
    def load(cls, path, *, cache_capacity: int = 256) -> "ServedIndex":
        """Load a bundle saved by :meth:`save` (or any schema-1 bundle).

        The restored index reproduces the saved index's rankings
        exactly and continues its counters and drift accounting.
        """
        bundle = read_bundle(path)
        index = cls.__new__(cls)
        model = LSIModel(bundle.svd)
        index._writer = IndexWriter.from_state(
            model, bundle.doc_vectors,
            n_original=bundle.n_original,
            tombstones=bundle.tombstones,
            unabsorbed_energy=bundle.unabsorbed_energy,
            drift_threshold=bundle.drift_threshold,
            fold_ins=bundle.stats.fold_ins_since_refit,
            deletes=bundle.stats.deletes_since_refit)
        index._cache = LRUResultCache(cache_capacity)
        index._vocabulary = bundle.vocabulary
        index._generation = 0
        index._engine_cache = None
        index._engine_generation = -1
        index._base_version = bundle.index_version or "unsaved"
        index._queries_served = 0
        index._batches_served = 0
        index._base_stats = ServingStats(
            queries_served=bundle.stats.queries_served,
            batches_served=bundle.stats.batches_served,
            cache_hits=bundle.stats.cache_hits,
            cache_misses=bundle.stats.cache_misses,
            cache_evictions=bundle.stats.cache_evictions,
            refits=bundle.stats.refits)
        return index

    def __repr__(self) -> str:
        return (f"ServedIndex(k={self.rank}, n={self.n_terms}, "
                f"m={self.n_documents}, active={self.n_active}, "
                f"drift={self.drift:.4f}, "
                f"version={self.index_version!r})")


def _retriever_conformance(
        lsi: "LSIModel",
        vsm: "VectorSpaceModel",
        bm25: "BM25Model",
        folding: "FoldingIndex",
        two_step: "TwoStepLSI",
        served: "ServedIndex",
) -> "tuple[Retriever, ...]":
    """Static proof that every engine satisfies ``Retriever``.

    This function is never called; mypy type-checks the return
    statement, so a signature drift in any engine breaks CI.  It lives
    here (not in :mod:`repro.ir.retriever`) because the serving layer
    already imports every backend, keeping the import graph acyclic.
    """
    return (lsi, vsm, bm25, folding, two_step, served)
