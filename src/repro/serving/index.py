"""The served LSI index: persistence + batching + incremental updates.

:class:`ServedIndex` is the runtime object a retrieval service holds:
it conforms to the :class:`~repro.ir.retriever.Retriever` protocol, so
anything written against the experiment engines runs against it
unchanged, and adds what production traffic needs:

- ``rank_batch`` — whole query blocks in single GEMMs, with an LRU
  result cache keyed on (index generation, query hash, cutoff);
- ``add_documents`` / ``remove_documents`` — fold-in and tombstoning
  through an :class:`~repro.serving.writer.IndexWriter`, with monotone
  drift tracking and a refit recommendation;
- ``save`` / ``load`` — checksummed, schema-versioned bundles
  (:mod:`repro.serving.bundle`) that reproduce in-memory rankings
  exactly, with a memory-mapped cold-start path that maps the large
  factors read-only and defers all real I/O to the first query;
- one :class:`~repro.serving.config.ServingConfig` carrying every
  serving-time policy — compute precision, cache sizing, mmap
  loading — shared verbatim with the sharded index and the
  micro-batching dispatcher (the old per-call kwargs survive one
  release behind a :class:`DeprecationWarning` shim);
- ``stats`` — the :class:`~repro.serving.stats.ServingStats` counters
  behind ``repro serve-stats``.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.lsi import LSIModel
from repro.errors import ValidationError
from repro.linalg.svd import SVDResult
from repro.serving.bundle import IndexBundle, read_bundle, write_bundle
from repro.serving.config import ServingConfig, resolve_config
from repro.serving.engine import COMPUTE_DTYPES, BatchQueryEngine, \
    LRUResultCache, QueryBatch
from repro.serving.stats import ServingStats
from repro.serving.writer import DriftReport, IndexWriter
from repro.utils.validation import check_top_k, check_vector

if TYPE_CHECKING:
    from repro.core.folding import FoldingIndex
    from repro.core.two_step import TwoStepLSI
    from repro.ir.bm25 import BM25Model
    from repro.ir.retriever import Retriever
    from repro.ir.vsm import VectorSpaceModel
    # Type-only: no runtime cycle with the sharded module.
    from repro.serving.sharded import (  # reprolint: disable=R007
        ShardedIndex,
    )

__all__ = ["ServedIndex"]


def _resolve_dtype(dtype) -> str:
    """Validate a compute-precision request down to its canonical name."""
    name = np.dtype(dtype).name
    if name not in COMPUTE_DTYPES:
        raise ValidationError(
            f"compute dtype must be one of {COMPUTE_DTYPES}, got "
            f"{name!r}")
    return name


class ServedIndex:
    """A persistent, batched, incrementally-updatable LSI index.

    Build with :meth:`fit` (or wrap an existing model), serve with
    :meth:`score` / :meth:`rank_documents` / :meth:`rank_batch`, evolve
    with :meth:`add_documents` / :meth:`remove_documents` /
    :meth:`refit`, persist with :meth:`save` / :meth:`load`.

    Args:
        model: a fitted :class:`~repro.core.lsi.LSIModel`.
        vocabulary: optional term strings persisted with the index.
        config: the :class:`~repro.serving.config.ServingConfig`
            governing precision, caching, and drift policy (``None``
            = all defaults).
        **legacy: the pre-``ServingConfig`` kwargs
            (``drift_threshold=``, ``cache_capacity=``, ``dtype=``,
            ``cache_budget_bytes=``), accepted for one more release
            behind a :class:`DeprecationWarning`; unknown names raise
            eagerly with the valid fields listed.
    """

    def __init__(self, model: LSIModel, *, vocabulary=None,
                 config: "ServingConfig | None" = None, **legacy):
        config = resolve_config(config, legacy, where="ServedIndex")
        self._config = config
        self._dtype = _resolve_dtype(config.dtype or "float64")
        self._cache_budget = config.cache_budget_bytes
        self._writer: "IndexWriter | None" = IndexWriter(
            model, drift_threshold=config.drift_threshold)
        self._bundle: "IndexBundle | None" = None
        self._cache = LRUResultCache(config.cache_capacity)
        self._vocabulary = (tuple(getattr(vocabulary, "terms",
                                          vocabulary))
                            if vocabulary is not None else None)
        self._generation = 0
        self._engine_cache: "BatchQueryEngine | None" = None
        self._engine_generation = -1
        self._base_version = "unsaved"
        self._queries_served = 0
        self._batches_served = 0
        self._base_stats = ServingStats()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def fit(cls, matrix, rank, *, engine: str = "lanczos", seed=None,
            vocabulary=None, config: "ServingConfig | None" = None,
            **engine_kwargs) -> "ServedIndex":
        """Fit rank-``rank`` LSI on a term–document matrix and serve it.

        Arguments mirror :meth:`repro.core.lsi.LSIModel.fit` plus the
        serving knobs of the constructor.

        Args:
            matrix: the term–document matrix to factor.
            rank: the LSI dimension ``k``.
            engine: SVD engine name.
            seed: RNG seed for iterative engines.
            vocabulary: optional term strings persisted with the index.
            config: serving policy (see the constructor).
            **engine_kwargs: engine tuning forwarded to
                :meth:`repro.core.lsi.LSIModel.fit`; legacy serving
                kwargs (``dtype=``, ...) are also still recognised
                here, with the constructor's deprecation shim.
        """
        legacy = {name: engine_kwargs.pop(name)
                  for name in ServingConfig.field_names()
                  if name in engine_kwargs}
        config = resolve_config(config, legacy, where="ServedIndex.fit")
        model = LSIModel.fit(matrix, rank, engine=engine, seed=seed,
                             **engine_kwargs)
        return cls(model, vocabulary=vocabulary, config=config)

    @classmethod
    def fit_streamed(cls, blocks, rank, *, engine: str = "lanczos",
                     seed=None, vocabulary=None,
                     config: "ServingConfig | None" = None,
                     **engine_kwargs) -> "ServedIndex":
        """Fit an index from a stream of column blocks, out-of-core.

        The streaming twin of :meth:`fit`: blocks are decomposed and
        merged one at a time
        (:meth:`repro.core.lsi.LSIModel.fit_streamed`), so the full
        term–document matrix is never materialised and peak memory is
        one block plus the factors.  The config's ``stream_*`` knobs
        control the chunk width, the merge working-rank headroom, and
        the optional polish of re-readable matrix inputs.

        Args:
            blocks: iterable of column blocks (e.g. from
                :func:`~repro.corpus.io.corpus_column_blocks`) or a
                single in-memory matrix to chunk.
            rank: the LSI dimension ``k``.
            engine: per-block SVD engine.
            seed: RNG seed for iterative engines.
            vocabulary: optional term strings persisted with the
                index.
            config: serving policy; ``stream_block_size``,
                ``stream_oversample``, and ``stream_polish`` govern
                the incremental fit.
            **engine_kwargs: per-block engine tuning (legacy serving
                kwargs are also still recognised, with the
                constructor's deprecation shim).

        Raises:
            ValidationError: when ``config.stream_polish > 0`` with a
                one-shot block stream, or on invalid fit parameters.
            EmptyCorpusError: when the stream yields no blocks.
            ConvergenceError: when a per-block engine fails to
                converge.
        """
        legacy = {name: engine_kwargs.pop(name)
                  for name in ServingConfig.field_names()
                  if name in engine_kwargs}
        config = resolve_config(config, legacy,
                                where="ServedIndex.fit_streamed")
        model = LSIModel.fit_streamed(
            blocks, rank, engine=engine, seed=seed,
            block_size=config.stream_block_size,
            oversample=config.stream_oversample,
            polish_iterations=config.stream_polish,
            **engine_kwargs)
        return cls(model, vocabulary=vocabulary, config=config)

    @classmethod
    def from_writer(cls, writer: IndexWriter, *, vocabulary=None,
                    config: "ServingConfig | None" = None
                    ) -> "ServedIndex":
        """Serve an existing :class:`~repro.serving.writer.IndexWriter`.

        This is the shard construction path: the sharded index builds
        one writer per document partition (same model, a column subset
        of the store) and wraps each in a full ``ServedIndex`` so every
        shard gets the engine, cache, and drift machinery for free.
        The writer is adopted, not copied — the caller must hand over
        ownership.

        Args:
            writer: the writer to serve (its ``drift_threshold`` wins
                over ``config.drift_threshold``).
            vocabulary: optional term strings persisted with the index.
            config: serving policy (see the constructor).
        """
        config = config if config is not None else ServingConfig()
        index = cls.__new__(cls)
        index._config = config
        index._dtype = _resolve_dtype(config.dtype or "float64")
        index._cache_budget = config.cache_budget_bytes
        index._writer = writer
        index._bundle = None
        index._cache = LRUResultCache(config.cache_capacity)
        index._vocabulary = (tuple(getattr(vocabulary, "terms",
                                           vocabulary))
                             if vocabulary is not None else None)
        index._generation = 0
        index._engine_cache = None
        index._engine_generation = -1
        index._base_version = "unsaved"
        index._queries_served = 0
        index._batches_served = 0
        index._base_stats = ServingStats()
        return index

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def model(self) -> LSIModel:
        """The LSI model currently backing the index.

        On an mmap-loaded index this materialises the writer (see
        :meth:`load`).
        """
        return self._ensure_writer().model

    def _lazy_bundle(self) -> IndexBundle:
        """The backing bundle of a not-yet-materialised mmap load."""
        bundle = self._bundle
        assert bundle is not None, "index has neither writer nor bundle"
        return bundle

    @property
    def rank(self) -> int:
        """The LSI dimension ``k``."""
        if self._writer is not None:
            return self._writer.model.rank
        return self._lazy_bundle().svd.rank

    @property
    def n_terms(self) -> int:
        """Term-space dimensionality queries must have."""
        if self._writer is not None:
            return self._writer.model.n_terms
        return int(self._lazy_bundle().svd.u.shape[0])

    @property
    def n_documents(self) -> int:
        """Total stored documents (scores are indexed ``0..m-1``)."""
        if self._writer is not None:
            return self._writer.n_documents
        return self._lazy_bundle().n_documents

    @property
    def n_active(self) -> int:
        """Documents eligible to appear in rankings."""
        if self._writer is not None:
            return self._writer.n_active
        bundle = self._lazy_bundle()
        return bundle.n_documents - len(bundle.tombstones)

    @property
    def dtype(self) -> str:
        """Compute precision this index scores in."""
        return self._dtype

    @property
    def config(self) -> ServingConfig:
        """The serving policy this index was built with."""
        return self._config

    @property
    def generation(self) -> int:
        """Mutation counter — bumped so stale cache keys die."""
        return self._generation

    @property
    def mmapped(self) -> bool:
        """Whether the index still serves from read-only mapped arrays."""
        return self._writer is None

    @property
    def tombstones(self) -> tuple:
        """Deleted document ids, ascending (cheap on mmap loads)."""
        if self._writer is not None:
            return self._writer.tombstones
        return tuple(sorted(int(d)
                            for d in self._lazy_bundle().tombstones))

    @property
    def vocabulary(self) -> "tuple | None":
        """Term strings persisted with the index, if any."""
        return self._vocabulary

    @property
    def index_version(self) -> str:
        """Cache-key identity: bundle content hash + live generation."""
        return f"{self._base_version}@gen{self._generation}"

    @property
    def drift(self) -> float:
        """Current fold-in drift (see :mod:`repro.serving.writer`)."""
        if self._writer is not None:
            return self._writer.drift
        bundle = self._lazy_bundle()
        unabsorbed = bundle.unabsorbed_energy
        denominator = unabsorbed + bundle.svd.captured_energy()
        if denominator <= 0:
            return 0.0
        return unabsorbed / denominator

    @property
    def needs_refit(self) -> bool:
        """Whether drift has crossed the configured threshold."""
        if self._writer is not None:
            return self._writer.needs_refit
        threshold = self._lazy_bundle().drift_threshold
        return threshold is not None and self.drift >= threshold

    def drift_report(self) -> DriftReport:
        """The frozen drift accounting (cheap even on mmap loads)."""
        if self._writer is not None:
            return self._writer.drift_report()
        bundle = self._lazy_bundle()
        return DriftReport(
            drift=self.drift,
            threshold=bundle.drift_threshold,
            needs_refit=self.needs_refit,
            unabsorbed_energy=bundle.unabsorbed_energy,
            captured_energy=bundle.svd.captured_energy(),
            baseline_residual_energy=bundle.svd.residual_energy(),
            fold_ins_since_refit=bundle.stats.fold_ins_since_refit,
            deletes_since_refit=bundle.stats.deletes_since_refit)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def _engine(self) -> BatchQueryEngine:
        """The query engine for the current generation (lazily built).

        On an mmap-loaded index the engine is built zero-copy from the
        bundle's pre-normalised factors — no document page is read
        until a GEMM touches it.
        """
        if self._engine_generation != self._generation:
            if self._writer is None:
                bundle = self._lazy_bundle()
                self._engine_cache = BatchQueryEngine.from_precomputed(
                    bundle.svd.u, bundle.doc_unit, bundle.doc_norms,
                    tombstones=bundle.tombstones,
                    dtype=self._dtype,
                    cache_budget_bytes=self._cache_budget)
            else:
                self._engine_cache = BatchQueryEngine(
                    self._writer.model.term_basis,
                    self._writer.document_vectors(),
                    tombstones=self._writer.tombstones,
                    dtype=self._dtype,
                    cache_budget_bytes=self._cache_budget)
            self._engine_generation = self._generation
        assert self._engine_cache is not None
        return self._engine_cache

    def score(self, query_vector) -> np.ndarray:
        """Cosine scores of every stored document (tombstoned → 0)."""
        self._queries_served += 1
        return self._engine().score(query_vector)

    def rank_documents(self, query_vector, *, top_k=None) -> np.ndarray:
        """Ranked document ids for one query (``top_k=None`` = all).

        Consults the LRU result cache first; a miss computes through
        the batched kernel and populates the cache.
        """
        query = check_vector(query_vector, "query_vector")
        return self.rank_batch(query[:, None], top_k=top_k)[0]

    def rank_batch(self, queries, *, top_k=None) -> np.ndarray:
        """Ranked ids for a query block, ``(q, top_k_eff)``.

        Cached queries are answered from the LRU cache; the remaining
        columns are projected and ranked in single GEMMs.  Results are
        identical to calling :meth:`rank_documents` per query.

        Args:
            queries: a :class:`~repro.serving.engine.QueryBatch`, a
                dense ``(n_terms, q)`` array, or a sequence of 1-D
                query vectors.
            top_k: shared cutoff policy (``None`` = all), clamped to
                the number of active documents.
        """
        engine = self._engine()
        batch = engine._as_batch(queries)
        top_k = min(check_top_k(top_k, self.n_documents),
                    self.n_active)
        self._batches_served += 1
        self._queries_served += batch.n_queries

        out = np.empty((batch.n_queries, top_k), dtype=np.int64)
        missing = []
        keys = []
        for i in range(batch.n_queries):
            key = self._cache.key_for(self._generation, batch, i,
                                      top_k)
            keys.append(key)
            cached = self._cache.get(key)
            if cached is None:
                missing.append(i)
            else:
                out[i] = cached
        if missing:
            sub = QueryBatch(batch.matrix[:, missing])
            computed = engine.rank_batch(sub, top_k=top_k)
            for row, i in enumerate(missing):
                out[i] = computed[row]
                self._cache.put(keys[i], computed[row])
        return out

    def rank_batch_scored(self, queries, *, top_k=None
                          ) -> "tuple[np.ndarray, np.ndarray]":
        """Ranked ids and their scores for a query block.

        The shard fan-out entry point: identical ranking semantics to
        :meth:`rank_batch`, plus each returned id's cosine score (in
        the compute dtype) so a sharded merge can re-run the global
        tie policy.  Results are cached per query under a
        ``kind="scored"`` :class:`~repro.serving.engine.CacheKey`, so
        repeated fan-outs on an unchanged shard skip BLAS entirely.
        """
        engine = self._engine()
        batch = engine._as_batch(queries)
        top_k = min(check_top_k(top_k, self.n_documents),
                    self.n_active)
        self._batches_served += 1
        self._queries_served += batch.n_queries

        ids = np.empty((batch.n_queries, top_k), dtype=np.int64)
        scores = np.empty((batch.n_queries, top_k),
                          dtype=self._dtype)
        missing = []
        keys = []
        for i in range(batch.n_queries):
            key = self._cache.key_for(self._generation, batch, i,
                                      top_k, kind="scored")
            keys.append(key)
            cached = self._cache.get(key)
            if cached is None:
                missing.append(i)
            else:
                ids[i], scores[i] = cached
        if missing:
            sub = QueryBatch(batch.matrix[:, missing])
            sub_ids, sub_scores = engine.rank_batch_scored(
                sub, top_k=top_k)
            for row, i in enumerate(missing):
                ids[i] = sub_ids[row]
                scores[i] = sub_scores[row]
                self._cache.put(keys[i], (sub_ids[row],
                                          sub_scores[row]))
        return ids, scores

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _ensure_writer(self) -> IndexWriter:
        """Materialise the mutable writer from a lazily-loaded bundle.

        Mutation (and :attr:`model` access) needs real, writable
        arrays; this copies the mapped factors into memory exactly
        once and detaches the index from the bundle files entirely —
        required so a later :meth:`save` over the *same* directory
        never writes a file it is concurrently mapping.
        """
        writer = self._writer
        if writer is None:
            bundle = self._lazy_bundle()
            svd = SVDResult(np.array(bundle.svd.u),
                            np.array(bundle.svd.singular_values),
                            np.array(bundle.svd.vt),
                            bundle.svd.frobenius_norm_sq)
            writer = IndexWriter.from_state(
                LSIModel(svd),
                np.array(bundle.doc_vectors, dtype=np.float64),
                n_original=bundle.n_original,
                tombstones=bundle.tombstones,
                unabsorbed_energy=bundle.unabsorbed_energy,
                drift_threshold=bundle.drift_threshold,
                fold_ins=bundle.stats.fold_ins_since_refit,
                deletes=bundle.stats.deletes_since_refit,
                copy=False)
            self._writer = writer
            self._bundle = None
            self._engine_cache = None
            self._engine_generation = -1
        return writer

    def add_documents(self, columns) -> np.ndarray:
        """Fold new documents in; returns their assigned ids.

        Bumps the index generation, so cached rankings for the previous
        corpus can never be served against the new one.
        """
        ids = self._ensure_writer().add_documents(columns)
        self._bump()
        return ids

    def remove_documents(self, doc_ids) -> None:
        """Tombstone documents; they stop appearing in rankings."""
        self._ensure_writer().remove_documents(doc_ids)
        self._bump()

    def refit(self, matrix=None, *, full: bool = False, rank=None,
              engine: str = "lanczos", seed=None,
              **engine_kwargs) -> LSIModel:
        """Absorb accumulated updates into the factors.

        ``refit()`` with no matrix merges the buffered fold-in block
        into the basis incrementally (no from-scratch SVD; the
        config's ``stream_block_size``/``stream_oversample`` steer the
        merge); ``refit(matrix)`` re-decomposes from scratch and also
        purges tombstoned mass — see
        :meth:`repro.serving.writer.IndexWriter.refit`.

        Raises:
            ValidationError: when ``full=True`` without a matrix, the
                incremental fold buffer is unavailable (e.g. after a
                bundle load), the matrix's term space mismatches, or
                fit parameters are invalid.
            ConvergenceError: when an iterative SVD engine fails to
                converge.
        """
        if matrix is None and not full:
            engine_kwargs.setdefault(
                "block_size", self._config.stream_block_size)
            engine_kwargs.setdefault(
                "oversample", self._config.stream_oversample)
        model = self._ensure_writer().refit(
            matrix, full=full, rank=rank, engine=engine, seed=seed,
            **engine_kwargs)
        self._bump()
        return model

    def _bump(self) -> None:
        """Advance the generation and drop stale cache entries."""
        self._generation += 1
        self._cache.clear()

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def stats(self) -> ServingStats:
        """A snapshot of the serving counters (see ``serve-stats``).

        Counters accumulate across save/load: loading a bundle restores
        its persisted totals as the new baseline.
        """
        base = self._base_stats
        if self._writer is not None:
            fold_ins = self._writer.fold_ins_since_refit
            deletes = self._writer.deletes_since_refit
            refits = base.refits + self._writer.refits
        else:
            saved = self._lazy_bundle().stats
            fold_ins = saved.fold_ins_since_refit
            deletes = saved.deletes_since_refit
            refits = base.refits
        return ServingStats(
            queries_served=base.queries_served + self._queries_served,
            batches_served=base.batches_served + self._batches_served,
            cache_hits=base.cache_hits + self._cache.hits,
            cache_misses=base.cache_misses + self._cache.misses,
            cache_evictions=base.cache_evictions
            + self._cache.evictions,
            fold_ins_since_refit=fold_ins,
            deletes_since_refit=deletes,
            refits=refits,
            drift=self.drift,
            refit_recommended=self.needs_refit,
            dtype=self._dtype)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path) -> Path:
        """Persist the index as a bundle directory; returns the path.

        Saving an mmap-loaded index materialises it first (see
        :meth:`_ensure_writer`) so the write never races its own
        source mapping.
        """
        writer = self._ensure_writer()
        bundle = IndexBundle(
            svd=writer.model.svd,
            doc_vectors=writer.document_vectors(),
            n_original=writer.n_original,
            tombstones=writer.tombstones,
            unabsorbed_energy=writer.unabsorbed_energy,
            drift_threshold=writer.drift_threshold,
            stats=self.stats(),
            vocabulary=self._vocabulary,
            compute_dtype=self._dtype)
        return write_bundle(path, bundle)

    @classmethod
    def load(cls, path, *, config: "ServingConfig | None" = None,
             **legacy) -> "ServedIndex":
        """Load a bundle saved by :meth:`save` (or any older schema).

        The restored index reproduces the saved index's rankings
        exactly and continues its counters and drift accounting.

        Args:
            path: the bundle directory.
            config: serving policy for the loaded index.
                ``config.mmap=True`` maps the large arrays read-only
                instead of loading them — the O(manifest) cold start:
                serving works directly off the mapped, pre-normalised
                factors; the first mutation (or :attr:`model` access,
                or :meth:`save`) materialises the index in memory;
                legacy (schema ≤ 2) bundles fall back to eager
                loading.  ``config.dtype=None`` (default) keeps the
                precision the bundle was saved with
                (``compute_dtype`` in the manifest); the bundle's
                persisted ``drift_threshold`` always wins over the
                config's.
            **legacy: the pre-``ServingConfig`` kwargs
                (``cache_capacity=``, ``mmap=``, ``dtype=``,
                ``cache_budget_bytes=``), accepted for one more
                release behind a :class:`DeprecationWarning`.
        """
        config = resolve_config(config, legacy,
                                where="ServedIndex.load")
        bundle = read_bundle(path, mmap=config.mmap)
        index = cls.__new__(cls)
        index._config = config
        index._dtype = _resolve_dtype(
            config.dtype if config.dtype is not None
            else bundle.compute_dtype)
        index._cache_budget = config.cache_budget_bytes
        if bundle.mmapped and bundle.doc_unit is not None:
            index._writer = None
            index._bundle = bundle
        else:
            index._writer = IndexWriter.from_state(
                LSIModel(bundle.svd), bundle.doc_vectors,
                n_original=bundle.n_original,
                tombstones=bundle.tombstones,
                unabsorbed_energy=bundle.unabsorbed_energy,
                drift_threshold=bundle.drift_threshold,
                fold_ins=bundle.stats.fold_ins_since_refit,
                deletes=bundle.stats.deletes_since_refit,
                copy=False)
            index._bundle = None
        index._cache = LRUResultCache(config.cache_capacity)
        index._vocabulary = bundle.vocabulary
        index._generation = 0
        index._engine_cache = None
        index._engine_generation = -1
        index._base_version = bundle.index_version or "unsaved"
        index._queries_served = 0
        index._batches_served = 0
        index._base_stats = ServingStats(
            queries_served=bundle.stats.queries_served,
            batches_served=bundle.stats.batches_served,
            cache_hits=bundle.stats.cache_hits,
            cache_misses=bundle.stats.cache_misses,
            cache_evictions=bundle.stats.cache_evictions,
            refits=bundle.stats.refits)
        return index

    def __repr__(self) -> str:
        return (f"ServedIndex(k={self.rank}, n={self.n_terms}, "
                f"m={self.n_documents}, active={self.n_active}, "
                f"dtype={self._dtype}, drift={self.drift:.4f}, "
                f"version={self.index_version!r})")


def _retriever_conformance(
        lsi: "LSIModel",
        vsm: "VectorSpaceModel",
        bm25: "BM25Model",
        folding: "FoldingIndex",
        two_step: "TwoStepLSI",
        served: "ServedIndex",
        sharded: "ShardedIndex",
) -> "tuple[Retriever, ...]":
    """Static proof that every engine satisfies ``Retriever``.

    This function is never called; mypy type-checks the return
    statement, so a signature drift in any engine breaks CI.  It lives
    here (not in :mod:`repro.ir.retriever`) because the serving layer
    already imports every backend, keeping the import graph acyclic.
    """
    return (lsi, vsm, bm25, folding, two_step, served, sharded)
