"""One frozen configuration object for the whole serving stack.

The serving layer grew its knobs one PR at a time: ``ServedIndex``
took ``cache_capacity=...``, then ``dtype=...``, then
``cache_budget_bytes=...``; ``load`` added ``mmap=...`` on top.  Every
new layer (the sharded index, the micro-batching dispatcher) would
have had to re-thread that kwarg sprawl.  :class:`ServingConfig`
collapses it into a single frozen dataclass accepted by
:class:`~repro.serving.index.ServedIndex`,
:class:`~repro.serving.sharded.ShardedIndex`, and
:class:`~repro.serving.dispatch.MicroBatchDispatcher`:

- one object describes precision, caching, cold-start, pooling, and
  micro-batching policy, so a config built for a single index drops
  unchanged onto a sharded one;
- unknown fields fail eagerly with the valid ones listed — the same
  typo policy as :func:`repro.linalg.svd.truncated_svd`'s
  ``engine_options`` errors;
- the old per-call kwargs still work for one release through a
  :class:`DeprecationWarning` shim (:func:`resolve_config`), then go.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.utils.validation import check_fraction, check_non_negative_int, \
    check_positive_int

__all__ = ["POOL_KINDS", "ServingConfig", "resolve_config"]

#: Executor kinds a :class:`~repro.serving.sharded.ShardedIndex` fans
#: out with.  ``"thread"`` is the default (the GEMMs release the GIL);
#: ``"process"`` needs disk-backed shards (workers re-open them via
#: mmap, which is what makes fork cheap); ``"serial"`` runs shards
#: in the calling thread, mainly for debugging and tiny corpora.
POOL_KINDS = ("thread", "process", "serial")


@dataclass(frozen=True)
class ServingConfig:
    """Every serving-time policy knob, in one frozen value.

    Attributes:
        dtype: compute precision for scoring — ``None`` (default)
            means float64 for new indexes and the persisted
            ``compute_dtype`` when loading a bundle; ``"float32"``
            opts into single-precision GEMMs (agreement measured, not
            assumed — see :mod:`repro.serving.engine`).
        mmap: load bundles by memory-mapping the large arrays
            read-only (the O(manifest) cold start) instead of reading
            them eagerly.  Ignored for indexes built in memory.
        cache_capacity: LRU result-cache size per index/shard
            (0 disables caching).
        cache_budget_bytes: optional bound on the scoring working set;
            oversized similarity blocks are computed in document
            panels (opt-in, non-bitwise — see the engine docs).
        drift_threshold: fold-in drift past which a refit is
            recommended (``None`` disables the recommendation).
            Loading a bundle keeps the bundle's persisted threshold.
        pool: shard fan-out executor, one of :data:`POOL_KINDS`.
        max_workers: pool width for the sharded fan-out (``None`` =
            one worker per shard).
        max_batch: dispatcher queue depth that forces a flush — the
            largest micro-batch the dispatcher will coalesce.
        max_wait_ms: longest a queued query may wait for co-riders
            before the dispatcher flushes anyway (0 = flush on every
            submit).
        stream_block_size: column width of the blocks the streaming
            fit (``ServedIndex.fit_streamed``) and the incremental
            ``refit()`` merge decompose at a time — the knob that
            bounds out-of-core peak memory.
        stream_oversample: working-rank headroom carried through the
            incremental merges (more headroom, less truncation error).
        stream_polish: power-iteration polish rounds after a streamed
            fit of a re-readable matrix (0 disables; one-shot block
            streams cannot be polished).
    """

    dtype: "str | None" = None
    mmap: bool = False
    cache_capacity: int = 256
    cache_budget_bytes: "int | None" = None
    drift_threshold: "float | None" = 0.1
    pool: str = "thread"
    max_workers: "int | None" = None
    max_batch: int = 32
    max_wait_ms: float = 2.0
    stream_block_size: int = 256
    stream_oversample: int = 8
    stream_polish: int = 0

    def __post_init__(self):
        if self.dtype is not None:
            # Late import: engine imports this module for the shim.
            from repro.serving.engine import COMPUTE_DTYPES

            if self.dtype not in COMPUTE_DTYPES:
                raise ValidationError(
                    f"ServingConfig.dtype must be None or one of "
                    f"{COMPUTE_DTYPES}, got {self.dtype!r}")
        check_non_negative_int(self.cache_capacity, "cache_capacity")
        if self.cache_budget_bytes is not None:
            check_non_negative_int(self.cache_budget_bytes,
                                   "cache_budget_bytes")
        if self.drift_threshold is not None:
            check_fraction(self.drift_threshold, "drift_threshold")
        if self.pool not in POOL_KINDS:
            raise ValidationError(
                f"ServingConfig.pool must be one of {POOL_KINDS}, "
                f"got {self.pool!r}")
        if self.max_workers is not None:
            check_positive_int(self.max_workers, "max_workers")
        check_positive_int(self.max_batch, "max_batch")
        if not isinstance(self.max_wait_ms, (int, float)) \
                or isinstance(self.max_wait_ms, bool) \
                or self.max_wait_ms < 0:
            raise ValidationError(
                f"ServingConfig.max_wait_ms must be a non-negative "
                f"number, got {self.max_wait_ms!r}")
        check_positive_int(self.stream_block_size, "stream_block_size")
        check_non_negative_int(self.stream_oversample,
                               "stream_oversample")
        check_non_negative_int(self.stream_polish, "stream_polish")

    @classmethod
    def field_names(cls) -> "tuple[str, ...]":
        """The valid configuration fields, in declaration order."""
        return tuple(cls.__dataclass_fields__)

    @classmethod
    def from_kwargs(cls, **fields) -> "ServingConfig":
        """Build a config, rejecting unknown fields eagerly.

        Args:
            **fields: any subset of the dataclass fields; a typo
                raises :class:`~repro.errors.ValidationError` listing
                the valid names, mirroring ``truncated_svd``'s
                ``engine_options`` policy.
        """
        _check_fields(fields, "ServingConfig")
        return cls(**fields)

    def merged(self, **overrides) -> "ServingConfig":
        """A copy with ``overrides`` applied (unknown fields raise)."""
        if not overrides:
            return self
        _check_fields(overrides, "ServingConfig.merged")
        return dataclasses.replace(self, **overrides)


def _check_fields(fields, where: str) -> None:
    """Reject unknown config fields instead of ignoring typos."""
    unknown = sorted(set(fields) - set(ServingConfig.field_names()))
    if unknown:
        raise ValidationError(
            f"unknown field(s) {unknown} for {where}; valid fields "
            f"are {list(ServingConfig.field_names())}")


def resolve_config(config: "ServingConfig | None", legacy: dict, *,
                   where: str) -> ServingConfig:
    """Merge deprecated per-call kwargs into a :class:`ServingConfig`.

    The one-release migration shim: callers that still pass the old
    kwarg surface (``dtype=...``, ``cache_capacity=...``, ...) get a
    working config plus a :class:`DeprecationWarning` naming the
    replacement; unknown kwargs raise eagerly with the valid fields
    listed; mixing ``config=`` with legacy kwargs raises, because
    silently letting one override the other is how configs drift.

    Args:
        config: the caller's explicit config, or ``None``.
        legacy: the caller's ``**legacy`` kwargs (may be empty).
        where: call-site name used in warnings and errors.

    Returns:
        The effective :class:`ServingConfig`.

    Raises:
        ValidationError: on unknown legacy kwargs, or when ``config=``
            is mixed with legacy kwargs.
    """
    if not legacy:
        return config if config is not None else ServingConfig()
    _check_fields(legacy, where)
    if config is not None:
        raise ValidationError(
            f"{where} got both config= and legacy keyword(s) "
            f"{sorted(legacy)}; set the fields on the ServingConfig "
            "instead")
    warnings.warn(
        f"passing {sorted(legacy)} to {where} as keyword arguments "
        "is deprecated; pass config=ServingConfig(...) instead",
        DeprecationWarning, stacklevel=3)
    return ServingConfig.from_kwargs(**legacy)
