"""Horizontally sharded LSI serving with exact top-k merging.

:class:`ShardedIndex` partitions a document collection across N
:class:`~repro.serving.index.ServedIndex` shards — every shard holds
the *same* SVD basis and a column subset of the document store — and
fans query batches out over a thread (or process, or serial) pool.
Because cosine scores are per-document, a document's score is the same
number whichever shard computes it; the merge step concatenates each
shard's scored top-k candidates and re-applies the global tie policy
of :func:`~repro.serving.engine.stable_top_k` (descending score,
ascending document id), so a sharded ranking is the single-index
ranking whenever the per-document scores agree bitwise.  That
agreement is a *measured* property, not an assumed one: the BLAS GEMM
over a column subset may round differently from the full GEMM at
scale, so ``benchmarks/bench_serving.py`` records merge exactness as a
gated 0/1 claim against the committed baseline, the same policy the
float32 and mmap fast paths follow.

The shard layout is a first-class value (:class:`ShardManifest`):
which assignment produced it (``"round_robin"`` — documents ``i`` with
``i % n_shards == s`` land on shard ``s`` — or ``"contiguous"`` —
``np.array_split`` ranges), each shard's ascending global-id array,
the round-robin routing cursor, and the ids retired with removed
shards.  ``save``/``load`` persist the manifest (JSON + one
checksummed ``.npy`` id file per shard) beside one ordinary bundle
directory per shard, so every shard is *also* a valid standalone
bundle that ``repro serve-stats`` and ``ServedIndex.load`` understand.

Updates route through the same fold-in/tombstone machinery as a
single index: ``add_documents`` assigns fresh global ids and routes
columns by the recorded assignment (cursor round-robin, or append to
the last contiguous shard); ``remove_documents`` translates global ids
to shard-local tombstones; ``add_shard``/``remove_shard`` change the
topology, and every mutation bumps :attr:`ShardedIndex.generation` so
the per-shard LRU caches and the micro-batching dispatcher's
:class:`~repro.serving.engine.CacheKey` entries go stale by
construction.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.core.lsi import LSIModel
from repro.errors import PersistenceError, ValidationError
from repro.serving.bundle import sha256_file
from repro.serving.config import ServingConfig, resolve_config
from repro.serving.engine import QueryBatch
from repro.serving.index import ServedIndex
from repro.serving.stats import ServingStats
from repro.serving.writer import IndexWriter
from repro.utils.validation import check_non_negative_int, \
    check_positive_int, check_top_k, check_vector

__all__ = [
    "ASSIGNMENTS",
    "SHARDED_FORMAT",
    "SHARDED_SCHEMA_VERSION",
    "ShardManifest",
    "ShardedIndex",
    "is_sharded_bundle",
    "read_sharded_manifest",
    "shard_document_ids",
]

#: Supported document→shard assignment policies.
ASSIGNMENTS = ("round_robin", "contiguous")

#: Marker distinguishing a sharded-index directory from a plain bundle.
SHARDED_FORMAT = "repro-lsi-sharded-index"

#: Current sharded manifest schema version.
SHARDED_SCHEMA_VERSION = 1

#: Manifest file name inside a sharded-index directory.
SHARDED_MANIFEST_NAME = "manifest.json"

#: File recording the global ids retired with removed shards.
_RETIRED_NAME = "retired_ids.npy"


def shard_document_ids(n_documents: int, n_shards: int,
                       assignment: str = "round_robin"
                       ) -> "tuple[np.ndarray, ...]":
    """Deterministic global-id partition for a fresh sharding.

    Args:
        n_documents: size of the id space ``0..n_documents-1``.
        n_shards: number of partitions (shards may come out empty when
            ``n_shards > n_documents``).
        assignment: ``"round_robin"`` sends id ``i`` to shard
            ``i % n_shards``; ``"contiguous"`` cuts ``np.array_split``
            ranges (earlier shards get the remainder).

    Returns:
        One ascending ``int64`` id array per shard; the arrays are
        disjoint and cover the id space exactly.

    Raises:
        ValidationError: on a negative document count, a non-positive
            shard count, or an unknown assignment policy.
    """
    check_non_negative_int(n_documents, "n_documents")
    check_positive_int(n_shards, "n_shards")
    if assignment not in ASSIGNMENTS:
        raise ValidationError(
            f"assignment must be one of {ASSIGNMENTS}, got "
            f"{assignment!r}")
    everything = np.arange(n_documents, dtype=np.int64)
    if assignment == "round_robin":
        return tuple(everything[s::n_shards].copy()
                     for s in range(n_shards))
    return tuple(part.copy()
                 for part in np.array_split(everything, n_shards))


@dataclass(frozen=True)
class ShardManifest:
    """The shard layout of a :class:`ShardedIndex`, as a frozen value.

    Attributes:
        assignment: the routing policy for future fold-ins, one of
            :data:`ASSIGNMENTS`.
        shard_ids: one strictly-ascending ``int64`` global-id array per
            shard; together with :attr:`retired` they partition the id
            space ``0..n_documents-1`` exactly.
        retired: ascending global ids taken out of service by
            :meth:`ShardedIndex.remove_shard` (they keep their ids,
            score 0, and never rank — mass-tombstone semantics).
        cursor: the round-robin routing position the next fold-in
            starts from.
    """

    assignment: str
    shard_ids: "tuple[np.ndarray, ...]"
    retired: np.ndarray
    cursor: int = 0

    def __post_init__(self):
        if self.assignment not in ASSIGNMENTS:
            raise ValidationError(
                f"assignment must be one of {ASSIGNMENTS}, got "
                f"{self.assignment!r}")
        if not self.shard_ids:
            raise ValidationError(
                "a shard manifest needs at least one shard")
        cleaned = []
        for s, ids in enumerate(self.shard_ids):
            ids = np.asarray(ids, dtype=np.int64).reshape(-1)
            if ids.size and (ids[0] < 0
                             or np.any(np.diff(ids) <= 0)):
                # Ascending local order = ascending global order, which
                # is what makes per-shard stable_top_k ties agree with
                # the global tie policy.
                raise ValidationError(
                    f"shard {s} ids must be non-negative and strictly "
                    "ascending")
            cleaned.append(ids)
        object.__setattr__(self, "shard_ids", tuple(cleaned))
        retired = np.asarray(self.retired, dtype=np.int64).reshape(-1)
        object.__setattr__(self, "retired", retired)
        everything = np.concatenate(list(self.shard_ids) + [retired])
        if everything.size != np.unique(everything).size \
                or not np.array_equal(np.sort(everything),
                                      np.arange(everything.size,
                                                dtype=np.int64)):
            raise ValidationError(
                "shard ids plus retired ids must partition "
                f"0..{everything.size - 1} exactly")
        if not 0 <= int(self.cursor) < len(self.shard_ids):
            raise ValidationError(
                f"cursor {self.cursor} out of range for "
                f"{len(self.shard_ids)} shards")

    @property
    def n_shards(self) -> int:
        """Number of live shards."""
        return len(self.shard_ids)

    @property
    def n_documents(self) -> int:
        """Size of the global id space (live + retired)."""
        return int(sum(ids.size for ids in self.shard_ids)
                   + self.retired.size)

    def shard_of(self, doc_id: int) -> "tuple[int, int]":
        """``(shard, local_id)`` of a live global document id.

        Raises:
            ValidationError: when the id is out of range, retired, or
                (impossibly, given the partition invariant) unmapped.
        """
        doc_id = int(doc_id)
        if not 0 <= doc_id < self.n_documents:
            raise ValidationError(
                f"document id {doc_id} out of range for "
                f"{self.n_documents} documents")
        for s, ids in enumerate(self.shard_ids):
            local = int(np.searchsorted(ids, doc_id))
            if local < ids.size and int(ids[local]) == doc_id:
                return s, local
        raise ValidationError(
            f"document {doc_id} belongs to a removed shard")

    def summary(self) -> dict:
        """JSON-ready counts (the id arrays persist as ``.npy`` files)."""
        return {
            "assignment": self.assignment,
            "cursor": int(self.cursor),
            "n_shards": self.n_shards,
            "n_documents": self.n_documents,
            "n_retired": int(self.retired.size),
            "shard_sizes": [int(ids.size) for ids in self.shard_ids],
        }


def _select_columns(columns, indices):
    """Column subset of a dense array or CSRMatrix, in given order."""
    idx = np.asarray(indices, dtype=np.int64)
    select = getattr(columns, "select_columns", None)
    if select is not None:
        return select(idx)
    return np.asarray(columns)[:, idx]


def _rank_shard_worker(path: str, dtype: "str | None",
                       queries: np.ndarray, top_k: int
                       ) -> "tuple[np.ndarray, np.ndarray]":
    """Process-pool fan-out worker: rank one disk-backed shard.

    Module-level and stateless on purpose (fork-safety, R112): the
    worker re-opens the shard bundle via mmap on every call — an
    O(manifest) cold start, which is exactly what makes process
    fan-out affordable — and touches no module globals.
    """
    config = ServingConfig(mmap=True, dtype=dtype, cache_capacity=0)
    shard = ServedIndex.load(path, config=config)
    return shard.rank_batch_scored(QueryBatch(queries), top_k=top_k)


def is_sharded_bundle(path) -> bool:
    """Whether ``path`` looks like a sharded-index directory.

    Only peeks at the manifest's ``format`` marker, so corrupt sharded
    manifests still dispatch to the sharded loader (and fail there
    with a precise error) instead of a confusing plain-bundle error.
    """
    manifest_path = Path(path) / SHARDED_MANIFEST_NAME
    if not manifest_path.is_file():
        return False
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(manifest, dict) \
        and manifest.get("format") == SHARDED_FORMAT


def read_sharded_manifest(path) -> dict:
    """Load and validate a sharded-index manifest (arrays untouched).

    Raises:
        PersistenceError: missing/unparsable manifest, foreign
            ``format`` marker, unsupported schema version, or a
            missing/empty shard table.
    """
    directory = Path(path)
    manifest_path = directory / SHARDED_MANIFEST_NAME
    if not manifest_path.is_file():
        raise PersistenceError(
            f"{directory} is not a sharded index: no "
            f"{SHARDED_MANIFEST_NAME}")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise PersistenceError(
            f"unreadable sharded manifest {manifest_path}: {error}"
        ) from error
    marker = manifest.get("format") \
        if isinstance(manifest, dict) else None
    if marker != SHARDED_FORMAT:
        raise PersistenceError(
            f"{directory} is not a {SHARDED_FORMAT} directory "
            f"(format marker is {marker!r})")
    version = manifest.get("schema_version")
    if version != SHARDED_SCHEMA_VERSION:
        raise PersistenceError(
            f"unsupported sharded schema_version {version!r}; this "
            f"reader handles {SHARDED_SCHEMA_VERSION}")
    shards = manifest.get("shards")
    if not isinstance(shards, list) or not shards:
        raise PersistenceError(
            f"sharded manifest {manifest_path} records no shards")
    return manifest


class ShardedIndex:
    """N :class:`~repro.serving.index.ServedIndex` shards, one index.

    Every shard serves the same SVD basis over a disjoint column
    subset of the document store; queries fan out across shards and
    the per-shard scored top-k candidates merge under the global
    ``stable_top_k`` tie policy (descending score, ascending global
    id).  Conforms to the :class:`~repro.ir.retriever.Retriever`
    protocol, so experiment code runs against it unchanged.

    Build with :meth:`shard` (partition an existing index/model) or
    :meth:`fit`; the direct constructor wires pre-built shards to an
    explicit layout and is mostly the loader's entry point.

    Args:
        shards: the :class:`ServedIndex` shards (same ``n_terms``,
            ``rank``, and dtype).
        global_ids: one strictly-ascending global-id array per shard
            (see :class:`ShardManifest`).
        assignment: fold-in routing policy, one of
            :data:`ASSIGNMENTS`.
        config: the :class:`~repro.serving.config.ServingConfig`
            governing the fan-out pool and future shard construction
            (``None`` = all defaults).
        cursor: round-robin routing position to resume from.
        retired: global ids retired with previously removed shards.
        **legacy: pre-``ServingConfig`` kwargs, accepted for one
            release behind a :class:`DeprecationWarning`.
    """

    def __init__(self, shards, global_ids, *,
                 assignment: str = "round_robin",
                 config: "ServingConfig | None" = None,
                 cursor: int = 0, retired=(), **legacy):
        config = resolve_config(config, legacy, where="ShardedIndex")
        shards = list(shards)
        if not shards:
            raise ValidationError(
                "ShardedIndex needs at least one shard")
        for s, shard in enumerate(shards):
            if not isinstance(shard, ServedIndex):
                raise ValidationError(
                    f"shard {s} is {type(shard).__name__}, expected "
                    "ServedIndex")
        heads = {(s.n_terms, s.rank, s.dtype) for s in shards}
        if len(heads) > 1:
            raise ValidationError(
                f"shards disagree on (n_terms, rank, dtype): "
                f"{sorted(heads)}")
        layout = ShardManifest(
            assignment=assignment,
            shard_ids=tuple(global_ids),
            retired=np.asarray(tuple(retired), dtype=np.int64),
            cursor=cursor)
        for s, (shard, ids) in enumerate(zip(shards,
                                             layout.shard_ids)):
            if shard.n_documents != ids.size:
                raise ValidationError(
                    f"shard {s} stores {shard.n_documents} documents "
                    f"but its id map has {ids.size}")
        self._config = config
        self._assignment = layout.assignment
        self._shards: "list[ServedIndex]" = shards
        self._global_ids: "list[np.ndarray]" = list(layout.shard_ids)
        self._retired: "set[int]" = {int(g) for g in layout.retired}
        self._cursor = int(layout.cursor)
        self._revision = 0
        #: Bundle directory per shard when disk-backed (process pool).
        self._paths: "list[Path | None]" = [None] * len(shards)
        #: Whether memory has diverged from the on-disk shard bundles.
        self._dirty = True
        self._pool_lock = threading.Lock()
        self._executor: "ThreadPoolExecutor | None" = None
        self._executor_width = 0
        self._process_pool: "ProcessPoolExecutor | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def shard(cls, source, n_shards: int, *,
              assignment: str = "round_robin", vocabulary=None,
              config: "ServingConfig | None" = None,
              **legacy) -> "ShardedIndex":
        """Partition an existing index or model across ``n_shards``.

        Every shard shares ``source``'s SVD basis and takes the column
        subset chosen by :func:`shard_document_ids`; a
        :class:`~repro.serving.index.ServedIndex` source also carries
        its tombstones over (translated to shard-local ids).  Drift
        accounting restarts from zero — resharding is a rebuild, like
        a refit.

        Args:
            source: a :class:`ServedIndex` or a fitted
                :class:`~repro.core.lsi.LSIModel`.
            n_shards: partition count (shards may come out empty).
            assignment: one of :data:`ASSIGNMENTS`.
            vocabulary: optional term strings persisted with each
                shard.
            config: serving policy for the shards and the fan-out.
            **legacy: deprecated kwarg form of ``config`` fields.

        Raises:
            ValidationError: on a non-positive ``n_shards``, an
                unknown assignment policy, an unsupported source
                type, or bad config/legacy kwargs.
        """
        config = resolve_config(config, legacy,
                                where="ShardedIndex.shard")
        check_positive_int(n_shards, "n_shards")
        if isinstance(source, ServedIndex):
            writer = source._ensure_writer()
            model = writer.model
            doc_vectors = writer.document_vectors()
            tombstones = np.asarray(writer.tombstones, dtype=np.int64)
        elif isinstance(source, LSIModel):
            model = source
            doc_vectors = source.document_vectors()
            tombstones = np.empty(0, dtype=np.int64)
        else:
            raise ValidationError(
                f"source must be a ServedIndex or LSIModel, got "
                f"{type(source).__name__}")
        parts = shard_document_ids(doc_vectors.shape[1], n_shards,
                                   assignment)
        shards = []
        for ids in parts:
            local_tombs = np.searchsorted(
                ids, tombstones[np.isin(tombstones, ids)])
            shard_writer = IndexWriter.from_state(
                model, doc_vectors[:, ids],
                n_original=int(ids.size),
                tombstones=tuple(int(t) for t in local_tombs),
                drift_threshold=config.drift_threshold,
                copy=False)
            shards.append(ServedIndex.from_writer(
                shard_writer, vocabulary=vocabulary, config=config))
        return cls(shards, parts, assignment=assignment,
                   config=config)

    @classmethod
    def fit(cls, matrix, rank, *, n_shards: int,
            assignment: str = "round_robin", engine: str = "lanczos",
            seed=None, vocabulary=None,
            config: "ServingConfig | None" = None,
            **engine_kwargs) -> "ShardedIndex":
        """Fit LSI on a term–document matrix and shard the result.

        Arguments mirror :meth:`ServedIndex.fit` plus ``n_shards`` /
        ``assignment``; legacy serving kwargs are still recognised
        among ``engine_kwargs`` behind the deprecation shim.
        """
        legacy = {name: engine_kwargs.pop(name)
                  for name in ServingConfig.field_names()
                  if name in engine_kwargs}
        config = resolve_config(config, legacy,
                                where="ShardedIndex.fit")
        model = LSIModel.fit(matrix, rank, engine=engine, seed=seed,
                             **engine_kwargs)
        return cls.shard(model, n_shards, assignment=assignment,
                         vocabulary=vocabulary, config=config)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Number of live shards."""
        return len(self._shards)

    @property
    def shards(self) -> "tuple[ServedIndex, ...]":
        """The live shards (mutate only through this index)."""
        return tuple(self._shards)

    @property
    def n_documents(self) -> int:
        """Global id-space size (live + retired; ids never recycle)."""
        return int(sum(ids.size for ids in self._global_ids)
                   + len(self._retired))

    @property
    def n_active(self) -> int:
        """Documents eligible to appear in rankings, across shards."""
        return int(sum(s.n_active for s in self._shards))

    @property
    def n_terms(self) -> int:
        """Term-space dimensionality queries must have."""
        return self._shards[0].n_terms

    @property
    def rank(self) -> int:
        """The LSI dimension ``k`` (shared by every shard)."""
        return self._shards[0].rank

    @property
    def dtype(self) -> str:
        """Compute precision the shards score in."""
        return self._shards[0].dtype

    @property
    def assignment(self) -> str:
        """The fold-in routing policy."""
        return self._assignment

    @property
    def config(self) -> ServingConfig:
        """The serving policy this index fans out under."""
        return self._config

    @property
    def generation(self) -> int:
        """Mutation counter covering topology *and* shard content.

        Includes every shard's own generation, so a mutation that
        reached a shard directly still invalidates dispatcher-level
        :class:`~repro.serving.engine.CacheKey` entries; removing a
        shard folds its final generation into the topology revision to
        keep the counter monotone.
        """
        return self._revision + sum(s.generation
                                    for s in self._shards)

    def manifest(self) -> ShardManifest:
        """A frozen snapshot of the current shard layout."""
        return ShardManifest(
            assignment=self._assignment,
            shard_ids=tuple(ids.copy() for ids in self._global_ids),
            retired=np.asarray(sorted(self._retired),
                               dtype=np.int64),
            cursor=self._cursor)

    @property
    def drift(self) -> float:
        """Global fold-in drift: summed unabsorbed energy over all
        shards against the (shared) captured energy of the basis."""
        reports = [s.drift_report() for s in self._shards]
        unabsorbed = float(sum(r.unabsorbed_energy for r in reports))
        denominator = unabsorbed + reports[0].captured_energy
        if denominator <= 0:
            return 0.0
        return unabsorbed / denominator

    @property
    def needs_refit(self) -> bool:
        """Whether global drift has crossed the configured threshold."""
        threshold = self._config.drift_threshold
        return threshold is not None and self.drift >= threshold

    def stats(self) -> ServingStats:
        """Aggregate serving counters summed over all shards."""
        parts = [s.stats() for s in self._shards]
        return ServingStats(
            queries_served=sum(p.queries_served for p in parts),
            batches_served=sum(p.batches_served for p in parts),
            cache_hits=sum(p.cache_hits for p in parts),
            cache_misses=sum(p.cache_misses for p in parts),
            cache_evictions=sum(p.cache_evictions for p in parts),
            fold_ins_since_refit=sum(p.fold_ins_since_refit
                                     for p in parts),
            deletes_since_refit=sum(p.deletes_since_refit
                                    for p in parts),
            refits=sum(p.refits for p in parts),
            drift=self.drift,
            refit_recommended=self.needs_refit,
            dtype=self.dtype)

    def shard_stats(self) -> "tuple[ServingStats, ...]":
        """Per-shard serving counters, in shard order."""
        return tuple(s.stats() for s in self._shards)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def _as_batch(self, queries) -> QueryBatch:
        """Coerce queries into a :class:`QueryBatch` (shape-checked)."""
        if isinstance(queries, QueryBatch):
            batch = queries
        elif isinstance(queries, np.ndarray) and queries.ndim == 2:
            batch = QueryBatch(queries)
        else:
            batch = QueryBatch.from_vectors(queries)
        if batch.n_terms != self.n_terms:
            raise ValidationError(
                f"queries have {batch.n_terms} terms; the index "
                f"expects {self.n_terms}")
        return batch

    def _thread_pool(self) -> Executor:
        """The fan-out thread pool, (re)built to the current width.

        The stale pool (on a width change) is detached under the lock
        but shut down after releasing it: ``shutdown(wait=True)`` joins
        worker threads, and joining while holding ``_pool_lock`` would
        stall every concurrent query behind the drain.
        """
        stale = None
        with self._pool_lock:
            width = self._config.max_workers or self.n_shards
            if self._executor is None \
                    or self._executor_width != width:
                stale = self._executor
                self._executor = ThreadPoolExecutor(
                    max_workers=width,
                    thread_name_prefix="repro-shard")
                self._executor_width = width
            executor = self._executor
        if stale is not None:
            stale.shutdown(wait=True)
        return executor

    def _proc_pool(self) -> Executor:
        """The process fan-out pool (disk-backed shards only)."""
        with self._pool_lock:
            if self._process_pool is None:
                width = self._config.max_workers or self.n_shards
                self._process_pool = ProcessPoolExecutor(
                    max_workers=width)
            return self._process_pool

    def _shard_tasks(self, top_k: int) -> "list[tuple[int, int]]":
        """``(shard, shard_top_k)`` for every shard that can rank.

        ``shard_top_k = min(top_k, shard.n_active)`` is candidate
        sufficiency: shard active counts sum to the global one, so
        the union of per-shard candidate sets always contains the
        global top-k.
        """
        tasks = []
        for s, shard in enumerate(self._shards):
            shard_top_k = min(top_k, shard.n_active)
            if shard_top_k > 0:
                tasks.append((s, shard_top_k))
        return tasks

    def _rank_shards(self, batch: QueryBatch,
                     tasks: "list[tuple[int, int]]"
                     ) -> "list[tuple[np.ndarray, np.ndarray]]":
        """Fan ``rank_batch_scored`` out; results carry *global* ids."""
        if self._config.pool == "process":
            if self._dirty or any(p is None for p in self._paths):
                raise ValidationError(
                    "process-pool fan-out needs disk-backed, "
                    "unmodified shards; save() the index (or load "
                    "one) before ranking with pool='process'")
            pool = self._proc_pool()
            matrix = np.ascontiguousarray(batch.matrix)
            futures = [pool.submit(_rank_shard_worker,
                                   str(self._paths[s]),
                                   self._config.dtype, matrix,
                                   shard_top_k)
                       for s, shard_top_k in tasks]
            results = [f.result() for f in futures]
        elif self._config.pool == "thread":
            pool = self._thread_pool()
            futures = [pool.submit(self._shards[s].rank_batch_scored,
                                   batch, top_k=shard_top_k)
                       for s, shard_top_k in tasks]
            results = [f.result() for f in futures]
        else:
            results = [self._shards[s].rank_batch_scored(
                batch, top_k=shard_top_k)
                for s, shard_top_k in tasks]
        mapped = []
        for (s, _), (local_ids, scores) in zip(tasks, results):
            mapped.append((self._global_ids[s][local_ids], scores))
        return mapped

    @staticmethod
    def _merge(per_shard: "list[tuple[np.ndarray, np.ndarray]]",
               n_queries: int, top_k: int
               ) -> "tuple[np.ndarray, np.ndarray]":
        """Merge scored per-shard candidates under the global tie rule.

        ``np.lexsort((ids, -scores))`` is descending score with
        ascending global id on ties — exactly
        :func:`~repro.serving.engine.stable_top_k`'s policy, so the
        merged ranking equals the single-index one whenever the
        per-document scores agree bitwise.
        """
        cand_ids = np.concatenate([ids for ids, _ in per_shard],
                                  axis=1)
        cand_scores = np.concatenate(
            [np.asarray(scores, dtype=np.float64)
             for _, scores in per_shard], axis=1)
        ids = np.empty((n_queries, top_k), dtype=np.int64)
        scores = np.empty((n_queries, top_k), dtype=np.float64)
        for row in range(n_queries):
            order = np.lexsort((cand_ids[row],
                                -cand_scores[row]))[:top_k]
            ids[row] = cand_ids[row][order]
            scores[row] = cand_scores[row][order]
        return ids, scores

    def rank_batch(self, queries, *, top_k=None) -> np.ndarray:
        """Globally ranked ids for a query block, ``(q, top_k_eff)``.

        Args:
            queries: a :class:`QueryBatch`, a dense ``(n_terms, q)``
                array, or a sequence of 1-D query vectors.
            top_k: shared cutoff (``None`` = all), clamped to the
                number of active documents across shards.
        """
        return self.rank_batch_scored(queries, top_k=top_k)[0]

    def rank_batch_scored(self, queries, *, top_k=None
                          ) -> "tuple[np.ndarray, np.ndarray]":
        """Globally ranked ids and their scores for a query block."""
        batch = self._as_batch(queries)
        top_k = min(check_top_k(top_k, self.n_documents),
                    self.n_active)
        if top_k == 0:
            empty_scores = np.empty((batch.n_queries, 0),
                                    dtype=self.dtype)
            return (np.empty((batch.n_queries, 0), dtype=np.int64),
                    empty_scores)
        per_shard = self._rank_shards(batch,
                                      self._shard_tasks(top_k))
        ids, scores = self._merge(per_shard, batch.n_queries, top_k)
        return ids, scores.astype(self.dtype, copy=False)

    def rank_documents(self, query_vector, *, top_k=None
                       ) -> np.ndarray:
        """Globally ranked ids for one query (``top_k=None`` = all)."""
        query = check_vector(query_vector, "query_vector")
        return self.rank_batch(query[:, None], top_k=top_k)[0]

    def score(self, query_vector) -> np.ndarray:
        """Cosine scores of every global document id.

        Tombstoned and retired documents score 0, matching the
        single-index convention.
        """
        query = check_vector(query_vector, "query_vector")
        out = np.zeros(self.n_documents, dtype=self.dtype)
        for shard, ids in zip(self._shards, self._global_ids):
            if ids.size:
                out[ids] = shard.score(query)
        return out

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _locate(self, doc_id: int) -> "tuple[int, int]":
        """``(shard, local_id)`` for a live global id (else raises)."""
        if not 0 <= doc_id < self.n_documents:
            raise ValidationError(
                f"document id {doc_id} out of range for "
                f"{self.n_documents} documents")
        for s, ids in enumerate(self._global_ids):
            local = int(np.searchsorted(ids, doc_id))
            if local < ids.size and int(ids[local]) == doc_id:
                return s, local
        raise ValidationError(
            f"document {doc_id} belongs to a removed shard")

    def add_documents(self, columns) -> np.ndarray:
        """Fold new documents in; returns their assigned global ids.

        Routing follows the recorded assignment: ``"round_robin"``
        deals columns across shards starting at the stored cursor
        (which advances), ``"contiguous"`` appends everything to the
        last shard.  Assigned ids continue the global sequence, so
        they match what a single un-sharded index would have assigned.
        """
        p = int(columns.shape[1])
        first = self.n_documents
        assigned = np.arange(first, first + p, dtype=np.int64)
        if p == 0:
            return assigned
        if self._assignment == "round_robin":
            targets = [(self._cursor + j) % self.n_shards
                       for j in range(p)]
            self._cursor = (self._cursor + p) % self.n_shards
        else:
            targets = [self.n_shards - 1] * p
        for s in range(self.n_shards):
            routed = [j for j, t in enumerate(targets) if t == s]
            if not routed:
                continue
            self._shards[s].add_documents(
                _select_columns(columns, routed))
            self._global_ids[s] = np.concatenate(
                [self._global_ids[s], assigned[routed]])
        self._mutated()
        return assigned

    def remove_documents(self, doc_ids) -> None:
        """Tombstone global ids; they stop appearing in rankings.

        Raises:
            ValidationError: if an id is unknown, retired, or already
                deleted.
        """
        ids = [int(d) for d in np.atleast_1d(np.asarray(doc_ids))]
        per_shard: "dict[int, list[int]]" = {}
        tombstoned: "dict[int, set[int]]" = {}
        for doc_id in ids:
            s, local = self._locate(doc_id)
            if s not in tombstoned:
                tombstoned[s] = set(self._shards[s].tombstones)
            if local in tombstoned[s]:
                raise ValidationError(
                    f"document {doc_id} is already deleted")
            per_shard.setdefault(s, []).append(local)
        for s, local_ids in per_shard.items():
            self._shards[s].remove_documents(local_ids)
        self._mutated()

    def add_shard(self) -> int:
        """Append an empty shard; returns its index.

        Under ``"round_robin"`` routing the new shard immediately
        joins the deal rotation; under ``"contiguous"`` it becomes the
        append target for all future fold-ins.
        """
        model = self._shards[0].model
        writer = IndexWriter.from_state(
            model, np.empty((self.rank, 0)),
            n_original=0,
            drift_threshold=self._config.drift_threshold,
            copy=False)
        self._shards.append(ServedIndex.from_writer(
            writer, config=self._config))
        self._global_ids.append(np.empty(0, dtype=np.int64))
        self._paths.append(None)
        self._mutated()
        return self.n_shards - 1

    def remove_shard(self, shard_index: int) -> np.ndarray:
        """Retire a shard; returns the global ids taken out of service.

        Retired ids keep their positions (global ids stay stable),
        score 0, and never appear in rankings again — the same
        contract as tombstoning each of the shard's documents, minus
        the drift accounting (the shard is gone, not masked).

        Raises:
            ValidationError: on an out-of-range index, or when only
                one shard remains.
        """
        if not 0 <= int(shard_index) < self.n_shards:
            raise ValidationError(
                f"shard index {shard_index} out of range for "
                f"{self.n_shards} shards")
        if self.n_shards == 1:
            raise ValidationError("cannot remove the last shard")
        shard_index = int(shard_index)
        removed = self._shards.pop(shard_index)
        ids = self._global_ids.pop(shard_index)
        self._paths.pop(shard_index)
        self._retired.update(int(g) for g in ids)
        self._cursor %= self.n_shards
        # Fold the removed shard's generation into the revision so the
        # global counter stays monotone after the sum loses a term.
        self._revision += removed.generation
        self._mutated()
        return ids

    def _mutated(self) -> None:
        """Record a mutation: bump topology revision, mark dirty."""
        self._revision += 1
        self._dirty = True

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path) -> Path:
        """Persist the sharded index as a directory; returns the path.

        Layout: ``manifest.json`` (format marker, assignment, cursor,
        shard table with per-shard id-file checksums) + one ordinary
        bundle directory and one ``shard-XXX.ids.npy`` global-id file
        per shard + ``retired_ids.npy``.  Shrinking an index and
        re-saving over the same directory leaves stale ``shard-*``
        directories behind; loaders only read what the manifest
        records.

        Raises:
            PersistenceError: if ``path`` (or a shard bundle path
                under it) exists and is not a directory.
        """
        directory = Path(path)
        if directory.exists() and not directory.is_dir():
            raise PersistenceError(
                f"sharded index path {directory} exists and is not a "
                "directory")
        directory.mkdir(parents=True, exist_ok=True)
        entries = []
        paths: "list[Path | None]" = []
        for s, (shard, ids) in enumerate(zip(self._shards,
                                             self._global_ids)):
            name = f"shard-{s:03d}"
            bundle_dir = shard.save(directory / name)
            ids_name = f"{name}.ids.npy"
            np.save(directory / ids_name, ids, allow_pickle=False)
            entries.append({
                "bundle": name,
                "ids_file": ids_name,
                "ids_sha256": sha256_file(directory / ids_name),
                "n_documents": int(ids.size),
                "n_active": int(shard.n_active),
            })
            paths.append(bundle_dir)
        retired = np.asarray(sorted(self._retired), dtype=np.int64)
        np.save(directory / _RETIRED_NAME, retired,
                allow_pickle=False)
        manifest = {
            "format": SHARDED_FORMAT,
            "schema_version": SHARDED_SCHEMA_VERSION,
            "created_at": datetime.now(timezone.utc).isoformat(),
            "assignment": self._assignment,
            "cursor": int(self._cursor),
            "n_shards": self.n_shards,
            "n_documents": self.n_documents,
            "n_active": self.n_active,
            "retired_file": _RETIRED_NAME,
            "retired_sha256": sha256_file(directory / _RETIRED_NAME),
            "n_retired": int(retired.size),
            "shards": entries,
        }
        with open(directory / SHARDED_MANIFEST_NAME, "w",
                  encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        self._paths = paths
        self._dirty = False
        return directory

    @classmethod
    def load(cls, path, *, config: "ServingConfig | None" = None,
             **legacy) -> "ShardedIndex":
        """Load a directory saved by :meth:`save`.

        ``config`` applies to every shard exactly as in
        :meth:`ServedIndex.load` — ``mmap=True`` gives the sharded
        index an O(total manifests) cold start, and is what makes
        ``pool="process"`` fan-out cheap.

        Args:
            path: the sharded-index directory.
            config: serving policy for the shards and the fan-out.
            **legacy: deprecated kwarg form of ``config`` fields.

        Raises:
            PersistenceError: on a missing/malformed manifest, an
                unsupported schema, or a checksum mismatch.
            ValidationError: on bad config/legacy kwargs.
        """
        config = resolve_config(config, legacy,
                                where="ShardedIndex.load")
        directory = Path(path)
        manifest = read_sharded_manifest(directory)
        shards = []
        global_ids = []
        paths: "list[Path | None]" = []
        for entry in manifest["shards"]:
            ids_path = directory / str(entry.get("ids_file", ""))
            if not ids_path.is_file():
                raise PersistenceError(
                    f"sharded index {directory} is missing id file "
                    f"{entry.get('ids_file')!r}")
            expected = entry.get("ids_sha256")
            if expected is not None \
                    and sha256_file(ids_path) != expected:
                raise PersistenceError(
                    f"sharded index {directory} is corrupted: "
                    f"{entry['ids_file']} checksum does not match "
                    f"recorded {expected}")
            bundle_dir = directory / str(entry.get("bundle", ""))
            shards.append(ServedIndex.load(bundle_dir,
                                           config=config))
            global_ids.append(np.asarray(
                # Id maps are tiny; an eager read is the right call.
                np.load(ids_path,  # reprolint: disable=R111
                        allow_pickle=False),
                dtype=np.int64))
            paths.append(bundle_dir)
        retired_path = directory / str(
            manifest.get("retired_file", _RETIRED_NAME))
        if retired_path.is_file():
            retired = np.asarray(
                np.load(retired_path,  # reprolint: disable=R111
                        allow_pickle=False),
                dtype=np.int64)
        else:
            retired = np.empty(0, dtype=np.int64)
        index = cls(shards, global_ids,
                    assignment=str(manifest.get("assignment",
                                                "round_robin")),
                    config=config,
                    cursor=int(manifest.get("cursor", 0)),
                    retired=retired)
        index._paths = paths
        index._dirty = False
        return index

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the fan-out pools down (idempotent).

        Pools are detached under ``_pool_lock`` and drained after
        releasing it: ``shutdown(wait=True)`` blocks on in-flight
        shard work, and holding the lock through that drain would
        deadlock any worker (or concurrent caller) that needs it.
        """
        with self._pool_lock:
            executor, self._executor = self._executor, None
            self._executor_width = 0
            process_pool, self._process_pool = self._process_pool, None
        if executor is not None:
            executor.shutdown(wait=True)
        if process_pool is not None:
            process_pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ShardedIndex(shards={self.n_shards}, "
                f"k={self.rank}, n={self.n_terms}, "
                f"m={self.n_documents}, active={self.n_active}, "
                f"assignment={self._assignment!r}, "
                f"pool={self._config.pool!r}, "
                f"dtype={self.dtype})")
