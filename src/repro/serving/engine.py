"""Batched query execution against an LSI document store.

Scoring one query against rank-``k`` LSI is two small GEMVs; scoring a
block of ``q`` queries one at a time wastes the hardware the paper's §5
cost model is fighting for.  :class:`BatchQueryEngine` instead projects
the whole ``(n × q)`` query block with one GEMM (``Uₖᵀ·Q``), computes
every cosine with a second GEMM against pre-normalised document
vectors, and extracts top-``k`` per query via ``argpartition`` — while
reproducing the per-query path's rankings *exactly*, including the
stable ascending-id tie-break of ``np.argsort(kind="stable")``
(see :func:`stable_top_k`).

The raw-speed program adds three opt-in levers on top:

- ``dtype="float32"`` runs both GEMMs in single precision — roughly
  half the memory traffic — at the cost of last-ULP score agreement;
  the serving benchmarks measure the resulting top-k ranking overlap
  (:func:`ranking_overlap`) as a gated claim instead of assuming it;
- the hot path is allocation-free: per-thread scratch buffers hold the
  projected block, the unit queries, and the similarity matrix, so
  repeated batches of one shape run entirely through ``out=`` GEMMs;
- ``cache_budget_bytes`` bounds the similarity working set — when the
  ``(q, m)`` score block would exceed the budget, the document GEMM
  runs in column panels sized to fit.  Panelled GEMMs are *not*
  bitwise-identical to one monolithic GEMM (BLAS picks different
  kernels), so blocking is opt-in and never enabled by default.

:class:`LRUResultCache` memoises rankings keyed on (index version,
query hash, cutoff), so repeated queries against an unchanged index are
answered without touching BLAS at all.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import NamedTuple

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.linalg.dense import ZERO_NORM_TOL, normalize_columns, \
    normalize_columns_into
from repro.utils.validation import check_non_negative_int, check_top_k, \
    check_vector

__all__ = [
    "BatchQueryEngine",
    "CacheKey",
    "COMPUTE_DTYPES",
    "LRUResultCache",
    "QueryBatch",
    "ranking_overlap",
    "stable_top_k",
]

#: Compute precisions the engine accepts.
COMPUTE_DTYPES = ("float64", "float32")


def stable_top_k(scores: np.ndarray, top_k: int) -> np.ndarray:
    """Top-``top_k`` indices by descending score, stable ties by id.

    Bit-for-bit equivalent to ``np.argsort(-scores, kind="stable")
    [:top_k]`` but ``O(m + top_k·log top_k)`` instead of
    ``O(m·log m)``: an ``np.partition`` selects the cutoff value, ties
    at the boundary are filled in ascending id order (exactly the
    stable-sort policy), and only the selected candidates are sorted.
    """
    scores = np.asarray(scores)
    n = scores.shape[0]
    top_k = min(int(top_k), n)
    if top_k <= 0:
        return np.empty(0, dtype=np.int64)
    if top_k >= n:
        return np.argsort(-scores, kind="stable")
    cutoff = np.partition(scores, n - top_k)[n - top_k]
    above = np.flatnonzero(scores > cutoff)
    ties = np.flatnonzero(scores == cutoff)
    candidates = np.concatenate([above, ties[:top_k - above.size]])
    order = np.argsort(-scores[candidates], kind="stable")
    return candidates[order]


def ranking_overlap(rankings_a, rankings_b) -> float:
    """Mean per-query overlap between two ``(q, k)`` ranking blocks.

    Each row is treated as a set of document ids; the overlap of a row
    pair is ``|a ∩ b| / k``.  This is the agreement metric the float32
    compute path is gated on: position-insensitive (a last-ULP score
    flip that swaps ranks 3 and 4 is not a retrieval regression) but
    sensitive to any document entering or leaving the cutoff.

    Returns 1.0 for two empty blocks of matching shape.

    Raises:
        ShapeError: if the blocks are not 2-D with matching shapes.
    """
    a = np.asarray(rankings_a)
    b = np.asarray(rankings_b)
    if a.shape != b.shape or a.ndim != 2:
        raise ShapeError(
            f"ranking blocks must share a 2-D shape, got {a.shape} "
            f"and {b.shape}")
    if a.size == 0:
        return 1.0
    overlaps = [np.intersect1d(a[row], b[row]).size
                for row in range(a.shape[0])]
    return float(np.mean(overlaps)) / a.shape[1]


class QueryBatch:
    """A block of term-space queries, stored as columns.

    Args:
        matrix: dense ``(n_terms, q)`` array, one query per column.

    Use :meth:`from_vectors` to assemble a batch from 1-D query
    vectors.
    """

    def __init__(self, matrix):
        block = np.asarray(matrix, dtype=np.float64)
        if block.ndim != 2:
            raise ShapeError(
                f"query batch must be 2-D (n_terms, q), got shape "
                f"{block.shape}")
        if block.size and not np.all(np.isfinite(block)):
            raise ValidationError(
                "query batch contains non-finite entries")
        self._matrix = block

    @classmethod
    def from_vectors(cls, vectors) -> "QueryBatch":
        """Stack 1-D term-space query vectors into a batch.

        Raises:
            ValidationError: on an empty sequence or a non-finite
                query vector.
            ShapeError: when the vectors disagree on term-space size.
        """
        columns = [check_vector(v, f"vectors[{i}]")
                   for i, v in enumerate(vectors)]
        if not columns:
            raise ValidationError("query batch needs at least one query")
        lengths = {c.shape[0] for c in columns}
        if len(lengths) > 1:
            raise ShapeError(
                f"queries live in different term spaces: sizes {sorted(lengths)}")
        return cls(np.stack(columns, axis=1))

    @property
    def matrix(self) -> np.ndarray:
        """The ``(n_terms, q)`` query block (do not mutate)."""
        return self._matrix

    @property
    def n_terms(self) -> int:
        """Term-space dimensionality of every query."""
        return int(self._matrix.shape[0])

    @property
    def n_queries(self) -> int:
        """Number of queries in the block."""
        return int(self._matrix.shape[1])

    def query(self, i: int) -> np.ndarray:
        """The ``i``-th query as a 1-D vector (a copy)."""
        return self._matrix[:, int(i)].copy()

    def query_hash(self, i: int) -> str:
        """Content hash of query ``i`` (cache-key component)."""
        column = np.ascontiguousarray(self._matrix[:, int(i)])
        return hashlib.sha256(column.tobytes()).hexdigest()

    def __len__(self) -> int:
        """Number of queries (alias of :attr:`n_queries`)."""
        return self.n_queries

    def __repr__(self) -> str:
        return (f"QueryBatch(n_terms={self.n_terms}, "
                f"n_queries={self.n_queries})")


class CacheKey(NamedTuple):
    """The canonical result-cache key for one (query, cutoff) lookup.

    Every serving layer used to re-derive the ad-hoc
    ``(generation, sha256(query), top_k)`` tuple by hand;
    :class:`CacheKey` is that tuple promoted to a named, shared type so
    :class:`~repro.serving.index.ServedIndex`, the per-shard caches of
    :class:`~repro.serving.sharded.ShardedIndex`, and the
    micro-batching dispatcher all key one implementation.

    Attributes:
        generation: the index (or shard) generation the entry was
            computed against — mutations bump it, so stale rankings
            are unreachable by construction.
        query_hash: SHA-256 of the query column's bytes
            (:meth:`QueryBatch.query_hash`).
        top_k: the effective cutoff the ranking was computed at.
        kind: result flavour — ``"rank"`` for plain id rankings,
            ``"scored"`` for ``(ids, scores)`` pairs — so the two
            never alias.
    """

    generation: int
    query_hash: str
    top_k: int
    kind: str = "rank"

    @classmethod
    def for_query(cls, generation: int, batch: "QueryBatch", i: int,
                  top_k: int, *, kind: str = "rank") -> "CacheKey":
        """The key for query ``i`` of ``batch`` at one generation."""
        return cls(int(generation), batch.query_hash(i), int(top_k),
                   kind)


class LRUResultCache:
    """A bounded least-recently-used cache of ranking results.

    Keys are :class:`CacheKey` values (build them with
    :meth:`key_for`); values are ranked-id arrays or tuples of arrays
    (e.g. ``(ids, scores)``), copied on the way in and out.
    ``capacity=0`` disables caching (every lookup misses, nothing is
    stored).

    The cache is thread-safe: ``get``/``put``/``clear`` hold one lock,
    because an LRU lookup is read-*and-reorder* (``move_to_end``) and
    a put is insert-and-evict — neither is atomic on a plain
    OrderedDict, and the sharded serving layer shares one cache across
    worker threads.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = check_non_negative_int(capacity, "capacity")
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        #: Lookups answered from the cache.
        self.hits = 0
        #: Lookups that fell through to computation.
        self.misses = 0
        #: Entries dropped to respect ``capacity``.
        self.evictions = 0

    #: The shared cache-key constructor (see :class:`CacheKey`).
    key_for = staticmethod(CacheKey.for_query)

    @staticmethod
    def _copy_entry(entry):
        """Defensive copy of a cached value (array or array tuple)."""
        if isinstance(entry, tuple):
            return tuple(np.asarray(part).copy() for part in entry)
        return np.asarray(entry).copy()

    def get(self, key):
        """The cached result for ``key`` (a copy), or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return self._copy_entry(entry)

    def put(self, key, ranking) -> None:
        """Store a result, evicting the least-recently-used overflow."""
        if self.capacity == 0:
            return
        entry = self._copy_entry(ranking)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        """Number of cached rankings."""
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"LRUResultCache(capacity={self.capacity}, "
                f"size={len(self)}, hits={self.hits}, "
                f"misses={self.misses})")


def _check_compute_dtype(dtype) -> np.dtype:
    """Normalise/validate a compute-precision request."""
    resolved = np.dtype(dtype)
    if resolved.name not in COMPUTE_DTYPES:
        raise ValidationError(
            f"compute dtype must be one of {COMPUTE_DTYPES}, got "
            f"{resolved.name!r}")
    return resolved


class _BatchScratch(threading.local):
    """Per-thread scratch buffers for one query-block shape.

    One engine serves one immutable index generation, so the only
    thing that varies call to call is the batch width ``q``; buffers
    are rebuilt when ``q`` changes and reused otherwise.  Thread-local
    because the sharded serving layer scores through one engine from
    several worker threads, and a shared similarity buffer would race.
    """

    n_queries = -1
    queries = None
    projected = None
    unit = None
    sims = None


class BatchQueryEngine:
    """Projects and cosine-ranks query blocks in single GEMMs.

    The engine is a read-only view over an index generation: document
    unit vectors and norms are precomputed once, and the serving layer
    discards the engine whenever the writer mutates the store.

    Args:
        term_basis: the ``(n, k)`` orthonormal LSI basis ``Uₖ``.
        doc_vectors: the ``(k, m)`` LSI document store.
        tombstones: ids excluded from rankings (their scores report 0).
        dtype: compute precision, ``"float64"`` (default, bit-exact
            against the per-query path) or ``"float32"`` (opt-in;
            ranking agreement is measured, not assumed).
        cache_budget_bytes: optional bound on the similarity working
            set; a ``(q, m)`` score block larger than this is computed
            in document panels.  ``None`` (default) never blocks, which
            keeps scores bitwise-identical to a single GEMM.
    """

    def __init__(self, term_basis, doc_vectors, *, tombstones=(),
                 dtype="float64",
                 cache_budget_bytes: "int | None" = None):
        self._dtype = _check_compute_dtype(dtype)
        basis = np.asarray(term_basis, dtype=self._dtype)
        docs = np.asarray(doc_vectors, dtype=self._dtype)
        if basis.ndim != 2 or docs.ndim != 2 \
                or basis.shape[1] != docs.shape[0]:
            raise ShapeError(
                f"term_basis {basis.shape} and doc_vectors {docs.shape} "
                "disagree on the LSI rank")
        unit, norms = normalize_columns(docs, zero_tol=ZERO_NORM_TOL) \
            if self._dtype == np.float64 else (None, None)
        if unit is None:
            # float32: normalise in compute precision, no float64 pass.
            unit = np.empty_like(docs)
            norms = normalize_columns_into(docs, unit,
                                           zero_tol=ZERO_NORM_TOL)
        self._init_from_parts(basis, unit, norms, tombstones,
                              cache_budget_bytes)

    @classmethod
    def from_precomputed(cls, term_basis, doc_unit, doc_norms, *,
                         tombstones=(), dtype="float64",
                         cache_budget_bytes: "int | None" = None,
                         ) -> "BatchQueryEngine":
        """Build from already-normalised document factors.

        This is the zero-copy construction path for memory-mapped
        bundles: ``doc_unit``/``doc_norms`` come straight from the
        bundle files (read-only is fine) and are *not* re-normalised,
        so no page of the document store is touched until the first
        query's GEMM reads it.  With ``dtype="float64"`` the arrays are
        used as-is; ``"float32"`` casts (and therefore materialises)
        them once.

        Args:
            term_basis: the ``(n, k)`` LSI basis ``Uₖ``.
            doc_unit: ``(k, m)`` unit-normalised document vectors, as
                produced by :func:`~repro.linalg.dense.normalize_columns`.
            doc_norms: length-``m`` original column norms.
            tombstones: ids excluded from rankings.
            dtype: compute precision (see the constructor).
            cache_budget_bytes: similarity working-set bound (see the
                constructor).

        Raises:
            ShapeError: when the factor shapes disagree on the LSI
                rank or the document count.
            ValidationError: on an unsupported compute dtype.
        """
        engine = cls.__new__(cls)
        engine._dtype = _check_compute_dtype(dtype)
        basis = np.asarray(term_basis, dtype=engine._dtype)
        unit = np.asarray(doc_unit, dtype=engine._dtype)
        norms = np.asarray(doc_norms)
        if basis.ndim != 2 or unit.ndim != 2 \
                or basis.shape[1] != unit.shape[0]:
            raise ShapeError(
                f"term_basis {basis.shape} and doc_unit {unit.shape} "
                "disagree on the LSI rank")
        if norms.ndim != 1 or norms.shape[0] != unit.shape[1]:
            raise ShapeError(
                f"doc_norms has shape {norms.shape}; expected "
                f"({unit.shape[1]},)")
        engine._init_from_parts(basis, unit, norms, tombstones,
                                cache_budget_bytes)
        return engine

    def _init_from_parts(self, basis, unit, norms, tombstones,
                         cache_budget_bytes) -> None:
        """Shared tail of both construction paths."""
        self._basis = basis
        self._doc_unit = unit
        self._doc_zero = norms <= ZERO_NORM_TOL
        self._tombstones = frozenset(int(d) for d in tombstones)
        n_docs = int(unit.shape[1])
        bad = [d for d in self._tombstones if not 0 <= d < n_docs]
        if bad:
            raise ValidationError(
                f"tombstoned ids {sorted(bad)} out of range for "
                f"{n_docs} documents")
        self._dead = np.zeros(n_docs, dtype=bool)
        if self._tombstones:
            self._dead[sorted(self._tombstones)] = True
        self._n_docs = n_docs
        self._n_terms = int(basis.shape[0])
        if cache_budget_bytes is not None:
            cache_budget_bytes = check_non_negative_int(
                cache_budget_bytes, "cache_budget_bytes")
        self._cache_budget = cache_budget_bytes
        self._scratch = _BatchScratch()

    @property
    def n_documents(self) -> int:
        """Stored documents, including tombstoned ones."""
        return self._n_docs

    @property
    def n_terms(self) -> int:
        """Term-space dimensionality queries must have."""
        return self._n_terms

    @property
    def n_active(self) -> int:
        """Documents eligible to appear in rankings."""
        return self._n_docs - len(self._tombstones)

    @property
    def dtype(self) -> str:
        """Compute precision the engine scores in."""
        return self._dtype.name

    def _as_batch(self, queries) -> QueryBatch:
        """Coerce an array / vector sequence into a :class:`QueryBatch`."""
        if isinstance(queries, QueryBatch):
            batch = queries
        elif isinstance(queries, np.ndarray) and queries.ndim == 2:
            batch = QueryBatch(queries)
        else:
            batch = QueryBatch.from_vectors(queries)
        if batch.n_terms != self._n_terms:
            raise ShapeError(
                f"queries have {batch.n_terms} terms; the index expects "
                f"{self._n_terms}")
        return batch

    def _buffers(self, n_queries: int) -> _BatchScratch:
        """This thread's scratch, (re)allocated when the width changes."""
        scratch = self._scratch
        if scratch.n_queries != n_queries:
            rank = self._basis.shape[1]
            scratch.queries = np.empty((self._n_terms, n_queries),
                                       dtype=self._dtype)
            scratch.projected = np.empty((rank, n_queries),
                                         dtype=self._dtype)
            scratch.unit = np.empty((rank, n_queries),
                                    dtype=self._dtype)
            scratch.sims = np.empty((n_queries, self._n_docs),
                                    dtype=self._dtype)
            scratch.n_queries = n_queries
        return scratch

    def _doc_panel_width(self, n_queries: int) -> int:
        """Documents per similarity panel under the cache budget."""
        if self._cache_budget is None:
            return self._n_docs
        row_bytes = max(1, n_queries * self._dtype.itemsize)
        return max(1, min(self._n_docs,
                          self._cache_budget // row_bytes))

    def _score_into(self, batch: QueryBatch) -> np.ndarray:
        """Score ``batch`` into this thread's scratch buffers.

        Returns the ``(q, m)`` similarity view (owned by the scratch —
        valid until the next call on this thread).  Semantics match
        :meth:`score_batch`: zero-norm queries, zero documents, and
        tombstoned documents score exactly 0.
        """
        scratch = self._buffers(batch.n_queries)
        if self._dtype == np.float64:
            block = batch.matrix
        else:
            np.copyto(scratch.queries, batch.matrix)
            block = scratch.queries
        np.matmul(self._basis.T, block, out=scratch.projected)
        norms = normalize_columns_into(scratch.projected, scratch.unit,
                                       zero_tol=ZERO_NORM_TOL)
        sims = scratch.sims
        panel = self._doc_panel_width(batch.n_queries)
        if panel >= self._n_docs:
            np.matmul(scratch.unit.T, self._doc_unit, out=sims)
        else:
            for start in range(0, self._n_docs, panel):
                stop = min(start + panel, self._n_docs)
                np.matmul(scratch.unit.T,
                          self._doc_unit[:, start:stop],
                          out=sims[:, start:stop])
        sims[norms <= ZERO_NORM_TOL, :] = 0.0
        sims[:, self._doc_zero] = 0.0
        np.clip(sims, -1.0, 1.0, out=sims)
        if self._tombstones:
            sims[:, self._dead] = 0.0
        return sims

    def score_batch(self, queries) -> np.ndarray:
        """Cosine scores of every document for every query, ``(q, m)``.

        One GEMM projects the block, a second computes all cosines.
        Zero-norm queries, zero-vector documents, and tombstoned
        documents score exactly 0, matching the per-query path.  The
        returned array is the caller's (a copy of the internal scratch)
        in the engine's compute dtype.
        """
        batch = self._as_batch(queries)
        return self._score_into(batch).copy()

    def score(self, query_vector) -> np.ndarray:
        """Cosine scores for one term-space query (length ``m``)."""
        query = check_vector(query_vector, "query_vector")
        return self.score_batch(query[:, None])[0]

    def rank_batch(self, queries, *, top_k=None) -> np.ndarray:
        """Ranked ids per query as a ``(q, top_k_eff)`` array.

        ``top_k`` follows the shared policy (``None`` = all), further
        clamped to the number of non-tombstoned documents; tombstoned
        ids never appear.  This is the allocation-free hot path: the
        only per-call allocation is the returned id block.
        """
        batch = self._as_batch(queries)
        top_k = min(check_top_k(top_k, self._n_docs), self.n_active)
        scores = self._score_into(batch)
        if self._tombstones:
            scores[:, self._dead] = -np.inf
        out = np.empty((batch.n_queries, top_k), dtype=np.int64)
        for row in range(batch.n_queries):
            out[row] = stable_top_k(scores[row], top_k)
        return out

    def rank_batch_scored(self, queries, *, top_k=None
                          ) -> "tuple[np.ndarray, np.ndarray]":
        """Ranked ids *and their scores* per query.

        Same semantics as :meth:`rank_batch`, plus the cosine score of
        every returned id as a second ``(q, top_k_eff)`` array in the
        engine's compute dtype.  This is the shard fan-out primitive:
        merging per-shard top-k into a global ranking needs the scores
        to re-run the ``stable_top_k`` tie policy across shards.
        """
        batch = self._as_batch(queries)
        top_k = min(check_top_k(top_k, self._n_docs), self.n_active)
        sims = self._score_into(batch)
        if self._tombstones:
            sims[:, self._dead] = -np.inf
        ids = np.empty((batch.n_queries, top_k), dtype=np.int64)
        scores = np.empty((batch.n_queries, top_k), dtype=self._dtype)
        for row in range(batch.n_queries):
            ids[row] = stable_top_k(sims[row], top_k)
            scores[row] = sims[row, ids[row]]
        return ids, scores

    def rank_documents(self, query_vector, *, top_k=None) -> np.ndarray:
        """Ranked ids for one query (the batched kernel, q = 1)."""
        query = check_vector(query_vector, "query_vector")
        return self.rank_batch(query[:, None], top_k=top_k)[0]

    def __repr__(self) -> str:
        return (f"BatchQueryEngine(n_terms={self._n_terms}, "
                f"k={self._basis.shape[1]}, m={self._n_docs}, "
                f"tombstoned={len(self._tombstones)}, "
                f"dtype={self._dtype.name})")
