"""Batched query execution against an LSI document store.

Scoring one query against rank-``k`` LSI is two small GEMVs; scoring a
block of ``q`` queries one at a time wastes the hardware the paper's §5
cost model is fighting for.  :class:`BatchQueryEngine` instead projects
the whole ``(n × q)`` query block with one GEMM (``Uₖᵀ·Q``), computes
every cosine with a second GEMM against pre-normalised document
vectors, and extracts top-``k`` per query via ``argpartition`` — while
reproducing the per-query path's rankings *exactly*, including the
stable ascending-id tie-break of ``np.argsort(kind="stable")``
(see :func:`stable_top_k`).

:class:`LRUResultCache` memoises rankings keyed on (index version,
query hash, cutoff), so repeated queries against an unchanged index are
answered without touching BLAS at all.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.linalg.dense import ZERO_NORM_TOL, normalize_columns
from repro.utils.validation import check_non_negative_int, check_top_k, \
    check_vector

__all__ = [
    "BatchQueryEngine",
    "LRUResultCache",
    "QueryBatch",
    "stable_top_k",
]


def stable_top_k(scores: np.ndarray, top_k: int) -> np.ndarray:
    """Top-``top_k`` indices by descending score, stable ties by id.

    Bit-for-bit equivalent to ``np.argsort(-scores, kind="stable")
    [:top_k]`` but ``O(m + top_k·log top_k)`` instead of
    ``O(m·log m)``: an ``np.partition`` selects the cutoff value, ties
    at the boundary are filled in ascending id order (exactly the
    stable-sort policy), and only the selected candidates are sorted.
    """
    scores = np.asarray(scores)
    n = scores.shape[0]
    top_k = min(int(top_k), n)
    if top_k <= 0:
        return np.empty(0, dtype=np.int64)
    if top_k >= n:
        return np.argsort(-scores, kind="stable")
    cutoff = np.partition(scores, n - top_k)[n - top_k]
    above = np.flatnonzero(scores > cutoff)
    ties = np.flatnonzero(scores == cutoff)
    candidates = np.concatenate([above, ties[:top_k - above.size]])
    order = np.argsort(-scores[candidates], kind="stable")
    return candidates[order]


class QueryBatch:
    """A block of term-space queries, stored as columns.

    Args:
        matrix: dense ``(n_terms, q)`` array, one query per column.

    Use :meth:`from_vectors` to assemble a batch from 1-D query
    vectors.
    """

    def __init__(self, matrix):
        block = np.asarray(matrix, dtype=np.float64)
        if block.ndim != 2:
            raise ShapeError(
                f"query batch must be 2-D (n_terms, q), got shape "
                f"{block.shape}")
        if block.size and not np.all(np.isfinite(block)):
            raise ValidationError(
                "query batch contains non-finite entries")
        self._matrix = block

    @classmethod
    def from_vectors(cls, vectors) -> "QueryBatch":
        """Stack 1-D term-space query vectors into a batch."""
        columns = [check_vector(v, f"vectors[{i}]")
                   for i, v in enumerate(vectors)]
        if not columns:
            raise ValidationError("query batch needs at least one query")
        lengths = {c.shape[0] for c in columns}
        if len(lengths) > 1:
            raise ShapeError(
                f"queries live in different term spaces: sizes {sorted(lengths)}")
        return cls(np.stack(columns, axis=1))

    @property
    def matrix(self) -> np.ndarray:
        """The ``(n_terms, q)`` query block (do not mutate)."""
        return self._matrix

    @property
    def n_terms(self) -> int:
        """Term-space dimensionality of every query."""
        return int(self._matrix.shape[0])

    @property
    def n_queries(self) -> int:
        """Number of queries in the block."""
        return int(self._matrix.shape[1])

    def query(self, i: int) -> np.ndarray:
        """The ``i``-th query as a 1-D vector (a copy)."""
        return self._matrix[:, int(i)].copy()

    def query_hash(self, i: int) -> str:
        """Content hash of query ``i`` (cache-key component)."""
        column = np.ascontiguousarray(self._matrix[:, int(i)])
        return hashlib.sha256(column.tobytes()).hexdigest()

    def __len__(self) -> int:
        """Number of queries (alias of :attr:`n_queries`)."""
        return self.n_queries

    def __repr__(self) -> str:
        return (f"QueryBatch(n_terms={self.n_terms}, "
                f"n_queries={self.n_queries})")


class LRUResultCache:
    """A bounded least-recently-used cache of ranking arrays.

    Keys are ``(index_version, query_hash, top_k)`` tuples; values are
    the ranked-id arrays.  ``capacity=0`` disables caching (every
    lookup misses, nothing is stored).

    The cache is thread-safe: ``get``/``put``/``clear`` hold one lock,
    because an LRU lookup is read-*and-reorder* (``move_to_end``) and
    a put is insert-and-evict — neither is atomic on a plain
    OrderedDict, and the sharded serving layer shares one cache across
    worker threads.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = check_non_negative_int(capacity, "capacity")
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        #: Lookups answered from the cache.
        self.hits = 0
        #: Lookups that fell through to computation.
        self.misses = 0
        #: Entries dropped to respect ``capacity``.
        self.evictions = 0

    def get(self, key) -> "np.ndarray | None":
        """The cached ranking for ``key`` (a copy), or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.copy()

    def put(self, key, ranking: np.ndarray) -> None:
        """Store a ranking, evicting the least-recently-used overflow."""
        if self.capacity == 0:
            return
        entry = np.asarray(ranking).copy()
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        """Number of cached rankings."""
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"LRUResultCache(capacity={self.capacity}, "
                f"size={len(self)}, hits={self.hits}, "
                f"misses={self.misses})")


class BatchQueryEngine:
    """Projects and cosine-ranks query blocks in single GEMMs.

    The engine is a read-only view over an index generation: document
    unit vectors and norms are precomputed once, and the serving layer
    discards the engine whenever the writer mutates the store.

    Args:
        term_basis: the ``(n, k)`` orthonormal LSI basis ``Uₖ``.
        doc_vectors: the ``(k, m)`` LSI document store.
        tombstones: ids excluded from rankings (their scores report 0).
    """

    def __init__(self, term_basis, doc_vectors, *, tombstones=()):
        basis = np.asarray(term_basis, dtype=np.float64)
        docs = np.asarray(doc_vectors, dtype=np.float64)
        if basis.ndim != 2 or docs.ndim != 2 \
                or basis.shape[1] != docs.shape[0]:
            raise ShapeError(
                f"term_basis {basis.shape} and doc_vectors {docs.shape} "
                "disagree on the LSI rank")
        self._basis = basis
        unit, norms = normalize_columns(docs, zero_tol=ZERO_NORM_TOL)
        self._doc_unit = unit
        self._doc_zero = norms <= ZERO_NORM_TOL
        self._tombstones = frozenset(int(d) for d in tombstones)
        bad = [d for d in self._tombstones
               if not 0 <= d < docs.shape[1]]
        if bad:
            raise ValidationError(
                f"tombstoned ids {sorted(bad)} out of range for "
                f"{docs.shape[1]} documents")
        self._dead = np.zeros(docs.shape[1], dtype=bool)
        if self._tombstones:
            self._dead[sorted(self._tombstones)] = True
        self._n_docs = int(docs.shape[1])
        self._n_terms = int(basis.shape[0])

    @property
    def n_documents(self) -> int:
        """Stored documents, including tombstoned ones."""
        return self._n_docs

    @property
    def n_terms(self) -> int:
        """Term-space dimensionality queries must have."""
        return self._n_terms

    @property
    def n_active(self) -> int:
        """Documents eligible to appear in rankings."""
        return self._n_docs - len(self._tombstones)

    def _as_batch(self, queries) -> QueryBatch:
        """Coerce an array / vector sequence into a :class:`QueryBatch`."""
        if isinstance(queries, QueryBatch):
            batch = queries
        elif isinstance(queries, np.ndarray) and queries.ndim == 2:
            batch = QueryBatch(queries)
        else:
            batch = QueryBatch.from_vectors(queries)
        if batch.n_terms != self._n_terms:
            raise ShapeError(
                f"queries have {batch.n_terms} terms; the index expects "
                f"{self._n_terms}")
        return batch

    def score_batch(self, queries) -> np.ndarray:
        """Cosine scores of every document for every query, ``(q, m)``.

        One GEMM projects the block, a second computes all cosines.
        Zero-norm queries, zero-vector documents, and tombstoned
        documents score exactly 0, matching the per-query path.
        """
        batch = self._as_batch(queries)
        projected = self._basis.T @ batch.matrix          # (k, q)
        unit, norms = normalize_columns(projected,
                                        zero_tol=ZERO_NORM_TOL)
        sims = unit.T @ self._doc_unit                    # (q, m)
        sims[norms <= ZERO_NORM_TOL, :] = 0.0
        sims[:, self._doc_zero] = 0.0
        np.clip(sims, -1.0, 1.0, out=sims)
        if self._tombstones:
            sims[:, self._dead] = 0.0
        return sims

    def score(self, query_vector) -> np.ndarray:
        """Cosine scores for one term-space query (length ``m``)."""
        query = check_vector(query_vector, "query_vector")
        return self.score_batch(query[:, None])[0]

    def rank_batch(self, queries, *, top_k=None) -> np.ndarray:
        """Ranked ids per query as a ``(q, top_k_eff)`` array.

        ``top_k`` follows the shared policy (``None`` = all), further
        clamped to the number of non-tombstoned documents; tombstoned
        ids never appear.
        """
        batch = self._as_batch(queries)
        top_k = min(check_top_k(top_k, self._n_docs), self.n_active)
        scores = self.score_batch(batch)
        if self._tombstones:
            scores[:, self._dead] = -np.inf
        out = np.empty((batch.n_queries, top_k), dtype=np.int64)
        for row in range(batch.n_queries):
            out[row] = stable_top_k(scores[row], top_k)
        return out

    def rank_documents(self, query_vector, *, top_k=None) -> np.ndarray:
        """Ranked ids for one query (the batched kernel, q = 1)."""
        query = check_vector(query_vector, "query_vector")
        return self.rank_batch(query[:, None], top_k=top_k)[0]

    def __repr__(self) -> str:
        return (f"BatchQueryEngine(n_terms={self._n_terms}, "
                f"k={self._basis.shape[1]}, m={self._n_docs}, "
                f"tombstoned={len(self._tombstones)})")
