"""The mutating side of a served index: fold-in, deletion, refit.

Folding a new document in (:meth:`IndexWriter.add_documents`) projects
it onto the fitted ``Uₖ`` basis exactly like a query — cheap, but the
basis never learns from it.  The cost of that shortcut is *drift*, and
this module makes it a first-class, monotone metric grounded in the
Eckart–Young accounting of :class:`~repro.linalg.svd.SVDResult`:

- every folded column ``c`` contributes its out-of-subspace energy
  ``‖c‖² − ‖Uₖᵀc‖²`` — the part of the document the index cannot
  represent and a refit could absorb;
- every tombstoned document contributes its in-subspace energy
  ``‖v_d‖²`` — mass the basis was fitted to that no longer exists;
- ``drift = unabsorbed / (unabsorbed + ‖Aₖ‖_F²)`` where ``‖Aₖ‖_F²`` is
  the fitted model's captured energy.

The numerator only grows between refits, so drift is monotone
non-decreasing in update operations (a perfectly in-subspace fold-in
adds exactly 0, which Lemma 1 says is the right answer: in-model
arrivals barely perturb the basis).  Crossing ``drift_threshold`` flips
:attr:`IndexWriter.needs_refit`.

:meth:`IndexWriter.refit` absorbs the accumulated updates.  Since the
incremental-SVD subsystem (:mod:`repro.linalg.incremental`) the default
is *not* a from-scratch decomposition: the writer buffers the folded
term-space columns and, on ``refit()``, merges their block SVDs into
the current factors — cost proportional to the fold-in block, not the
corpus.  A from-scratch decomposition is still available as
``refit(matrix)`` / ``refit(matrix, full=True)`` and remains the only
way to *purge* tombstoned mass from the basis (an incremental merge
can add subspace directions but never subtracts the deleted columns'
contribution, so deleted energy stays in the drift numerator until a
full refit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lsi import LSIModel
from repro.errors import ValidationError
from repro.linalg.incremental import PartialSVD, iter_column_blocks, \
    merge
from repro.linalg.sparse import CSRMatrix
from repro.utils.validation import check_fraction

__all__ = ["DriftReport", "IndexWriter"]


@dataclass(frozen=True)
class DriftReport:
    """The writer's drift accounting, frozen for reporting.

    Attributes:
        drift: current drift in ``[0, 1)``; monotone non-decreasing in
            update operations between refits.
        threshold: configured refit threshold (``None`` = never
            recommend).
        needs_refit: whether ``drift >= threshold``.
        unabsorbed_energy: accumulated out-of-subspace + deleted energy.
        captured_energy: ``‖Aₖ‖_F²`` of the fitted model (drift
            denominator anchor).
        baseline_residual_energy: the fit's own Eckart–Young residual
            ``‖A − Aₖ‖_F²`` — error the index had even before folding.
        fold_ins_since_refit: documents folded since the last (re)fit.
        deletes_since_refit: documents tombstoned since the last (re)fit.
    """

    drift: float
    threshold: "float | None"
    needs_refit: bool
    unabsorbed_energy: float
    captured_energy: float
    baseline_residual_energy: float
    fold_ins_since_refit: int
    deletes_since_refit: int


def _column_sq_norms(columns) -> np.ndarray:
    """Squared Euclidean norms of document columns (dense or CSR)."""
    if isinstance(columns, CSRMatrix):
        return columns.column_norms() ** 2
    dense = np.asarray(columns, dtype=np.float64)
    if dense.ndim != 2:
        raise ValidationError(
            f"document columns must be 2-D (n_terms, p), got shape "
            f"{dense.shape}")
    return np.sum(dense * dense, axis=0)


class IndexWriter:
    """Owns an index's document store and its update lifecycle.

    Args:
        model: the fitted :class:`~repro.core.lsi.LSIModel` to serve.
        drift_threshold: drift level past which a refit is recommended;
            ``None`` disables the recommendation.

    The writer tracks three kinds of state: the ``(k, m)`` LSI document
    store (fitted + folded columns), the tombstone set, and the drift
    accounting described in the module docstring.
    """

    def __init__(self, model: LSIModel, *,
                 drift_threshold: "float | None" = 0.1):
        if not isinstance(model, LSIModel):
            raise ValidationError("IndexWriter wraps an LSIModel")
        if drift_threshold is not None:
            drift_threshold = check_fraction(drift_threshold,
                                             "drift_threshold")
        self._model = model
        self._doc_vectors = model.document_vectors()   # (k, m0)
        self._n_original = model.n_documents
        self._tombstones: "set[int]" = set()
        # Drift numerator, split so an incremental refit can clear
        # exactly the mass it absorbs: fold-in (out-of-subspace) energy
        # goes away when the fold block is merged into the basis;
        # deleted (and bundle-carried) energy only a full refit clears.
        self._fold_energy = 0.0
        self._deleted_energy = 0.0
        # Term-space fold-in columns retained verbatim so refit() can
        # merge their block SVDs into the factors (see refit()).
        self._fold_buffer: "list[np.ndarray | CSRMatrix]" = []
        self._fold_ins = 0
        self._deletes = 0
        self._refits = 0
        self.drift_threshold = drift_threshold

    # ------------------------------------------------------------------
    # Store inspection
    # ------------------------------------------------------------------

    @property
    def model(self) -> LSIModel:
        """The LSI model currently backing the index."""
        return self._model

    @property
    def n_documents(self) -> int:
        """Total stored documents (fitted + folded, incl. tombstoned)."""
        return int(self._doc_vectors.shape[1])

    @property
    def n_original(self) -> int:
        """Documents that came from the (re)fit rather than folding."""
        return self._n_original

    @property
    def n_folded(self) -> int:
        """Documents added by folding since the last (re)fit."""
        return self.n_documents - self._n_original

    @property
    def n_tombstoned(self) -> int:
        """Deleted documents still occupying ids."""
        return len(self._tombstones)

    @property
    def n_active(self) -> int:
        """Documents eligible to be served."""
        return self.n_documents - self.n_tombstoned

    @property
    def tombstones(self) -> tuple:
        """Deleted document ids, ascending."""
        return tuple(sorted(self._tombstones))

    def document_vectors(self) -> np.ndarray:
        """The ``(k, m)`` LSI document store (a copy)."""
        return self._doc_vectors.copy()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add_documents(self, columns) -> np.ndarray:
        """Fold new term-space documents in; return their assigned ids.

        Args:
            columns: dense ``(n_terms, p)`` array or
                :class:`~repro.linalg.sparse.CSRMatrix` of new document
                columns.

        Each column's out-of-subspace energy is added to the drift
        numerator, so drift never decreases on an add.  The columns
        themselves are buffered (term space, verbatim) so the next
        ``refit()`` can absorb them into the basis incrementally; the
        buffer costs O(nnz of the folds since the last refit) and is
        dropped on every refit (or via :meth:`discard_fold_buffer`).

        Raises:
            ValidationError: if ``columns`` is dense but not 2-D.
        """
        if isinstance(columns, CSRMatrix):
            stored: "np.ndarray | CSRMatrix" = columns
        else:
            dense = np.asarray(columns, dtype=np.float64)
            if dense.ndim != 2:
                raise ValidationError(
                    f"document columns must be 2-D (n_terms, p), got "
                    f"shape {dense.shape}")
            stored = dense.copy()
        projected = self._model.project_documents(stored)  # (k, p)
        total = _column_sq_norms(stored)
        captured = np.sum(projected * projected, axis=0)
        self._fold_energy += float(
            np.sum(np.maximum(total - captured, 0.0)))
        first = self.n_documents
        self._doc_vectors = np.concatenate(
            [self._doc_vectors, projected], axis=1)
        self._fold_buffer.append(stored)
        self._fold_ins += projected.shape[1]
        return np.arange(first, first + projected.shape[1],
                         dtype=np.int64)

    def remove_documents(self, doc_ids) -> None:
        """Tombstone documents (fold-out).

        Deleted ids keep their positions (so ids stay stable) but stop
        appearing in rankings; their in-subspace energy joins the drift
        numerator because the basis still encodes mass that no longer
        exists.

        Raises:
            ValidationError: on an out-of-range or already-deleted id.
        """
        ids = [int(d) for d in np.atleast_1d(np.asarray(doc_ids))]
        for doc_id in ids:
            if not 0 <= doc_id < self.n_documents:
                raise ValidationError(
                    f"document id {doc_id} out of range for "
                    f"{self.n_documents} documents")
            if doc_id in self._tombstones:
                raise ValidationError(
                    f"document {doc_id} is already deleted")
        for doc_id in ids:
            vector = self._doc_vectors[:, doc_id]
            self._deleted_energy += float(vector @ vector)
            self._tombstones.add(doc_id)
        self._deletes += len(ids)

    # ------------------------------------------------------------------
    # Drift accounting
    # ------------------------------------------------------------------

    @property
    def drift(self) -> float:
        """``unabsorbed / (unabsorbed + captured)`` in ``[0, 1)``."""
        captured = self._model.svd.captured_energy()
        unabsorbed = self.unabsorbed_energy
        denominator = unabsorbed + captured
        if denominator <= 0:
            return 0.0
        return unabsorbed / denominator

    @property
    def unabsorbed_energy(self) -> float:
        """Accumulated out-of-subspace + deleted energy since refit."""
        return self._fold_energy + self._deleted_energy

    @property
    def pending_columns(self) -> int:
        """Fold-in columns buffered for the next incremental refit."""
        return sum(int(block.shape[1]) for block in self._fold_buffer)

    @property
    def can_refit_incrementally(self) -> bool:
        """Whether ``refit()`` (no matrix) can run.

        True when the fold buffer covers every folded document —
        which it always does for an in-process writer, but not after
        loading a bundle that was saved with unabsorbed fold-ins
        (term-space columns are not persisted), or after
        :meth:`discard_fold_buffer`.
        """
        return self.pending_columns == self.n_folded

    def discard_fold_buffer(self) -> None:
        """Drop the buffered fold-in columns to reclaim memory.

        After this, drift accounting still works but ``refit()`` must
        be given the corpus matrix (full refit) until the next refit
        resets the fold state.
        """
        self._fold_buffer.clear()

    @property
    def fold_ins_since_refit(self) -> int:
        """Documents folded in since the last (re)fit."""
        return self._fold_ins

    @property
    def deletes_since_refit(self) -> int:
        """Documents tombstoned since the last (re)fit."""
        return self._deletes

    @property
    def refits(self) -> int:
        """Times :meth:`refit` ran over this writer's lifetime."""
        return self._refits

    @property
    def needs_refit(self) -> bool:
        """Whether drift has crossed the configured threshold."""
        return (self.drift_threshold is not None
                and self.drift >= self.drift_threshold)

    def drift_report(self) -> DriftReport:
        """A frozen snapshot of the drift accounting."""
        svd = self._model.svd
        return DriftReport(
            drift=self.drift,
            threshold=self.drift_threshold,
            needs_refit=self.needs_refit,
            unabsorbed_energy=self.unabsorbed_energy,
            captured_energy=svd.captured_energy(),
            baseline_residual_energy=svd.residual_energy(),
            fold_ins_since_refit=self._fold_ins,
            deletes_since_refit=self._deletes)

    # ------------------------------------------------------------------
    # Refit
    # ------------------------------------------------------------------

    def refit(self, matrix=None, *, full: bool = False, rank=None,
              engine: str = "lanczos", seed=None,
              block_size: "int | None" = None, oversample: int = 8,
              **engine_kwargs) -> LSIModel:
        """Absorb the accumulated updates into the factors.

        Two modes:

        - **Incremental (default)** — ``refit()`` with no matrix
          merges the buffered fold-in columns' block SVDs into the
          current factors via :func:`repro.linalg.incremental.merge`.
          No from-scratch decomposition runs; cost scales with the
          fold block, not the corpus.  Fold-in drift is absorbed;
          tombstones (and their deleted energy) survive, because a
          merge can only *add* subspace mass — purging deletions
          needs the full mode.
        - **Full** — ``refit(matrix)`` (or ``full=True`` with a
          matrix) re-runs the SVD on an authoritative corpus matrix:
          the writer replaces its model and document store, clears
          tombstones, and resets all drift accounting, exactly as
          before the incremental subsystem existed.

        Args:
            matrix: the ``n_terms × m_new`` corpus for a full refit;
                ``None`` selects the incremental merge.
            full: explicitly request the full mode (requires
                ``matrix``); passing a matrix implies it.
            rank: LSI rank (defaults to the current model's rank).
            engine: SVD engine for the full fit, or the per-block
                engine of the incremental merge.
            seed: RNG seed for iterative engines.
            block_size: incremental mode only — re-chunk width for
                buffered fold blocks (``None`` merges them as
                buffered).
            oversample: incremental mode only — working-rank headroom
                carried through the merges.
            **engine_kwargs: engine tuning, validated like
                :func:`~repro.linalg.svd.truncated_svd`.

        Returns:
            The refreshed model (also installed in the writer).

        Raises:
            ValidationError: when ``full=True`` without a matrix;
                when the incremental mode's fold buffer does not
                cover the folded documents (bundle loads drop the
                buffer — supply the matrix instead); when the refit
                matrix's term space does not match the served one;
                or on invalid fit parameters.
            ConvergenceError: when an iterative SVD engine fails to
                converge.
        """
        if matrix is not None:
            return self._refit_full(matrix, rank=rank, engine=engine,
                                    seed=seed, **engine_kwargs)
        if full:
            raise ValidationError(
                "refit(full=True) needs the corpus matrix; pass "
                "refit(matrix) to re-decompose from scratch")
        return self._refit_incremental(
            rank=rank, engine=engine, seed=seed,
            block_size=block_size, oversample=oversample,
            **engine_kwargs)

    def _refit_full(self, matrix, *, rank, engine, seed,
                    **engine_kwargs) -> LSIModel:
        """From-scratch decomposition; resets every accounting bucket."""
        rank = self._model.rank if rank is None else rank
        model = LSIModel.fit(matrix, rank, engine=engine, seed=seed,
                             **engine_kwargs)
        if model.n_terms != self._model.n_terms:
            raise ValidationError(
                f"refit matrix has {model.n_terms} terms; the index "
                f"serves {self._model.n_terms}")
        self._model = model
        self._doc_vectors = model.document_vectors()
        self._n_original = model.n_documents
        self._tombstones.clear()
        self._fold_energy = 0.0
        self._deleted_energy = 0.0
        self._fold_buffer.clear()
        self._fold_ins = 0
        self._deletes = 0
        self._refits += 1
        return model

    def _refit_incremental(self, *, rank, engine, seed, block_size,
                           oversample, **engine_kwargs) -> LSIModel:
        """Merge the buffered fold block into the current factors."""
        if not self.can_refit_incrementally:
            raise ValidationError(
                f"incremental refit needs the term-space fold "
                f"columns, but the buffer holds "
                f"{self.pending_columns} of {self.n_folded} folded "
                f"documents (bundles do not persist the buffer); "
                f"pass refit(matrix) for a full refit")
        rank = self._model.rank if rank is None else int(rank)
        work_rank = max(rank, self._model.rank) + int(oversample)
        partial = PartialSVD.from_svd_result(self._model.svd)
        for buffered in self._fold_buffer:
            blocks = [buffered] if block_size is None else \
                iter_column_blocks(buffered, block_size)
            for block in blocks:
                part = PartialSVD.from_block(
                    block, work_rank, engine=engine, seed=seed,
                    keep_vt=True, **engine_kwargs)
                partial = merge(partial, part, rank=work_rank)
        partial = partial.truncate(min(rank, partial.rank))
        model = LSIModel(partial.to_svd_result())
        self._model = model
        self._doc_vectors = model.document_vectors()
        self._n_original = model.n_documents
        # Fold mass is now in the basis; deleted mass is not — a merge
        # never subtracts, so tombstones and their energy survive
        # until a full refit purges them.
        self._fold_energy = 0.0
        self._fold_buffer.clear()
        self._fold_ins = 0
        self._refits += 1
        return model

    # ------------------------------------------------------------------
    # Persistence plumbing
    # ------------------------------------------------------------------

    @classmethod
    def from_state(cls, model: LSIModel, doc_vectors: np.ndarray,
                   *, n_original: int, tombstones=(),
                   unabsorbed_energy: float = 0.0,
                   drift_threshold: "float | None" = 0.1,
                   fold_ins: int = 0, deletes: int = 0,
                   refits: int = 0, copy: bool = True) -> "IndexWriter":
        """Rebuild a writer from persisted bundle state.

        ``copy=False`` adopts ``doc_vectors`` without duplicating it —
        the bundle loader passes freshly-read float64 arrays that
        nothing else aliases, and copying them would double the load's
        peak RSS.  Callers keeping a reference must not pass
        ``copy=False``.

        Bundles do not persist the term-space fold buffer, so the
        restored ``unabsorbed_energy`` lands in the non-fold bucket
        (only a full refit clears it) and a restored writer with
        unabsorbed fold-ins reports
        ``can_refit_incrementally == False`` until its next refit.

        Raises:
            ValidationError: when ``doc_vectors`` is not a
                ``(rank, m)`` block matching the model's rank.
        """
        writer = cls(model, drift_threshold=drift_threshold)
        doc_vectors = np.asarray(doc_vectors, dtype=np.float64)
        if doc_vectors.ndim != 2 \
                or doc_vectors.shape[0] != model.rank:
            raise ValidationError(
                f"doc_vectors must be (rank, m); got "
                f"{doc_vectors.shape} for rank {model.rank}")
        writer._doc_vectors = doc_vectors.copy() if copy \
            else doc_vectors
        writer._n_original = min(int(n_original),
                                 doc_vectors.shape[1])
        writer._tombstones = {int(d) for d in tombstones}
        writer._deleted_energy = float(unabsorbed_energy)
        writer._fold_ins = int(fold_ins)
        writer._deletes = int(deletes)
        writer._refits = int(refits)
        return writer

    def __repr__(self) -> str:
        return (f"IndexWriter(k={self._model.rank}, "
                f"m={self.n_documents}, folded={self.n_folded}, "
                f"tombstoned={self.n_tombstoned}, "
                f"drift={self.drift:.4f})")
