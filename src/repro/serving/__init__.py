"""Serving layer: persistent, batched, incrementally-updated LSI.

The experiment code in :mod:`repro.core` answers "is low-rank projection
sound?"; this package answers "can you run it?".  It wraps a fitted
:class:`~repro.core.lsi.LSIModel` in the operational machinery a
retrieval service needs:

- :mod:`repro.serving.bundle` — versioned, checksummed on-disk index
  bundles with environment fingerprints and backward-compatible loading;
- :mod:`repro.serving.engine` — batched query execution (whole query
  blocks in single GEMMs), exact stable top-``k`` extraction, and an
  LRU result cache;
- :mod:`repro.serving.writer` — incremental fold-in and tombstoning
  with monotone Eckart–Young drift accounting and refit recommendation;
- :mod:`repro.serving.stats` — the per-index counters behind
  ``repro serve-stats``;
- :mod:`repro.serving.index` — :class:`ServedIndex`, the facade tying
  the pieces together behind the shared
  :class:`~repro.ir.retriever.Retriever` protocol.
"""

from repro.serving.bundle import (
    BUNDLE_FORMAT,
    BUNDLE_SCHEMA_VERSION,
    IndexBundle,
    environment_fingerprint,
    read_bundle,
    read_manifest,
    write_bundle,
)
from repro.serving.engine import (
    COMPUTE_DTYPES,
    BatchQueryEngine,
    LRUResultCache,
    QueryBatch,
    ranking_overlap,
    stable_top_k,
)
from repro.serving.index import ServedIndex
from repro.serving.stats import ServingStats
from repro.serving.writer import DriftReport, IndexWriter

__all__ = [
    "BUNDLE_FORMAT",
    "BUNDLE_SCHEMA_VERSION",
    "BatchQueryEngine",
    "COMPUTE_DTYPES",
    "DriftReport",
    "IndexBundle",
    "IndexWriter",
    "LRUResultCache",
    "QueryBatch",
    "ServedIndex",
    "ServingStats",
    "environment_fingerprint",
    "ranking_overlap",
    "read_bundle",
    "read_manifest",
    "stable_top_k",
    "write_bundle",
]
