"""Serving layer: persistent, batched, incrementally-updated LSI.

The experiment code in :mod:`repro.core` answers "is low-rank projection
sound?"; this package answers "can you run it?".  It wraps a fitted
:class:`~repro.core.lsi.LSIModel` in the operational machinery a
retrieval service needs:

- :mod:`repro.serving.config` — :class:`ServingConfig`, the one frozen
  policy object (precision, caching, mmap, pooling, micro-batching)
  shared by every layer below;
- :mod:`repro.serving.bundle` — versioned, checksummed on-disk index
  bundles with environment fingerprints and backward-compatible loading;
- :mod:`repro.serving.engine` — batched query execution (whole query
  blocks in single GEMMs), exact stable top-``k`` extraction, the
  shared :class:`CacheKey`, and an LRU result cache;
- :mod:`repro.serving.writer` — incremental fold-in and tombstoning
  with monotone Eckart–Young drift accounting and refit recommendation;
- :mod:`repro.serving.stats` — the per-index counters behind
  ``repro serve-stats``;
- :mod:`repro.serving.index` — :class:`ServedIndex`, the facade tying
  the pieces together behind the shared
  :class:`~repro.ir.retriever.Retriever` protocol;
- :mod:`repro.serving.sharded` — :class:`ShardedIndex`, N shards of
  one corpus with exact top-``k`` merging and thread/process fan-out;
- :mod:`repro.serving.dispatch` — :class:`MicroBatchDispatcher`, the
  latency-bounded queue coalescing single queries into batches.
"""

from repro.serving.bundle import (
    BUNDLE_FORMAT,
    BUNDLE_SCHEMA_VERSION,
    ChecksumMismatch,
    IndexBundle,
    checksum_failures,
    environment_fingerprint,
    read_bundle,
    read_manifest,
    sha256_file,
    write_bundle,
)
from repro.serving.config import POOL_KINDS, ServingConfig, resolve_config
from repro.serving.dispatch import DispatchStats, MicroBatchDispatcher
from repro.serving.engine import (
    COMPUTE_DTYPES,
    BatchQueryEngine,
    CacheKey,
    LRUResultCache,
    QueryBatch,
    ranking_overlap,
    stable_top_k,
)
from repro.serving.index import ServedIndex
from repro.serving.sharded import (
    ASSIGNMENTS,
    SHARDED_FORMAT,
    SHARDED_SCHEMA_VERSION,
    ShardedIndex,
    ShardManifest,
    is_sharded_bundle,
    read_sharded_manifest,
    shard_document_ids,
)
from repro.serving.stats import ServingStats
from repro.serving.writer import DriftReport, IndexWriter

__all__ = [
    "ASSIGNMENTS",
    "BUNDLE_FORMAT",
    "BUNDLE_SCHEMA_VERSION",
    "BatchQueryEngine",
    "COMPUTE_DTYPES",
    "CacheKey",
    "ChecksumMismatch",
    "DispatchStats",
    "DriftReport",
    "IndexBundle",
    "IndexWriter",
    "LRUResultCache",
    "MicroBatchDispatcher",
    "POOL_KINDS",
    "QueryBatch",
    "SHARDED_FORMAT",
    "SHARDED_SCHEMA_VERSION",
    "ServedIndex",
    "ServingConfig",
    "ServingStats",
    "ShardManifest",
    "ShardedIndex",
    "checksum_failures",
    "environment_fingerprint",
    "is_sharded_bundle",
    "ranking_overlap",
    "read_bundle",
    "read_manifest",
    "read_sharded_manifest",
    "resolve_config",
    "sha256_file",
    "shard_document_ids",
    "stable_top_k",
    "write_bundle",
]
