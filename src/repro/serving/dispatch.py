"""Latency-bounded micro-batching in front of a served index.

The batched kernel (:mod:`repro.serving.engine`) amortises projection
and normalisation across a whole query block, but callers arrive one
query at a time.  :class:`MicroBatchDispatcher` closes that gap: each
:meth:`~MicroBatchDispatcher.submit` enqueues one query and returns a
:class:`concurrent.futures.Future`; a background flusher coalesces the
queue into :class:`~repro.serving.engine.QueryBatch` blocks and ranks
them through the underlying index (a
:class:`~repro.serving.index.ServedIndex` or
:class:`~repro.serving.sharded.ShardedIndex` — anything with
``rank_batch`` and a ``generation``).

Two knobs bound the trade (both live on
:class:`~repro.serving.config.ServingConfig`):

- ``max_batch`` — a flush fires as soon as this many queries wait, so
  a burst never builds an unboundedly large GEMM;
- ``max_wait_ms`` — the longest any query may wait for co-riders
  before the flusher runs with whatever it has (0 = flush on every
  submit; batching then only happens when queries arrive faster than
  the index ranks them).

Queries flush in arrival order, grouped by requested ``top_k`` (a
block shares one cutoff).  Within a flush, identical submissions —
same query bytes, same cutoff, same index generation, detected with
the shared :class:`~repro.serving.engine.CacheKey` — collapse into one
computed row fanned out to every waiting future.  Mutations to the
underlying index bump its ``generation``, which both ends the
collapse window for stale duplicates and (inside the index) invalidates
its LRU entries, so a dispatcher never serves a pre-mutation ranking
for a post-mutation submission flushed after the bump.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro.errors import DispatcherClosedError, ValidationError
from repro.serving.config import ServingConfig, resolve_config
from repro.serving.engine import CacheKey, QueryBatch
from repro.utils.validation import check_top_k, check_vector

__all__ = ["DispatchStats", "MicroBatchDispatcher"]


@dataclass(frozen=True)
class DispatchStats:
    """Counters describing a dispatcher's batching behaviour.

    Attributes:
        submitted: queries accepted by ``submit``.
        completed: queries whose future has been resolved (including
            failures).
        batches: flushes that reached the index.
        coalesced: queries answered by sharing another identical
            query's computed row instead of their own.
        size_flushes: flushes triggered by the queue reaching
            ``max_batch``.
        timeout_flushes: flushes triggered by the ``max_wait_ms``
            deadline.
        close_flushes: flushes triggered by :meth:`close` draining
            the queue.
    """

    submitted: int = 0
    completed: int = 0
    batches: int = 0
    coalesced: int = 0
    size_flushes: int = 0
    timeout_flushes: int = 0
    close_flushes: int = 0


class _Pending:
    """One queued query awaiting a flush."""

    __slots__ = ("column", "top_k", "future", "enqueued")

    def __init__(self, column: np.ndarray, top_k: "int | None",
                 future: "Future[np.ndarray]", enqueued: float):
        self.column = column
        self.top_k = top_k
        self.future = future
        self.enqueued = enqueued


class MicroBatchDispatcher:
    """Coalesce single-query submissions into batched index calls.

    Args:
        index: the index to rank against — any object with
            ``rank_batch(queries, top_k=...)``, ``generation``,
            ``n_terms``, and ``n_documents`` (both
            :class:`~repro.serving.index.ServedIndex` and
            :class:`~repro.serving.sharded.ShardedIndex` qualify).
        config: the :class:`~repro.serving.config.ServingConfig`
            supplying ``max_batch`` and ``max_wait_ms`` (``None`` =
            the index's own config when it has one, else defaults).
        **legacy: deprecated kwarg form of ``config`` fields.
    """

    def __init__(self, index, *,
                 config: "ServingConfig | None" = None, **legacy):
        if config is None and not legacy:
            config = getattr(index, "config", None)
        config = resolve_config(config, legacy,
                                where="MicroBatchDispatcher")
        self._index = index
        self._config = config
        self._max_batch = config.max_batch
        self._max_wait = config.max_wait_ms / 1000.0
        self._cond = threading.Condition()
        self._queue: "list[_Pending]" = []
        self._closed = False
        self._submitted = 0
        self._completed = 0
        self._batches = 0
        self._coalesced = 0
        self._size_flushes = 0
        self._timeout_flushes = 0
        self._close_flushes = 0
        self._worker = threading.Thread(
            target=self._run, name="repro-dispatch", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    @property
    def config(self) -> ServingConfig:
        """The serving policy the dispatcher batches under."""
        return self._config

    def submit(self, query_vector, *, top_k=None
               ) -> "Future[np.ndarray]":
        """Enqueue one query; the future resolves to its ranked ids.

        Validation failures (wrong term space, bad cutoff) raise here
        in the caller's thread; failures during the batched
        computation propagate through the future instead.

        Args:
            query_vector: a 1-D term-space query.
            top_k: cutoff policy, normalised exactly as the index
                normalises it (``None`` = all).

        Raises:
            ValidationError: if the query is not a finite 1-D vector
                in the index's term space, or ``top_k`` is not a
                usable cutoff.
            DispatcherClosedError: if :meth:`close` already ran.
        """
        query = check_vector(query_vector, "query_vector")
        if query.shape[0] != self._index.n_terms:
            raise ValidationError(
                f"query has {query.shape[0]} terms; the index "
                f"expects {self._index.n_terms}")
        if top_k is not None:
            top_k = check_top_k(top_k, self._index.n_documents)
        future: "Future[np.ndarray]" = Future()
        with self._cond:
            if self._closed:
                raise DispatcherClosedError(
                    "dispatcher is closed; no further queries "
                    "accepted")
            self._queue.append(_Pending(query, top_k, future,
                                        time.monotonic()))
            self._submitted += 1
            self._cond.notify_all()
        return future

    def stats(self) -> DispatchStats:
        """A consistent snapshot of the batching counters."""
        with self._cond:
            return DispatchStats(
                submitted=self._submitted,
                completed=self._completed,
                batches=self._batches,
                coalesced=self._coalesced,
                size_flushes=self._size_flushes,
                timeout_flushes=self._timeout_flushes,
                close_flushes=self._close_flushes)

    def close(self) -> None:
        """Flush everything still queued, then stop (idempotent).

        Queries submitted before ``close`` all resolve; submissions
        after it raise :class:`~repro.errors.DispatcherClosedError`.
        """
        with self._cond:
            if self._closed:
                already_stopped = not self._worker.is_alive()
            else:
                self._closed = True
                already_stopped = False
            self._cond.notify_all()
        if not already_stopped:
            self._worker.join()

    def __enter__(self) -> "MicroBatchDispatcher":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Flusher
    # ------------------------------------------------------------------

    def _run(self) -> None:
        """Background loop: wait for work, pick a flush, run it."""
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                # Wait out the batching window: until the head's
                # deadline, an early size trigger, or close.
                while True:
                    if self._closed \
                            or len(self._queue) >= self._max_batch:
                        break
                    now = time.monotonic()
                    deadline = self._queue[0].enqueued \
                        + self._max_wait
                    if now >= deadline:
                        break
                    self._cond.wait(timeout=deadline - now)
                group, reason = self._take_group_locked()
            self._flush(group, reason)

    def _take_group_locked(self) -> "tuple[list[_Pending], str]":
        """Pop the next flushable group (same ``top_k`` as the head).

        Caller holds the lock.  Queries with a different cutoff stay
        queued in order and keep their own deadlines.
        """
        head_top_k = self._queue[0].top_k
        group = []
        rest = []
        for pending in self._queue:
            if pending.top_k == head_top_k \
                    and len(group) < self._max_batch:
                group.append(pending)
            else:
                rest.append(pending)
        self._queue = rest
        if len(group) >= self._max_batch:
            reason = "size"
        elif self._closed:
            reason = "close"
        else:
            reason = "timeout"
        return group, reason

    def _flush(self, group: "list[_Pending]", reason: str) -> None:
        """Rank one coalesced group and resolve its futures.

        Identical (generation, query bytes, cutoff) submissions —
        keyed with the shared :class:`CacheKey` — compute once; every
        exception lands on the affected futures, never the flusher
        thread.
        """
        membership: "list[int]" = []
        try:
            batch = QueryBatch(np.stack(
                [p.column for p in group], axis=1))
            generation = int(self._index.generation)
            top_k = group[0].top_k
            key_top_k = -1 if top_k is None else top_k
            unique: "dict[CacheKey, int]" = {}
            firsts = []
            for i in range(len(group)):
                key = CacheKey.for_query(generation, batch, i,
                                         key_top_k,
                                         kind="dispatch")
                if key not in unique:
                    unique[key] = len(unique)
                    firsts.append(i)
                membership.append(unique[key])
            sub = QueryBatch(batch.matrix[:, firsts])
            rankings = self._index.rank_batch(sub, top_k=top_k)
            for pending, m in zip(group, membership):
                pending.future.set_result(rankings[m].copy())
        except BaseException as error:  # reprolint: disable=R005 — futures carry it
            for pending in group:
                if not pending.future.done():
                    pending.future.set_exception(error)
        with self._cond:
            self._batches += 1
            self._completed += len(group)
            self._coalesced += max(0, len(group) - len(set(membership)))
            if reason == "size":
                self._size_flushes += 1
            elif reason == "close":
                self._close_flushes += 1
            else:
                self._timeout_flushes += 1
