"""Per-index service counters surfaced by ``repro serve-stats``.

A production index is only operable if you can see what it is doing:
how much traffic it served, how often the result cache saved a GEMM,
and how far the folded-in document stream has drifted the LSI subspace
from its fitted state.  :class:`ServingStats` is the immutable snapshot
of those counters that :meth:`repro.serving.index.ServedIndex.stats`
returns, the bundle manifest persists, and the CLI renders.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["ServingStats"]


@dataclass(frozen=True)
class ServingStats:
    """A point-in-time snapshot of one served index's counters.

    Attributes:
        queries_served: total queries scored (batch members count
            individually).
        batches_served: number of batched-query calls.
        cache_hits: rankings answered from the LRU result cache.
        cache_misses: rankings that had to be computed.
        cache_evictions: cache entries dropped to respect capacity.
        fold_ins_since_refit: documents added by folding since the last
            (re)fit.
        deletes_since_refit: documents tombstoned since the last (re)fit.
        refits: times the index was refit from a full matrix.
        drift: current residual-energy drift in ``[0, 1)`` (see
            :class:`repro.serving.writer.IndexWriter`).
        refit_recommended: whether ``drift`` has crossed the index's
            configured threshold.
        dtype: compute precision the index scores in (``"float64"`` or
            ``"float32"``) — operationally load-bearing, because a
            float32 index trades last-ULP score agreement for speed.
    """

    queries_served: int = 0
    batches_served: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    fold_ins_since_refit: int = 0
    deletes_since_refit: int = 0
    refits: int = 0
    drift: float = 0.0
    refit_recommended: bool = False
    dtype: str = "float64"

    @property
    def cache_hit_rate(self) -> float:
        """Hits over lookups, 0.0 when the cache was never consulted."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        """JSON-ready mapping (persisted in the bundle manifest)."""
        payload = asdict(self)
        payload["cache_hit_rate"] = self.cache_hit_rate
        return payload

    @classmethod
    def from_dict(cls, payload) -> "ServingStats":
        """Rebuild a snapshot from :meth:`as_dict` output.

        Unknown keys are ignored so newer manifests load under older
        readers; missing keys fall back to the zero defaults so legacy
        (schema v1) bundles load too.
        """
        fields = {name: payload[name]
                  for name in cls.__dataclass_fields__
                  if name in payload}
        return cls(**fields)
