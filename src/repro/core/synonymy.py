"""The §4 synonymy analysis on the term–term autocorrelation matrix.

The paper's argument: if two terms have identical co-occurrences (each
with small occurrence probability), the corresponding rows/columns of
``A·Aᵀ`` are nearly identical, so ``A·Aᵀ`` has a very small eigenvalue
whose eigenvector is ±1 on the pair — the *difference* of the two terms.
Rank-``k`` LSI projects this direction out, collapsing the synonyms onto
their common meaning.

This module measures each step of that argument on concrete corpora:

- :func:`cooccurrence_similarity` — how close the pair's co-occurrence
  profiles are;
- :func:`difference_direction_analysis` — where the normalised
  difference vector sits in the spectrum of ``A·Aᵀ`` (its Rayleigh
  quotient and its alignment with the bottom eigenvectors);
- :func:`synonym_collapse` — the LSI-space distance between the two
  terms' representations before and after projection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.linalg.operator import as_operator
from repro.linalg.dense import cosine_similarity

__all__ = [
    "DifferenceDirectionReport",
    "SynonymCollapseReport",
    "bottom_eigenvector_pair_pattern",
    "cooccurrence_similarity",
    "difference_direction_analysis",
    "synonym_collapse",
]


def _term_profiles(matrix, term_a: int, term_b: int):
    op = as_operator(matrix)
    n = op.shape[0]
    for term in (term_a, term_b):
        if not 0 <= int(term) < n:
            raise ValidationError(
                f"term {term} out of range for {n} terms")
    if term_a == term_b:
        raise ValidationError("term_a and term_b must differ")
    dense = op.to_dense()  # reprolint: disable=R004
    return dense, dense[int(term_a)], dense[int(term_b)]


def cooccurrence_similarity(matrix, term_a: int, term_b: int) -> float:
    """Cosine between two terms' document-occurrence profiles.

    1.0 means the terms occur in exactly proportional patterns — the
    paper's "identical co-occurrences" idealisation.
    """
    _, profile_a, profile_b = _term_profiles(matrix, term_a, term_b)
    return cosine_similarity(profile_a, profile_b)


@dataclass(frozen=True)
class DifferenceDirectionReport:
    """Where the synonym-difference direction sits in the spectrum.

    Attributes:
        rayleigh_quotient: ``dᵀ(A·Aᵀ)d`` for the unit difference vector
            ``d ∝ e_a − e_b`` — small when the terms are synonymous.
        top_eigenvalue: ``λ₁`` of ``A·Aᵀ`` for scale.
        relative_energy: ``rayleigh_quotient / top_eigenvalue``.
        alignment_with_lsi_space: norm of the difference direction's
            projection onto the rank-``k`` LSI term subspace — near 0
            when LSI projects the direction out.
        rank: the ``k`` used for the alignment column.
    """

    rayleigh_quotient: float
    top_eigenvalue: float
    relative_energy: float
    alignment_with_lsi_space: float
    rank: int


def difference_direction_analysis(matrix, term_a: int, term_b: int,
                                  rank: int, *, engine: str = "exact",
                                  seed=None) -> DifferenceDirectionReport:
    """Analyse the ``e_a − e_b`` direction against ``A·Aᵀ`` and LSI.

    Args:
        matrix: the ``n × m`` term–document matrix.
        term_a / term_b: the candidate synonym pair (row indices).
        rank: LSI rank ``k`` for the projection-out measurement.
        engine: SVD engine for the LSI basis.
        seed: RNG seed for iterative engines.
    """
    dense, profile_a, profile_b = _term_profiles(matrix, term_a, term_b)
    n = dense.shape[0]
    difference = np.zeros(n)
    difference[int(term_a)] = 1.0
    difference[int(term_b)] = -1.0
    difference /= np.sqrt(2.0)

    # dᵀ A Aᵀ d = ‖Aᵀd‖² — never form A·Aᵀ.
    rayleigh = float(np.sum((dense.T @ difference) ** 2))
    top_sigma = float(np.linalg.svd(dense, compute_uv=False)[0])
    top_eigenvalue = top_sigma ** 2

    from repro.linalg.svd import truncated_svd

    lsi = truncated_svd(dense, rank, engine=engine, seed=seed)
    alignment = float(np.linalg.norm(lsi.u.T @ difference))
    return DifferenceDirectionReport(
        rayleigh_quotient=rayleigh,
        top_eigenvalue=top_eigenvalue,
        relative_energy=rayleigh / top_eigenvalue if top_eigenvalue > 0
        else 0.0,
        alignment_with_lsi_space=alignment,
        rank=int(rank))


@dataclass(frozen=True)
class SynonymCollapseReport:
    """How far apart two terms' representations are, before/after LSI.

    Attributes:
        raw_cosine: cosine of the terms' co-occurrence profiles in the
            full space.
        lsi_cosine: cosine of the terms' LSI representations (rows of
            ``Uₖ·Dₖ``) — near 1 when LSI has merged the synonyms.
        rank: the LSI rank used.
    """

    raw_cosine: float
    lsi_cosine: float
    rank: int

    @property
    def collapsed(self) -> bool:
        """Whether LSI brought the pair strictly closer together."""
        return self.lsi_cosine >= self.raw_cosine - 1e-12


def synonym_collapse(matrix, term_a: int, term_b: int, rank: int, *,
                     engine: str = "exact",
                     seed=None) -> SynonymCollapseReport:
    """Measure the collapse of a synonym pair in LSI term space.

    Terms are represented by the rows of ``Uₖ·Dₖ`` (the term-side dual
    of the document representation); synonyms should become nearly
    parallel there.
    """
    dense, profile_a, profile_b = _term_profiles(matrix, term_a, term_b)
    raw = cosine_similarity(profile_a, profile_b)

    from repro.linalg.svd import truncated_svd

    lsi = truncated_svd(dense, rank, engine=engine, seed=seed)
    term_vectors = lsi.u * lsi.singular_values  # (n, k) rows = terms
    lsi_cos = cosine_similarity(term_vectors[int(term_a)],
                                term_vectors[int(term_b)])
    return SynonymCollapseReport(raw_cosine=raw, lsi_cosine=lsi_cos,
                                 rank=int(rank))


def bottom_eigenvector_pair_pattern(matrix, term_a: int,
                                    term_b: int) -> float:
    """Overlap of ``A·Aᵀ``'s restricted bottom eigenvector with ±1 pattern.

    Restricts ``A·Aᵀ`` to the 2×2 block on the pair (the paper's argument
    is local to the nearly identical rows), takes the eigenvector of the
    smaller eigenvalue, and returns ``|⟨v, (1,−1)/√2⟩|`` — approaching 1
    when the pair is synonymous.
    """
    dense, profile_a, profile_b = _term_profiles(matrix, term_a, term_b)
    block = np.array([
        [profile_a @ profile_a, profile_a @ profile_b],
        [profile_b @ profile_a, profile_b @ profile_b]])
    eigenvalues, eigenvectors = np.linalg.eigh(block)
    bottom = eigenvectors[:, 0]
    pattern = np.array([1.0, -1.0]) / np.sqrt(2.0)
    return float(abs(bottom @ pattern))
