"""The paper's two-step method (§5): random projection, then LSI.

1. Project the ``n × m`` term–document matrix ``A`` to ``l`` dimensions:
   ``B = √(n/l)·Rᵀ·A`` for a random column-orthonormal ``R``.
2. Run rank-``2k`` LSI on ``B`` (twice the target rank because the
   projection smears a little energy across singular directions).

Theorem 5 guarantees the combination loses almost nothing:

    ``‖A − B₂ₖ‖_F² ≤ ‖A − Aₖ‖_F² + 2ε·‖A‖_F²``

where ``B₂ₖ = A·Σᵢ₌₁²ᵏ bᵢbᵢᵀ`` projects the documents onto the span of
``B``'s top right singular vectors.  The running-time win is
``O(m·l·(l+c))`` versus ``O(m·n·c)`` for direct LSI
(:func:`lsi_cost_model`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotFittedError, ValidationError
from repro.core.lsi import LSIModel
from repro.core.random_projection import make_projector
from repro.linalg.operator import as_operator
from repro.utils.validation import (
    check_positive_int,
    check_rank,
    check_top_k,
    check_vector,
)

__all__ = [
    "LSICost",
    "RecoveryReport",
    "TwoStepLSI",
    "lsi_cost_model",
    "theorem5_bound",
]


def theorem5_bound(direct_residual_sq: float, epsilon: float,
                   frobenius_norm_sq: float) -> float:
    """The right-hand side of Theorem 5:
    ``‖A − Aₖ‖_F² + 2ε·‖A‖_F²``."""
    if direct_residual_sq < 0 or frobenius_norm_sq < 0:
        raise ValidationError("squared norms must be non-negative")
    if epsilon < 0:
        raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
    return direct_residual_sq + 2.0 * epsilon * frobenius_norm_sq


@dataclass(frozen=True)
class LSICost:
    """The §5 asymptotic operation counts, instantiated.

    Attributes:
        direct: ``m·n·c`` — direct LSI on the sparse matrix.
        projection: ``m·c·l`` — computing the random projection.
        lsi_after_projection: ``m·l²`` — LSI on the projected matrix.
        two_step: ``m·l·(l + c)`` — the full two-step pipeline.
    """

    direct: float
    projection: float
    lsi_after_projection: float
    two_step: float

    @property
    def speedup(self) -> float:
        """Model-predicted speedup of the two-step method."""
        if self.two_step == 0:
            return float("inf")
        return self.direct / self.two_step


def lsi_cost_model(n_terms: int, n_documents: int,
                   nonzeros_per_document: float,
                   projection_dim: int) -> LSICost:
    """Instantiate the paper's cost comparison for concrete sizes.

    Args:
        n_terms: ``n``.
        n_documents: ``m``.
        nonzeros_per_document: ``c`` — average terms per document.
        projection_dim: ``l``.
    """
    n = check_positive_int(n_terms, "n_terms")
    m = check_positive_int(n_documents, "n_documents")
    l = check_positive_int(projection_dim, "projection_dim")
    c = float(nonzeros_per_document)
    if c <= 0:
        raise ValidationError(
            f"nonzeros_per_document must be positive, got {c}")
    return LSICost(direct=float(m) * n * c,
                   projection=float(m) * c * l,
                   lsi_after_projection=float(m) * l * l,
                   two_step=float(m) * l * (l + c))


@dataclass(frozen=True)
class RecoveryReport:
    """Theorem 5 measured on a concrete matrix.

    Attributes:
        two_step_residual_sq: ``‖A − B₂ₖ‖_F²`` (measured).
        direct_residual_sq: ``‖A − Aₖ‖_F²`` (Eckart–Young optimum).
        matrix_energy: ``‖A‖_F²``.
        epsilon: the ε the caller targeted (for the bound column).
        bound: ``direct + 2ε·energy`` — Theorem 5's guarantee.
    """

    two_step_residual_sq: float
    direct_residual_sq: float
    matrix_energy: float
    epsilon: float
    bound: float

    @property
    def holds(self) -> bool:
        """Whether the measured residual respects the bound."""
        return self.two_step_residual_sq <= self.bound + 1e-9

    @property
    def recovery_ratio(self) -> float:
        """Captured-energy ratio vs direct LSI (1.0 = no loss).

        ``(‖A‖² − ‖A − B₂ₖ‖²) / (‖A‖² − ‖A − Aₖ‖²)``.
        """
        direct_captured = self.matrix_energy - self.direct_residual_sq
        if direct_captured <= 0:
            return 1.0
        return (self.matrix_energy - self.two_step_residual_sq) \
            / direct_captured


class TwoStepLSI:
    """Random projection followed by rank-``r·k`` LSI on the projection.

    Shares the retrieval interface of :class:`~repro.core.lsi.LSIModel`:
    queries are projected by the same random map and folded into the
    projected LSI space.

    Attributes:
        projector: the fitted random projector (``n → l``).
        inner: the LSI model fitted on the projected matrix ``B``.
        target_rank: the original LSI target ``k``.
    """

    def __init__(self, projector, inner: LSIModel, target_rank: int):
        self.projector = projector
        self.inner = inner
        self.target_rank = target_rank
        self._source = None  # set by fit() for recovery reporting

    @classmethod
    def fit(cls, matrix, rank, projection_dim, *,
            projector_family: str = "orthonormal",
            rank_multiplier: int = 2, engine: str = "exact",
            seed=None) -> "TwoStepLSI":
        """Run the two-step pipeline on a term–document matrix.

        Args:
            matrix: ``n × m`` dense or CSR term–document matrix.
            rank: the LSI target ``k``.
            projection_dim: the intermediate dimension ``l`` (chose via
                :func:`~repro.core.random_projection.
                johnson_lindenstrauss_dimension`).
            projector_family: ``"orthonormal"`` (the paper's),
                ``"gaussian"``, or ``"sign"``.
            rank_multiplier: LSI rank on ``B`` is
                ``rank_multiplier · rank`` (the paper argues 2).
            engine: SVD engine for the *projected* matrix — it is small
                (``l × m`` dense), so ``"exact"`` is the right default.
            seed: RNG seed (drives the projector and any iterative SVD).
        """
        op = as_operator(matrix)
        n, m = op.shape
        rank = check_rank(rank, min(n, m), "rank")
        projection_dim = check_positive_int(projection_dim,
                                            "projection_dim")
        rank_multiplier = check_positive_int(rank_multiplier,
                                             "rank_multiplier")
        inner_rank = min(rank_multiplier * rank, projection_dim, m)
        projector = make_projector(projector_family, n, projection_dim,
                                   seed=seed)
        projected = projector.project(op)          # (l, m) dense
        inner = LSIModel.fit(projected, inner_rank, engine=engine,
                             seed=seed)
        model = cls(projector, inner, rank)
        model._source = op
        return model

    # ------------------------------------------------------------------
    # Retrieval interface
    # ------------------------------------------------------------------

    @property
    def projection_dim(self) -> int:
        """The intermediate dimension ``l``."""
        return self.projector.output_dim

    @property
    def inner_rank(self) -> int:
        """The LSI rank used on the projected matrix (≈ ``2k``)."""
        return self.inner.rank

    @property
    def n_documents(self) -> int:
        """Corpus size ``m``."""
        return self.inner.n_documents

    def document_vectors(self) -> np.ndarray:
        """Documents in the final (projected-LSI) space, ``(2k, m)``."""
        return self.inner.document_vectors()

    def project_query(self, query_vector) -> np.ndarray:
        """Fold a raw term-space query through both steps."""
        query = check_vector(query_vector, "query_vector")
        return self.inner.project_query(self.projector.project(query))

    def score(self, query_vector) -> np.ndarray:
        """Cosine scores of all documents for a term-space query."""
        projected = self.project_query(query_vector)
        return self.inner.score_in_lsi_space(projected)

    def rank_documents(self, query_vector, *, top_k=None) -> np.ndarray:
        """Document ids by descending score (``None`` = all)."""
        scores = self.score(query_vector)
        top_k = check_top_k(top_k, self.n_documents)
        order = np.argsort(-scores, kind="stable")
        return order[:top_k]

    # ------------------------------------------------------------------
    # Theorem 5 accounting
    # ------------------------------------------------------------------

    def document_subspace(self) -> np.ndarray:
        """``(m, 2k)`` orthonormal right singular vectors ``bᵢ`` of ``B``."""
        return self.inner.svd.vt.T.copy()

    def reconstruct(self) -> np.ndarray:
        """``B₂ₖ = A·Σ bᵢbᵢᵀ`` as a dense ``n × m`` array."""
        if self._source is None:
            raise NotFittedError(
                "TwoStepLSI must be built through fit() to reconstruct")
        basis = self.document_subspace()            # (m, 2k)
        partial = self._source.matmat(basis)        # (n, 2k)
        return partial @ basis.T

    def recovery_report(self, *, epsilon: float) -> RecoveryReport:
        """Measure Theorem 5 on the fitted matrix.

        Args:
            epsilon: the ε the projection dimension was chosen for; only
                used for the bound column.
        """
        if self._source is None:
            raise NotFittedError(
                "TwoStepLSI must be built through fit() for recovery "
                "reporting")
        dense = self._source.to_dense()  # reprolint: disable=R004
        energy = float(np.sum(dense * dense))
        two_step_residual_sq = float(
            np.linalg.norm(dense - self.reconstruct()) ** 2)
        from repro.linalg.svd import best_rank_k_error

        direct_residual_sq = best_rank_k_error(dense, self.target_rank) ** 2
        return RecoveryReport(
            two_step_residual_sq=two_step_residual_sq,
            direct_residual_sq=direct_residual_sq,
            matrix_energy=energy,
            epsilon=float(epsilon),
            bound=theorem5_bound(direct_residual_sq, epsilon, energy))

    def __repr__(self) -> str:
        return (f"TwoStepLSI(k={self.target_rank}, l={self.projection_dim}, "
                f"inner_rank={self.inner_rank}, "
                f"family={self.projector.family!r})")
