"""Polysemy analysis: what LSI does (and cannot do) with ambiguous terms.

The mirror of the §4 synonymy story.  A polysemous term's LSI
representation is a *superposition* of its senses' topic directions —
unlike a synonym pair, nothing is projected out, so a bare one-word
query stays ambiguous.  What LSI *does* buy is context sensitivity: a
query combining the polyseme with context terms lands near the intended
topic's direction, because the context dominates the folded query.

:func:`sense_superposition` measures the split of the merged term's LSI
vector across topic directions; :func:`context_disambiguation` measures
retrieval precision for bare vs contextualised queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.core.lsi import LSIModel
from repro.linalg.dense import cosine_similarity
from repro.utils.validation import check_positive_int

__all__ = [
    "ContextDisambiguation",
    "SenseSuperposition",
    "context_disambiguation",
    "sense_superposition",
    "topic_directions",
]


def topic_directions(lsi: LSIModel, labels) -> np.ndarray:
    """Unit centroid direction of each topic's documents in LSI space.

    Returns ``(k_topics, rank)``; row ``t`` is the normalised mean LSI
    vector of topic ``t``'s documents.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (lsi.n_documents,):
        raise ValidationError(
            f"labels must have length {lsi.n_documents}")
    vectors = lsi.document_vectors()
    topics = np.unique(labels)
    directions = np.zeros((topics.size, lsi.rank))
    for row, topic in enumerate(topics):
        centroid = vectors[:, labels == topic].mean(axis=1)
        norm = np.linalg.norm(centroid)
        directions[row] = centroid / norm if norm > 0 else centroid
    return directions


@dataclass(frozen=True)
class SenseSuperposition:
    """How a polysemous term's LSI vector splits across topics.

    Attributes:
        alignments: |cosine| of the term's LSI vector with each topic
            direction.
        primary_senses: the two topic indices the polyseme was built
            from.
        sense_mass_fraction: fraction of the total squared alignment
            carried by the two true senses (≈ 1 when the superposition
            is clean).
    """

    alignments: np.ndarray
    primary_senses: tuple[int, int]
    sense_mass_fraction: float

    @property
    def is_superposed(self) -> bool:
        """Both true senses carry non-trivial alignment."""
        a, b = self.primary_senses
        return bool(self.alignments[a] > 0.1 and self.alignments[b] > 0.1)


def sense_superposition(lsi: LSIModel, labels, polyseme_term: int,
                        senses: tuple[int, int]) -> SenseSuperposition:
    """Measure the topic-direction split of a polysemous term.

    Args:
        lsi: a fitted LSI model on the merged-term matrix.
        labels: document topic labels.
        polyseme_term: the merged term's row index.
        senses: the two topic indices whose terms were merged.
    """
    polyseme_term = int(polyseme_term)
    if not 0 <= polyseme_term < lsi.n_terms:
        raise ValidationError(
            f"term {polyseme_term} out of range for {lsi.n_terms} terms")
    directions = topic_directions(lsi, labels)
    term_vector = (lsi.term_basis * lsi.singular_values)[polyseme_term]
    alignments = np.abs(np.array([
        cosine_similarity(term_vector, direction)
        for direction in directions]))
    total = float(np.sum(alignments ** 2))
    a, b = int(senses[0]), int(senses[1])
    sense_mass = float(alignments[a] ** 2 + alignments[b] ** 2)
    return SenseSuperposition(
        alignments=alignments, primary_senses=(a, b),
        sense_mass_fraction=sense_mass / total if total > 0 else 0.0)


@dataclass(frozen=True)
class ContextDisambiguation:
    """Retrieval precision for bare vs contextualised polyseme queries.

    Attributes:
        bare_precision: P@cutoff for the one-word query, judged against
            the *intended* sense only.
        contextual_precision: P@cutoff when context terms of the
            intended sense accompany the polyseme.
        intended_sense: the topic treated as relevant.
    """

    bare_precision: float
    contextual_precision: float
    intended_sense: int

    @property
    def context_helps(self) -> bool:
        """Whether context raised precision (LSI's disambiguation win)."""
        return self.contextual_precision >= self.bare_precision


def context_disambiguation(lsi: LSIModel, labels, polyseme_term: int,
                           intended_sense: int, context_terms, *,
                           cutoff: int = 10) -> ContextDisambiguation:
    """Compare bare vs contextualised retrieval of a polysemous query.

    Args:
        lsi: fitted LSI model.
        labels: document topic labels.
        polyseme_term: the ambiguous term id.
        intended_sense: the topic the user means.
        context_terms: term ids accompanying the polyseme in the
            contextual query (typically other primary terms of the
            intended sense).
        cutoff: precision cutoff.
    """
    cutoff = check_positive_int(cutoff, "cutoff")
    labels = np.asarray(labels, dtype=np.int64)
    intended_sense = int(intended_sense)

    bare = np.zeros(lsi.n_terms)
    bare[int(polyseme_term)] = 1.0
    contextual = bare.copy()
    for term in context_terms:
        contextual[int(term)] += 1.0

    def precision(query) -> float:
        top = lsi.rank_documents(query, top_k=cutoff)
        hits = sum(1 for d in top if labels[d] == intended_sense)
        return hits / cutoff

    return ContextDisambiguation(
        bare_precision=precision(bare),
        contextual_precision=precision(contextual),
        intended_sense=intended_sense)
