"""Folding-in: incremental LSI updates without refitting the SVD.

Production LSI systems do not recompute the SVD per arriving document;
they *fold in*: project the new document onto the existing ``Uₖ`` basis
(exactly like a query) and append it to the document store.  The cost of
that shortcut is drift — folded documents do not influence the basis, so
as the folded fraction grows the index degrades relative to a refit.

:class:`FoldingIndex` implements the practice; :func:`folding_drift`
quantifies the degradation so users can schedule refits, connecting back
to Lemma 1: a batch of in-model documents is a small perturbation of the
corpus matrix, so the refit basis stays close to the old one and folding
stays accurate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.core.lsi import LSIModel
from repro.linalg.dense import cosine_similarity_matrix
from repro.linalg.operator import as_operator
from repro.linalg.perturbation import sin_theta_distance
from repro.utils.validation import check_top_k

__all__ = ["FoldingDrift", "FoldingIndex", "folding_drift"]


class FoldingIndex:
    """An LSI index that grows by folding-in instead of refitting.

    Wraps a fitted :class:`~repro.core.lsi.LSIModel` and maintains an
    extended document store (original + folded columns) sharing the
    model's ``Uₖ`` basis.
    """

    def __init__(self, model: LSIModel):
        if not isinstance(model, LSIModel):
            raise ValidationError("FoldingIndex wraps an LSIModel")
        self.model = model
        self._documents = model.document_vectors()   # (k, m0)
        self._n_original = model.n_documents

    @property
    def n_documents(self) -> int:
        """Total stored documents (original + folded)."""
        return int(self._documents.shape[1])

    @property
    def n_folded(self) -> int:
        """Documents added by folding."""
        return self.n_documents - self._n_original

    def fold_in(self, columns) -> np.ndarray:
        """Fold new term-space documents into the index.

        Args:
            columns: dense ``(n_terms, p)`` array or CSR matrix of new
                document columns.

        Returns:
            The ``(k, p)`` LSI vectors assigned to the new documents
            (their ids are ``n_documents - p .. n_documents - 1``).
        """
        projected = self.model.project_documents(columns)
        self._documents = np.concatenate([self._documents, projected],
                                         axis=1)
        return projected

    def document_vectors(self) -> np.ndarray:
        """All stored LSI document vectors, ``(k, n_documents)``."""
        return self._documents.copy()

    def score(self, query_vector) -> np.ndarray:
        """Cosine of every stored document against a term-space query."""
        projected = self.model.project_query(query_vector)
        sims = cosine_similarity_matrix(projected[:, None],
                                        self._documents)
        return sims[0]

    def rank_documents(self, query_vector, *, top_k=None) -> np.ndarray:
        """Stored document ids by descending score (``None`` = all)."""
        scores = self.score(query_vector)
        top_k = check_top_k(top_k, self.n_documents)
        order = np.argsort(-scores, kind="stable")
        return order[:top_k]

    def __repr__(self) -> str:
        return (f"FoldingIndex(k={self.model.rank}, "
                f"original={self._n_original}, folded={self.n_folded})")


@dataclass(frozen=True)
class FoldingDrift:
    """Folding vs refitting, measured.

    Attributes:
        subspace_drift: sin-Θ distance between the old ``Uₖ`` basis and
            the basis refit on the full (original + new) matrix.
        residual_excess: ``‖A_full − P_old·A_full‖_F /
            ‖A_full − P_new·A_full‖_F − 1`` — the extra reconstruction
            error of keeping the stale basis (0 = refit-equivalent).
        folded_fraction: new documents as a fraction of the total.
    """

    subspace_drift: float
    residual_excess: float
    folded_fraction: float


def folding_drift(original_matrix, new_columns, rank: int, *,
                  engine: str = "exact", seed=None) -> FoldingDrift:
    """Measure the cost of folding ``new_columns`` instead of refitting.

    Args:
        original_matrix: the matrix the stale basis was fitted on.
        new_columns: the arriving documents (same term space).
        rank: LSI rank.
        engine: SVD engine used for both fits.
        seed: RNG seed for iterative engines.
    """
    old_op = as_operator(original_matrix)
    new_op = as_operator(new_columns)
    if old_op.shape[0] != new_op.shape[0]:
        raise ValidationError(
            f"term spaces differ: {old_op.shape[0]} vs {new_op.shape[0]}")

    old = LSIModel.fit(original_matrix, rank, engine=engine, seed=seed)
    full_dense = np.concatenate(
        [old_op.to_dense(), new_op.to_dense()],  # reprolint: disable=R004
        axis=1)
    refit = LSIModel.fit(full_dense, rank, engine=engine, seed=seed)

    drift = sin_theta_distance(old.term_basis, refit.term_basis)

    def residual(basis: np.ndarray) -> float:
        projected = basis @ (basis.T @ full_dense)
        return float(np.linalg.norm(full_dense - projected))

    stale = residual(old.term_basis)
    fresh = residual(refit.term_basis)
    excess = stale / fresh - 1.0 if fresh > 0 else 0.0
    total = full_dense.shape[1]
    return FoldingDrift(
        subspace_drift=drift,
        residual_excess=float(max(excess, 0.0)),
        folded_fraction=new_op.shape[1] / total)
