"""Random projection (§5): the Johnson–Lindenstrauss machinery.

Lemma 2 (Johnson–Lindenstrauss, as the paper states it): projecting a
unit vector of ``Rⁿ`` onto a random ``l``-dimensional subspace yields a
squared length concentrated around ``l/n``; after scaling by
``√(n/l)``, all pairwise distances among ``m`` points are preserved to
``1 ± ε`` with high probability once ``l = Ω(log m / ε²)``.

Three projector families share one interface (``project`` on vectors,
columns, or CSR matrices — always with the norm-preserving scaling baked
in):

- :class:`OrthonormalProjector` — an exactly column-orthonormal ``R``
  scaled by ``√(n/l)``: the paper's construction, verbatim;
- :class:`GaussianProjector` — i.i.d. ``N(0, 1/l)`` entries: the standard
  dense JL transform (orthonormal only in expectation, indistinguishable
  in practice and cheaper to build);
- :class:`SignProjector` — Achlioptas ±1 entries scaled by ``1/√l``:
  database-friendly (no floating-point randomness, integer arithmetic).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.linalg.dense import orthonormalize_columns
from repro.linalg.operator import as_operator
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "GaussianProjector",
    "OrthonormalProjector",
    "PROJECTOR_FAMILIES",
    "SignProjector",
    "distance_distortions",
    "johnson_lindenstrauss_dimension",
    "make_projector",
]


def johnson_lindenstrauss_dimension(n_points: int, epsilon: float, *,
                                    failure_probability: float = 0.01
                                    ) -> int:
    """Smallest ``l`` the paper's Lemma 2 tail bound certifies.

    Per-vector failure probability is ``2√l · exp(−(l−1)ε²/24)``; a union
    bound over all ``n_points·(n_points−1)/2`` difference vectors must
    stay below ``failure_probability``.  The returned ``l`` is the
    smallest integer satisfying that inequality (found by scanning, the
    inequality being monotone in ``l`` beyond small values).
    """
    n_points = check_positive_int(n_points, "n_points")
    if not 0.0 < epsilon < 0.5:
        raise ValidationError(
            f"epsilon must lie in (0, 0.5) per Lemma 2, got {epsilon}")
    if not 0.0 < failure_probability < 1.0:
        raise ValidationError(
            "failure_probability must lie in (0, 1), got "
            f"{failure_probability}")
    n_pairs = max(1, n_points * (n_points - 1) // 2)
    log_budget = np.log(failure_probability / (2.0 * n_pairs))

    l = 2
    while True:
        tail_log = 0.5 * np.log(l) - (l - 1) * epsilon ** 2 / 24.0
        if tail_log <= log_budget:
            return l
        l += 1
        if l > 10_000_000:  # pragma: no cover - defensive
            raise ValidationError("no feasible JL dimension found")


class _BaseProjector:
    """Common plumbing: build ``R`` (n × l), project with scaling."""

    #: Human-readable family name, set by subclasses.
    family = "base"

    def __init__(self, input_dim: int, output_dim: int, *, seed=None):
        self.input_dim = check_positive_int(input_dim, "input_dim")
        self.output_dim = check_positive_int(output_dim, "output_dim")
        if self.output_dim > self.input_dim:
            raise ValidationError(
                f"output_dim={output_dim} exceeds input_dim={input_dim}")
        rng = as_generator(seed)
        self.matrix, self.scale = self._build(rng)
        self.matrix.setflags(write=False)

    def _build(self, rng):  # pragma: no cover - abstract
        raise NotImplementedError

    def project(self, vectors) -> np.ndarray:
        """Project vectors or column sets down to ``output_dim``.

        Accepts a 1-D vector (length ``n``), a dense ``(n, p)`` array, or
        a CSR matrix (``n × p``); returns the projected, scaled result
        with matching arity (``(l,)`` or ``(l, p)``).
        """
        arr = vectors
        if isinstance(arr, np.ndarray) and arr.ndim == 1:
            if arr.shape[0] != self.input_dim:
                raise ValidationError(
                    f"vector has {arr.shape[0]} dims; projector expects "
                    f"{self.input_dim}")
            return self.scale * (self.matrix.T @ arr)
        op = as_operator(arr)
        if op.shape[0] != self.input_dim:
            raise ValidationError(
                f"columns have {op.shape[0]} dims; projector expects "
                f"{self.input_dim}")
        return self.scale * op.rmatmat(self.matrix).T

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(n={self.input_dim}, "
                f"l={self.output_dim})")


class OrthonormalProjector(_BaseProjector):
    """Projection onto a uniformly random ``l``-dimensional subspace.

    ``R`` has exactly orthonormal columns (QR of a Gaussian matrix, which
    yields a Haar-distributed subspace) and the output is scaled by
    ``√(n/l)`` — the construction in the paper's §5, giving
    ``B = √(n/l)·Rᵀ·A``.
    """

    family = "orthonormal"

    def _build(self, rng):
        # A Gaussian matrix is full column rank almost surely, so LAPACK
        # QR orthonormalises it directly; the (measure-zero) deficient
        # case falls back to modified Gram-Schmidt with fresh columns.
        gaussian = rng.standard_normal((self.input_dim, self.output_dim))
        basis, _ = np.linalg.qr(gaussian)
        if basis.shape[1] < self.output_dim:  # pragma: no cover - rare
            basis = orthonormalize_columns(gaussian)
            while basis.shape[1] < self.output_dim:
                extra = rng.standard_normal(
                    (self.input_dim, self.output_dim - basis.shape[1]))
                basis = orthonormalize_columns(
                    np.column_stack([basis, extra]))
        scale = float(np.sqrt(self.input_dim / self.output_dim))
        return basis, scale


class GaussianProjector(_BaseProjector):
    """Dense i.i.d. Gaussian JL transform: entries ``N(0, 1)``, scale
    ``1/√l``.

    Column-orthonormal only in expectation; norms are preserved in
    expectation exactly, and the JL concentration is the classical one.
    """

    family = "gaussian"

    def _build(self, rng):
        matrix = rng.standard_normal((self.input_dim, self.output_dim))
        return matrix, float(1.0 / np.sqrt(self.output_dim))


class SignProjector(_BaseProjector):
    """Achlioptas ±1 projection: entries uniform on {−1, +1}, scale
    ``1/√l``.

    Same JL guarantee with database-friendly arithmetic.
    """

    family = "sign"

    def _build(self, rng):
        matrix = rng.choice([-1.0, 1.0],
                            size=(self.input_dim, self.output_dim))
        return matrix, float(1.0 / np.sqrt(self.output_dim))


#: Family name → projector class, for configuration-driven experiments.
PROJECTOR_FAMILIES = {
    "orthonormal": OrthonormalProjector,
    "gaussian": GaussianProjector,
    "sign": SignProjector,
}


def make_projector(family: str, input_dim: int, output_dim: int, *,
                   seed=None) -> _BaseProjector:
    """Instantiate a projector by family name."""
    try:
        cls = PROJECTOR_FAMILIES[family]
    except KeyError:
        raise ValidationError(
            f"unknown projector family {family!r}; expected one of "
            f"{sorted(PROJECTOR_FAMILIES)}") from None
    return cls(input_dim, output_dim, seed=seed)


def distance_distortions(original_columns, projected_columns) -> np.ndarray:
    """Pairwise-distance distortion ratios after projection.

    For every pair ``(i, j)`` with nonzero original distance returns
    ``‖v'_i − v'_j‖ / ‖v_i − v_j‖``; a perfect JL map gives all ones.
    Used by the Lemma 2 experiments (E4).
    """
    original = np.asarray(original_columns, dtype=np.float64)
    projected = np.asarray(projected_columns, dtype=np.float64)
    if original.ndim != 2 or projected.ndim != 2:
        raise ValidationError("column sets must be 2-D")
    if original.shape[1] != projected.shape[1]:
        raise ValidationError(
            f"column counts differ: {original.shape[1]} vs "
            f"{projected.shape[1]}")

    def pair_distances(columns):
        sq = np.sum(columns ** 2, axis=0)
        gram = columns.T @ columns
        d2 = sq[:, None] + sq[None, :] - 2.0 * gram
        return np.sqrt(np.maximum(d2, 0.0))

    d_orig = pair_distances(original)
    d_proj = pair_distances(projected)
    mask = np.triu(np.ones_like(d_orig, dtype=bool), k=1) & (d_orig > 1e-12)
    return d_proj[mask] / d_orig[mask]
