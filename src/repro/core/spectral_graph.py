"""Theorem 6: spectral discovery of high-conductance subgraphs (§6).

The graph-theoretic corpus model: documents are vertices of a weighted
similarity graph; a topic is a subgraph of high conductance.  Theorem 6:
if the graph consists of ``k`` disjoint high-conductance subgraphs joined
by cross edges of per-vertex weight at most an ε fraction, rank-``k``
spectral analysis discovers the subgraphs.

:func:`discover_topics` implements the constructive version — embed the
vertices by the top-``k`` eigenvectors of the (row-normalisation-
equivalent) normalised adjacency and cluster the embedding — and
:func:`theorem6_premises` checks the theorem's hypotheses on a given
partition so experiments can report *when* the guarantee applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.graphs.conductance import sweep_cut_conductance
from repro.graphs.graph import WeightedGraph
from repro.graphs.laplacian import adjacency_eigengap, normalized_adjacency
from repro.utils.kmeans import clustering_accuracy, kmeans
from repro.utils.validation import check_positive_int

__all__ = [
    "Theorem6Premises",
    "TopicDiscovery",
    "discover_topics",
    "spectral_embedding",
    "theorem6_premises",
]


@dataclass(frozen=True)
class TopicDiscovery:
    """Result of rank-``k`` spectral analysis of a document graph.

    Attributes:
        labels: discovered block index per vertex.
        embedding: the ``(n, k)`` spectral embedding that was clustered.
        eigenvalues: the top ``k + 1`` eigenvalues of the normalised
            adjacency (the ``k``/``k+1`` gap certifies block structure).
        eigengap: relative gap ``(μ_k − μ_{k+1})/μ₁``.
    """

    labels: np.ndarray
    embedding: np.ndarray
    eigenvalues: np.ndarray
    eigengap: float

    def accuracy_against(self, truth) -> float:
        """Best-matching accuracy against ground-truth labels."""
        return clustering_accuracy(self.labels, truth)


def spectral_embedding(graph: WeightedGraph, k: int) -> np.ndarray:
    """Rows of the top-``k`` eigenvectors of the normalised adjacency.

    Rows are normalised to the unit sphere (vertices of different blocks
    then land near orthogonal directions), matching how the Theorem 2/3
    analysis treats document vectors.
    """
    k = check_positive_int(k, "k")
    if k > graph.n_vertices:
        raise ValidationError(
            f"k={k} exceeds the number of vertices {graph.n_vertices}")
    adjacency = normalized_adjacency(graph)
    eigenvalues, eigenvectors = np.linalg.eigh(adjacency)
    order = np.argsort(eigenvalues)[::-1]
    embedding = eigenvectors[:, order[:k]]
    norms = np.linalg.norm(embedding, axis=1, keepdims=True)
    return embedding / np.where(norms > 1e-12, norms, 1.0)


def discover_topics(graph: WeightedGraph, k: int, *, n_restarts: int = 8,
                    seed=None) -> TopicDiscovery:
    """Rank-``k`` spectral analysis of a document-similarity graph.

    Embeds vertices by the top-``k`` eigenvectors of the normalised
    adjacency and clusters the (row-normalised) embedding with k-means.

    Args:
        graph: the weighted document graph.
        k: number of topics to discover.
        n_restarts: k-means restarts.
        seed: RNG seed for clustering.
    """
    k = check_positive_int(k, "k")
    if k >= graph.n_vertices:
        raise ValidationError(
            f"k={k} must be below the vertex count {graph.n_vertices}")
    adjacency = normalized_adjacency(graph)
    eigenvalues = np.sort(np.linalg.eigvalsh(adjacency))[::-1]
    embedding = spectral_embedding(graph, k)
    clusters = kmeans(embedding, k, n_restarts=n_restarts, seed=seed)
    return TopicDiscovery(
        labels=clusters.labels,
        embedding=embedding,
        eigenvalues=eigenvalues[:k + 1].copy(),
        eigengap=adjacency_eigengap(graph, k))


@dataclass(frozen=True)
class Theorem6Premises:
    """Measured hypotheses of Theorem 6 for a candidate partition.

    Attributes:
        block_conductances: sweep-cut (upper-bound) conductance of each
            induced block — "high conductance" per block.
        max_cross_fraction: max over vertices of (cross-block weight /
            total weight) — the theorem's ε.
    """

    block_conductances: np.ndarray
    max_cross_fraction: float

    def satisfied(self, *, min_conductance: float = 0.3,
                  max_epsilon: float = 0.2) -> bool:
        """Whether the premises hold at the given thresholds."""
        return (bool(np.all(self.block_conductances >= min_conductance))
                and self.max_cross_fraction <= max_epsilon)


def theorem6_premises(graph: WeightedGraph, labels) -> Theorem6Premises:
    """Measure Theorem 6's hypotheses for a given block partition.

    Args:
        graph: the document graph.
        labels: block index per vertex.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (graph.n_vertices,):
        raise ValidationError(
            f"labels must have length {graph.n_vertices}")
    blocks = np.unique(labels)
    conductances = []
    for block in blocks:
        members = np.flatnonzero(labels == block)
        if members.size < 2:
            conductances.append(0.0)
            continue
        sub = graph.subgraph(members)
        value, _ = sweep_cut_conductance(sub, denominator="volume")
        conductances.append(0.0 if value == float("inf") else value)

    degrees = graph.degrees()
    same = labels[:, None] == labels[None, :]
    cross_weight = np.sum(graph.adjacency * (~same), axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        fractions = np.where(degrees > 0, cross_weight / degrees, 0.0)
    return Theorem6Premises(
        block_conductances=np.asarray(conductances),
        max_cross_fraction=float(fractions.max()))
