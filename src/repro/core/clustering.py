"""Document clustering and classification in the LSI space.

§4: "LSI does a particularly good job of *classifying* documents when
applied to such a corpus" — δ-skewness is literally a clustering
statement (intratopic parallel, intertopic orthogonal).  This module
cashes that out as runnable classifiers:

- :func:`cluster_documents` — unsupervised k-means over three document
  representations: raw term space, the LSI space, and the spectral
  embedding of the document-similarity graph (§6's view);
- :class:`NearestCentroidClassifier` — the supervised (Rocchio-style)
  counterpart: cosine to per-topic centroids, fit in either space.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, ValidationError
from repro.core.lsi import LSIModel
from repro.linalg.dense import cosine_similarity_matrix, normalize_columns
from repro.linalg.operator import as_operator
from repro.utils.kmeans import kmeans
from repro.utils.validation import check_positive_int

__all__ = [
    "CLUSTER_SPACES",
    "NearestCentroidClassifier",
    "cluster_documents",
]

#: Representations cluster_documents understands.
CLUSTER_SPACES = ("raw", "lsi", "graph")


def _document_representation(matrix, space: str, k: int, *,
                             seed=None) -> np.ndarray:
    """Documents as rows of an ``(m, d)`` array in the chosen space."""
    op = as_operator(matrix)
    if space == "raw":
        unit, _ = normalize_columns(
            op.to_dense())  # reprolint: disable=R004
        return unit.T
    if space == "lsi":
        lsi = LSIModel.fit(matrix, k, engine="lanczos", seed=seed)
        unit, _ = normalize_columns(lsi.document_vectors())
        return unit.T
    if space == "graph":
        from repro.core.spectral_graph import spectral_embedding
        from repro.graphs.random_graphs import document_similarity_graph

        graph = document_similarity_graph(matrix)
        return spectral_embedding(graph, k)
    raise ValidationError(
        f"unknown space {space!r}; expected one of {CLUSTER_SPACES}")


def cluster_documents(matrix, n_clusters, *, space: str = "lsi",
                      n_restarts: int = 8, seed=None) -> np.ndarray:
    """Unsupervised document clustering in a chosen representation.

    Args:
        matrix: the ``n × m`` term–document matrix.
        n_clusters: number of clusters ``k`` (for LSI/graph spaces this
            is also the representation rank).
        space: ``"raw"``, ``"lsi"``, or ``"graph"``.
        n_restarts: k-means restarts.
        seed: RNG seed (drives both the representation and k-means).

    Returns:
        A length-``m`` cluster-label array.
    """
    n_clusters = check_positive_int(n_clusters, "n_clusters")
    points = _document_representation(matrix, space, n_clusters,
                                      seed=seed)
    return kmeans(points, n_clusters, n_restarts=n_restarts,
                  seed=seed).labels


class NearestCentroidClassifier:
    """Rocchio-style topical classification by cosine to centroids.

    Fit on labelled documents in either raw term space or a shared LSI
    space; classify new term-space columns by the nearest (cosine)
    class centroid.

    Args:
        space: ``"raw"`` or ``"lsi"``.
        rank: LSI rank (required for the LSI space).
    """

    def __init__(self, *, space: str = "lsi", rank=None):
        if space not in ("raw", "lsi"):
            raise ValidationError(
                f"space must be 'raw' or 'lsi', got {space!r}")
        if space == "lsi" and rank is None:
            raise ValidationError("the LSI space needs a rank")
        self.space = space
        self.rank = None if rank is None else check_positive_int(
            rank, "rank")
        self._lsi: LSIModel | None = None
        self._centroids: np.ndarray | None = None
        self._classes: np.ndarray | None = None

    def fit(self, matrix, labels, *, seed=None
            ) -> "NearestCentroidClassifier":
        """Fit centroids on a labelled term–document matrix."""
        labels = np.asarray(labels, dtype=np.int64)
        op = as_operator(matrix)
        if labels.shape != (op.shape[1],):
            raise ValidationError(
                f"{op.shape[1]} documents but {labels.shape[0]} labels")

        if self.space == "lsi":
            self._lsi = LSIModel.fit(matrix, self.rank,
                                     engine="lanczos", seed=seed)
            vectors = self._lsi.document_vectors()
        else:
            vectors = op.to_dense()  # reprolint: disable=R004

        self._classes = np.unique(labels)
        centroids = np.zeros((self._classes.size, vectors.shape[0]))
        for row, cls in enumerate(self._classes):
            centroids[row] = vectors[:, labels == cls].mean(axis=1)
        self._centroids = centroids
        return self

    def _require_fitted(self):
        if self._centroids is None:
            raise NotFittedError("fit must be called before predict")

    def predict(self, columns) -> np.ndarray:
        """Class labels for term-space document columns (dense or CSR)."""
        self._require_fitted()
        op = as_operator(columns)
        if self.space == "lsi":
            vectors = self._lsi.project_documents(op)
        else:
            vectors = op.to_dense()  # reprolint: disable=R004
        sims = cosine_similarity_matrix(vectors, self._centroids.T)
        return self._classes[np.argmax(sims, axis=1)]

    def score(self, columns, labels) -> float:
        """Classification accuracy on labelled columns."""
        labels = np.asarray(labels, dtype=np.int64)
        predictions = self.predict(columns)
        if predictions.shape != labels.shape:
            raise ValidationError(
                f"{predictions.shape[0]} predictions but "
                f"{labels.shape[0]} labels")
        return float(np.mean(predictions == labels))

    def __repr__(self) -> str:
        fitted = self._centroids is not None
        return (f"NearestCentroidClassifier(space={self.space!r}, "
                f"rank={self.rank}, fitted={fitted})")
