"""Sampling-based LSI speedups (§5's related approaches).

Two samplers the paper discusses as alternatives to random projection:

- **Frieze–Kannan–Vempala** (:func:`fkv_low_rank_approximation`):
  length-squared sampling of ``s`` columns, rescaled to keep the Gram
  matrix unbiased, then the top-``k`` left singular vectors ``H`` of the
  sample define the approximation ``D = H·Hᵀ·A`` of rank ≤ ``k`` with

      ``‖A − D‖_F² ≤ ‖A − Aₖ‖_F² + (2√(k/s))·‖A‖_F²``

  in expectation — the guarantee the paper quotes
  (``‖A−D‖_F ≤ ‖A−Aₖ‖_F + ε‖A‖_F`` for ``s = poly(k, 1/ε)``).

- **Folklore document sampling** (:func:`sampled_lsi`): "LSI is often
  done not on the entire corpus, but on a randomly selected subcorpus"
  — uniform document sampling with *no* rescaling and no guarantee; the
  baseline the paper contrasts its rigorous approaches against.

Both return a :class:`SampledLSIResult` whose ``term_basis`` can fold the
full corpus (and queries) into the discovered subspace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.linalg.operator import as_operator
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int, check_rank

__all__ = [
    "SampledLSIResult",
    "fkv_error_bound",
    "fkv_low_rank_approximation",
    "sampled_lsi",
]


@dataclass(frozen=True)
class SampledLSIResult:
    """Outcome of a sampling-based approximate LSI.

    Attributes:
        term_basis: ``(n, k)`` orthonormal columns spanning the recovered
            term subspace (the approximation is ``H·Hᵀ·A``).
        sampled_indices: which columns were drawn.
        method: ``"fkv"`` or ``"uniform"``.
    """

    term_basis: np.ndarray
    sampled_indices: np.ndarray
    method: str

    @property
    def rank(self) -> int:
        """Dimension of the recovered subspace."""
        return int(self.term_basis.shape[1])

    def project_documents(self, matrix) -> np.ndarray:
        """Fold term–document columns into the subspace: ``Hᵀ·A``."""
        op = as_operator(matrix)
        if op.shape[0] != self.term_basis.shape[0]:
            raise ValidationError(
                f"matrix has {op.shape[0]} terms; basis expects "
                f"{self.term_basis.shape[0]}")
        return op.rmatmat(self.term_basis).T

    def reconstruct(self, matrix) -> np.ndarray:
        """The rank-``k`` approximation ``H·Hᵀ·A`` as a dense array."""
        return self.term_basis @ self.project_documents(matrix)

    def residual_norm(self, matrix) -> float:
        """``‖A − H·Hᵀ·A‖_F`` against the given matrix."""
        op = as_operator(matrix)
        dense = op.to_dense()  # reprolint: disable=R004
        return float(np.linalg.norm(dense - self.reconstruct(op)))


def fkv_low_rank_approximation(matrix, rank, n_samples, *,
                               seed=None) -> SampledLSIResult:
    """Frieze–Kannan–Vempala Monte-Carlo low-rank approximation.

    Args:
        matrix: ``n × m`` dense or CSR matrix.
        rank: target rank ``k``.
        n_samples: number of columns ``s`` to draw (with replacement,
            proportional to squared column norms).
        seed: RNG seed.

    Returns:
        :class:`SampledLSIResult` whose basis spans the top-``k`` left
        singular directions of the rescaled sample.
    """
    op = as_operator(matrix)
    n, m = op.shape
    rank = check_rank(rank, min(n, m), "rank")
    n_samples = check_positive_int(n_samples, "n_samples")
    rng = as_generator(seed)

    if isinstance(matrix, np.ndarray):
        column_norms_sq = np.sum(np.asarray(matrix, dtype=np.float64) ** 2,
                                 axis=0)
    else:
        column_norms_sq = matrix.column_norms() ** 2
    total = float(column_norms_sq.sum())
    if total <= 0:
        raise ValidationError("matrix is numerically zero")
    probabilities = column_norms_sq / total

    chosen = rng.choice(m, size=n_samples, p=probabilities)
    # Rescale column j by 1/sqrt(s·p_j) so E[S·Sᵀ] = A·Aᵀ.
    scales = 1.0 / np.sqrt(n_samples * probabilities[chosen])
    if isinstance(matrix, np.ndarray):
        sample = np.asarray(matrix, dtype=np.float64)[:, chosen] * scales
    else:
        sample = matrix.select_columns(  # reprolint: disable=R004
            chosen).to_dense() * scales

    u, _, _ = np.linalg.svd(sample, full_matrices=False)
    basis = u[:, :rank]
    return SampledLSIResult(term_basis=basis,
                            sampled_indices=np.asarray(chosen),
                            method="fkv")


def fkv_error_bound(matrix, rank: int, n_samples: int) -> float:
    """The FKV additive guarantee ``‖A−Aₖ‖_F² + 2√(k/s)·‖A‖_F²``.

    Returns the bound on the *squared* Frobenius residual.
    """
    op = as_operator(matrix)
    rank = check_rank(rank, min(op.shape), "rank")
    n_samples = check_positive_int(n_samples, "n_samples")
    from repro.linalg.svd import best_rank_k_error

    direct_sq = best_rank_k_error(op, rank) ** 2
    energy = op.frobenius_norm() ** 2
    return direct_sq + 2.0 * np.sqrt(rank / n_samples) * energy


def sampled_lsi(matrix, rank, n_documents, *, seed=None) -> SampledLSIResult:
    """The folklore baseline: LSI on a uniform document subsample.

    Draws ``n_documents`` columns uniformly *without* replacement and
    without rescaling, computes their top-``k`` left singular vectors,
    and uses them as the term basis for the whole corpus.  No accuracy
    guarantee — this is the practice the paper's random-projection result
    is meant to replace with something provable.
    """
    op = as_operator(matrix)
    n, m = op.shape
    rank = check_rank(rank, min(n, m), "rank")
    n_documents = check_positive_int(n_documents, "n_documents")
    if n_documents > m:
        raise ValidationError(
            f"cannot sample {n_documents} documents from {m}")
    if n_documents < rank:
        raise ValidationError(
            f"need at least rank={rank} sampled documents, got "
            f"{n_documents}")
    rng = as_generator(seed)
    chosen = rng.choice(m, size=n_documents, replace=False)
    if isinstance(matrix, np.ndarray):
        sample = np.asarray(matrix, dtype=np.float64)[:, chosen]
    else:
        sample = matrix.select_columns(  # reprolint: disable=R004
            chosen).to_dense()
    u, _, _ = np.linalg.svd(sample, full_matrices=False)
    return SampledLSIResult(term_basis=u[:, :rank],
                            sampled_indices=np.asarray(chosen),
                            method="uniform")
