"""Collaborative filtering via spectral methods (§6).

The paper closes by observing that the rows and columns of ``A`` "could
in general be, instead of terms and documents, consumers and products,
viewers and movies" — the same spectral machinery then powers
collaborative filtering.  This module instantiates the analogy:

- :class:`LatentPreferenceModel` mirrors the topic model: users belong
  to latent *taste groups* (topics); each group has an item-preference
  distribution with a primary set of items; observed ratings are sampled
  interactions.
- :class:`SpectralRecommender` is LSI on the item×user matrix: rank-``k``
  truncated SVD, users scored against items in the latent space.
- Baselines: :class:`PopularityRecommender` and the raw-space
  :class:`CosineKNNRecommender`.
- :func:`evaluate_recommender` measures held-out precision@N / recall@N.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotFittedError, ValidationError
from repro.corpus.model import PureTopicFactors
from repro.corpus.separable import build_separable_model
from repro.corpus.sampler import generate_corpus
from repro.linalg.sparse import CSRMatrix
from repro.linalg.svd import truncated_svd
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "CosineKNNRecommender",
    "InteractionData",
    "ItemKNNRecommender",
    "LatentPreferenceModel",
    "PopularityRecommender",
    "RecommenderEvaluation",
    "SpectralRecommender",
    "evaluate_recommender",
]


@dataclass(frozen=True)
class InteractionData:
    """A synthetic implicit-feedback dataset.

    Attributes:
        train: ``(n_items, n_users)`` CSR matrix of observed interaction
            counts.
        held_out: per-user sets of item ids hidden for evaluation.
        taste_labels: ground-truth taste group per user.
    """

    train: CSRMatrix
    held_out: list[set[int]]
    taste_labels: np.ndarray

    @property
    def n_items(self) -> int:
        """Catalogue size."""
        return self.train.shape[0]

    @property
    def n_users(self) -> int:
        """Number of users."""
        return self.train.shape[1]


class LatentPreferenceModel:
    """The topic model re-read as a user–item preference model.

    Users are "documents": each belongs to one taste group; their
    interactions are draws from the group's item distribution, which
    concentrates ``primary_mass`` on the group's own items.

    Args:
        n_items: catalogue size (the "universe").
        n_groups: number of taste groups (the "topics").
        primary_mass: concentration of each group on its own items.
        interactions_low / interactions_high: per-user interaction count
            range (the "document length").
    """

    def __init__(self, n_items, n_groups, *, primary_mass: float = 0.9,
                 interactions_low: int = 20, interactions_high: int = 60):
        self._model = build_separable_model(
            n_items, n_groups, primary_mass=primary_mass,
            length_low=interactions_low, length_high=interactions_high,
            name="latent-preferences")

    @property
    def n_items(self) -> int:
        """Catalogue size."""
        return self._model.universe_size

    @property
    def n_groups(self) -> int:
        """Number of taste groups."""
        return self._model.n_topics

    def generate(self, n_users, *, holdout_fraction: float = 0.2,
                 seed=None) -> InteractionData:
        """Sample users and split each user's items into train/held-out.

        The held-out set for each user is a random ``holdout_fraction``
        of their *distinct* interacted items (at least one, and at least
        one is always kept in train).
        """
        n_users = check_positive_int(n_users, "n_users")
        holdout_fraction = check_fraction(
            holdout_fraction, "holdout_fraction", inclusive_low=False,
            inclusive_high=False)
        rng = as_generator(seed)
        corpus = generate_corpus(self._model, n_users, rng)
        labels = corpus.topic_labels()

        columns: list[dict[int, float]] = []
        held_out: list[set[int]] = []
        for document in corpus:
            items = sorted(document.term_counts)
            if len(items) < 2:
                columns.append(dict(document.term_counts))
                held_out.append(set())
                continue
            n_hidden = max(1, int(round(holdout_fraction * len(items))))
            n_hidden = min(n_hidden, len(items) - 1)
            hidden = set(
                int(i) for i in rng.choice(items, size=n_hidden,
                                           replace=False))
            columns.append({item: float(count)
                            for item, count in document.term_counts.items()
                            if item not in hidden})
            held_out.append(hidden)
        train = CSRMatrix.from_columns(self.n_items, columns)
        return InteractionData(train=train, held_out=held_out,
                               taste_labels=labels)


class SpectralRecommender:
    """LSI on the item×user matrix: recommend from the rank-``k`` space.

    Scores user ``u`` against all items by reconstructing column ``u`` of
    the rank-``k`` approximation ``Aₖ`` — the spectral completion of the
    sparse interaction matrix.
    """

    def __init__(self, rank: int, *, engine: str = "exact", seed=None):
        self.rank = check_positive_int(rank, "rank")
        self._engine = engine
        self._seed = seed
        self._svd = None

    def fit(self, train: CSRMatrix) -> "SpectralRecommender":
        """Factor the training interactions."""
        self._svd = truncated_svd(train, self.rank, engine=self._engine,
                                  seed=self._seed)
        return self

    def scores(self, user: int) -> np.ndarray:
        """Predicted affinity of one user for every item."""
        if self._svd is None:
            raise NotFittedError("fit() must be called before scoring")
        user = int(user)
        if not 0 <= user < self._svd.vt.shape[1]:
            raise ValidationError(f"user {user} out of range")
        coefficients = self._svd.singular_values * self._svd.vt[:, user]
        return self._svd.u @ coefficients

    def recommend(self, user: int, train: CSRMatrix, *,
                  top_n: int = 10) -> np.ndarray:
        """Top unseen items for a user (training items excluded)."""
        return _exclude_seen(self.scores(user), train, int(user), top_n)


class PopularityRecommender:
    """Non-personalised baseline: rank items by global interaction count."""

    def __init__(self):
        self._popularity = None

    def fit(self, train: CSRMatrix) -> "PopularityRecommender":
        """Tally global item popularity."""
        self._popularity = train.row_sums()
        return self

    def scores(self, user: int) -> np.ndarray:
        """Same popularity vector for every user."""
        if self._popularity is None:
            raise NotFittedError("fit() must be called before scoring")
        return self._popularity.copy()

    def recommend(self, user: int, train: CSRMatrix, *,
                  top_n: int = 10) -> np.ndarray:
        """Most popular unseen items."""
        return _exclude_seen(self.scores(user), train, int(user), top_n)


class CosineKNNRecommender:
    """Raw-space user-based kNN — the "conventional vector method" arm.

    A user's score for an item is the cosine-similarity-weighted sum of
    their ``k`` nearest neighbours' interactions with that item, computed
    in raw item space (no latent structure).
    """

    def __init__(self, n_neighbors: int = 10):
        self.n_neighbors = check_positive_int(n_neighbors, "n_neighbors")
        self._train_dense = None
        self._unit_users = None

    def fit(self, train: CSRMatrix) -> "CosineKNNRecommender":
        """Precompute normalised user vectors."""
        dense = train.to_dense()  # reprolint: disable=R004
        norms = np.linalg.norm(dense, axis=0)
        safe = np.where(norms > 0, norms, 1.0)
        self._train_dense = dense
        self._unit_users = dense / safe
        return self

    def scores(self, user: int) -> np.ndarray:
        """Neighbourhood-weighted item scores for one user."""
        if self._train_dense is None:
            raise NotFittedError("fit() must be called before scoring")
        user = int(user)
        if not 0 <= user < self._train_dense.shape[1]:
            raise ValidationError(f"user {user} out of range")
        similarities = self._unit_users.T @ self._unit_users[:, user]
        similarities[user] = -np.inf
        k = min(self.n_neighbors, similarities.shape[0] - 1)
        neighbors = np.argpartition(-similarities, k - 1)[:k]
        weights = np.maximum(similarities[neighbors], 0.0)
        return self._train_dense[:, neighbors] @ weights

    def recommend(self, user: int, train: CSRMatrix, *,
                  top_n: int = 10) -> np.ndarray:
        """Top unseen items by neighbourhood score."""
        return _exclude_seen(self.scores(user), train, int(user), top_n)


class ItemKNNRecommender:
    """Item-based collaborative filtering in raw interaction space.

    The industrial classic: score item ``i`` for user ``u`` as the
    similarity-weighted sum of ``u``'s interactions over the ``k`` items
    most similar to ``i`` (cosine over user-interaction profiles).
    Complements the user-based :class:`CosineKNNRecommender` — both are
    raw-space baselines the spectral method is compared against.
    """

    def __init__(self, n_neighbors: int = 10):
        self.n_neighbors = check_positive_int(n_neighbors, "n_neighbors")
        self._train_dense = None
        self._neighbor_ids = None
        self._neighbor_sims = None

    def fit(self, train: CSRMatrix) -> "ItemKNNRecommender":
        """Precompute the top-k similar items per item."""
        dense = train.to_dense()  # (items, users)  # reprolint: disable=R004
        norms = np.linalg.norm(dense, axis=1)
        safe = np.where(norms > 0, norms, 1.0)
        unit = dense / safe[:, None]
        similarity = unit @ unit.T
        np.fill_diagonal(similarity, -np.inf)
        k = min(self.n_neighbors, similarity.shape[0] - 1)
        neighbor_ids = np.argpartition(-similarity, k - 1,
                                       axis=1)[:, :k]
        neighbor_sims = np.take_along_axis(similarity, neighbor_ids,
                                           axis=1)
        self._train_dense = dense
        self._neighbor_ids = neighbor_ids
        self._neighbor_sims = np.maximum(neighbor_sims, 0.0)
        return self

    def scores(self, user: int) -> np.ndarray:
        """Predicted affinity of one user for every item."""
        if self._train_dense is None:
            raise NotFittedError("fit() must be called before scoring")
        user = int(user)
        if not 0 <= user < self._train_dense.shape[1]:
            raise ValidationError(f"user {user} out of range")
        user_column = self._train_dense[:, user]
        neighbor_interactions = user_column[self._neighbor_ids]
        return np.sum(self._neighbor_sims * neighbor_interactions,
                      axis=1)

    def recommend(self, user: int, train: CSRMatrix, *,
                  top_n: int = 10) -> np.ndarray:
        """Top unseen items by neighbourhood score."""
        return _exclude_seen(self.scores(user), train, int(user), top_n)


def _exclude_seen(scores: np.ndarray, train: CSRMatrix, user: int,
                  top_n: int) -> np.ndarray:
    top_n = check_positive_int(top_n, "top_n")
    seen = np.flatnonzero(train.get_column(user) > 0)
    masked = scores.copy()
    masked[seen] = -np.inf
    order = np.argsort(-masked, kind="stable")
    return order[:top_n]


@dataclass(frozen=True)
class RecommenderEvaluation:
    """Aggregate held-out ranking quality.

    Attributes:
        precision_at_n: mean fraction of recommended items that were
            held out.
        recall_at_n: mean fraction of held-out items recovered.
        hit_rate: fraction of users with ≥ 1 held-out item recovered.
        top_n: the recommendation list length evaluated.
    """

    precision_at_n: float
    recall_at_n: float
    hit_rate: float
    top_n: int


def evaluate_recommender(recommender, data: InteractionData, *,
                         top_n: int = 10) -> RecommenderEvaluation:
    """Precision@N / recall@N / hit-rate over all users with a holdout."""
    top_n = check_positive_int(top_n, "top_n")
    precisions, recalls, hits = [], [], []
    for user, hidden in enumerate(data.held_out):
        if not hidden:
            continue
        recommended = recommender.recommend(user, data.train, top_n=top_n)
        recovered = len(set(int(i) for i in recommended) & hidden)
        precisions.append(recovered / top_n)
        recalls.append(recovered / len(hidden))
        hits.append(1.0 if recovered else 0.0)
    if not precisions:
        raise ValidationError("no users carry held-out items")
    return RecommenderEvaluation(
        precision_at_n=float(np.mean(precisions)),
        recall_at_n=float(np.mean(recalls)),
        hit_rate=float(np.mean(hits)),
        top_n=top_n)
