"""Latent semantic indexing (§2 of the paper).

Given the ``n × m`` term–document matrix ``A`` with SVD ``A = U·D·Vᵀ``,
rank-``k`` LSI keeps the ``k`` largest singular values:
``Aₖ = Uₖ·Dₖ·Vₖᵀ``.  Documents are represented by the rows of ``Vₖ·Dₖ``
(equivalently: columns of ``A`` projected onto the span of ``Uₖ``, the
*LSI space*), and queries are projected into the same space
(``q ↦ Uₖᵀ·q``) before cosine ranking.

:class:`LSIModel` packages fit → represent → retrieve, exposes the
Eckart–Young residual accounting (Theorem 1), and shares the retrieval
interface of :class:`~repro.ir.vsm.VectorSpaceModel` so experiments can
swap the two engines.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.errors import NotFittedError, ValidationError
from repro.linalg.dense import cosine_similarity_matrix
from repro.linalg.svd import SVDResult, truncated_svd
from repro.utils.validation import check_top_k, check_vector

__all__ = ["LSIModel"]


class LSIModel:
    """A fitted rank-``k`` LSI index.

    Build with :meth:`fit`; then :meth:`project_query`,
    :meth:`document_vectors`, :meth:`score`, :meth:`rank`, and
    :meth:`similarities` operate in the LSI space.

    Attributes:
        svd: the underlying truncated :class:`~repro.linalg.svd.SVDResult`.
        rank: the LSI dimension ``k``.
    """

    def __init__(self, svd: SVDResult):
        if not isinstance(svd, SVDResult):
            raise ValidationError("LSIModel wraps an SVDResult")
        self.svd = svd
        self._doc_vectors = svd.document_vectors()  # (k, m)

    @classmethod
    def fit(cls, matrix, rank, *, engine: str = "lanczos",
            seed=None, **engine_kwargs) -> "LSIModel":
        """Fit rank-``rank`` LSI on a term–document matrix.

        Args:
            matrix: ``n × m`` dense array or
                :class:`~repro.linalg.sparse.CSRMatrix` (rows = terms).
            rank: the LSI dimension ``k`` — in the §4 theorems, the
                number of topics.
            engine: SVD engine (``"lanczos"``, ``"subspace"``,
                ``"exact"``).
            seed: RNG seed for iterative engines.
            **engine_kwargs: engine-specific options; unknown options
                raise :class:`~repro.errors.ValidationError` listing the
                valid ones (see
                :func:`~repro.linalg.svd.engine_options`).
        """
        svd = truncated_svd(matrix, rank, engine=engine, seed=seed,
                            **engine_kwargs)
        return cls(svd)

    @classmethod
    def fit_streamed(cls, blocks, rank, *, engine: str = "lanczos",
                     seed=None, block_size: "int | None" = None,
                     oversample: int = 8, polish_iterations: int = 0,
                     **engine_kwargs) -> "LSIModel":
        """Fit rank-``rank`` LSI from a stream of column blocks.

        The out-of-core fitting path: blocks are factored one at a
        time by a direct engine and folded together with the
        :mod:`repro.linalg.incremental` merge, so peak memory is one
        block plus the ``(n + m) × k`` factors — the full
        term–document matrix is never materialised.

        Args:
            blocks: an iterable of column blocks (dense arrays or
                :class:`~repro.linalg.sparse.CSRMatrix`, e.g. from
                :func:`~repro.corpus.io.corpus_column_blocks`), or a
                single in-memory matrix to be chunked via
                :func:`~repro.linalg.incremental.iter_column_blocks`.
            rank: the LSI dimension ``k``.
            engine: per-block SVD engine (any direct engine).
            seed: RNG seed for iterative engines.
            block_size: chunk width for a matrix input, and the
                re-chunk width for oversized stream blocks (``None``
                keeps stream blocks as produced; a matrix input
                defaults to 256-column chunks).
            oversample: working-rank headroom carried through merges.
            polish_iterations: power-iteration polish rounds after the
                merge — only valid for a (re-readable) matrix input; a
                one-shot block stream cannot be polished.
            **engine_kwargs: per-block engine tuning.

        Raises:
            ValidationError: when ``polish_iterations > 0`` with a
                one-shot block stream, or on invalid fit parameters.
            EmptyCorpusError: when the stream yields no blocks.
            ConvergenceError: when a per-block engine fails to
                converge.
        """
        from repro.linalg.incremental import block_updates, \
            iter_column_blocks, polish
        from repro.linalg.sparse import CSRMatrix

        is_matrix = isinstance(blocks, (CSRMatrix, np.ndarray))
        if is_matrix:
            width = 256 if block_size is None else block_size
            stream = iter_column_blocks(blocks, width)
        else:
            if polish_iterations > 0:
                raise ValidationError(
                    "polish_iterations requires a re-readable matrix "
                    "input; a one-shot block stream cannot be "
                    "re-scanned (pass the matrix itself, or polish "
                    "later with repro.linalg.incremental.polish)")
            stream = blocks
        partial = block_updates(
            stream, rank,
            block_size=None if is_matrix else block_size,
            engine=engine, oversample=oversample, seed=seed,
            keep_vt=True, **engine_kwargs)
        if is_matrix and polish_iterations > 0:
            partial = polish(partial, blocks,
                             iterations=polish_iterations)
            partial = partial.truncate(min(rank, partial.rank))
        return cls(partial.to_svd_result())

    # ------------------------------------------------------------------
    # Representation
    # ------------------------------------------------------------------

    @property
    def rank(self) -> int:
        """The LSI dimension ``k``."""
        return self.svd.rank

    @property
    def n_terms(self) -> int:
        """Universe size ``n``."""
        return int(self.svd.u.shape[0])

    @property
    def n_documents(self) -> int:
        """Corpus size ``m``."""
        return int(self.svd.vt.shape[1])

    @property
    def term_basis(self) -> np.ndarray:
        """``Uₖ`` — the orthonormal basis of the LSI space (n × k)."""
        return self.svd.u

    @property
    def singular_values(self) -> np.ndarray:
        """``σ₁ ≥ … ≥ σₖ``."""
        return self.svd.singular_values

    def document_vectors(self) -> np.ndarray:
        """LSI document representations as a ``(k, m)`` array.

        Column ``j`` is the paper's ``v_d`` for document ``j`` — row ``j``
        of ``Vₖ·Dₖ``.
        """
        return self._doc_vectors.copy()

    def term_vectors(self) -> np.ndarray:
        """LSI term representations: the rows of ``Uₖ·Dₖ``, ``(n, k)``.

        The term-side dual of :meth:`document_vectors`; synonymous terms
        become nearly parallel rows (the §4 synonymy analysis).
        """
        return self.svd.u * self.svd.singular_values

    def document_vector(self, doc_id: int) -> np.ndarray:
        """The LSI vector of one document."""
        doc_id = int(doc_id)
        if not 0 <= doc_id < self.n_documents:
            raise ValidationError(
                f"document id {doc_id} out of range for "
                f"{self.n_documents} documents")
        return self._doc_vectors[:, doc_id].copy()

    def project_query(self, query_vector) -> np.ndarray:
        """Fold a term-space query into the LSI space: ``Uₖᵀ·q``.

        Works for unseen documents too (folding-in).
        """
        query = check_vector(query_vector, "query_vector")
        if query.shape[0] != self.n_terms:
            raise ValidationError(
                f"query has {query.shape[0]} terms; model expects "
                f"{self.n_terms}")
        return self.svd.u.T @ query

    def project_documents(self, matrix) -> np.ndarray:
        """Fold a batch of term-space columns into the LSI space.

        Accepts a dense ``(n, p)`` array or a CSR matrix; returns
        ``(k, p)``.
        """
        from repro.linalg.operator import as_operator

        op = as_operator(matrix)
        if op.shape[0] != self.n_terms:
            raise ValidationError(
                f"columns have {op.shape[0]} terms; model expects "
                f"{self.n_terms}")
        return op.rmatmat(self.svd.u).T

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------

    def score(self, query_vector) -> np.ndarray:
        """Cosine score of every document against a term-space query.

        The query is folded into the LSI space first; documents with a
        zero LSI vector score 0.
        """
        projected = self.project_query(query_vector)
        return self._cosine_against_documents(projected)

    def score_in_lsi_space(self, lsi_vector) -> np.ndarray:
        """Cosine scores for a query already in LSI coordinates."""
        lsi_vector = check_vector(lsi_vector, "lsi_vector")
        if lsi_vector.shape[0] != self.rank:
            raise ValidationError(
                f"LSI vector has {lsi_vector.shape[0]} coordinates; model "
                f"rank is {self.rank}")
        return self._cosine_against_documents(lsi_vector)

    def _cosine_against_documents(self, projected: np.ndarray) -> np.ndarray:
        sims = cosine_similarity_matrix(projected[:, None],
                                        self._doc_vectors)
        return sims[0]

    def rank_documents(self, query_vector, *, top_k=None) -> np.ndarray:
        """Document ids by descending LSI cosine score.

        ``top_k`` follows the engine-wide policy of
        :func:`~repro.utils.validation.check_top_k`: ``None`` returns the
        full ranking, otherwise a validated positive integer (clamped to
        the corpus size).
        """
        scores = self.score(query_vector)
        top_k = check_top_k(top_k, self.n_documents)
        order = np.argsort(-scores, kind="stable")
        return order[:top_k]

    def rank_for_query(self, query_vector, *, top_k=None) -> np.ndarray:
        """Deprecated alias of :meth:`rank_documents`.

        Kept as a shim for pre-serving-layer callers; emits a
        :class:`DeprecationWarning` and will be removed once downstream
        code has migrated to the canonical name.
        """
        warnings.warn(
            "LSIModel.rank_for_query is deprecated; use "
            "LSIModel.rank_documents instead",
            DeprecationWarning, stacklevel=2)
        return self.rank_documents(query_vector, top_k=top_k)

    def similarities(self) -> np.ndarray:
        """All-pairs document cosine similarity in the LSI space (m × m)."""
        return cosine_similarity_matrix(self._doc_vectors)

    # ------------------------------------------------------------------
    # Approximation quality (Theorem 1 bookkeeping)
    # ------------------------------------------------------------------

    def reconstruct(self) -> np.ndarray:
        """The rank-``k`` approximation ``Aₖ`` as a dense array."""
        return self.svd.reconstruct()

    def residual_norm(self) -> float:
        """``‖A − Aₖ‖_F`` — the Eckart–Young optimal residual."""
        return self.svd.residual_norm()

    def energy_fraction(self) -> float:
        """Fraction of ``‖A‖_F²`` the LSI space captures."""
        return self.svd.energy_fraction()

    def __repr__(self) -> str:
        return (f"LSIModel(k={self.rank}, n={self.n_terms}, "
                f"m={self.n_documents}, "
                f"energy={self.energy_fraction():.3f})")
