"""The paper's primary contribution: LSI and its analysis machinery.

- :mod:`repro.core.lsi` — rank-``k`` latent semantic indexing on the
  term–document matrix (§2), with query folding and retrieval.
- :mod:`repro.core.skewness` — the δ-skewness quantity of §4 and the
  intratopic/intertopic angle statistics of the paper's table.
- :mod:`repro.core.random_projection` — Johnson–Lindenstrauss projectors
  (§5).
- :mod:`repro.core.two_step` — the paper's two-step method: random
  projection followed by rank-``2k`` LSI, with the Theorem 5 bound and
  the §5 cost model.
- :mod:`repro.core.fkv` — the Frieze–Kannan–Vempala sampling-based
  low-rank approximation and the folklore document-sampling baseline.
- :mod:`repro.core.synonymy` — the §4 synonymy analysis on ``A·Aᵀ``.
- :mod:`repro.core.spectral_graph` — the §6 graph corpus model and
  Theorem 6's spectral subgraph discovery.
- :mod:`repro.core.cf` — the §6 collaborative-filtering analogue.
"""

from repro.core.clustering import (
    NearestCentroidClassifier,
    cluster_documents,
)
from repro.core.fkv import fkv_low_rank_approximation, sampled_lsi
from repro.core.folding import FoldingIndex, folding_drift
from repro.core.lsi import LSIModel
from repro.core.random_projection import (
    GaussianProjector,
    OrthonormalProjector,
    SignProjector,
    johnson_lindenstrauss_dimension,
)
from repro.core.skewness import (
    AngleStatistics,
    angle_statistics,
    pairwise_angle_table,
    skewness,
)
from repro.core.two_step import TwoStepLSI, lsi_cost_model, theorem5_bound

__all__ = [
    "AngleStatistics",
    "FoldingIndex",
    "GaussianProjector",
    "LSIModel",
    "NearestCentroidClassifier",
    "OrthonormalProjector",
    "SignProjector",
    "TwoStepLSI",
    "angle_statistics",
    "cluster_documents",
    "fkv_low_rank_approximation",
    "folding_drift",
    "johnson_lindenstrauss_dimension",
    "lsi_cost_model",
    "pairwise_angle_table",
    "sampled_lsi",
    "skewness",
    "theorem5_bound",
]
