"""δ-skewness and the paper's angle-statistics table (§4).

The paper's Definition: rank-``k`` LSI is *δ-skewed* on a corpus if for
every pair of documents the LSI vectors ``v_d, v_d'`` satisfy

- ``v_d · v_d' ≤ δ ‖v_d‖ ‖v_d'‖`` when the documents belong to
  *different* topics (nearly orthogonal), and
- ``v_d · v_d' ≥ (1 − δ) ‖v_d‖ ‖v_d'‖`` when they belong to the *same*
  topic (nearly parallel).

:func:`skewness` computes the smallest δ for which a representation is
δ-skewed.  :func:`angle_statistics` computes min/max/average/std of the
pairwise *angles* (in radians, not cosines — the paper is explicit about
this) for intratopic and intertopic pairs, which is exactly the content
of the paper's experimental table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.linalg.dense import cosine_similarity_matrix
from repro.utils.tables import Table

__all__ = [
    "AngleStatistics",
    "angle_statistics",
    "pairwise_angle_table",
    "skewness",
]


def _pair_masks(labels: np.ndarray):
    """Boolean (p, p) masks of strictly-upper-triangular intra/inter pairs."""
    labels = np.asarray(labels, dtype=np.int64)
    same = labels[:, None] == labels[None, :]
    upper = np.triu(np.ones((labels.size, labels.size), dtype=bool), k=1)
    return same & upper, (~same) & upper


def skewness(vectors, labels) -> float:
    """The smallest δ such that the representation is δ-skewed.

    Args:
        vectors: ``(d, m)`` array; column ``j`` is document ``j``'s
            representation (LSI or raw).
        labels: length-``m`` topic labels.

    Returns:
        ``max(max intertopic cosine, 1 − min intratopic cosine)``,
        clipped to [0, 1].  0 means perfect topic separation; corpora
        with no intratopic (or no intertopic) pairs simply drop that
        side of the max.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if vectors.ndim != 2:
        raise ValidationError("vectors must be 2-D (dims × documents)")
    if labels.shape != (vectors.shape[1],):
        raise ValidationError(
            f"{vectors.shape[1]} document columns but "
            f"{labels.shape[0]} labels")
    cosines = cosine_similarity_matrix(vectors)
    intra_mask, inter_mask = _pair_masks(labels)

    candidates = []
    if inter_mask.any():
        candidates.append(float(np.max(cosines[inter_mask])))
    if intra_mask.any():
        candidates.append(1.0 - float(np.min(cosines[intra_mask])))
    if not candidates:
        return 0.0
    return float(np.clip(max(candidates), 0.0, 1.0))


@dataclass(frozen=True)
class AngleStatistics:
    """Min/max/average/std of pairwise angles, intratopic and intertopic.

    Angles are in radians, exactly as the paper reports them.
    """

    intratopic_min: float
    intratopic_max: float
    intratopic_mean: float
    intratopic_std: float
    intertopic_min: float
    intertopic_max: float
    intertopic_mean: float
    intertopic_std: float
    n_intratopic_pairs: int
    n_intertopic_pairs: int

    def as_rows(self) -> dict[str, list[float]]:
        """Rows keyed ``intratopic`` / ``intertopic``: [min, max, mean, std]."""
        return {
            "intratopic": [self.intratopic_min, self.intratopic_max,
                           self.intratopic_mean, self.intratopic_std],
            "intertopic": [self.intertopic_min, self.intertopic_max,
                           self.intertopic_mean, self.intertopic_std],
        }


def angle_statistics(vectors, labels) -> AngleStatistics:
    """Pairwise-angle statistics of a document representation.

    Args:
        vectors: ``(d, m)`` array of document representation columns.
        labels: length-``m`` topic labels.

    Returns:
        :class:`AngleStatistics` over all unordered document pairs,
        split by whether the pair shares a topic.  Sides with no pairs
        report NaN.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if vectors.ndim != 2:
        raise ValidationError("vectors must be 2-D (dims × documents)")
    if labels.shape != (vectors.shape[1],):
        raise ValidationError(
            f"{vectors.shape[1]} document columns but "
            f"{labels.shape[0]} labels")
    angles = np.arccos(cosine_similarity_matrix(vectors))
    intra_mask, inter_mask = _pair_masks(labels)
    intra = angles[intra_mask]
    inter = angles[inter_mask]

    def stats(values):
        if values.size == 0:
            nan = float("nan")
            return nan, nan, nan, nan
        return (float(values.min()), float(values.max()),
                float(values.mean()), float(values.std()))

    i_min, i_max, i_mean, i_std = stats(intra)
    e_min, e_max, e_mean, e_std = stats(inter)
    return AngleStatistics(
        intratopic_min=i_min, intratopic_max=i_max,
        intratopic_mean=i_mean, intratopic_std=i_std,
        intertopic_min=e_min, intertopic_max=e_max,
        intertopic_mean=e_mean, intertopic_std=e_std,
        n_intratopic_pairs=int(intra.size),
        n_intertopic_pairs=int(inter.size))


def pairwise_angle_table(original_stats: AngleStatistics,
                         lsi_stats: AngleStatistics) -> list[Table]:
    """Render the paper's table: original vs LSI space, intra vs inter.

    Returns two :class:`~repro.utils.tables.Table` objects ("Intratopic"
    and "Intertopic"), each with Original-space and LSI-space rows of
    min/max/average/std — the paper's exact layout.
    """
    headers = ["", "Min", "Max", "Average", "Std."]
    intra = Table(title="Intratopic", headers=headers, precision=3)
    intra.add_row(["Original space"]
                  + original_stats.as_rows()["intratopic"])
    intra.add_row(["LSI space"] + lsi_stats.as_rows()["intratopic"])
    inter = Table(title="Intertopic", headers=headers, precision=3)
    inter.add_row(["Original space"]
                  + original_stats.as_rows()["intertopic"])
    inter.add_row(["LSI space"] + lsi_stats.as_rows()["intertopic"])
    return [intra, inter]
