"""Linear-algebra substrate: sparse matrices, SVD engines, perturbation theory.

This package is the computational foundation of the reproduction:

- :mod:`repro.linalg.sparse` — a compressed-sparse-row matrix implemented
  from scratch (term–document matrices are sparse, and the paper's cost
  model counts ``c`` nonzeros per document column).
- :mod:`repro.linalg.dense` — dense kernels: Gram products, modified
  Gram–Schmidt, projections, principal angles.
- :mod:`repro.linalg.power_iteration` — dominant eigenpairs and block
  subspace iteration on Gram operators.
- :mod:`repro.linalg.lanczos` — Golub–Kahan–Lanczos bidiagonalisation with
  full reorthogonalisation (our stand-in for the paper's SVDPACK).
- :mod:`repro.linalg.svd` — the common :class:`~repro.linalg.svd.SVDResult`
  container and the engine front-end :func:`~repro.linalg.svd.truncated_svd`.
- :mod:`repro.linalg.perturbation` — sin-Θ subspace distances, Procrustes
  alignment, and the Stewart/Lemma-1 machinery behind Theorems 2–3.
- :mod:`repro.linalg.incremental` — streaming, out-of-core SVD: mergeable
  :class:`~repro.linalg.incremental.PartialSVD` block factorisations with
  an explicit merge error bound, behind ``truncated_svd(engine="incremental")``.
"""

from repro.linalg.dense import (
    cosine_similarity_matrix,
    gram_matrix,
    normalize_columns,
    orthonormalize_columns,
    principal_angles,
    project_onto_basis,
)
from repro.linalg.incremental import (
    PartialSVD,
    block_updates,
    incremental_svd,
    iter_column_blocks,
    merge,
    polish,
)
from repro.linalg.lanczos import lanczos_svd
from repro.linalg.perturbation import (
    align_bases,
    residual_after_rotation,
    sin_theta_distance,
    stewart_invariant_subspace_bound,
)
from repro.linalg.power_iteration import (
    dominant_eigenpair,
    subspace_iteration_svd,
)
from repro.linalg.randomized import (
    adaptive_rank_svd,
    randomized_range_finder,
    randomized_svd,
)
from repro.linalg.sparse import CSRMatrix
from repro.linalg.svd import (
    SVDResult,
    exact_svd,
    low_rank_residual,
    truncated_svd,
)

__all__ = [
    "CSRMatrix",
    "PartialSVD",
    "SVDResult",
    "adaptive_rank_svd",
    "align_bases",
    "block_updates",
    "cosine_similarity_matrix",
    "dominant_eigenpair",
    "exact_svd",
    "gram_matrix",
    "incremental_svd",
    "iter_column_blocks",
    "lanczos_svd",
    "low_rank_residual",
    "merge",
    "normalize_columns",
    "orthonormalize_columns",
    "polish",
    "principal_angles",
    "project_onto_basis",
    "randomized_range_finder",
    "randomized_svd",
    "residual_after_rotation",
    "sin_theta_distance",
    "stewart_invariant_subspace_bound",
    "subspace_iteration_svd",
    "truncated_svd",
]
