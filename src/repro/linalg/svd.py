"""Singular value decomposition front-end.

All SVD consumers in the library go through :func:`truncated_svd`, which
dispatches to one of three engines:

- ``"lanczos"`` — Golub–Kahan–Lanczos bidiagonalisation
  (:mod:`repro.linalg.lanczos`), the default and the stand-in for the
  paper's SVDPACK;
- ``"subspace"`` — block subspace iteration
  (:mod:`repro.linalg.power_iteration`);
- ``"randomized"`` — the Halko-style randomized range-finder SVD
  (:mod:`repro.linalg.randomized`), the modern descendant of the
  paper's §5 random-projection idea;
- ``"exact"`` — dense LAPACK SVD, used as ground truth in tests and for
  matrices small enough that densifying is free;
- ``"incremental"`` — blocked mergeable-SVD streaming decomposition
  (:mod:`repro.linalg.incremental`), the in-memory front-end of the
  out-of-core path (column blocks factored independently and merged
  in constant space).

The engines all return an :class:`SVDResult`, which also carries the
Eckart–Young residual bookkeeping the paper's Theorem 1 and Theorem 5 are
phrased in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.linalg.operator import as_operator
from repro.utils.rng import SeedLike
from repro.utils.validation import check_rank

__all__ = [
    "ENGINES",
    "SVDResult",
    "best_rank_k_error",
    "engine_options",
    "exact_svd",
    "low_rank_residual",
    "truncated_svd",
]

#: Names of the available SVD engines.
ENGINES = ("lanczos", "subspace", "randomized", "exact", "incremental")

#: Engine name → tuning options its ``**engine_kwargs`` accepts.
_ENGINE_OPTIONS = {
    "lanczos": ("extra_steps", "max_steps", "tol"),
    "subspace": ("oversample", "max_iter", "tol"),
    "randomized": ("oversample", "power_iterations"),
    "exact": (),
    "incremental": ("block_size", "oversample", "polish_iterations",
                    "inner_engine"),
}


def engine_options(engine: str) -> tuple[str, ...]:
    """The tuning options :func:`truncated_svd` accepts for ``engine``.

    Raises:
        ValidationError: if ``engine`` is not one of :data:`ENGINES`.
    """
    try:
        return _ENGINE_OPTIONS[engine]
    except KeyError:
        raise ValidationError(
            f"unknown SVD engine {engine!r}; expected one of {ENGINES}"
        ) from None


def _check_engine_kwargs(engine: str, engine_kwargs) -> None:
    """Reject unknown ``**engine_kwargs`` instead of ignoring typos."""
    allowed = engine_options(engine)
    unknown = sorted(set(engine_kwargs) - set(allowed))
    if unknown:
        valid = ", ".join(allowed) if allowed else "(none)"
        raise ValidationError(
            f"unknown option(s) {unknown} for SVD engine {engine!r}; "
            f"valid options: {valid}")


@dataclass(frozen=True)
class SVDResult:
    """A (possibly truncated) singular value decomposition ``A ≈ U·S·Vᵀ``.

    Attributes:
        u: ``(n, k)`` left singular vectors (orthonormal columns) — the
           basis of the LSI space when ``A`` is a term–document matrix.
        singular_values: length-``k`` singular values, descending.
        vt: ``(k, m)`` right singular vectors (orthonormal rows).
        frobenius_norm_sq: ``‖A‖_F²`` of the *original* matrix, retained so
           residual energies can be reported without keeping ``A`` around.
    """

    u: np.ndarray
    singular_values: np.ndarray
    vt: np.ndarray
    frobenius_norm_sq: float

    def __post_init__(self):
        if self.u.ndim != 2 or self.vt.ndim != 2:
            raise ValidationError("u and vt must be 2-D")
        k = self.singular_values.shape[0]
        if self.u.shape[1] != k or self.vt.shape[0] != k:
            raise ValidationError(
                f"inconsistent ranks: u has {self.u.shape[1]} columns, "
                f"vt has {self.vt.shape[0]} rows, {k} singular values")
        if np.any(np.diff(self.singular_values) > 1e-9):
            raise ValidationError("singular values must be non-increasing")
        if np.any(self.singular_values < -1e-12):
            raise ValidationError("singular values must be non-negative")

    @property
    def rank(self) -> int:
        """Number of retained singular triplets ``k``."""
        return int(self.singular_values.shape[0])

    @property
    def shape(self) -> tuple[int, int]:
        """Shape ``(n, m)`` of the decomposed matrix."""
        return (self.u.shape[0], self.vt.shape[1])

    def truncate(self, rank: int) -> "SVDResult":
        """Drop all but the leading ``rank`` triplets."""
        rank = check_rank(rank, self.rank, "rank")
        return SVDResult(self.u[:, :rank].copy(),
                         self.singular_values[:rank].copy(),
                         self.vt[:rank].copy(),
                         self.frobenius_norm_sq)

    def reconstruct(self) -> np.ndarray:
        """Materialise the rank-``k`` approximation ``Aₖ = U·S·Vᵀ``."""
        return (self.u * self.singular_values) @ self.vt

    def document_vectors(self) -> np.ndarray:
        """LSI document representations: the rows of ``Vₖ·Dₖ``, as columns.

        Returns a ``(k, m)`` array whose column ``j`` is document ``j``'s
        coordinate vector in the LSI space — exactly ``Uₖᵀ·A`` column ``j``.
        """
        return self.singular_values[:, None] * self.vt

    def captured_energy(self) -> float:
        """``‖Aₖ‖_F² = Σ σᵢ²`` over retained triplets.

        Summed with :func:`math.fsum` so prefixes of the spectrum yield
        non-decreasing energies — numpy's pairwise summation can round a
        4-term prefix *above* the full 10-term sum, which breaks the
        monotonicity of :meth:`residual_norm` under :meth:`truncate`.
        """
        return math.fsum(float(s) * float(s)
                         for s in self.singular_values)

    def residual_energy(self) -> float:
        """``‖A − Aₖ‖_F² = ‖A‖_F² − ‖Aₖ‖_F²`` (clamped at 0).

        Valid by Pythagoras because ``Aₖ`` is an orthogonal projection of
        ``A`` — the identity the Theorem 5 proof leans on.
        """
        return max(0.0, self.frobenius_norm_sq - self.captured_energy())

    def residual_norm(self) -> float:
        """``‖A − Aₖ‖_F``."""
        return float(np.sqrt(self.residual_energy()))

    def energy_fraction(self) -> float:
        """Fraction of ``‖A‖_F²`` captured by the retained triplets."""
        if self.frobenius_norm_sq == 0:
            return 1.0
        return min(1.0, self.captured_energy() / self.frobenius_norm_sq)


def exact_svd(matrix) -> SVDResult:
    """Full dense SVD via LAPACK; returns all ``min(n, m)`` triplets."""
    op = as_operator(matrix)
    dense = op.to_dense()
    u, s, vt = np.linalg.svd(dense, full_matrices=False)
    return SVDResult(u, s, vt, float(np.sum(dense * dense)))


def truncated_svd(matrix, rank, *, engine: str = "lanczos",
                  seed: SeedLike = None,
                  **engine_kwargs) -> SVDResult:
    """Leading-``rank`` SVD of a dense or CSR matrix.

    Args:
        matrix: ``n × m`` dense array or
            :class:`~repro.linalg.sparse.CSRMatrix`.
        rank: number of singular triplets to retain (the LSI ``k``).
        engine: one of :data:`ENGINES` (``"lanczos"``, ``"subspace"``,
            ``"randomized"``, ``"exact"``, ``"incremental"``).
        seed: RNG seed forwarded to iterative engines.
        **engine_kwargs: engine-specific tuning (e.g. ``extra_steps`` for
            Lanczos, ``oversample`` for subspace iteration); unknown
            options raise :class:`~repro.errors.ValidationError` listing
            the valid ones (see :func:`engine_options`).

    Returns:
        :class:`SVDResult` with exactly ``rank`` triplets.
    """
    _check_engine_kwargs(engine, engine_kwargs)
    op = as_operator(matrix)
    rank = check_rank(rank, min(op.shape), "rank")
    norm_sq = op.frobenius_norm() ** 2

    if engine == "exact":
        return exact_svd(op).truncate(rank)
    if engine == "incremental":
        from repro.linalg.incremental import incremental_svd

        return incremental_svd(matrix, rank, seed=seed,
                               **engine_kwargs)
    if engine == "lanczos":
        from repro.linalg.lanczos import lanczos_svd

        u, s, vt = lanczos_svd(op, rank, seed=seed, **engine_kwargs)
    elif engine == "subspace":
        from repro.linalg.power_iteration import subspace_iteration_svd

        u, s, vt = subspace_iteration_svd(op, rank, seed=seed,
                                          **engine_kwargs)
    elif engine == "randomized":
        from repro.linalg.randomized import randomized_svd

        u, s, vt = randomized_svd(op, rank, seed=seed, **engine_kwargs)
    else:
        raise ValidationError(
            f"unknown SVD engine {engine!r}; expected one of {ENGINES}")
    return SVDResult(u, s, vt, norm_sq)


def low_rank_residual(matrix, svd_result: SVDResult) -> float:
    """Exact ``‖A − Aₖ‖_F`` computed against the original matrix.

    Unlike :meth:`SVDResult.residual_norm` (which uses the Pythagorean
    shortcut), this materialises the difference — the cross-check used by
    the Eckart–Young tests.
    """
    op = as_operator(matrix)
    dense = op.to_dense()
    return float(np.linalg.norm(dense - svd_result.reconstruct()))


def best_rank_k_error(matrix, rank: int) -> float:
    """The Eckart–Young optimum ``‖A − Aₖ‖_F = sqrt(Σ_{i>k} σᵢ²)``."""
    op = as_operator(matrix)
    rank = check_rank(rank, min(op.shape), "rank")
    sigma = np.linalg.svd(op.to_dense(), compute_uv=False)
    return float(np.sqrt(np.sum(sigma[rank:] ** 2)))
