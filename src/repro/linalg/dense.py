"""Dense linear-algebra kernels used across the library.

These are the small building blocks the SVD engines and the analysis code
share: Gram products, column normalisation, modified Gram–Schmidt
orthonormalisation, orthogonal projections, cosine similarity, and
principal angles between subspaces.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.utils.validation import check_matrix, check_vector

__all__ = [
    "ZERO_NORM_TOL",
    "angle_between",
    "cosine_similarity",
    "cosine_similarity_matrix",
    "gram_matrix",
    "normalize_columns",
    "normalize_columns_into",
    "orthonormalize_columns",
    "pairwise_angles",
    "principal_angles",
    "project_onto_basis",
    "reconstruct_from_basis",
    "relative_error",
    "spectral_norm",
]

#: Columns with norm below this are treated as numerically zero.
ZERO_NORM_TOL = 1e-12


def gram_matrix(matrix) -> np.ndarray:
    """Return ``AᵀA`` for a dense matrix ``A``."""
    matrix = check_matrix(matrix, "matrix")
    return matrix.T @ matrix


def normalize_columns(
        matrix, *, zero_tol: float = ZERO_NORM_TOL,
) -> "tuple[np.ndarray, np.ndarray]":
    """Scale each column of ``matrix`` to unit Euclidean norm.

    Columns whose norm is below ``zero_tol`` are left as zero vectors
    rather than being divided by ~0.

    Returns:
        ``(normalized, norms)`` — the normalised matrix and the original
        column norms.
    """
    matrix = check_matrix(matrix, "matrix")
    norms = np.linalg.norm(matrix, axis=0)
    safe = np.where(norms > zero_tol, norms, 1.0)
    return matrix / safe, norms


def normalize_columns_into(matrix, out, *,
                           zero_tol: float = ZERO_NORM_TOL) -> np.ndarray:
    """Allocation-free :func:`normalize_columns` into a scratch buffer.

    The serving hot path calls this once per query batch with a
    preallocated ``out`` of the batch's shape, so repeated batches of
    one shape normalise without touching the allocator.  Unlike
    :func:`normalize_columns` the input is *not* coerced to float64:
    the computation runs in ``matrix``'s own dtype (the float32 compute
    path depends on that), and for float64 inputs the written values
    are bit-identical to the allocating version.

    Args:
        matrix: dense ``(n, p)`` array to normalise (not modified).
        out: writable ``(n, p)`` array of the same dtype receiving the
            unit columns; may alias ``matrix``.
        zero_tol: columns with norm at or below this stay zero vectors.

    Returns:
        The original column norms, shape ``(p,)``, in ``matrix``'s
        dtype.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ShapeError(
            f"matrix must be 2-D, got shape {matrix.shape}")
    if out.shape != matrix.shape or out.dtype != matrix.dtype:
        raise ShapeError(
            f"out (shape {out.shape}, dtype {out.dtype}) does not "
            f"match matrix (shape {matrix.shape}, dtype "
            f"{matrix.dtype})")
    norms = np.linalg.norm(matrix, axis=0)
    safe = np.where(norms > zero_tol, norms,
                    matrix.dtype.type(1.0))
    np.divide(matrix, safe, out=out)
    return norms


def orthonormalize_columns(matrix, *, zero_tol: float = ZERO_NORM_TOL,
                           passes: int = 2) -> np.ndarray:
    """Orthonormalise the columns of ``matrix`` by modified Gram–Schmidt.

    Runs ``passes`` sweeps (two by default — the classical "twice is
    enough" rule) and drops columns that become numerically zero, so the
    result may have fewer columns than the input when the input is
    rank-deficient.

    Returns an ``(n, r)`` matrix with orthonormal columns spanning the
    column space of the input (``r ≤`` input columns).
    """
    matrix = check_matrix(matrix, "matrix").copy()
    if matrix.shape[1] == 0:
        return matrix
    kept: list[np.ndarray] = []
    for j in range(matrix.shape[1]):
        v = matrix[:, j].copy()
        for _ in range(passes):
            for q in kept:
                v -= (q @ v) * q
        norm = np.linalg.norm(v)
        if norm > zero_tol:
            kept.append(v / norm)
    if not kept:
        return np.zeros((matrix.shape[0], 0))
    return np.column_stack(kept)


def project_onto_basis(vectors, basis) -> np.ndarray:
    """Coordinates of ``vectors`` (columns) in an orthonormal ``basis``.

    ``basis`` is ``(n, k)`` with orthonormal columns; ``vectors`` is
    ``(n,)`` or ``(n, p)``.  Returns ``basisᵀ·vectors`` with matching
    dimensionality — the projection used to fold queries into the LSI
    space.
    """
    basis = check_matrix(basis, "basis")
    arr = np.asarray(vectors, dtype=np.float64)
    if arr.ndim == 1:
        if arr.shape[0] != basis.shape[0]:
            raise ShapeError(
                f"vector length {arr.shape[0]} does not match basis rows "
                f"{basis.shape[0]}")
        return basis.T @ arr
    if arr.ndim == 2:
        if arr.shape[0] != basis.shape[0]:
            raise ShapeError(
                f"vectors have {arr.shape[0]} rows but basis has "
                f"{basis.shape[0]}")
        return basis.T @ arr
    raise ShapeError(f"vectors must be 1-D or 2-D, got shape {arr.shape}")


def reconstruct_from_basis(coordinates, basis) -> np.ndarray:
    """Inverse of :func:`project_onto_basis`: ``basis @ coordinates``."""
    basis = check_matrix(basis, "basis")
    coords = np.asarray(coordinates, dtype=np.float64)
    return basis @ coords


def cosine_similarity(u, v, *, zero_tol: float = ZERO_NORM_TOL) -> float:
    """Cosine of the angle between two vectors (0.0 if either is ~zero)."""
    u = check_vector(u, "u")
    v = check_vector(v, "v")
    if u.shape != v.shape:
        raise ShapeError(f"shape mismatch: {u.shape} vs {v.shape}")
    nu, nv = np.linalg.norm(u), np.linalg.norm(v)
    if nu <= zero_tol or nv <= zero_tol:
        return 0.0
    return float(np.clip((u @ v) / (nu * nv), -1.0, 1.0))


def cosine_similarity_matrix(columns_a, columns_b=None,
                             *, zero_tol: float = ZERO_NORM_TOL) -> np.ndarray:
    """All-pairs cosine similarity between column sets.

    ``columns_a`` is ``(n, p)``; ``columns_b`` defaults to ``columns_a``.
    Returns a ``(p, q)`` matrix of cosines, with rows/columns of ~zero
    vectors set to 0.
    """
    a = check_matrix(columns_a, "columns_a")
    b = a if columns_b is None else check_matrix(columns_b, "columns_b")
    if a.shape[0] != b.shape[0]:
        raise ShapeError(
            f"column sets live in different dimensions: {a.shape[0]} vs "
            f"{b.shape[0]}")
    a_unit, a_norms = normalize_columns(a, zero_tol=zero_tol)
    b_unit, b_norms = normalize_columns(b, zero_tol=zero_tol)
    sims = a_unit.T @ b_unit
    sims[a_norms <= zero_tol, :] = 0.0
    sims[:, b_norms <= zero_tol] = 0.0
    return np.clip(sims, -1.0, 1.0)


def angle_between(u, v) -> float:
    """Angle between two vectors in radians, in [0, π].

    The paper's experimental table measures raw angles ("not some
    function of the angle such as the cosine"), so this is the primitive
    behind :mod:`repro.core.skewness`.
    """
    cos = cosine_similarity(u, v)
    return float(np.arccos(cos))


def pairwise_angles(columns) -> np.ndarray:
    """Angles (radians) between all column pairs; shape ``(p, p)``."""
    sims = cosine_similarity_matrix(columns)
    return np.arccos(np.clip(sims, -1.0, 1.0))


def principal_angles(basis_a, basis_b) -> np.ndarray:
    """Principal angles between the subspaces spanned by two bases.

    Both bases are orthonormalised internally, so callers may pass any
    full-column-rank spanning sets.  Returns angles in ascending order,
    length ``min(rank_a, rank_b)``.
    """
    qa = orthonormalize_columns(check_matrix(basis_a, "basis_a"))
    qb = orthonormalize_columns(check_matrix(basis_b, "basis_b"))
    if qa.shape[0] != qb.shape[0]:
        raise ShapeError(
            f"bases live in different dimensions: {qa.shape[0]} vs "
            f"{qb.shape[0]}")
    if qa.shape[1] == 0 or qb.shape[1] == 0:
        return np.zeros(0)
    sigma = np.linalg.svd(qa.T @ qb, compute_uv=False)
    return np.arccos(np.clip(sigma, -1.0, 1.0))


def spectral_norm(matrix, *, exact_threshold: int = 512) -> float:
    """The 2-norm (largest singular value) of a dense matrix.

    Small matrices use an exact SVD; larger ones fall back to power
    iteration on the Gram operator for speed.
    """
    matrix = check_matrix(matrix, "matrix")
    if matrix.size == 0:
        return 0.0
    if min(matrix.shape) <= exact_threshold:
        return float(np.linalg.svd(matrix, compute_uv=False)[0])
    from repro.linalg.power_iteration import dominant_singular_value

    return dominant_singular_value(matrix)


def relative_error(approx, exact, *, zero_tol: float = ZERO_NORM_TOL) -> float:
    """Frobenius relative error ``‖approx − exact‖_F / ‖exact‖_F``."""
    approx = check_matrix(approx, "approx")
    exact = check_matrix(exact, "exact")
    if approx.shape != exact.shape:
        raise ShapeError(
            f"shape mismatch: {approx.shape} vs {exact.shape}")
    denom = np.linalg.norm(exact)
    if denom <= zero_tol:
        raise ValidationError("exact matrix is numerically zero")
    return float(np.linalg.norm(approx - exact) / denom)
