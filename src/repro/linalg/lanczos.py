"""Golub–Kahan–Lanczos bidiagonalisation for truncated SVD.

The paper's experiments used SVDPACK, a Fortran Lanczos package.  This
module is the reproduction's stand-in: one-sided Golub–Kahan
bidiagonalisation with full reorthogonalisation, followed by an SVD of the
small bidiagonal matrix.  Full reorthogonalisation costs
``O(steps² · n)`` but is rock-solid for the corpus sizes this library
targets, which is the same engineering trade-off SVDPACK's dense-reortho
variants made.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.linalg.operator import as_operator
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int, check_rank

__all__ = ["BREAKDOWN_TOL", "lanczos_bidiagonalization", "lanczos_svd"]

#: Breakdown threshold: a Lanczos vector with norm below this terminates
#: the recurrence (the Krylov space is exhausted).
BREAKDOWN_TOL = 1e-12


def _reorthogonalize(vector: np.ndarray, basis: list[np.ndarray]) -> np.ndarray:
    """Remove components of ``vector`` along each basis vector (two passes)."""
    for _ in range(2):
        for q in basis:
            vector = vector - (q @ vector) * q
    return vector


def lanczos_bidiagonalization(
        matrix, steps: int, *, seed: SeedLike = None,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Run ``steps`` of Golub–Kahan bidiagonalisation with reorthogonalisation.

    Produces ``A ≈ P · B · Qᵀ`` where ``P`` (n × s) and ``Q`` (m × s) have
    orthonormal columns and ``B`` is upper-bidiagonal with diagonal
    ``alphas`` and superdiagonal ``betas``.

    Returns:
        ``(P, alphas, betas, Q)``.  ``len(alphas) == s`` and
        ``len(betas) == s - 1`` where ``s ≤ steps`` (early breakdown means
        the Krylov space is exhausted — the factorisation is then exact).
    """
    op = as_operator(matrix)
    n, m = op.shape
    steps = check_positive_int(steps, "steps")
    steps = min(steps, min(n, m))
    rng = as_generator(seed)

    q = rng.standard_normal(m)
    q /= np.linalg.norm(q)
    q_basis: list[np.ndarray] = [q]
    p_basis: list[np.ndarray] = []
    alphas: list[float] = []
    betas: list[float] = []

    for step in range(steps):
        p = op.matvec(q_basis[-1])
        if betas:
            p = p - betas[-1] * p_basis[-1]
        p = _reorthogonalize(p, p_basis)
        alpha = float(np.linalg.norm(p))
        if alpha <= BREAKDOWN_TOL:
            break
        p /= alpha
        p_basis.append(p)
        alphas.append(alpha)

        next_q = op.rmatvec(p) - alpha * q_basis[-1]
        next_q = _reorthogonalize(next_q, q_basis)
        beta = float(np.linalg.norm(next_q))
        if beta <= BREAKDOWN_TOL or step == steps - 1:
            break
        next_q /= beta
        q_basis.append(next_q)
        betas.append(beta)

    p_matrix = np.column_stack(p_basis) if p_basis else np.zeros((n, 0))
    q_matrix = np.column_stack(q_basis[:len(p_basis)]) if p_basis else \
        np.zeros((m, 0))
    return (p_matrix, np.asarray(alphas), np.asarray(betas), q_matrix)


def _bidiagonal_to_dense(alphas: np.ndarray, betas: np.ndarray) -> np.ndarray:
    """Materialise the small upper-bidiagonal matrix B.

    The recurrence gives ``A·qⱼ = βⱼ₋₁·pⱼ₋₁ + αⱼ·pⱼ`` and
    ``Aᵀ·pⱼ = αⱼ·qⱼ + βⱼ·qⱼ₊₁``, i.e. ``A·Q = P·B`` with the alphas on
    the diagonal and the betas on the *super*diagonal.
    """
    s = alphas.shape[0]
    b = np.zeros((s, s))
    idx = np.arange(s)
    b[idx, idx] = alphas
    if betas.size:
        sup = np.arange(betas.shape[0])
        b[sup, sup + 1] = betas
    return b


def lanczos_svd(matrix, rank, *, extra_steps: int = 12,
                seed: SeedLike = None,
                max_steps: int | None = None, tol: float = 1e-9):
    """Truncated SVD via Golub–Kahan–Lanczos bidiagonalisation.

    The Krylov space is grown adaptively: starting from
    ``rank + extra_steps`` steps, the step count doubles until the
    leading ``rank`` Ritz values stabilise within ``tol`` (relative) or
    the space is exhausted, at which point the factorisation is exact.
    Random matrices with clustered spectra therefore converge correctly,
    just with more steps than a fast-decaying corpus spectrum needs.

    Args:
        matrix: dense array or :class:`~repro.linalg.sparse.CSRMatrix`.
        rank: number of leading singular triplets wanted.
        extra_steps: initial Krylov steps beyond ``rank``.
        seed: RNG seed for the start vector.
        max_steps: optional hard cap on Krylov steps (defaults to
            ``min(n, m)``).
        tol: relative stabilisation tolerance on the leading Ritz values.

    Returns:
        ``(U, S, Vt)`` — the leading ``rank`` singular triplets.

    Raises:
        ConvergenceError: if the Krylov space breaks down before ``rank``
            triplets are available (i.e. the matrix rank is below the
            requested rank).
    """
    op = as_operator(matrix)
    n, m = op.shape
    rank = check_rank(rank, min(n, m), "rank")
    budget = min(n, m) if max_steps is None else min(max_steps, min(n, m))
    steps = min(rank + max(0, int(extra_steps)), budget)

    previous_ritz = None
    while True:
        p_matrix, alphas, betas, q_matrix = lanczos_bidiagonalization(
            op, steps, seed=seed)
        available = alphas.shape[0]
        if available < rank:
            raise ConvergenceError(
                f"Lanczos broke down after {available} steps; matrix rank "
                f"is below the requested rank {rank}", iterations=available)
        small = _bidiagonal_to_dense(alphas, betas)
        u_small, sigma, vt_small = np.linalg.svd(small)
        ritz = sigma[:rank]
        exhausted = available < steps or steps >= budget
        converged = previous_ritz is not None and np.allclose(
            ritz, previous_ritz, rtol=tol,
            atol=tol * max(1.0, float(ritz[0])))
        if exhausted or converged:
            break
        previous_ritz = ritz
        steps = min(steps * 2, budget)

    u_full = p_matrix @ u_small[:, :rank]
    v_full = q_matrix @ vt_small[:rank].T
    return u_full, sigma[:rank].copy(), v_full.T
