"""Matrix perturbation machinery behind Lemma 1 and Theorem 3.

Lemma 1 of the paper states: if the top-``k`` singular values of ``A`` are
well separated from the rest and ``A' = A + F`` with ``‖F‖₂ = ε`` small,
then ``U'ₖ = Uₖ·R + G`` for some orthonormal ``R`` and ``‖G‖₂ = O(ε)`` —
i.e. the leading left singular subspace moves only ``O(ε)``, up to an
internal rotation.  The proof invokes Stewart's invariant-subspace theorem
(Theorem 7 in the paper's appendix).

This module provides the computable pieces:

- :func:`sin_theta_distance` — the canonical distance between subspaces;
- :func:`align_bases` — the optimal rotation ``R`` (orthogonal Procrustes);
- :func:`residual_after_rotation` — ``‖U'ₖ − Uₖ·R‖₂``, the empirical
  ``‖G‖``;
- :func:`stewart_invariant_subspace_bound` — evaluates Stewart's ``δ`` and
  the ``2‖E₂₁‖₂/δ`` bound for an explicit symmetric perturbation;
- :func:`singular_subspace_perturbation` — end-to-end Lemma 1 measurement
  for a matrix and its perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.linalg.dense import orthonormalize_columns, principal_angles
from repro.utils.validation import check_matrix, check_rank

__all__ = [
    "StewartBound",
    "SubspacePerturbation",
    "align_bases",
    "residual_after_rotation",
    "sin_theta_distance",
    "singular_subspace_perturbation",
    "stewart_invariant_subspace_bound",
]


def sin_theta_distance(basis_a, basis_b) -> float:
    """``sin Θ_max`` between the subspaces spanned by two bases.

    This is the spectral-norm sin-theta distance: the sine of the largest
    principal angle.  It is 0 when the subspaces coincide and 1 when some
    direction of one is orthogonal to all of the other.
    """
    angles = principal_angles(basis_a, basis_b)
    if angles.size == 0:
        return 0.0
    return float(np.sin(np.max(angles)))


def align_bases(source, target) -> np.ndarray:
    """Optimal orthogonal ``R`` minimising ``‖target − source·R‖_F``.

    Classic orthogonal Procrustes: ``R = W·Zᵀ`` from the SVD
    ``sourceᵀ·target = W·Σ·Zᵀ``.  Both inputs are ``(n, k)``; returns the
    ``(k, k)`` rotation used to state Lemma 1's ``U'ₖ = Uₖ·R + G``.
    """
    src = check_matrix(source, "source")
    tgt = check_matrix(target, "target")
    if src.shape != tgt.shape:
        raise ShapeError(
            f"source and target must share a shape: {src.shape} vs "
            f"{tgt.shape}")
    w, _, zt = np.linalg.svd(src.T @ tgt)
    return w @ zt


def residual_after_rotation(source, target) -> float:
    """``‖target − source·R‖₂`` with the Procrustes-optimal ``R``.

    For Lemma 1 this is the measured ``‖G‖₂`` when ``source = Uₖ`` and
    ``target = U'ₖ``.
    """
    src = check_matrix(source, "source")
    tgt = check_matrix(target, "target")
    rotation = align_bases(src, tgt)
    diff = tgt - src @ rotation
    if diff.size == 0:
        return 0.0
    return float(np.linalg.svd(diff, compute_uv=False)[0])


@dataclass(frozen=True)
class StewartBound:
    """Outcome of evaluating Stewart's theorem on a concrete perturbation.

    Attributes:
        applicable: whether the theorem's hypotheses hold (``δ > 0`` and
            ``‖E₁₂‖₂ ≤ δ/2``).
        delta: Stewart's gap ``λ_min(B₁₁) − λ_max(B₂₂) − ‖E₁₁‖ − ‖E₂₂‖``.
        bound: the guaranteed ``‖P‖₂ ≤ 2‖E₂₁‖₂/δ`` (NaN when not
            applicable).
        e_blocks_norms: spectral norms of the four E blocks
            ``(‖E₁₁‖, ‖E₁₂‖, ‖E₂₁‖, ‖E₂₂‖)``.
    """

    applicable: bool
    delta: float
    bound: float
    e_blocks_norms: tuple[float, float, float, float]


def _block_norms(matrix: np.ndarray,
                 k: int) -> "tuple[float, float, float, float]":
    e11 = matrix[:k, :k]
    e12 = matrix[:k, k:]
    e21 = matrix[k:, :k]
    e22 = matrix[k:, k:]

    def norm2(block):
        if block.size == 0:
            return 0.0
        return float(np.linalg.svd(block, compute_uv=False)[0])

    return norm2(e11), norm2(e12), norm2(e21), norm2(e22)


def stewart_invariant_subspace_bound(symmetric, perturbation,
                                     rank) -> StewartBound:
    """Evaluate Stewart's invariant-subspace theorem (paper Theorem 7).

    Args:
        symmetric: the unperturbed symmetric matrix ``B`` (e.g. ``A·Aᵀ``).
        perturbation: the symmetric perturbation ``E``.
        rank: the dimension ``k`` of the leading invariant subspace.

    The function diagonalises ``B``, rotates ``E`` into ``B``'s eigenbasis
    (so that ``range(Q₁)`` is invariant, as the theorem requires),
    computes Stewart's gap ``δ`` and, when the hypotheses hold, the bound
    ``‖P‖₂ ≤ 2‖E₂₁‖₂/δ`` on the tangent of the subspace rotation.
    """
    b = check_matrix(symmetric, "symmetric")
    e = check_matrix(perturbation, "perturbation")
    if b.shape != e.shape or b.shape[0] != b.shape[1]:
        raise ShapeError("symmetric and perturbation must be equal square "
                         f"shapes, got {b.shape} and {e.shape}")
    if not np.allclose(b, b.T, atol=1e-8):
        raise ValidationError("matrix B is not symmetric")
    if not np.allclose(e, e.T, atol=1e-8):
        raise ValidationError("perturbation E is not symmetric")
    rank = check_rank(rank, b.shape[0] - 1, "rank")

    eigenvalues, eigenvectors = np.linalg.eigh(b)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = eigenvalues[order]
    q = eigenvectors[:, order]

    rotated_e = q.T @ e @ q
    n11, n12, n21, n22 = _block_norms(rotated_e, rank)
    lambda_min = float(eigenvalues[rank - 1])
    mu_max = float(eigenvalues[rank])
    delta = lambda_min - mu_max - n11 - n22
    applicable = delta > 0 and n12 <= delta / 2
    bound = 2.0 * n21 / delta if applicable else float("nan")
    return StewartBound(applicable=applicable, delta=delta, bound=bound,
                        e_blocks_norms=(n11, n12, n21, n22))


@dataclass(frozen=True)
class SubspacePerturbation:
    """End-to-end Lemma 1 measurement for ``A`` vs ``A + F``.

    Attributes:
        epsilon: the perturbation size ``‖F‖₂``.
        sin_theta: sin-theta distance between the two leading-``k`` left
            singular subspaces.
        residual_norm: measured ``‖G‖₂`` where ``U'ₖ = Uₖ·R + G`` with the
            Procrustes-optimal ``R`` — the quantity Lemma 1 bounds by
            ``O(ε)``.
        gap_ratio: the separation ``(σₖ − σₖ₊₁)/σ₁`` driving the bound.
    """

    epsilon: float
    sin_theta: float
    residual_norm: float
    gap_ratio: float


def singular_subspace_perturbation(matrix, perturbation,
                                   rank) -> SubspacePerturbation:
    """Measure how the leading-``rank`` left singular subspace moves.

    Computes the quantities Lemma 1 relates: ``ε = ‖F‖₂``, the sin-theta
    distance between leading subspaces of ``A`` and ``A + F``, the
    Procrustes residual ``‖G‖₂``, and the relative singular gap.
    """
    a = check_matrix(matrix, "matrix")
    f = check_matrix(perturbation, "perturbation")
    if a.shape != f.shape:
        raise ShapeError(
            f"matrix and perturbation shapes differ: {a.shape} vs {f.shape}")
    rank = check_rank(rank, min(a.shape) - 1, "rank")

    u_a, s_a, _ = np.linalg.svd(a, full_matrices=False)
    u_b, _, _ = np.linalg.svd(a + f, full_matrices=False)
    uk_a = orthonormalize_columns(u_a[:, :rank])
    uk_b = orthonormalize_columns(u_b[:, :rank])

    epsilon = float(np.linalg.svd(f, compute_uv=False)[0]) if f.size else 0.0
    gap = float((s_a[rank - 1] - s_a[rank]) / s_a[0]) if s_a[0] > 0 else 0.0
    return SubspacePerturbation(
        epsilon=epsilon,
        sin_theta=sin_theta_distance(uk_a, uk_b),
        residual_norm=residual_after_rotation(uk_a, uk_b),
        gap_ratio=gap)
