"""Streaming, out-of-core SVD via mergeable partial factorisations.

The paper's guarantees are statements about the rank-``k`` spectral
structure of a corpus, but :func:`~repro.linalg.svd.truncated_svd` can
only obtain that structure by holding the whole term–document matrix in
RAM.  This module removes that constraint with the one-pass merge
algorithm popularised by gensim's LSI: decompose fixed-width *column
blocks* independently (each small enough to fit in memory), then fold
the per-block factors together with an orthogonal merge whose cost
depends only on the retained rank — never on the number of documents
already absorbed.

The merge of ``A₁ ≈ U₁·S₁·V₁ᵀ`` and ``A₂ ≈ U₂·S₂·V₂ᵀ`` for the column
concatenation ``[A₁ A₂]`` is exact on the inputs' approximants:

1. project: ``C = U₁ᵀ·U₂``;
2. orthogonalise the out-of-subspace part rank-revealingly:
   ``Q·R ≈ U₂ − U₁·C`` with the ``j ≤ k₂`` directions not already in
   ``span(U₁)`` (detected by SVD, so heavily-overlapping or
   ``k₁+k₂ > n`` merges stay orthonormal);
3. small SVD of the ``(k₁+j) × (k₁+k₂)`` middle matrix
   ``K = [[S₁, C·S₂], [0, R·S₂]] = Uₖ·Sₖ·Vₖᵀ``;
4. rotate: ``U = [U₁ Q]·Uₖ``, ``S = Sₖ``,
   ``Vᵀ = Vₖᵀ·diag(V₁ᵀ, V₂ᵀ)``, truncated back to the working rank.

Because ``[U₁ Q]`` has orthonormal columns and ``[C; R]`` satisfies
``CᵀC + RᵀR = I``, step 3 conserves energy exactly
(``‖K‖_F² = ‖S₁‖² + ‖S₂‖²``), so every Frobenius unit lost is lost in
an explicit truncation whose discarded tail is added to a running
triangle-inequality error bound (:attr:`PartialSVD.error_bound`).

:class:`PartialSVD` is the mergeable value type, :func:`merge` the
pairwise combiner, :func:`block_updates` the streaming driver (blocks
are decomposed by the existing ``lanczos``/``randomized`` engines), and
:func:`incremental_svd` the in-memory front-end behind
``truncated_svd(engine="incremental")``.  :func:`polish` optionally
runs power iterations against a re-readable matrix, which both improves
the factors and collapses the accumulated bound back to the exact
Pythagorean residual.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConvergenceError, EmptyCorpusError, \
    ValidationError
from repro.linalg.operator import as_operator
from repro.linalg.sparse import CSRMatrix
from repro.utils.rng import SeedLike
from repro.utils.validation import check_non_negative_int, \
    check_positive_int

__all__ = [
    "PartialSVD",
    "block_updates",
    "incremental_svd",
    "iter_column_blocks",
    "merge",
    "polish",
]


def iter_column_blocks(matrix, block_size: int):
    """Yield fixed-width column blocks of ``matrix``, last one ragged.

    Every block but the last has exactly ``block_size`` columns; the
    final block carries the ``n_columns % block_size`` remainder (when
    nonzero).  Dense inputs yield views (no copy); CSR inputs are
    transposed once and sliced in O(nnz) total, not O(nnz) per block.

    Args:
        matrix: dense ``(n, m)`` array or
            :class:`~repro.linalg.sparse.CSRMatrix`.
        block_size: positive width of each yielded block.

    Yields:
        Column blocks of the same type as the input (dense ndarray or
        :class:`~repro.linalg.sparse.CSRMatrix`), in column order.
    """
    block_size = check_positive_int(block_size, "block_size")
    if isinstance(matrix, CSRMatrix):
        yield from _iter_csr_blocks(matrix, block_size)
        return
    dense = np.asarray(matrix)
    if dense.ndim != 2:
        raise ValidationError(
            f"matrix must be 2-D, got shape {dense.shape}")
    for start in range(0, dense.shape[1], block_size):
        yield dense[:, start:start + block_size]


def _iter_csr_blocks(matrix: CSRMatrix, block_size: int):
    """CSR column blocks via one transpose + indptr slicing."""
    transposed = matrix.transpose()   # rows become documents
    n_terms, n_columns = matrix.shape
    for start in range(0, n_columns, block_size):
        stop = min(start + block_size, n_columns)
        lo = int(transposed.indptr[start])
        hi = int(transposed.indptr[stop])
        counts = np.diff(transposed.indptr[start:stop + 1])
        rows = transposed.indices[lo:hi]
        cols = np.repeat(np.arange(stop - start, dtype=np.int64),
                         counts)
        yield CSRMatrix.from_triplets(
            n_terms, stop - start, rows, cols,
            transposed.data[lo:hi])


@dataclass(frozen=True)
class PartialSVD:
    """A mergeable partial factorisation ``A ≈ U·S·Vᵀ`` of a column stream.

    The streaming counterpart of :class:`~repro.linalg.svd.SVDResult`:
    the same orthonormal-``U`` / descending-``S`` invariants, plus the
    bookkeeping a merge tree needs — how many columns have been
    absorbed, their total energy, and an explicit upper bound on the
    Frobenius error accumulated by every truncation on the way here.

    Attributes:
        u: ``(n, k)`` orthonormal left factor.
        singular_values: length-``k`` singular values, descending.
        vt: optional ``(k, m)`` right-factor cursor over the columns
            absorbed so far; ``None`` when the stream's document
            coordinates are not needed (term-basis-only updates).
        n_columns: number of matrix columns absorbed so far.
        frobenius_norm_sq: ``‖A‖_F²`` of *all* absorbed columns.
        error_bound: triangle-inequality bound on
            ``‖A − U·S·Vᵀ‖_F`` — the sum of each block fit's
            Pythagorean residual plus ``sqrt(Σ discarded σ²)`` of every
            merge/truncate on the path to this value.
        merges: number of pairwise merges folded into this value.
    """

    u: np.ndarray
    singular_values: np.ndarray
    vt: "np.ndarray | None"
    n_columns: int
    frobenius_norm_sq: float
    error_bound: float = 0.0
    merges: int = 0

    def __post_init__(self):
        if self.u.ndim != 2:
            raise ValidationError("u must be 2-D")
        k = self.singular_values.shape[0]
        if self.u.shape[1] != k:
            raise ValidationError(
                f"inconsistent ranks: u has {self.u.shape[1]} columns "
                f"but there are {k} singular values")
        if np.any(np.diff(self.singular_values) > 1e-9):
            raise ValidationError(
                "singular values must be non-increasing")
        if np.any(self.singular_values < -1e-12):
            raise ValidationError(
                "singular values must be non-negative")
        if self.vt is not None:
            if self.vt.ndim != 2 or self.vt.shape[0] != k:
                raise ValidationError(
                    f"vt must be (k, m) with k={k}; got "
                    f"{self.vt.shape}")
            if self.vt.shape[1] != self.n_columns:
                raise ValidationError(
                    f"vt covers {self.vt.shape[1]} columns but "
                    f"n_columns={self.n_columns}")
        if self.n_columns < 0:
            raise ValidationError("n_columns must be non-negative")
        if self.frobenius_norm_sq < 0 or self.error_bound < 0:
            raise ValidationError(
                "energies and error bounds must be non-negative")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_block(cls, block, rank: int, *, engine: str = "lanczos",
                   seed: SeedLike = None, keep_vt: bool = True,
                   **engine_kwargs) -> "PartialSVD":
        """Factor one column block into a mergeable partial SVD.

        Args:
            block: dense ``(n, b)`` array or
                :class:`~repro.linalg.sparse.CSRMatrix` column block.
            rank: triplets to retain, clamped to ``min(n, b)`` so
                ragged final blocks never over-ask.
            engine: any non-incremental
                :func:`~repro.linalg.svd.truncated_svd` engine.
            seed: RNG seed forwarded to iterative engines.
            keep_vt: retain the block's right factor so the merged
                result carries document coordinates.
            **engine_kwargs: engine tuning, validated like
                :func:`~repro.linalg.svd.truncated_svd`.

        Returns:
            A :class:`PartialSVD` over the block's columns whose
            ``error_bound`` is the block fit's Pythagorean residual.
            Blocks whose numerical rank is below the (oversampled)
            working rank make iterative engines break down; those
            blocks silently fall back to the ``exact`` engine, which
            is cheap precisely because the block is small.
        """
        from repro.linalg.svd import truncated_svd

        if engine == "incremental":
            raise ValidationError(
                "from_block cannot recurse into the incremental "
                "engine; pick a direct engine (lanczos, randomized, "
                "subspace, exact)")
        op = as_operator(block)
        rank = min(check_positive_int(rank, "rank"), min(op.shape))
        try:
            result = truncated_svd(op, rank, engine=engine, seed=seed,
                                   **engine_kwargs)
        except ConvergenceError:
            result = truncated_svd(op, rank, engine="exact")
        return cls(u=result.u,
                   singular_values=result.singular_values,
                   vt=result.vt if keep_vt else None,
                   n_columns=int(op.shape[1]),
                   frobenius_norm_sq=result.frobenius_norm_sq,
                   error_bound=result.residual_norm())

    @classmethod
    def from_svd_result(cls, result, *,
                        keep_vt: bool = True) -> "PartialSVD":
        """Lift an :class:`~repro.linalg.svd.SVDResult` into the merge
        algebra (its Pythagorean residual becomes the initial bound)."""
        return cls(u=result.u,
                   singular_values=result.singular_values,
                   vt=result.vt if keep_vt else None,
                   n_columns=int(result.vt.shape[1]),
                   frobenius_norm_sq=result.frobenius_norm_sq,
                   error_bound=result.residual_norm())

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def rank(self) -> int:
        """Number of retained singular triplets ``k``."""
        return int(self.singular_values.shape[0])

    @property
    def n_terms(self) -> int:
        """Row dimension ``n`` shared by every merged block."""
        return int(self.u.shape[0])

    def captured_energy(self) -> float:
        """``Σ σᵢ²`` over retained triplets (:func:`math.fsum`-stable).

        Monotone non-decreasing under :func:`merge` as long as the
        merge keeps at least ``max(k₁, k₂)`` triplets: the middle
        matrix ``K`` contains ``[S₁; 0]`` and an orthonormal multiple
        of ``S₂`` as column sub-blocks, so its leading singular values
        dominate both inputs'.
        """
        return math.fsum(float(s) * float(s)
                         for s in self.singular_values)

    def residual_energy(self) -> float:
        """``‖A‖_F² − Σ σᵢ²`` — energy of the stream not represented."""
        return max(0.0, self.frobenius_norm_sq - self.captured_energy())

    def energy_fraction(self) -> float:
        """Fraction of the absorbed columns' energy retained."""
        if self.frobenius_norm_sq == 0:
            return 1.0
        return min(1.0, self.captured_energy() / self.frobenius_norm_sq)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def truncate(self, rank: int) -> "PartialSVD":
        """Keep the leading ``rank`` triplets, growing the error bound.

        The discarded tail adds ``sqrt(Σ dropped σᵢ²)`` to
        :attr:`error_bound` — the exact Frobenius cost of the cut.
        """
        rank = check_positive_int(rank, "rank")
        if rank >= self.rank:
            return self
        dropped = math.fsum(
            float(s) * float(s) for s in self.singular_values[rank:])
        return replace(
            self,
            u=self.u[:, :rank].copy(),
            singular_values=self.singular_values[:rank].copy(),
            vt=None if self.vt is None else self.vt[:rank].copy(),
            error_bound=self.error_bound + math.sqrt(max(0.0, dropped)))

    def to_svd_result(self):
        """Convert to an :class:`~repro.linalg.svd.SVDResult`.

        Raises:
            ValidationError: when the right-factor cursor was dropped
                (``vt is None``) — an ``SVDResult`` needs document
                coordinates.
        """
        from repro.linalg.svd import SVDResult

        if self.vt is None:
            raise ValidationError(
                "this PartialSVD dropped its vt cursor "
                "(keep_vt=False); cannot build an SVDResult")
        return SVDResult(self.u, self.singular_values, self.vt,
                         self.frobenius_norm_sq)

    def __repr__(self) -> str:
        return (f"PartialSVD(k={self.rank}, n={self.n_terms}, "
                f"columns={self.n_columns}, merges={self.merges}, "
                f"energy={self.energy_fraction():.3f})")


def merge(a: PartialSVD, b: PartialSVD, *,
          rank: "int | None" = None) -> PartialSVD:
    """Merge two partial SVDs of column-disjoint blocks ``[A B]``.

    The stacked-factor QR/small-SVD merge from the module docstring:
    exact on the inputs' rank-``k`` approximants, with any truncation
    to ``rank`` accounted into the result's ``error_bound``.  The
    operation is associative up to a rotation of the retained subspace
    (and exactly energy-conserving before truncation), so a merge tree
    of any shape over the same blocks spans the same space.

    Args:
        a: left partial factorisation (its columns come first).
        b: right partial factorisation.
        rank: triplets to keep (default: all ``k₁ + k₂``).  Keeping at
            least ``max(k₁, k₂)`` preserves the monotonicity of
            ``captured_energy``.

    Returns:
        The merged :class:`PartialSVD` over ``a``'s then ``b``'s
        columns; carries a ``vt`` cursor iff both inputs do.

    Raises:
        ValidationError: when the inputs' term dimensions differ or
            exactly one of them dropped its ``vt`` cursor.
    """
    if a.n_terms != b.n_terms:
        raise ValidationError(
            f"cannot merge partial SVDs over different term spaces "
            f"({a.n_terms} vs {b.n_terms} rows)")
    if (a.vt is None) != (b.vt is None):
        raise ValidationError(
            "cannot merge a PartialSVD with a vt cursor into one "
            "without (keep_vt must match)")
    k1, k2 = a.rank, b.rank

    projection = a.u.T @ b.u                       # (k1, k2)
    residual = b.u - a.u @ projection
    # Second Gram–Schmidt pass: keeps the new directions numerically
    # orthogonal to span(U₁) even when the overlap is large.
    residual -= a.u @ (a.u.T @ residual)
    # The residual is rank-deficient whenever span(U₂) overlaps
    # span(U₁) (always when k₁ + k₂ > n), so its numerical rank is
    # detected with an SVD rather than trusted from an unpivoted QR.
    q, res_sv, _ = np.linalg.svd(residual, full_matrices=False)
    tol = max(residual.shape) * np.finfo(np.float64).eps \
        * (float(res_sv[0]) if res_sv.size else 0.0)
    j = int(np.sum(res_sv > tol))
    q = q[:, :j]                                   # (n, j), q ⟂ U₁
    r = q.T @ residual                             # (j, k2)

    middle = np.zeros((k1 + j, k1 + k2))
    middle[:k1, :k1] = np.diag(a.singular_values)
    middle[:k1, k1:] = projection * b.singular_values
    middle[k1:, k1:] = r * b.singular_values
    u_mid, s_mid, vt_mid = np.linalg.svd(middle, full_matrices=False)

    keep = k1 + j if rank is None else \
        min(check_positive_int(rank, "rank"), k1 + j)
    # Everything lost here is either an explicit truncation tail or
    # the (tolerance-sized) null directions dropped above; charging
    # the full energy deficit covers both.
    retained = math.fsum(float(s) * float(s) for s in s_mid[:keep])
    dropped = max(0.0, a.captured_energy() + b.captured_energy()
                  - retained)

    u_new = np.hstack([a.u, q]) @ u_mid[:, :keep]
    if a.vt is None:
        vt_new = None
    else:
        vt_new = np.hstack([vt_mid[:keep, :k1] @ a.vt,
                            vt_mid[:keep, k1:] @ b.vt])
    return PartialSVD(
        u=u_new,
        singular_values=s_mid[:keep],
        vt=vt_new,
        n_columns=a.n_columns + b.n_columns,
        frobenius_norm_sq=a.frobenius_norm_sq + b.frobenius_norm_sq,
        error_bound=a.error_bound + b.error_bound
        + math.sqrt(dropped),
        merges=a.merges + b.merges + 1)


def block_updates(stream, rank: int, *,
                  block_size: "int | None" = None,
                  engine: str = "lanczos",
                  oversample: int = 8,
                  seed: SeedLike = None,
                  keep_vt: bool = True,
                  **engine_kwargs) -> PartialSVD:
    """Consume a stream of column blocks into one partial SVD.

    Each block is factored at the working rank ``rank + oversample``
    by a direct engine and merged left-to-right; the final result is
    truncated to ``rank``.  Peak memory is one block plus the factors —
    the stream is never concatenated.

    Args:
        stream: iterable of column blocks (dense arrays or
            :class:`~repro.linalg.sparse.CSRMatrix`), all with the
            same number of rows.
        rank: triplets to retain in the final result (clamped down
            when the stream has fewer columns).
        block_size: when given, re-chunk oversized incoming blocks to
            this width via :func:`iter_column_blocks` before factoring
            (narrow blocks are processed as-is).
        engine: per-block SVD engine (``lanczos``, ``randomized``,
            ``subspace``, ``exact``).
        oversample: extra working-rank headroom carried through the
            merges; more headroom means less truncation error.
        seed: RNG seed forwarded to each block's engine.
        keep_vt: carry the document-coordinate cursor through the
            merges (required to build an ``SVDResult``).
        **engine_kwargs: per-block engine tuning.

    Returns:
        The accumulated :class:`PartialSVD` over every streamed column.

    Raises:
        EmptyCorpusError: when the stream yields no blocks.
        ValidationError: on inconsistent block row counts or invalid
            parameters.
    """
    rank = check_positive_int(rank, "rank")
    oversample = check_non_negative_int(oversample, "oversample")
    work_rank = rank + oversample
    accumulated: "PartialSVD | None" = None
    for block in _rechunked(stream, block_size):
        part = PartialSVD.from_block(block, work_rank, engine=engine,
                                     seed=seed, keep_vt=keep_vt,
                                     **engine_kwargs)
        if accumulated is None:
            accumulated = part
        elif part.n_terms != accumulated.n_terms:
            raise ValidationError(
                f"stream block has {part.n_terms} rows; previous "
                f"blocks had {accumulated.n_terms}")
        else:
            accumulated = merge(accumulated, part, rank=work_rank)
    if accumulated is None:
        raise EmptyCorpusError("block_updates received an empty stream")
    return accumulated.truncate(min(rank, accumulated.rank))


def _rechunked(stream, block_size: "int | None"):
    """Pass blocks through, splitting any wider than ``block_size``."""
    if block_size is None:
        yield from stream
        return
    for block in stream:
        yield from iter_column_blocks(block, block_size)


def polish(partial: PartialSVD, matrix, *,
           iterations: int = 1) -> PartialSVD:
    """Power-iteration polish against a re-readable matrix.

    Runs ``iterations`` rounds of orthonormalised power iteration from
    the current left factor, then a Rayleigh–Ritz projection
    (small SVD of ``UᵀA``).  Because the polished approximant is an
    orthogonal projection of ``A``, the accumulated triangle-inequality
    ``error_bound`` collapses to the *exact* Pythagorean residual —
    polishing both improves the factors and tightens the bound.  Only
    available when the stream is re-readable (an in-memory matrix or
    an mmap); one-shot streams cannot be polished.

    Args:
        partial: the factorisation to polish (its ``vt`` is recomputed,
            so ``keep_vt=False`` inputs regain a cursor).
        matrix: the full matrix the stream was drawn from, dense or
            :class:`~repro.linalg.sparse.CSRMatrix`.
        iterations: power-iteration rounds before the final projection
            (0 = projection only, which already tightens the bound).

    Returns:
        The polished :class:`PartialSVD` with an exact residual bound.

    Raises:
        ValidationError: when ``matrix``'s shape does not match the
            columns the partial SVD absorbed.
    """
    iterations = check_non_negative_int(iterations, "iterations")
    op = as_operator(matrix)
    if op.shape[0] != partial.n_terms \
            or op.shape[1] != partial.n_columns:
        raise ValidationError(
            f"polish matrix has shape {op.shape}; the partial SVD "
            f"absorbed ({partial.n_terms}, {partial.n_columns})")
    basis = partial.u
    for _ in range(iterations):
        right = np.linalg.qr(op.rmatmat(basis))[0]   # (m, k)
        basis = np.linalg.qr(op.matmat(right))[0]    # (n, k)
    projected = op.rmatmat(basis).T                  # (k, m) = UᵀA
    u_small, s_new, vt_new = np.linalg.svd(projected,
                                           full_matrices=False)
    u_new = basis @ u_small
    captured = math.fsum(float(s) * float(s) for s in s_new)
    residual = max(0.0, partial.frobenius_norm_sq - captured)
    return PartialSVD(
        u=u_new,
        singular_values=s_new,
        vt=vt_new,
        n_columns=partial.n_columns,
        frobenius_norm_sq=partial.frobenius_norm_sq,
        error_bound=math.sqrt(residual),
        merges=partial.merges)


def incremental_svd(matrix, rank: int, *,
                    block_size: int = 256,
                    oversample: int = 8,
                    polish_iterations: int = 0,
                    inner_engine: str = "lanczos",
                    seed: SeedLike = None,
                    **engine_kwargs):
    """Blocked incremental SVD of an in-memory matrix.

    The convenience front-end behind
    ``truncated_svd(engine="incremental")``: chunk the matrix into
    ``block_size``-column blocks, run :func:`block_updates`, optionally
    :func:`polish` against the matrix (possible here because it *is*
    re-readable), and return a standard
    :class:`~repro.linalg.svd.SVDResult`.  For streams that never fit
    in memory, drive :func:`block_updates` directly.

    Args:
        matrix: dense ``(n, m)`` array or
            :class:`~repro.linalg.sparse.CSRMatrix`.
        rank: triplets to retain.
        block_size: column width of each decomposed block.
        oversample: working-rank headroom carried through merges.
        polish_iterations: power-iteration rounds after the merge
            (0 disables polishing entirely).
        inner_engine: per-block engine.
        seed: RNG seed forwarded to per-block engines.
        **engine_kwargs: per-block engine tuning.

    Returns:
        :class:`~repro.linalg.svd.SVDResult` with ``rank`` triplets.
    """
    op = as_operator(matrix)
    source = matrix if isinstance(matrix, CSRMatrix) else op.to_dense()
    partial = block_updates(
        iter_column_blocks(source, block_size), rank,
        engine=inner_engine, oversample=oversample, seed=seed,
        keep_vt=True, **engine_kwargs)
    if polish_iterations > 0:
        partial = polish(partial, source,
                         iterations=polish_iterations)
        partial = partial.truncate(min(rank, partial.rank))
    return partial.to_svd_result()
