"""A compressed-sparse-row (CSR) matrix implemented from scratch.

Term–document matrices are overwhelmingly sparse: the paper's cost model
for LSI assumes about ``c`` nonzero terms per document column and derives
the ``O(m·n·c)`` / ``O(m·l·(l+c))`` comparison of §5 from exactly this
structure.  The reproduction therefore carries its own sparse kernel
rather than densifying everything.

The class supports the operations the rest of the library needs —
triplet assembly, matrix–vector and matrix–matrix products on either
side, Gram products, norms, row/column slicing, scaling, and transposes —
with numpy used only for flat array arithmetic, never ``scipy.sparse``.

Row indices are "terms" and column indices are "documents" throughout the
library, matching the paper's ``n × m`` orientation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.utils.validation import check_non_negative_int

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """An immutable sparse matrix in compressed-sparse-row format.

    Construct through :meth:`from_triplets`, :meth:`from_dense`, or
    :meth:`from_columns`; the raw constructor expects already-validated
    CSR arrays and is mainly for internal use.

    Attributes:
        shape: ``(n_rows, n_cols)``.
        indptr: int64 array of length ``n_rows + 1``; row ``i`` occupies
            positions ``indptr[i]:indptr[i + 1]`` of ``indices``/``data``.
        indices: int64 column indices, sorted within each row.
        data: float64 nonzero values, parallel to ``indices``.
    """

    __slots__ = ("shape", "indptr", "indices", "data",
                 "_transpose_cache")

    def __init__(self, shape, indptr, indices, data, *, _skip_checks=False):
        n_rows, n_cols = shape
        n_rows = check_non_negative_int(n_rows, "n_rows")
        n_cols = check_non_negative_int(n_cols, "n_cols")
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if not _skip_checks:
            if indptr.ndim != 1 or indptr.shape[0] != n_rows + 1:
                raise ShapeError(
                    f"indptr must have length n_rows + 1 = {n_rows + 1}, "
                    f"got shape {indptr.shape}")
            if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
                raise ValidationError("indptr must start at 0 and be "
                                      "non-decreasing")
            if indices.shape != data.shape or indices.ndim != 1:
                raise ShapeError("indices and data must be 1-D and parallel")
            if int(indptr[-1]) != indices.shape[0]:
                raise ShapeError(
                    f"indptr[-1]={int(indptr[-1])} must equal "
                    f"nnz={indices.shape[0]}")
            if indices.size and (indices.min() < 0
                                 or indices.max() >= n_cols):
                raise ValidationError("column indices out of range")
            if data.size and not np.all(np.isfinite(data)):
                raise ValidationError("data contains non-finite entries")
        self.shape = (n_rows, n_cols)
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self._transpose_cache = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_triplets(cls, n_rows, n_cols, rows, cols, values,
                      *, sum_duplicates=True) -> "CSRMatrix":
        """Assemble from COO triplets ``(rows[i], cols[i], values[i])``.

        Duplicate coordinates are summed (the natural semantics for term
        counts) unless ``sum_duplicates`` is False, in which case
        duplicates raise :class:`ValidationError`.  Explicit zeros are
        dropped.
        """
        n_rows = check_non_negative_int(n_rows, "n_rows")
        n_cols = check_non_negative_int(n_cols, "n_cols")
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (rows.shape == cols.shape == values.shape) or rows.ndim != 1:
            raise ShapeError("rows, cols, values must be parallel 1-D arrays")
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise ValidationError("row indices out of range")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise ValidationError("column indices out of range")
            if not np.all(np.isfinite(values)):
                raise ValidationError("values contain non-finite entries")

        # Sort lexicographically by (row, col) to canonicalise.
        order = np.lexsort((cols, rows))
        rows, cols, values = rows[order], cols[order], values[order]

        if rows.size:
            same = (np.diff(rows) == 0) & (np.diff(cols) == 0)
            if np.any(same):
                if not sum_duplicates:
                    raise ValidationError(
                        "duplicate coordinates present and "
                        "sum_duplicates=False")
                # Collapse runs of equal coordinates by segment sum.
                boundaries = np.concatenate(([True], ~same))
                segment_ids = np.cumsum(boundaries) - 1
                values = np.bincount(segment_ids, weights=values)
                keep = np.flatnonzero(boundaries)
                rows, cols = rows[keep], cols[keep]

        nonzero = values != 0
        rows, cols, values = rows[nonzero], cols[nonzero], values[nonzero]

        counts = np.bincount(rows, minlength=n_rows) if rows.size else \
            np.zeros(n_rows, dtype=np.int64)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        return cls((n_rows, n_cols), indptr, cols, values, _skip_checks=True)

    @classmethod
    def from_dense(cls, array) -> "CSRMatrix":
        """Build from a dense 2-D array, dropping exact zeros."""
        dense = np.asarray(array, dtype=np.float64)
        if dense.ndim != 2:
            raise ShapeError(f"expected 2-D array, got shape {dense.shape}")
        rows, cols = np.nonzero(dense)
        return cls.from_triplets(dense.shape[0], dense.shape[1],
                                 rows, cols, dense[rows, cols])

    @classmethod
    def from_columns(cls, n_rows, columns) -> "CSRMatrix":
        """Build from per-column sparse dicts ``{row_index: value}``.

        This is the natural constructor for a corpus: each document
        contributes one column of term counts.
        """
        n_rows = check_non_negative_int(n_rows, "n_rows")
        rows_list, cols_list, vals_list = [], [], []
        for j, column in enumerate(columns):
            for i, value in column.items():
                rows_list.append(i)
                cols_list.append(j)
                vals_list.append(value)
        n_cols = len(columns)
        return cls.from_triplets(n_rows, n_cols, rows_list, cols_list,
                                 vals_list)

    @classmethod
    def zeros(cls, n_rows, n_cols) -> "CSRMatrix":
        """An all-zero sparse matrix of the given shape."""
        return cls.from_triplets(n_rows, n_cols, [], [], [])

    @classmethod
    def identity(cls, n) -> "CSRMatrix":
        """The n×n identity."""
        idx = np.arange(n)
        return cls.from_triplets(n, n, idx, idx, np.ones(n))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.data.shape[0])

    @property
    def density(self) -> float:
        """Fraction of entries that are nonzero (0 for an empty shape)."""
        total = self.shape[0] * self.shape[1]
        if total == 0:
            return 0.0
        return self.nnz / total

    def mean_nonzeros_per_column(self) -> float:
        """The paper's ``c``: average nonzero count per document column."""
        if self.shape[1] == 0:
            return 0.0
        return self.nnz / self.shape[1]

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense float64 array."""
        dense = np.zeros(self.shape)
        if self.data.size:
            dense[self._row_of_entry(), self.indices] = self.data
        return dense

    def copy(self) -> "CSRMatrix":
        """A deep copy."""
        return CSRMatrix(self.shape, self.indptr.copy(), self.indices.copy(),
                         self.data.copy(), _skip_checks=True)

    def __repr__(self) -> str:
        return (f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"density={self.density:.4g})")

    def __eq__(self, other) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (self.shape == other.shape
                and np.array_equal(self.indptr, other.indptr)
                and np.array_equal(self.indices, other.indices)
                and np.array_equal(self.data, other.data))

    __hash__ = None  # mutable ndarray payload; identity hashing is a trap

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------

    def matvec(self, x) -> np.ndarray:
        """Compute ``A @ x`` for a vector ``x`` of length ``n_cols``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ShapeError(
                f"matvec expects vector of length {self.shape[1]}, "
                f"got shape {x.shape}")
        products = self.data * x[self.indices]
        out = np.zeros(self.shape[0])
        # Segment-sum per row via reduceat over non-empty rows.
        if products.size:
            row_ends = self.indptr[1:]
            row_starts = self.indptr[:-1]
            nonempty = np.flatnonzero(row_ends > row_starts)
            sums = np.add.reduceat(products, row_starts[nonempty])
            out[nonempty] = sums
        return out

    def rmatvec(self, y) -> np.ndarray:
        """Compute ``Aᵀ @ y`` for a vector ``y`` of length ``n_rows``."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (self.shape[0],):
            raise ShapeError(
                f"rmatvec expects vector of length {self.shape[0]}, "
                f"got shape {y.shape}")
        row_of_entry = np.repeat(np.arange(self.shape[0]),
                                 np.diff(self.indptr))
        out = np.zeros(self.shape[1])
        np.add.at(out, self.indices, self.data * y[row_of_entry])
        return out

    def _row_of_entry(self) -> np.ndarray:
        """Row index of every stored entry (parallel to ``indices``)."""
        return np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))

    def matmat(self, other) -> np.ndarray:
        """Compute ``A @ B`` for a dense matrix ``B`` (n_cols × p).

        Entries are row-sorted, so the per-row sums reduce to one
        vectorised segment reduction — no Python-level row loop.
        """
        other = np.asarray(other, dtype=np.float64)
        if other.ndim != 2 or other.shape[0] != self.shape[1]:
            raise ShapeError(
                f"matmat expects ({self.shape[1]}, p) matrix, got shape "
                f"{other.shape}")
        out = np.zeros((self.shape[0], other.shape[1]))
        if self.data.size:
            products = self.data[:, None] * other[self.indices]
            row_starts = self.indptr[:-1]
            nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
            out[nonempty] = np.add.reduceat(products,
                                            row_starts[nonempty], axis=0)
        return out

    def rmatmat(self, other) -> np.ndarray:
        """Compute ``Aᵀ @ B`` for a dense matrix ``B`` (n_rows × p).

        Delegates to ``Aᵀ``'s row-major :meth:`matmat` (the transpose is
        built once and cached — the matrix is immutable).
        """
        other = np.asarray(other, dtype=np.float64)
        if other.ndim != 2 or other.shape[0] != self.shape[0]:
            raise ShapeError(
                f"rmatmat expects ({self.shape[0]}, p) matrix, got shape "
                f"{other.shape}")
        return self._cached_transpose().matmat(other)

    def _cached_transpose(self) -> "CSRMatrix":
        if self._transpose_cache is None:
            self._transpose_cache = self.transpose()
        return self._transpose_cache

    def gram(self) -> np.ndarray:
        """The document Gram matrix ``AᵀA`` (m × m), dense.

        For a pure 0-separable corpus this is the block-diagonal matrix at
        the heart of the Theorem 2 proof.
        """
        out = np.zeros((self.shape[1], self.shape[1]))
        for i in range(self.shape[0]):
            start, stop = self.indptr[i], self.indptr[i + 1]
            if start == stop:
                continue
            cols = self.indices[start:stop]
            vals = self.data[start:stop]
            out[np.ix_(cols, cols)] += np.outer(vals, vals)
        return out

    def cogram(self) -> np.ndarray:
        """The term autocorrelation matrix ``AAᵀ`` (n × n), dense.

        This is the matrix whose near-null synonym-difference direction
        §4's synonymy argument analyses.
        """
        out = np.zeros((self.shape[0], self.shape[0]))
        dense_rows = self.to_dense()
        np.matmul(dense_rows, dense_rows.T, out=out)
        return out

    # ------------------------------------------------------------------
    # Norms and reductions
    # ------------------------------------------------------------------

    def frobenius_norm(self) -> float:
        """The Frobenius norm ``‖A‖_F``."""
        return float(np.sqrt(np.sum(self.data * self.data)))

    def column_norms(self) -> np.ndarray:
        """Euclidean norm of every column (length ``n_cols``)."""
        out = np.zeros(self.shape[1])
        np.add.at(out, self.indices, self.data * self.data)
        return np.sqrt(out)

    def row_norms(self) -> np.ndarray:
        """Euclidean norm of every row (length ``n_rows``)."""
        sq = self.data * self.data
        out = np.zeros(self.shape[0])
        if sq.size:
            row_ends = self.indptr[1:]
            row_starts = self.indptr[:-1]
            nonempty = np.flatnonzero(row_ends > row_starts)
            out[nonempty] = np.add.reduceat(sq, row_starts[nonempty])
        return np.sqrt(out)

    def column_sums(self) -> np.ndarray:
        """Sum of entries in every column — document lengths for counts."""
        out = np.zeros(self.shape[1])
        np.add.at(out, self.indices, self.data)
        return out

    def row_sums(self) -> np.ndarray:
        """Sum of entries in every row — corpus term frequencies."""
        out = np.zeros(self.shape[0])
        if self.data.size:
            row_ends = self.indptr[1:]
            row_starts = self.indptr[:-1]
            nonempty = np.flatnonzero(row_ends > row_starts)
            out[nonempty] = np.add.reduceat(self.data, row_starts[nonempty])
        return out

    def document_frequency(self) -> np.ndarray:
        """Number of columns in which each row appears (for tf-idf)."""
        out = np.zeros(self.shape[0])
        counts = np.diff(self.indptr)
        out[:] = counts
        return out

    # ------------------------------------------------------------------
    # Structural transforms
    # ------------------------------------------------------------------

    def transpose(self) -> "CSRMatrix":
        """Return ``Aᵀ`` as a new CSR matrix."""
        row_of_entry = np.repeat(np.arange(self.shape[0]),
                                 np.diff(self.indptr))
        return CSRMatrix.from_triplets(self.shape[1], self.shape[0],
                                       self.indices, row_of_entry, self.data)

    def scale(self, factor) -> "CSRMatrix":
        """Return ``factor * A`` (scalar ``factor``)."""
        factor = float(factor)
        if factor == 0:
            return CSRMatrix.zeros(*self.shape)
        return CSRMatrix(self.shape, self.indptr.copy(), self.indices.copy(),
                         self.data * factor, _skip_checks=True)

    def scale_rows(self, weights) -> "CSRMatrix":
        """Return ``diag(weights) @ A`` — per-term (row) reweighting."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.shape[0],):
            raise ShapeError(
                f"weights must have length {self.shape[0]}, got shape "
                f"{weights.shape}")
        row_of_entry = np.repeat(np.arange(self.shape[0]),
                                 np.diff(self.indptr))
        return CSRMatrix.from_triplets(
            self.shape[0], self.shape[1], row_of_entry, self.indices,
            self.data * weights[row_of_entry])

    def scale_columns(self, weights) -> "CSRMatrix":
        """Return ``A @ diag(weights)`` — per-document (column) reweighting."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.shape[1],):
            raise ShapeError(
                f"weights must have length {self.shape[1]}, got shape "
                f"{weights.shape}")
        row_of_entry = np.repeat(np.arange(self.shape[0]),
                                 np.diff(self.indptr))
        return CSRMatrix.from_triplets(
            self.shape[0], self.shape[1], row_of_entry, self.indices,
            self.data * weights[self.indices])

    def map_data(self, fn) -> "CSRMatrix":
        """Apply an elementwise function to stored nonzeros.

        ``fn`` receives the data array and must return an array of the
        same shape.  Results that are exactly zero are kept sparse-implicit
        by reassembly.  Used by weighting schemes (e.g. ``1 + log tf``).
        """
        new_data = np.asarray(fn(self.data.copy()), dtype=np.float64)
        if new_data.shape != self.data.shape:
            raise ShapeError("map_data function changed the data shape")
        row_of_entry = np.repeat(np.arange(self.shape[0]),
                                 np.diff(self.indptr))
        return CSRMatrix.from_triplets(self.shape[0], self.shape[1],
                                       row_of_entry, self.indices, new_data)

    def select_columns(self, column_indices) -> "CSRMatrix":
        """Return the submatrix with the given columns, in the given order.

        Supports repeated indices (sampling with replacement), which the
        FKV Monte-Carlo algorithm requires.
        """
        column_indices = np.asarray(column_indices, dtype=np.int64)
        if column_indices.ndim != 1:
            raise ShapeError("column_indices must be 1-D")
        if column_indices.size and (column_indices.min() < 0 or
                                    column_indices.max() >= self.shape[1]):
            raise ValidationError("column indices out of range")
        # Build a (column -> new positions) expansion, then reassemble.
        rows_list, cols_list, vals_list = [], [], []
        transposed = self.transpose()
        for new_j, old_j in enumerate(column_indices):
            start, stop = transposed.indptr[old_j], transposed.indptr[old_j + 1]
            rows_list.append(transposed.indices[start:stop])
            vals_list.append(transposed.data[start:stop])
            cols_list.append(np.full(stop - start, new_j, dtype=np.int64))
        if rows_list:
            rows = np.concatenate(rows_list)
            cols = np.concatenate(cols_list)
            vals = np.concatenate(vals_list)
        else:
            rows = cols = vals = np.empty(0)
        return CSRMatrix.from_triplets(self.shape[0], len(column_indices),
                                       rows, cols, vals)

    def select_rows(self, row_indices) -> "CSRMatrix":
        """Return the submatrix with the given rows, in the given order."""
        return self.transpose().select_columns(row_indices).transpose()

    def get_column(self, j) -> np.ndarray:
        """Materialise column ``j`` as a dense vector (a document)."""
        j = int(j)
        if not 0 <= j < self.shape[1]:
            raise ValidationError(
                f"column index {j} out of range for {self.shape[1]} columns")
        out = np.zeros(self.shape[0])
        mask = self.indices == j
        row_of_entry = np.repeat(np.arange(self.shape[0]),
                                 np.diff(self.indptr))
        out[row_of_entry[mask]] = self.data[mask]
        return out

    def get_row(self, i) -> np.ndarray:
        """Materialise row ``i`` as a dense vector (a term profile)."""
        i = int(i)
        if not 0 <= i < self.shape[0]:
            raise ValidationError(
                f"row index {i} out of range for {self.shape[0]} rows")
        out = np.zeros(self.shape[1])
        start, stop = self.indptr[i], self.indptr[i + 1]
        out[self.indices[start:stop]] = self.data[start:stop]
        return out

    def add(self, other) -> "CSRMatrix":
        """Return ``A + B`` for another CSR matrix of the same shape."""
        if not isinstance(other, CSRMatrix):
            raise ValidationError("add expects another CSRMatrix")
        if other.shape != self.shape:
            raise ShapeError(
                f"shape mismatch: {self.shape} vs {other.shape}")
        row_a = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        row_b = np.repeat(np.arange(other.shape[0]), np.diff(other.indptr))
        return CSRMatrix.from_triplets(
            self.shape[0], self.shape[1],
            np.concatenate([row_a, row_b]),
            np.concatenate([self.indices, other.indices]),
            np.concatenate([self.data, other.data]))
