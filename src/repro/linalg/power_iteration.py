"""Power and block-subspace iteration for dominant spectral structure.

Theorem 2's proof revolves around the dominant eigenpair of each block
Gram matrix ``BᵢᵀBᵢ`` and the gap to the second eigenvalue; these solvers
compute exactly those quantities and double as one of the library's two
truncated-SVD engines (block subspace iteration with Rayleigh–Ritz
extraction).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.linalg.dense import orthonormalize_columns
from repro.linalg.operator import as_operator
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_matrix, check_positive_int, check_rank

__all__ = [
    "DEFAULT_MAX_ITER",
    "DEFAULT_TOL",
    "dominant_eigenpair",
    "dominant_singular_value",
    "subspace_iteration_svd",
    "top_eigenpairs",
]

#: Default relative-change convergence tolerance for iterative solvers.
DEFAULT_TOL = 1e-10
#: Default iteration budget.
DEFAULT_MAX_ITER = 1000


def dominant_eigenpair(symmetric, *, tol: float = DEFAULT_TOL,
                       max_iter: int = DEFAULT_MAX_ITER, seed=None):
    """Dominant eigenvalue/eigenvector of a symmetric PSD matrix.

    Plain power iteration with Rayleigh-quotient convergence testing.

    Args:
        symmetric: dense symmetric positive-semidefinite matrix.
        tol: stop when the Rayleigh quotient's relative change falls
            below this.
        max_iter: iteration budget; exceeded budget raises
            :class:`~repro.errors.ConvergenceError`.
        seed: RNG seed for the start vector.

    Returns:
        ``(eigenvalue, eigenvector)`` with a unit-norm eigenvector.
    """
    matrix = check_matrix(symmetric, "symmetric")
    n = matrix.shape[0]
    if matrix.shape[1] != n:
        from repro.errors import ShapeError

        raise ShapeError(f"matrix must be square, got {matrix.shape}")
    check_positive_int(max_iter, "max_iter")
    rng = as_generator(seed)
    vector = rng.standard_normal(n)
    vector /= np.linalg.norm(vector)
    eigenvalue = 0.0
    for iteration in range(max_iter):
        product = matrix @ vector
        norm = np.linalg.norm(product)
        if norm == 0:
            # The start vector lies in the null space (or A = 0).
            return 0.0, vector
        new_vector = product / norm
        new_eigenvalue = float(new_vector @ (matrix @ new_vector))
        if abs(new_eigenvalue - eigenvalue) <= tol * max(1.0, new_eigenvalue):
            return new_eigenvalue, new_vector
        vector, eigenvalue = new_vector, new_eigenvalue
    raise ConvergenceError(
        f"power iteration did not converge in {max_iter} iterations",
        iterations=max_iter, residual=abs(new_eigenvalue - eigenvalue))


def top_eigenpairs(symmetric, k, *, tol: float = DEFAULT_TOL,
                   max_iter: int = DEFAULT_MAX_ITER, seed=None):
    """Top-``k`` eigenpairs of a symmetric PSD matrix by deflation.

    Suitable for the small ``k`` the analysis needs (eigenvalue gaps per
    topic block).  Returns ``(eigenvalues, eigenvectors)`` with
    eigenvalues descending and eigenvectors as columns.
    """
    matrix = check_matrix(symmetric, "symmetric").copy()
    k = check_rank(k, matrix.shape[0], "k")
    rng = as_generator(seed)
    values = np.zeros(k)
    vectors = np.zeros((matrix.shape[0], k))
    for i in range(k):
        value, vector = dominant_eigenpair(matrix, tol=tol,
                                           max_iter=max_iter, seed=rng)
        values[i] = value
        vectors[:, i] = vector
        # Hotelling deflation: remove the found component.
        matrix -= value * np.outer(vector, vector)
    return values, vectors


def dominant_singular_value(matrix, *, tol: float = DEFAULT_TOL,
                            max_iter: int = DEFAULT_MAX_ITER,
                            seed: SeedLike = None) -> float:
    """Largest singular value of a (possibly sparse) matrix.

    Power iteration on the Gram operator ``AᵀA`` without forming it.
    """
    op = as_operator(matrix)
    n_cols = op.shape[1]
    if n_cols == 0 or op.shape[0] == 0:
        return 0.0
    rng = as_generator(seed)
    vector = rng.standard_normal(n_cols)
    vector /= np.linalg.norm(vector)
    sigma_sq = 0.0
    for _ in range(max_iter):
        product = op.rmatvec(op.matvec(vector))
        norm = np.linalg.norm(product)
        if norm == 0:
            return 0.0
        new_vector = product / norm
        new_sigma_sq = float(new_vector @ op.rmatvec(op.matvec(new_vector)))
        if abs(new_sigma_sq - sigma_sq) <= tol * max(1.0, new_sigma_sq):
            return float(np.sqrt(max(new_sigma_sq, 0.0)))
        vector, sigma_sq = new_vector, new_sigma_sq
    raise ConvergenceError(
        f"singular-value power iteration did not converge in "
        f"{max_iter} iterations", iterations=max_iter)


def subspace_iteration_svd(matrix, rank, *, oversample: int = 8,
                           max_iter: int = 200, tol: float = 1e-9,
                           seed: SeedLike = None):
    """Truncated SVD by block subspace (orthogonal) iteration.

    Iterates an oversampled random block through ``A·Aᵀ`` with
    re-orthonormalisation, then extracts singular triplets by
    Rayleigh–Ritz on the converged subspace.  Works on dense arrays and
    :class:`~repro.linalg.sparse.CSRMatrix` alike.

    Args:
        matrix: the ``n × m`` matrix to factor.
        rank: number of leading singular triplets wanted.
        oversample: extra block columns carried for convergence; the
            excess is discarded after Rayleigh–Ritz.
        max_iter: maximum block iterations.
        tol: convergence threshold on the relative change of the Ritz
            values.
        seed: RNG seed for the start block.

    Returns:
        ``(U, S, Vt)`` with ``U`` of shape ``(n, rank)``, ``S`` descending
        of length ``rank``, and ``Vt`` of shape ``(rank, m)``.
    """
    op = as_operator(matrix)
    n, m = op.shape
    rank = check_rank(rank, min(n, m), "rank")
    check_positive_int(max_iter, "max_iter")
    block_size = min(rank + max(0, int(oversample)), min(n, m))
    rng = as_generator(seed)

    block = orthonormalize_columns(rng.standard_normal((n, block_size)))
    previous_ritz = np.zeros(rank)
    for iteration in range(max_iter):
        # One pass of A·Aᵀ with re-orthonormalisation.
        block = orthonormalize_columns(op.matmat(op.rmatmat(block)))
        if block.shape[1] < rank:
            # Rank-deficient matrix: pad with fresh random directions.
            extra = rng.standard_normal((n, block_size - block.shape[1]))
            block = orthonormalize_columns(np.column_stack([block, extra]))
        # Rayleigh–Ritz: project A into the block and take a small SVD.
        projected = op.rmatmat(block).T          # block.T @ A, (b × m)
        u_small, sigma, vt = np.linalg.svd(projected, full_matrices=False)
        ritz = sigma[:rank]
        if np.allclose(ritz, previous_ritz,
                       rtol=tol, atol=tol * max(1.0, float(ritz[0]))):
            break
        previous_ritz = ritz
    u_full = block @ u_small
    return u_full[:, :rank], sigma[:rank].copy(), vt[:rank].copy()
