"""A minimal linear-operator adapter over dense and CSR matrices.

The SVD engines accept either a dense :class:`numpy.ndarray` or the
library's own :class:`~repro.linalg.sparse.CSRMatrix` and only ever touch
the matrix through products, so sparse inputs are never densified.
:class:`MatrixOperator` normalises the two cases behind four methods:
``matvec``, ``rmatvec``, ``matmat``, ``rmatmat``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.linalg.sparse import CSRMatrix

__all__ = ["MatrixOperator", "as_operator"]


class MatrixOperator:
    """Uniform product interface over dense arrays and CSR matrices."""

    def __init__(self, matrix):
        if isinstance(matrix, CSRMatrix):
            self._sparse = matrix
            self._dense = None
            self.shape = matrix.shape
        else:
            dense = np.asarray(matrix, dtype=np.float64)
            if dense.ndim != 2:
                raise ShapeError(
                    f"operator must be 2-D, got shape {dense.shape}")
            if dense.size and not np.all(np.isfinite(dense)):
                raise ValidationError("operator contains non-finite entries")
            self._sparse = None
            self._dense = dense
            self.shape = dense.shape

    @property
    def is_sparse(self) -> bool:
        """True when backed by a :class:`CSRMatrix`."""
        return self._sparse is not None

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x``."""
        if self._sparse is not None:
            return self._sparse.matvec(x)
        return self._dense @ np.asarray(x, dtype=np.float64)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``Aᵀ @ y``."""
        if self._sparse is not None:
            return self._sparse.rmatvec(y)
        return self._dense.T @ np.asarray(y, dtype=np.float64)

    def matmat(self, block: np.ndarray) -> np.ndarray:
        """``A @ B`` for dense ``B``."""
        if self._sparse is not None:
            return self._sparse.matmat(block)
        return self._dense @ np.asarray(block, dtype=np.float64)

    def rmatmat(self, block: np.ndarray) -> np.ndarray:
        """``Aᵀ @ B`` for dense ``B``."""
        if self._sparse is not None:
            return self._sparse.rmatmat(block)
        return self._dense.T @ np.asarray(block, dtype=np.float64)

    def frobenius_norm(self) -> float:
        """``‖A‖_F``."""
        if self._sparse is not None:
            return self._sparse.frobenius_norm()
        return float(np.linalg.norm(self._dense))

    def to_dense(self) -> np.ndarray:
        """Materialise the underlying matrix densely."""
        if self._sparse is not None:
            return self._sparse.to_dense()
        return self._dense


def as_operator(matrix) -> MatrixOperator:
    """Wrap ``matrix`` in a :class:`MatrixOperator` (idempotent)."""
    if isinstance(matrix, MatrixOperator):
        return matrix
    return MatrixOperator(matrix)
