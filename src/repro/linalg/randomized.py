"""Randomized SVD: the modern descendant of the paper's §5 idea.

The paper's two-step method (random projection, then LSI on the
projection) is the ancestor of the randomized range-finder SVD of
Halko–Martinsson–Tropp: sketch ``Y = A·Ω`` for a thin Gaussian ``Ω``,
orthonormalise, optionally run power iterations ``Y ← A·(Aᵀ·Y)`` to
sharpen the spectrum, then factor the small projected matrix ``Qᵀ·A``.

The module provides:

- :func:`randomized_range_finder` — the sketch + (optional) power
  iterations;
- :func:`randomized_svd` — the full factorisation, plugged into
  :func:`repro.linalg.svd.truncated_svd` as the ``"randomized"``
  engine;
- :func:`adaptive_rank_svd` — grow the sketch until the estimated
  residual falls under a tolerance: rank discovery for corpora whose
  topic count is unknown.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.linalg.dense import orthonormalize_columns
from repro.linalg.operator import as_operator
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_non_negative_int, check_rank

__all__ = [
    "adaptive_rank_svd",
    "estimated_residual_norm",
    "randomized_range_finder",
    "randomized_svd",
]


def randomized_range_finder(matrix, sketch_size: int, *,
                            power_iterations: int = 2,
                            seed: SeedLike = None) -> np.ndarray:
    """An orthonormal basis approximately spanning ``A``'s top range.

    Args:
        matrix: ``n × m`` dense array or CSR matrix.
        sketch_size: number of basis columns to produce.
        power_iterations: passes of ``A·Aᵀ`` applied to the sketch;
            each pass multiplies the spectral contrast (singular value
            σ contributes like σ^(2q+1)), which is what makes slowly
            decaying corpus spectra tractable.
        seed: RNG seed for the Gaussian test matrix.

    Returns:
        ``(n, sketch_size)`` orthonormal columns (possibly fewer when
        the matrix rank is below the sketch size).
    """
    op = as_operator(matrix)
    n, m = op.shape
    sketch_size = check_rank(sketch_size, min(n, m), "sketch_size")
    power_iterations = check_non_negative_int(power_iterations,
                                              "power_iterations")
    rng = as_generator(seed)

    sketch = op.matmat(rng.standard_normal((m, sketch_size)))
    basis = orthonormalize_columns(sketch)
    for _ in range(power_iterations):
        # Re-orthonormalise between half-steps for numerical stability.
        basis = orthonormalize_columns(op.rmatmat(basis))
        basis = orthonormalize_columns(op.matmat(basis))
    return basis


def randomized_svd(matrix, rank, *, oversample: int = 10,
                   power_iterations: int = 2, seed=None):
    """Truncated SVD via the randomized range finder.

    Args:
        matrix: ``n × m`` dense array or CSR matrix.
        rank: leading singular triplets wanted.
        oversample: extra sketch columns beyond ``rank`` (discarded
            after the small factorisation).
        power_iterations: see :func:`randomized_range_finder`.
        seed: RNG seed.

    Returns:
        ``(U, S, Vt)`` with exactly ``rank`` triplets.
    """
    op = as_operator(matrix)
    n, m = op.shape
    rank = check_rank(rank, min(n, m), "rank")
    sketch_size = min(rank + max(0, int(oversample)), min(n, m))

    basis = randomized_range_finder(op, sketch_size,
                                    power_iterations=power_iterations,
                                    seed=seed)
    projected = op.rmatmat(basis).T          # Qᵀ·A, (sketch × m)
    u_small, sigma, vt = np.linalg.svd(projected, full_matrices=False)
    u_full = basis @ u_small
    return u_full[:, :rank], sigma[:rank].copy(), vt[:rank].copy()


def estimated_residual_norm(matrix, basis: np.ndarray) -> float:
    """``‖A − Q·Qᵀ·A‖_F`` for an orthonormal basis ``Q``.

    Computed without materialising the projection when the input is
    sparse: ``‖A‖²_F − ‖Qᵀ·A‖²_F`` (Pythagoras, ``Q`` orthonormal).
    """
    op = as_operator(matrix)
    basis = np.asarray(basis, dtype=np.float64)
    if basis.ndim != 2 or basis.shape[0] != op.shape[0]:
        raise ValidationError(
            f"basis must be ({op.shape[0]}, r), got {basis.shape}")
    projected = op.rmatmat(basis)
    residual_sq = op.frobenius_norm() ** 2 - float(
        np.sum(projected * projected))
    return float(np.sqrt(max(residual_sq, 0.0)))


def adaptive_rank_svd(matrix, *, relative_tolerance: float = 0.2,
                      block_size: int = 8, max_rank=None,
                      power_iterations: int = 2, seed=None):
    """Grow the sketch until the residual falls below a tolerance.

    Rank discovery: when the number of topics is unknown, grow the
    range basis ``block_size`` columns at a time until
    ``‖A − Q·Qᵀ·A‖_F ≤ relative_tolerance · ‖A‖_F``, then factor.

    Args:
        matrix: ``n × m`` dense array or CSR matrix.
        relative_tolerance: stop when the relative residual is below
            this.
        block_size: sketch growth per step.
        max_rank: hard cap (defaults to ``min(n, m)``).
        power_iterations: per-block power iterations.
        seed: RNG seed.

    Returns:
        An :class:`repro.linalg.svd.SVDResult` whose rank is the
        discovered rank.
    """
    from repro.linalg.svd import SVDResult

    op = as_operator(matrix)
    n, m = op.shape
    if not 0.0 < relative_tolerance < 1.0:
        raise ValidationError(
            "relative_tolerance must lie in (0, 1), got "
            f"{relative_tolerance}")
    block_size = check_rank(block_size, min(n, m), "block_size")
    cap = min(n, m) if max_rank is None else min(int(max_rank),
                                                 min(n, m))
    rng = as_generator(seed)
    norm = op.frobenius_norm()
    if norm == 0:
        raise ValidationError("matrix is numerically zero")

    basis = np.zeros((n, 0))
    while basis.shape[1] < cap:
        grow = min(block_size, cap - basis.shape[1])
        block = op.matmat(rng.standard_normal((m, grow)))
        # Orthogonalise the new block against the existing basis.
        if basis.shape[1]:
            block = block - basis @ (basis.T @ block)
        block = orthonormalize_columns(block)
        for _ in range(power_iterations):
            block = orthonormalize_columns(op.rmatmat(block))
            block = orthonormalize_columns(op.matmat(block))
            if basis.shape[1]:
                block = orthonormalize_columns(
                    block - basis @ (basis.T @ block))
        if block.shape[1] == 0:
            break  # range exhausted
        basis = np.column_stack([basis, block]) if basis.shape[1] \
            else block
        if estimated_residual_norm(op, basis) <= \
                relative_tolerance * norm:
            break

    projected = op.rmatmat(basis).T
    u_small, sigma, vt = np.linalg.svd(projected, full_matrices=False)
    keep = basis.shape[1]
    return SVDResult((basis @ u_small)[:, :keep], sigma[:keep],
                     vt[:keep], norm ** 2)
