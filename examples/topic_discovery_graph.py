"""Theorem 6 in action: topics as high-conductance subgraphs.

Builds the §6 graph-theoretic corpus model two ways and shows rank-``k``
spectral analysis discovering the topics in both:

1. a planted-partition graph (the theorem's literal hypothesis: ``k``
   high-conductance blocks joined by an ε fraction of cross weight),
   swept over ε to find where discovery starts degrading;
2. the document-similarity graph ``AᵀA`` of a generated corpus — the
   paper's "this distance matrix could be derived from, or in fact
   coincide with, A·Aᵀ" construction.

Run:  python examples/topic_discovery_graph.py
"""

from repro import (
    build_separable_model,
    discover_topics,
    generate_corpus,
    planted_partition_graph,
)
from repro.core.spectral_graph import theorem6_premises
from repro.graphs import document_similarity_graph


def main():
    # --- 1. Planted partitions across the cross-weight fraction ε ------
    k, block = 6, 35
    print(f"planted partition: {k} blocks of {block} vertices")
    print(f"{'epsilon':>8} {'accuracy':>9} {'eigengap':>9} "
          f"{'min conductance':>16} {'premises hold':>14}")
    for epsilon in (0.01, 0.05, 0.1, 0.2, 0.4, 0.8):
        graph, labels = planted_partition_graph(
            [block] * k, inter_fraction=epsilon, seed=17)
        discovery = discover_topics(graph, k, seed=17)
        premises = theorem6_premises(graph, labels)
        print(f"{epsilon:>8.2f} "
              f"{discovery.accuracy_against(labels):>9.3f} "
              f"{discovery.eigengap:>9.3f} "
              f"{premises.block_conductances.min():>16.3f} "
              f"{str(premises.satisfied()):>14}")
    print("discovery is exact while the cross fraction is small — the "
          "Theorem 6 regime —\nand degrades gracefully as epsilon grows "
          "past the theorem's hypothesis.")

    # --- 2. A document graph derived from a real generated corpus -----
    model = build_separable_model(n_terms=500, n_topics=k)
    corpus = generate_corpus(model, 180, seed=19)
    matrix = corpus.term_document_matrix()
    graph = document_similarity_graph(matrix)
    discovery = discover_topics(graph, k, seed=19)
    accuracy = discovery.accuracy_against(corpus.topic_labels())
    print(f"\ndocument-similarity graph (weights = A^T A) on a "
          f"{corpus.size}-document corpus:")
    print(f"  topic recovery accuracy = {accuracy:.3f}, "
          f"eigengap = {discovery.eigengap:.3f}")
    print(f"  top eigenvalues of the normalised adjacency: "
          f"{[round(float(v), 3) for v in discovery.eigenvalues]}")
    print("  (k strong eigenvalues, then a drop — the spectral "
          "signature of k topics)")


if __name__ == "__main__":
    main()
