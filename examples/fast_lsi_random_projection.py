"""The §5 speedup: random projection before LSI.

Demonstrates the paper's two-step method on a corpus large enough for
the timing to be meaningful:

1. choose the projection dimension ``l`` (the JL machinery);
2. run ``B = √(n/l)·Rᵀ·A`` followed by rank-``2k`` LSI on ``B``;
3. verify Theorem 5's recovery bound
   ``‖A − B₂ₖ‖_F² ≤ ‖A − Aₖ‖_F² + 2ε‖A‖_F²``;
4. compare wall-clock against direct LSI and against the asymptotic
   cost model ``O(m·l·(l+c))`` vs ``O(m·n·c)``.

Run:  python examples/fast_lsi_random_projection.py
"""

from repro import (
    LSIModel,
    TwoStepLSI,
    build_separable_model,
    generate_corpus,
    lsi_cost_model,
)
from repro.utils.timing import Timer


def main():
    n_terms, n_topics, n_documents = 3000, 15, 400
    model = build_separable_model(n_terms, n_topics)
    corpus = generate_corpus(model, n_documents, seed=5)
    matrix = corpus.term_document_matrix()
    c = matrix.mean_nonzeros_per_column()
    print(f"corpus: n={n_terms} terms, m={n_documents} documents, "
          f"c={c:.1f} nonzeros/doc, k={n_topics}")

    projection_dim = 80
    epsilon = 0.35  # the accuracy regime l=80 roughly corresponds to

    direct_timer = Timer()
    with direct_timer:
        direct = LSIModel.fit(matrix, n_topics, engine="lanczos", seed=0)
    print(f"\ndirect LSI: {direct_timer.last_seconds:.3f}s, "
          f"residual ||A-Ak||_F = {direct.residual_norm():.1f}")

    two_step_timer = Timer()
    with two_step_timer:
        fast = TwoStepLSI.fit(matrix, n_topics, projection_dim, seed=0)
    print(f"two-step (l={projection_dim}, rank {fast.inner_rank} on the "
          f"projection): {two_step_timer.last_seconds:.3f}s")

    report = fast.recovery_report(epsilon=epsilon)
    print("\nTheorem 5 check:")
    print(f"  ||A - B2k||_F^2 = {report.two_step_residual_sq:,.0f}")
    print(f"  ||A - Ak ||_F^2 = {report.direct_residual_sq:,.0f}")
    print(f"  bound (direct + 2*eps*||A||_F^2) = {report.bound:,.0f}")
    print(f"  bound holds: {report.holds}")
    print(f"  recovery ratio (captured energy vs direct LSI) = "
          f"{report.recovery_ratio:.3f}")

    cost = lsi_cost_model(n_terms, n_documents, c, projection_dim)
    measured = (direct_timer.last_seconds
                / max(two_step_timer.last_seconds, 1e-9))
    print(f"\ncost model: direct {cost.direct:,.0f} ops vs two-step "
          f"{cost.two_step:,.0f} ops -> predicted speedup "
          f"{cost.speedup:.1f}x")
    print(f"measured wall-clock speedup: {measured:.1f}x")
    print("\n(the asymptotic win grows with n: the projection touches "
          "each nonzero once, after which all work is l-dimensional)")


if __name__ == "__main__":
    main()
