"""Synonymy: where LSI beats keyword matching.

The paper's motivating failure of conventional retrieval: a query says
"car", the relevant documents say "automobile", and cosine-in-term-space
scores them zero.  This example manufactures that exact situation with
the paper's synonym model (two terms with identical co-occurrences),
then shows

1. the spectral signature — the synonym *difference* direction has tiny
   energy in ``A·Aᵀ`` and is projected out by rank-``k`` LSI;
2. the retrieval consequence — querying with one synonym, LSI still
   finds the documents that only use the other, while the vector-space
   model misses most of them.

Run:  python examples/synonymy_retrieval.py
"""

import numpy as np

from repro import (
    LSIModel,
    VectorSpaceModel,
    build_separable_model,
    difference_direction_analysis,
    generate_corpus,
    synonym_collapse,
)
from repro.corpus.synonyms import split_term_into_synonyms
from repro.ir.metrics import average_precision, recall_at_k


def main():
    model = build_separable_model(n_terms=400, n_topics=8,
                                  primary_mass=0.95)
    corpus = generate_corpus(model, 300, seed=11)
    labels = corpus.topic_labels()
    matrix = corpus.term_document_matrix()

    # Pick a frequent primary term of topic 0 and split it into a
    # synonym pair: each occurrence flips a fair coin between the
    # original term ("car") and a brand-new term ("automobile").
    car = 7                       # a primary term of topic 0
    matrix = split_term_into_synonyms(matrix, car, seed=3)
    automobile = matrix.shape[0] - 1
    print(f"split term {car} -> synonym pair ({car}, {automobile})")
    print(f"documents containing {car}: "
          f"{int(np.count_nonzero(matrix.get_row(car)))}, "
          f"containing {automobile}: "
          f"{int(np.count_nonzero(matrix.get_row(automobile)))}")

    # 1. The spectral signature (§4's synonymy argument).
    report = difference_direction_analysis(matrix, car, automobile,
                                           rank=model.n_topics)
    print("\nspectral signature of the pair:")
    print(f"  difference-direction energy / top eigenvalue = "
          f"{report.relative_energy:.5f}  (tiny => near-null direction)")
    print(f"  projection of the difference onto the LSI space = "
          f"{report.alignment_with_lsi_space:.4f}  "
          f"(near 0 => LSI projects it out)")
    collapse = synonym_collapse(matrix, car, automobile,
                                rank=model.n_topics)
    print(f"  term cosine: raw space {collapse.raw_cosine:.3f} -> "
          f"LSI space {collapse.lsi_cosine:.3f}")

    # 2. The retrieval consequence.  Query = the word "automobile" alone;
    # relevant documents = everything on topic 0 — including the many
    # documents that only ever said "car".
    query = np.zeros(matrix.shape[0])
    query[automobile] = 1.0
    relevant = {i for i, label in enumerate(labels) if label == 0}
    # Restrict to documents that do NOT contain the query term at all:
    # these are invisible to keyword matching.
    hidden = {i for i in relevant if matrix.get_column(i)[automobile] == 0}
    print(f"\nquery: single term {automobile} ('automobile')")
    print(f"relevant documents: {len(relevant)}, of which {len(hidden)} "
          f"never use the query term")

    vsm = VectorSpaceModel.fit(matrix)
    lsi = LSIModel.fit(matrix, rank=model.n_topics, seed=0)
    cutoff = len(relevant)
    for name, ranking in (("VSM", vsm.rank(query)),
                          ("LSI", lsi.rank_documents(query))):
        ap = average_precision(ranking, relevant)
        recall_hidden = recall_at_k(ranking, hidden, cutoff)
        print(f"{name}: average precision = {ap:.3f}; "
              f"recall of term-free relevant docs in top-{cutoff} = "
              f"{recall_hidden:.3f}")
    print("\nLSI retrieves the 'car'-only documents because both terms "
          "share the topic's latent direction; VSM cannot.")


if __name__ == "__main__":
    main()
