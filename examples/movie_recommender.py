"""Collaborative filtering with spectral methods (§6's closing analogy).

"The rows and columns of A could in general be, instead of terms and
documents, consumers and products, viewers and movies."  This example
builds a synthetic movie-rating world with latent taste groups, hides a
slice of every viewer's history, and compares three recommenders on
recovering the hidden movies:

- the spectral recommender (LSI on the movie×viewer matrix),
- raw-space cosine kNN,
- global popularity.

Run:  python examples/movie_recommender.py
"""

from repro import (
    CosineKNNRecommender,
    LatentPreferenceModel,
    PopularityRecommender,
    SpectralRecommender,
    evaluate_recommender,
)


def main():
    n_movies, n_taste_groups, n_viewers = 400, 8, 250
    world = LatentPreferenceModel(
        n_movies, n_taste_groups, primary_mass=0.9,
        interactions_low=25, interactions_high=70)
    data = world.generate(n_viewers, holdout_fraction=0.25, seed=13)
    print(f"world: {n_movies} movies, {n_taste_groups} latent taste "
          f"groups, {n_viewers} viewers")
    print(f"training interactions: {data.train.nnz} "
          f"({data.train.density:.1%} dense); one quarter of each "
          "viewer's movies hidden for evaluation")

    engines = {
        "popularity": PopularityRecommender().fit(data.train),
        "cosine kNN (raw space)":
            CosineKNNRecommender(n_neighbors=15).fit(data.train),
        f"spectral (rank {n_taste_groups})":
            SpectralRecommender(n_taste_groups).fit(data.train),
    }

    print(f"\n{'engine':<28} {'P@10':>7} {'R@10':>7} {'hit rate':>9}")
    for name, engine in engines.items():
        ev = evaluate_recommender(engine, data, top_n=10)
        print(f"{name:<28} {ev.precision_at_n:>7.3f} "
              f"{ev.recall_at_n:>7.3f} {ev.hit_rate:>9.3f}")

    # Rank sensitivity: the latent dimension matters the same way the
    # LSI rank k matters for topics — too small merges taste groups,
    # roughly-right recovers them.
    print("\nrank sweep for the spectral recommender:")
    for rank in (2, 4, 8, 16, 32):
        engine = SpectralRecommender(rank).fit(data.train)
        ev = evaluate_recommender(engine, data, top_n=10)
        marker = "  <- true group count" if rank == n_taste_groups else ""
        print(f"  rank {rank:>2}: P@10 = {ev.precision_at_n:.3f}{marker}")

    # Peek at one viewer.
    viewer = 0
    spectral = engines[f"spectral (rank {n_taste_groups})"]
    recs = spectral.recommend(viewer, data.train, top_n=5)
    hidden = data.held_out[viewer]
    print(f"\nviewer 0 (taste group {int(data.taste_labels[viewer])}): "
          f"top-5 recommendations {list(recs)}")
    print(f"  hidden movies recovered: "
          f"{sorted(set(int(r) for r in recs) & hidden)} "
          f"out of {sorted(hidden)}")


if __name__ == "__main__":
    main()
