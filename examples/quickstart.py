"""Quickstart: generate a corpus, fit LSI, run a query.

Walks the core pipeline of the paper end to end on a small corpus:

1. build a pure, ε-separable corpus model (topics over a term universe);
2. sample documents by the paper's two-step process;
3. fit rank-``k`` LSI on the term–document matrix;
4. fold a query into the LSI space and rank documents;
5. compare against the conventional vector-space model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    LSIModel,
    VectorSpaceModel,
    Vocabulary,
    build_separable_model,
    generate_corpus,
)
from repro.corpus.text import render_document


def main():
    # A model with 6 topics over 300 terms; each topic concentrates 95%
    # of its probability on its own 50 primary terms (0.05-separable).
    model = build_separable_model(n_terms=300, n_topics=6,
                                  primary_mass=0.95,
                                  length_low=40, length_high=80)
    print(f"corpus model: {model}")
    print(f"  separability eps = {model.separability():.3f}, "
          f"max term probability tau = {model.max_term_probability():.4f}")

    # Sample 200 documents by the two-step process.
    corpus = generate_corpus(model, 200, seed=42)
    matrix = corpus.term_document_matrix()
    print(f"corpus: {corpus}")
    print(f"term-document matrix: {matrix} "
          f"(c = {matrix.mean_nonzeros_per_column():.1f} "
          f"terms per document)")

    # Render one document as text, just to see what we indexed.
    vocabulary = Vocabulary.synthetic(model.universe_size)
    print("\nfirst document, rendered:")
    text = render_document(corpus[0], vocabulary, seed=0)
    print(" ", text[:160] + ("..." if len(text) > 160 else ""))
    print(f"  (generated from topic {corpus[0].topic_label})")

    # Fit rank-k LSI with k = number of topics, as Theorem 2 prescribes.
    lsi = LSIModel.fit(matrix, rank=model.n_topics, seed=0)
    print(f"\nfitted {lsi}")
    print(f"  singular values: "
          f"{np.array2string(lsi.singular_values, precision=1)}")

    # Build a 3-term query from topic 2's distribution and retrieve.
    rng = np.random.default_rng(7)
    query = rng.multinomial(3, model.topics[2].probabilities).astype(float)
    query_terms = [vocabulary.term(t) for t in np.flatnonzero(query)]
    print(f"\nquery terms: {query_terms} (drawn from topic 2)")

    top_lsi = lsi.rank_documents(query, top_k=5)
    vsm = VectorSpaceModel.fit(matrix)
    top_vsm = vsm.rank(query, top_k=5)

    labels = corpus.topic_labels()
    print(f"LSI top-5 documents:  {list(top_lsi)} "
          f"-> topics {[int(labels[d]) for d in top_lsi]}")
    print(f"VSM top-5 documents:  {list(top_vsm)} "
          f"-> topics {[int(labels[d]) for d in top_vsm]}")

    # How many of the top 20 are actually on topic 2?
    for name, ranking in (("LSI", lsi.rank_documents(query, top_k=20)),
                          ("VSM", vsm.rank(query, top_k=20))):
        hits = sum(1 for d in ranking if labels[d] == 2)
        print(f"{name} precision@20 for topic 2: {hits / 20:.2f}")


if __name__ == "__main__":
    main()
