"""Reproduce the paper's §4 experimental table at full scale.

The paper: 1000 documents of 50–100 terms from a 2000-term, 20-topic,
0.05-separable model; angles between all document pairs measured in the
original space and the rank-20 LSI space.

This script runs the exact configuration and prints our numbers next to
the paper's.  Takes a minute or two (the 1000×1000 pair angle matrices
and a rank-20 sparse SVD).

Run:  python examples/reproduce_paper_table.py [--quick]
"""

import sys

from repro.experiments.angle_table import (
    PAPER_REPORTED,
    AngleTableConfig,
    run_angle_table,
)


def main():
    config = AngleTableConfig()
    if "--quick" in sys.argv:
        config = config.scaled(0.25)
        print("(quick mode: quarter-scale corpus)\n")

    result = run_angle_table(config)
    print(result.render())

    print("\npaper's reported values (radians):")
    for (pair_kind, space), (mn, mx, avg, std) in PAPER_REPORTED.items():
        print(f"  {pair_kind:>10} / {space:<8}: min {mn:<6} max {mx:<6} "
              f"avg {avg:<7} std {std}")

    print("\nkey comparison (full-scale run):")
    print(f"  intratopic average angle: original "
          f"{result.original.intratopic_mean:.3f} vs paper 1.09; "
          f"LSI {result.lsi.intratopic_mean:.4f} vs paper 0.0177")
    print(f"  intertopic average angle: original "
          f"{result.original.intertopic_mean:.3f} vs paper 1.57; "
          f"LSI {result.lsi.intertopic_mean:.3f} vs paper 1.55")
    print("\nthe phenomenon: intratopic angles collapse by ~two orders "
          "of magnitude in the LSI space\nwhile intertopic pairs stay "
          "essentially orthogonal.")

    # A textual figure: the full intratopic angle distributions the
    # table's four numbers summarise.
    from repro.experiments.angle_table import collect_angle_samples
    from repro.utils.histogram import histogram, side_by_side

    sample_config = config if "--quick" in sys.argv else \
        config.scaled(0.4)
    original, lsi = collect_angle_samples(sample_config)
    print("\nintratopic angle distributions (radians):\n")
    print(side_by_side(
        histogram(original["intratopic"], bins=12, width=26,
                  value_range=(0.0, 1.6), title="original space"),
        histogram(lsi["intratopic"], bins=12, width=26,
                  value_range=(0.0, 1.6), title="rank-k LSI space")))


if __name__ == "__main__":
    main()
