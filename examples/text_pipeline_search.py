"""A miniature search engine over raw text: pipeline → three retrievers.

Builds the full text stack on a small hand-written document collection:

1. :class:`~repro.corpus.pipeline.TextPipeline` — tokenise, remove stop
   words, Porter-stem, prune, weight (the preprocessing the paper says
   makes ε-separability realistic);
2. three retrieval paradigms over the same index:
   - Boolean ("precise predicates" — the database paradigm of the
     paper's introduction),
   - the vector-space model,
   - LSI;
3. a vocabulary-mismatch query where the paradigms diverge.

Run:  python examples/text_pipeline_search.py
"""

from repro import LSIModel, VectorSpaceModel
from repro.corpus.pipeline import TextPipeline
from repro.corpus.stemmer import porter_stem
from repro.ir.boolean import BooleanRetriever
from repro.ir.index import InvertedIndex

DOCUMENTS = [
    # autos (0-3)
    "The automobile engine roared as the car accelerated down the road",
    "Vintage automobiles and classic cars fill the collector's garage",
    "Car engines require regular oil changes and engine maintenance",
    "The automotive industry produces millions of vehicles and engines",
    # space (4-7)
    "The starship cruised past the galaxy toward a distant nebula",
    "Astronomers observed galaxies colliding near the bright nebula",
    "The spacecraft's engine fired, pushing the starship out of orbit",
    "Galactic surveys map the stars and nebulae of our galaxy",
    # cooking (8-11)
    "Simmer the sauce slowly and season the vegetables with herbs",
    "The chef seasoned the roasted vegetables with fresh garden herbs",
    "A slow simmered sauce brings out the flavor of the herbs",
    "Roast the vegetables until tender and finish with a herb sauce",
]

LABELS = ["autos"] * 4 + ["space"] * 4 + ["cooking"] * 4


def show(title, ids):
    names = [f"d{int(i)}({LABELS[int(i)]})" for i in ids]
    print(f"  {title:<22} {' '.join(names) if names else '(nothing)'}")


def main():
    pipeline = TextPipeline(stem=True, min_documents=1)
    matrix = pipeline.fit_transform(DOCUMENTS)
    print(f"pipeline: {pipeline}")
    print(f"matrix: {matrix.shape[0]} stems x {matrix.shape[1]} docs, "
          f"{matrix.nnz} nonzeros\n")

    boolean = BooleanRetriever(InvertedIndex.from_matrix(matrix),
                               vocabulary=pipeline.vocabulary,
                               process_token=porter_stem)
    vsm = VectorSpaceModel.fit(matrix)
    lsi = LSIModel.fit(matrix, rank=3, engine="exact")

    print("query: 'galaxy AND nebula' (Boolean — precise predicate)")
    show("boolean:", boolean.search_ranked("galaxy AND nebula"))

    print("\nquery: 'seasoned vegetables' (free text)")
    query = pipeline.query_vector("seasoned vegetables")
    show("VSM top-4:", vsm.rank(query, top_k=4))
    show("LSI top-4:", lsi.rank_documents(query, top_k=4))

    # The synonymy probe: 'car' never co-occurs with d1 and d3's exact
    # words? Query a term that only some relevant docs contain.
    print("\nquery: 'automobile' — relevant docs that say only 'car' "
          "are invisible to exact matching")
    query = pipeline.query_vector("automobile")
    boolean_hits = boolean.search_ranked("automobile")
    show("boolean:", boolean_hits)
    show("VSM top-4:", vsm.rank(query, top_k=4))
    show("LSI top-4:", lsi.rank_documents(query, top_k=4))
    print("\nLSI surfaces the whole autos cluster — including documents "
          "with no\nsurface-form overlap — because 'automobile' and "
          "'car' share a latent direction.")


if __name__ == "__main__":
    main()
