"""Choosing the LSI rank k — the practical question the theory answers.

The §4 theorems say: project to exactly the number of topics.  In
practice the topic count is unknown, but the corpus tells you anyway:

1. the singular-value profile of the term–document matrix shows k
   strong values, then a drop (the gap Lemma 1 feeds on);
2. the adaptive randomized range finder discovers the same k by growing
   a sketch until the residual plateaus;
3. retrieval quality peaks around the true k: too small merges topics,
   too large re-admits sampling noise.

Run:  python examples/choosing_the_rank.py
"""

import numpy as np

from repro import (
    LSIModel,
    build_separable_model,
    generate_corpus,
    generate_topic_queries,
    skewness,
)
from repro.ir.metrics import mean_average_precision
from repro.ir.relevance import relevance_from_labels
from repro.linalg import truncated_svd
from repro.linalg.randomized import adaptive_rank_svd

TRUE_K = 7


def main():
    model = build_separable_model(n_terms=560, n_topics=TRUE_K,
                                  primary_mass=0.95)
    corpus = generate_corpus(model, 280, seed=29)
    matrix = corpus.term_document_matrix()
    labels = corpus.topic_labels()
    print(f"corpus: {corpus} generated from {TRUE_K} topics "
          "(pretend we don't know that)\n")

    # --- 1. Read the spectrum -----------------------------------------
    spectrum = truncated_svd(matrix, 2 * TRUE_K, engine="lanczos",
                             seed=1).singular_values
    print("leading singular values:")
    print(" ", np.array2string(spectrum, precision=1))
    gaps = -np.diff(spectrum)
    suggested = int(np.argmax(gaps)) + 1
    print(f"largest gap after position {suggested} "
          f"(sigma_{suggested}={spectrum[suggested - 1]:.1f} -> "
          f"sigma_{suggested + 1}={spectrum[suggested]:.1f})\n")

    # --- 2. Adaptive rank discovery ------------------------------------
    # Tolerance: the noise floor — the relative residual left once the
    # topic structure is captured (here read off the suggested gap; any
    # small margin above it works).
    at_gap = truncated_svd(matrix, suggested, engine="lanczos", seed=1)
    noise_floor = at_gap.residual_norm() / matrix.frobenius_norm()
    result = adaptive_rank_svd(matrix,
                               relative_tolerance=noise_floor * 1.02,
                               block_size=2, seed=2)
    print(f"adaptive range finder (blocks of 2, tolerance just above "
          f"the {noise_floor:.3f} noise floor): discovered rank "
          f"{result.rank}")
    print(f"  relative residual "
          f"{result.residual_norm() / matrix.frobenius_norm():.3f}\n")

    # --- 3. Retrieval quality across k ---------------------------------
    queries = generate_topic_queries(model, queries_per_topic=4,
                                     query_length=3, seed=3)
    relevant = relevance_from_labels(labels, queries.topic_labels)
    print(f"{'k':>4} {'skewness':>9} {'MAP':>7}")
    for k in (2, 4, TRUE_K, 14, 28):
        lsi = LSIModel.fit(matrix, k, engine="lanczos", seed=4)
        rankings = [lsi.rank_documents(q) for q, _ in queries]
        map_score = mean_average_precision(rankings, relevant)
        delta = skewness(lsi.document_vectors(), labels)
        marker = "  <- true topic count" if k == TRUE_K else ""
        print(f"{k:>4} {delta:>9.3f} {map_score:>7.3f}{marker}")

    print("\nall three signals agree on k: the spectral gap, the "
          "adaptive sketch,\nand the retrieval sweet spot — the §4 "
          "theory operationalised.")


if __name__ == "__main__":
    main()
