"""Tests for the theory toolbox: bounds, JL, Eckart–Young, Lemma 4."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.theory.bounds import (
    chernoff_hoeffding_tail,
    conductance_lower_bound,
    fkv_additive_error,
    lemma2_tail_probability,
    required_samples_for_fkv,
    theorem5_additive_error,
)
from repro.theory.eckart_young import eckart_young_gap
from repro.theory.jl import projected_length_statistics
from repro.theory.stewart import (
    CONCLUSION_FACTOR,
    lemma4_check,
    make_lemma4_instance,
)


class TestBounds:
    def test_lemma2_tail_decreases_in_l(self):
        # The bound is vacuous (capped at 1) for small l; compare in the
        # regime where it bites: (l-1)·eps²/24 ≫ log(2√l).
        assert lemma2_tail_probability(20_000, 0.2) < \
            lemma2_tail_probability(6_000, 0.2)

    def test_lemma2_tail_decreases_in_epsilon(self):
        assert lemma2_tail_probability(6_000, 0.4) < \
            lemma2_tail_probability(6_000, 0.2) < 1.0

    def test_lemma2_tail_capped_at_one(self):
        assert lemma2_tail_probability(2, 0.01) == 1.0

    def test_lemma2_epsilon_range(self):
        with pytest.raises(ValidationError):
            lemma2_tail_probability(10, 0.6)

    def test_hoeffding_decreases_in_n(self):
        assert chernoff_hoeffding_tail(1000, 0.1) < \
            chernoff_hoeffding_tail(10, 0.1)

    def test_hoeffding_zero_deviation(self):
        assert chernoff_hoeffding_tail(10, 0.0) == 1.0

    def test_hoeffding_range_scaling(self):
        wide = chernoff_hoeffding_tail(100, 0.1, value_range=10.0)
        narrow = chernoff_hoeffding_tail(100, 0.1, value_range=1.0)
        assert narrow < wide

    def test_conductance_bound_proportional(self):
        assert conductance_lower_bound(100, 50) == pytest.approx(2.0)
        assert conductance_lower_bound(50, 100) == pytest.approx(0.5)

    def test_theorem5_additive(self):
        assert theorem5_additive_error(0.1, 100.0) == pytest.approx(20.0)

    def test_fkv_additive_shrinks_with_samples(self):
        assert fkv_additive_error(5, 500, 100.0) < \
            fkv_additive_error(5, 50, 100.0)

    def test_required_samples_formula(self):
        assert required_samples_for_fkv(5, 0.5) == 20
        assert required_samples_for_fkv(5, 0.1) == 500

    def test_required_samples_bad_epsilon(self):
        with pytest.raises(ValidationError):
            required_samples_for_fkv(5, 0.0)


class TestJLVerification:
    def test_mean_matches_lemma(self):
        report = projected_length_statistics(400, 100, 0.3,
                                             n_trials=400, seed=1)
        assert report.expected == pytest.approx(0.25)
        assert report.empirical_mean == pytest.approx(0.25, abs=0.02)

    def test_failure_rate_within_bound(self):
        report = projected_length_statistics(500, 200, 0.3,
                                             n_trials=300, seed=2)
        assert report.within_bound

    def test_l_exceeds_n_rejected(self):
        with pytest.raises(ValidationError):
            projected_length_statistics(10, 20, 0.2)

    def test_full_projection_exact(self):
        # l = n: the projection is the identity, X = 1 always.
        report = projected_length_statistics(30, 30, 0.3,
                                             n_trials=50, seed=3)
        assert report.empirical_mean == pytest.approx(1.0, abs=1e-9)
        assert report.empirical_failure_rate == 0.0


class TestEckartYoung:
    def test_margin_non_negative(self, rng):
        matrix = rng.standard_normal((20, 15))
        report = eckart_young_gap(matrix, 4, n_challengers=30, seed=4)
        assert report.margin >= -1e-9

    def test_optimal_matches_tail_energy(self, rng):
        matrix = rng.standard_normal((12, 10))
        report = eckart_young_gap(matrix, 3, seed=5)
        sigma = np.linalg.svd(matrix, compute_uv=False)
        assert report.optimal_residual == pytest.approx(
            np.sqrt(np.sum(sigma[3:] ** 2)))

    def test_sparse_input(self, tiny_matrix):
        report = eckart_young_gap(tiny_matrix, 4, seed=6)
        assert report.margin >= -1e-9


class TestLemma4:
    def test_instance_satisfies_hypotheses(self):
        a, f = make_lemma4_instance(30, 25, 5, epsilon=0.02, seed=7)
        report = lemma4_check(a, f, 5)
        assert report.hypotheses_hold
        assert report.epsilon == pytest.approx(0.02, rel=1e-9)

    def test_conclusion_holds(self):
        for seed in range(5):
            a, f = make_lemma4_instance(30, 25, 5, epsilon=0.04,
                                        seed=seed)
            report = lemma4_check(a, f, 5)
            assert report.conclusion_holds
            assert report.measured_g_norm <= \
                CONCLUSION_FACTOR * report.epsilon + 1e-9

    def test_zero_perturbation(self):
        a, _ = make_lemma4_instance(20, 15, 4, epsilon=0.0, seed=8)
        report = lemma4_check(a, np.zeros_like(a), 4)
        assert report.hypotheses_hold
        assert report.measured_g_norm == pytest.approx(0.0, abs=1e-7)

    def test_hypotheses_fail_for_generic_matrix(self, rng):
        a = rng.standard_normal((20, 15))  # σ₁ ≫ 21/20
        report = lemma4_check(a, np.zeros_like(a), 4)
        assert not report.hypotheses_hold
        assert np.isnan(report.guaranteed_bound)
        assert not report.conclusion_holds

    def test_instance_epsilon_validated(self):
        with pytest.raises(ValidationError):
            make_lemma4_instance(20, 15, 4, epsilon=0.5)

    def test_shape_mismatch(self):
        a, f = make_lemma4_instance(20, 15, 4, seed=9)
        with pytest.raises(ValidationError):
            lemma4_check(a, f[:, :10], 4)
