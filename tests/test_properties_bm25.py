"""Property-based tests for BM25 scoring invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.bm25 import BM25Model
from repro.linalg.sparse import CSRMatrix


@st.composite
def bm25_worlds(draw):
    """A random count matrix plus a random query over its terms."""
    n = draw(st.integers(2, 8))
    m = draw(st.integers(2, 8))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 5, size=(n, m)).astype(float)
    for j in range(m):
        if counts[:, j].sum() == 0:
            counts[rng.integers(n), j] = 1.0
    query = rng.integers(0, 3, size=n).astype(float)
    if query.sum() == 0:
        query[rng.integers(n)] = 1.0
    return CSRMatrix.from_dense(counts), counts, query


class TestBM25Invariants:
    @given(bm25_worlds())
    @settings(max_examples=120, deadline=None)
    def test_scores_finite_non_negative(self, world):
        matrix, _, query = world
        scores = BM25Model.fit(matrix).score(query)
        assert np.all(np.isfinite(scores))
        assert np.all(scores >= 0)

    @given(bm25_worlds())
    @settings(max_examples=120, deadline=None)
    def test_zero_for_documents_without_query_terms(self, world):
        matrix, counts, query = world
        scores = BM25Model.fit(matrix).score(query)
        no_overlap = (counts * query[:, None]).sum(axis=0) == 0
        assert np.all(scores[no_overlap] == 0.0)

    @given(bm25_worlds())
    @settings(max_examples=120, deadline=None)
    def test_query_linearity(self, world):
        matrix, _, query = world
        model = BM25Model.fit(matrix)
        assert np.allclose(model.score(3.0 * query),
                           3.0 * model.score(query))

    @given(bm25_worlds())
    @settings(max_examples=120, deadline=None)
    def test_saturation_upper_bound(self, world):
        # Per-term contribution is capped by idf·qtf·(k1+1).
        matrix, _, query = world
        model = BM25Model.fit(matrix)
        scores = model.score(query)
        cap = float(np.sum(query * model._idf) * (model.k1 + 1.0))
        assert np.all(scores <= cap + 1e-9)

    @given(st.integers(1, 10), st.integers(1, 10),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_tf_monotone_at_fixed_length(self, tf_low, tf_extra, seed):
        # Within one fixed index, of two equal-length documents the one
        # with more of the query term scores at least as high.  (Note:
        # *refitting* after adding an occurrence can legitimately lower
        # the score — df rises, idf falls — so the invariant is stated
        # per-index, not across refits.)
        rng = np.random.default_rng(seed)
        tf_high = tf_low + tf_extra
        padding = 30
        counts = np.array([
            [float(tf_low), float(tf_high)],                # query term
            [float(padding - tf_low), float(padding - tf_high)],
            [float(rng.integers(1, 4))] * 2])               # filler
        model = BM25Model.fit(CSRMatrix.from_dense(counts))
        query = np.array([1.0, 0.0, 0.0])
        scores = model.score(query)
        assert scores[1] >= scores[0] - 1e-12
