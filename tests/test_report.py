"""Tests for the aggregate report generator."""

import pytest

from repro.errors import ValidationError
from repro.experiments import (
    ConductanceConfig,
    SkewnessSweepConfig,
)
from repro.experiments.report import (
    REPORT_SECTIONS,
    generate_report,
    write_report,
)

SMALL_CONFIGS = {
    "e2": SkewnessSweepConfig(n_terms=150, n_topics=4,
                              corpus_sizes=(40,), epsilons=(0.0, 0.1),
                              fixed_corpus_size=60),
    "x4": ConductanceConfig(block_sizes=(10, 20), corpus_sizes=(40,)),
}


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report_text(self):
        return generate_report(["e2", "x4"], configs=SMALL_CONFIGS)

    def test_sections_present(self, report_text):
        assert "## E2 —" in report_text
        assert "## X4 —" in report_text

    def test_tables_included(self, report_text):
        assert "Skewness vs epsilon" in report_text
        assert "topic-block Gram spectra" in report_text

    def test_markdown_fencing(self, report_text):
        assert report_text.count("```") == 4  # two fenced blocks

    def test_title(self):
        text = generate_report(["e2"], configs=SMALL_CONFIGS,
                               title="My run")
        assert text.startswith("# My run")

    def test_unknown_experiment(self):
        with pytest.raises(ValidationError):
            generate_report(["zzz"])

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "out" / "report.md", ["e2"],
                            configs=SMALL_CONFIGS)
        assert path.exists()
        assert "## E2" in path.read_text()

    def test_registry_matches_cli(self):
        from repro.cli import _EXPERIMENTS

        assert set(REPORT_SECTIONS) == set(_EXPERIMENTS)


class TestReportCLI:
    def test_report_command(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        import repro.experiments.report as report_module

        # Patch in tiny configs so the CLI path stays fast.
        original = report_module.generate_report

        def fast_generate(experiment_ids=None, *, configs=None,
                          title="Reproduction report"):
            return original(experiment_ids, configs=SMALL_CONFIGS,
                            title=title)

        monkeypatch.setattr(report_module, "generate_report",
                            fast_generate)
        output = tmp_path / "report.md"
        assert main(["report", "e2", "--output", str(output)]) == 0
        assert output.exists()
        assert "wrote" in capsys.readouterr().out
