"""Tests for Rocchio reformulation and pseudo-relevance feedback."""

import numpy as np
import pytest

from repro.core.lsi import LSIModel
from repro.corpus import build_separable_model, generate_corpus
from repro.errors import ValidationError
from repro.ir.feedback import pseudo_relevance_feedback, rocchio_update
from repro.ir.metrics import average_precision
from repro.ir.vsm import VectorSpaceModel


@pytest.fixture(scope="module")
def feedback_setup():
    model = build_separable_model(250, 5, length_low=10, length_high=20)
    corpus = generate_corpus(model, 200, seed=21)
    return (model, corpus, corpus.term_document_matrix(),
            corpus.topic_labels())


class TestRocchio:
    def test_pulls_toward_relevant_centroid(self, feedback_setup):
        _, _, matrix, labels = feedback_setup
        relevant = [int(i) for i in np.flatnonzero(labels == 2)[:5]]
        query = np.zeros(matrix.shape[0])
        query[0] = 1.0  # a topic-0 term
        updated = rocchio_update(query, matrix, relevant, gamma=0.0)
        centroid = np.mean([matrix.get_column(i) for i in relevant],
                           axis=0)
        # The update moved the query toward the centroid direction.
        before = centroid @ query / (np.linalg.norm(centroid)
                                     * np.linalg.norm(query))
        after = centroid @ updated / (np.linalg.norm(centroid)
                                      * np.linalg.norm(updated))
        assert after > before

    def test_alpha_zero_is_pure_centroid(self, feedback_setup):
        _, _, matrix, _ = feedback_setup
        updated = rocchio_update(np.zeros(matrix.shape[0]), matrix,
                                 [0, 1], alpha=0.0, beta=1.0, gamma=0.0)
        expected = 0.5 * (matrix.get_column(0) + matrix.get_column(1))
        assert np.allclose(updated, expected)

    def test_negative_clipping(self, feedback_setup):
        _, _, matrix, _ = feedback_setup
        updated = rocchio_update(np.zeros(matrix.shape[0]), matrix,
                                 [], [0], alpha=0.0, gamma=1.0)
        assert np.all(updated >= 0)

    def test_no_clipping_allows_negatives(self, feedback_setup):
        _, _, matrix, _ = feedback_setup
        updated = rocchio_update(np.zeros(matrix.shape[0]), matrix,
                                 [], [0], alpha=0.0, gamma=1.0,
                                 clip_negative=False)
        assert np.any(updated < 0)

    def test_empty_feedback_keeps_query(self, feedback_setup):
        _, _, matrix, _ = feedback_setup
        query = np.zeros(matrix.shape[0])
        query[3] = 2.0
        updated = rocchio_update(query, matrix, [], [])
        assert np.allclose(updated, query)

    def test_out_of_range_document(self, feedback_setup):
        _, _, matrix, _ = feedback_setup
        with pytest.raises(ValidationError):
            rocchio_update(np.zeros(matrix.shape[0]), matrix, [99999])

    def test_query_size_mismatch(self, feedback_setup):
        _, _, matrix, _ = feedback_setup
        with pytest.raises(ValidationError):
            rocchio_update(np.zeros(3), matrix, [0])


class TestPRF:
    def test_improves_vsm_single_term_query(self, feedback_setup):
        model, _, matrix, labels = feedback_setup
        vsm = VectorSpaceModel.fit(matrix)
        # A one-word query about topic 1.
        term = min(model.topics[1].primary_terms)
        query = np.zeros(matrix.shape[0])
        query[term] = 1.0
        relevant = {int(i) for i in np.flatnonzero(labels == 1)}

        base_ap = average_precision(vsm.rank(query), relevant)
        expanded = pseudo_relevance_feedback(vsm, query, matrix,
                                             feedback_depth=5)
        prf_ap = average_precision(vsm.rank(expanded), relevant)
        assert prf_ap >= base_ap

    def test_works_with_lsi_retriever(self, feedback_setup):
        model, _, matrix, labels = feedback_setup
        lsi = LSIModel.fit(matrix, 5, engine="exact")
        term = min(model.topics[0].primary_terms)
        query = np.zeros(matrix.shape[0])
        query[term] = 1.0
        expanded = pseudo_relevance_feedback(lsi, query, matrix,
                                             feedback_depth=5)
        assert expanded.shape == query.shape
        assert expanded.sum() > query.sum()  # terms were added

    def test_multiple_rounds_expand_further(self, feedback_setup):
        _, _, matrix, _ = feedback_setup
        vsm = VectorSpaceModel.fit(matrix)
        query = np.zeros(matrix.shape[0])
        query[0] = 1.0
        one = pseudo_relevance_feedback(vsm, query, matrix, rounds=1)
        two = pseudo_relevance_feedback(vsm, query, matrix, rounds=2)
        assert np.count_nonzero(two) >= np.count_nonzero(one)

    def test_retriever_protocol_enforced(self, feedback_setup):
        _, _, matrix, _ = feedback_setup
        with pytest.raises(ValidationError):
            pseudo_relevance_feedback(object(), np.zeros(250), matrix)
