"""Tests for the LSI model and the skewness machinery."""

import numpy as np
import pytest

from repro.core.lsi import LSIModel
from repro.core.skewness import (
    angle_statistics,
    pairwise_angle_table,
    skewness,
)
from repro.errors import RankError, ValidationError


@pytest.fixture(scope="module")
def fitted(tiny_matrix_module):
    return LSIModel.fit(tiny_matrix_module, 4, engine="exact")


@pytest.fixture(scope="module")
def tiny_matrix_module(tiny_corpus_module):
    return tiny_corpus_module.term_document_matrix()


@pytest.fixture(scope="module")
def tiny_corpus_module():
    from repro.corpus import build_separable_model, generate_corpus

    model = build_separable_model(120, 4, primary_mass=0.95,
                                  length_low=30, length_high=50)
    return generate_corpus(model, 80, seed=777)


class TestFit:
    def test_dimensions(self, fitted, tiny_matrix_module):
        assert fitted.rank == 4
        assert fitted.n_terms == tiny_matrix_module.shape[0]
        assert fitted.n_documents == tiny_matrix_module.shape[1]

    def test_term_basis_orthonormal(self, fitted):
        basis = fitted.term_basis
        assert np.allclose(basis.T @ basis, np.eye(4), atol=1e-9)

    def test_singular_values_descending(self, fitted):
        assert np.all(np.diff(fitted.singular_values) <= 1e-9)

    def test_rank_too_large(self, tiny_matrix_module):
        with pytest.raises(RankError):
            LSIModel.fit(tiny_matrix_module, 10_000)

    def test_engines_agree_on_documents(self, tiny_matrix_module):
        exact = LSIModel.fit(tiny_matrix_module, 4, engine="exact")
        lanczos = LSIModel.fit(tiny_matrix_module, 4, engine="lanczos",
                               seed=1)
        # Representations agree up to rotation: compare Gram matrices.
        g_exact = exact.document_vectors().T @ exact.document_vectors()
        g_lanczos = (lanczos.document_vectors().T
                     @ lanczos.document_vectors())
        assert np.allclose(g_exact, g_lanczos, atol=1e-6)


class TestRepresentation:
    def test_document_vectors_match_projection(self, fitted,
                                               tiny_matrix_module):
        vectors = fitted.document_vectors()
        expected = fitted.term_basis.T @ tiny_matrix_module.to_dense()
        assert np.allclose(vectors, expected, atol=1e-9)

    def test_document_vector_single(self, fitted):
        assert np.allclose(fitted.document_vector(3),
                           fitted.document_vectors()[:, 3])

    def test_document_vector_out_of_range(self, fitted):
        with pytest.raises(ValidationError):
            fitted.document_vector(9999)

    def test_project_query_folding(self, fitted, tiny_matrix_module):
        # Folding in an indexed document reproduces its LSI vector.
        column = tiny_matrix_module.get_column(5)
        assert np.allclose(fitted.project_query(column),
                           fitted.document_vector(5), atol=1e-9)

    def test_project_query_wrong_size(self, fitted):
        with pytest.raises(ValidationError):
            fitted.project_query(np.zeros(3))

    def test_project_documents_batch(self, fitted, tiny_matrix_module):
        projected = fitted.project_documents(tiny_matrix_module)
        assert np.allclose(projected, fitted.document_vectors(),
                           atol=1e-9)


class TestRetrieval:
    def test_self_retrieval(self, fitted, tiny_matrix_module):
        query = tiny_matrix_module.get_column(7)
        scores = fitted.score(query)
        assert np.argmax(scores) == 7 or scores[7] >= 0.99

    def test_scores_in_cosine_range(self, fitted, tiny_matrix_module):
        scores = fitted.score(tiny_matrix_module.get_column(0))
        assert np.all(scores <= 1.0 + 1e-9)
        assert np.all(scores >= -1.0 - 1e-9)

    def test_rank_documents_topically(self, fitted, tiny_corpus_module,
                                      tiny_matrix_module):
        labels = tiny_corpus_module.topic_labels()
        top = fitted.rank_documents(tiny_matrix_module.get_column(0),
                                    top_k=10)
        hits = sum(1 for d in top if labels[d] == labels[0])
        assert hits >= 9

    def test_score_in_lsi_space(self, fitted):
        vector = fitted.document_vector(2)
        scores = fitted.score_in_lsi_space(vector)
        assert scores[2] == pytest.approx(1.0, abs=1e-9)

    def test_score_in_lsi_space_wrong_rank(self, fitted):
        with pytest.raises(ValidationError):
            fitted.score_in_lsi_space(np.zeros(99))

    def test_similarities_symmetric(self, fitted):
        sims = fitted.similarities()
        assert np.allclose(sims, sims.T, atol=1e-10)
        assert np.allclose(np.diag(sims), 1.0, atol=1e-9)

    def test_rank_for_query_alias(self, fitted, tiny_matrix_module):
        query = tiny_matrix_module.get_column(1)
        with pytest.warns(DeprecationWarning, match="rank_documents"):
            aliased = fitted.rank_for_query(query, top_k=5)
        assert np.array_equal(aliased,
                              fitted.rank_documents(query, top_k=5))


class TestApproximationQuality:
    def test_reconstruct_shape(self, fitted, tiny_matrix_module):
        assert fitted.reconstruct().shape == tiny_matrix_module.shape

    def test_residual_matches_direct(self, fitted, tiny_matrix_module):
        direct = np.linalg.norm(tiny_matrix_module.to_dense()
                                - fitted.reconstruct())
        assert fitted.residual_norm() == pytest.approx(direct, rel=1e-6)

    def test_energy_fraction_in_unit_interval(self, fitted):
        assert 0.0 < fitted.energy_fraction() <= 1.0


class TestSkewness:
    def test_perfectly_separated(self):
        # Two orthogonal clusters of identical vectors.
        vectors = np.array([[1.0, 1.0, 0.0, 0.0],
                            [0.0, 0.0, 1.0, 1.0]])
        assert skewness(vectors, [0, 0, 1, 1]) == pytest.approx(0.0)

    def test_collapsed_clusters_score_one(self):
        vectors = np.array([[1.0, 1.0, 1.0, 1.0]])
        assert skewness(vectors, [0, 0, 1, 1]) == pytest.approx(1.0)

    def test_intratopic_spread_counts(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert skewness(vectors, [0, 0]) == pytest.approx(1.0)

    def test_single_document(self):
        assert skewness(np.array([[1.0]]), [0]) == 0.0

    def test_label_mismatch(self):
        with pytest.raises(ValidationError):
            skewness(np.zeros((2, 3)), [0, 1])

    def test_lsi_beats_raw_on_separable_corpus(self, fitted,
                                               tiny_corpus_module,
                                               tiny_matrix_module):
        labels = tiny_corpus_module.topic_labels()
        raw = skewness(tiny_matrix_module.to_dense(), labels)
        lsi = skewness(fitted.document_vectors(), labels)
        assert lsi < raw


class TestAngleStatistics:
    def test_matches_manual_computation(self):
        vectors = np.array([[1.0, 1.0, 0.0],
                            [0.0, 1.0, 1.0]])
        labels = [0, 0, 1]
        stats = angle_statistics(vectors, labels)
        assert stats.intratopic_mean == pytest.approx(np.pi / 4)
        assert stats.n_intratopic_pairs == 1
        assert stats.n_intertopic_pairs == 2

    def test_no_intertopic_pairs_nan(self):
        vectors = np.array([[1.0, 0.5]])
        stats = angle_statistics(vectors, [0, 0])
        assert np.isnan(stats.intertopic_mean)
        assert stats.n_intertopic_pairs == 0

    def test_table_rendering(self, fitted, tiny_corpus_module,
                             tiny_matrix_module):
        labels = tiny_corpus_module.topic_labels()
        original = angle_statistics(tiny_matrix_module.to_dense(), labels)
        lsi = angle_statistics(fitted.document_vectors(), labels)
        tables = pairwise_angle_table(original, lsi)
        assert len(tables) == 2
        assert "Intratopic" in tables[0].render()
        assert "LSI space" in tables[1].render()

    def test_as_rows_structure(self, fitted, tiny_corpus_module):
        labels = tiny_corpus_module.topic_labels()
        stats = angle_statistics(fitted.document_vectors(), labels)
        rows = stats.as_rows()
        assert set(rows) == {"intratopic", "intertopic"}
        assert len(rows["intratopic"]) == 4
