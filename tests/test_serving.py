"""Tests for the serving layer: bundles, batching, fold-in, facade."""

import json

import numpy as np
import pytest

from repro.core.lsi import LSIModel
from repro.errors import (
    PersistenceError,
    ShapeError,
    ValidationError,
)
from repro.ir.retriever import Retriever
from repro.serving import (
    BUNDLE_FORMAT,
    BatchQueryEngine,
    IndexBundle,
    IndexWriter,
    LRUResultCache,
    QueryBatch,
    ServedIndex,
    ServingConfig,
    ServingStats,
    environment_fingerprint,
    read_bundle,
    read_manifest,
    stable_top_k,
    write_bundle,
)
from repro.serving.bundle import ARRAYS_NAME, MANIFEST_NAME
from repro.utils.validation import check_top_k

ENGINES = ("lanczos", "subspace", "randomized", "exact")


@pytest.fixture
def dense_matrix(rng):
    """A dense term-document matrix with a planted low-rank block."""
    matrix = rng.random((40, 30))
    matrix[matrix < 0.5] = 0.0
    return matrix


@pytest.fixture
def model(dense_matrix):
    """A rank-5 LSI model over ``dense_matrix``."""
    return LSIModel.fit(dense_matrix, 5, engine="exact")


@pytest.fixture
def served(model):
    """A served index over ``model``."""
    return ServedIndex(model)


@pytest.fixture
def queries(rng):
    """A block of 8 random term-space queries."""
    return rng.random((40, 8))


class TestStableTopK:
    def test_matches_stable_argsort(self, rng):
        for _ in range(300):
            n = int(rng.integers(1, 40))
            scores = rng.integers(0, 6, size=n).astype(float)
            k = int(rng.integers(1, n + 1))
            expected = np.argsort(-scores, kind="stable")[:k]
            assert np.array_equal(stable_top_k(scores, k), expected)

    def test_boundary_ties_break_by_ascending_id(self):
        scores = np.array([1.0, 2.0, 1.0, 2.0, 1.0])
        assert np.array_equal(stable_top_k(scores, 4), [1, 3, 0, 2])

    def test_k_at_least_n_is_full_ranking(self):
        scores = np.array([0.5, 0.5, 0.1])
        assert np.array_equal(stable_top_k(scores, 10), [0, 1, 2])

    def test_nonpositive_k_is_empty(self):
        out = stable_top_k(np.array([1.0, 2.0]), 0)
        assert out.size == 0 and out.dtype == np.int64


class TestCheckTopK:
    def test_none_means_all(self):
        assert check_top_k(None, 7) == 7

    def test_clamps_to_corpus(self):
        assert check_top_k(100, 7) == 7

    @pytest.mark.parametrize("bad", [0, -3, 2.5, "5", True])
    def test_rejects_non_positive_and_non_int(self, bad):
        with pytest.raises(ValidationError):
            check_top_k(bad, 7)

    def test_numpy_integer_accepted(self):
        assert check_top_k(np.int64(3), 7) == 3


class TestEngineKwargsValidation:
    def test_unknown_kwarg_lists_valid_options(self, dense_matrix):
        with pytest.raises(ValidationError,
                           match=r"bogus.*extra_steps"):
            LSIModel.fit(dense_matrix, 3, engine="lanczos", bogus=1)

    def test_exact_engine_takes_no_options(self, dense_matrix):
        with pytest.raises(ValidationError, match=r"\(none\)"):
            LSIModel.fit(dense_matrix, 3, engine="exact", tol=1e-8)

    def test_valid_kwargs_still_accepted(self, dense_matrix):
        model = LSIModel.fit(dense_matrix, 3, engine="randomized",
                             seed=0, oversample=10)
        assert model.rank == 3


class TestQueryBatch:
    def test_from_vectors_stacks_columns(self, rng):
        vectors = [rng.random(12) for _ in range(3)]
        batch = QueryBatch.from_vectors(vectors)
        assert batch.matrix.shape == (12, 3)
        assert np.array_equal(batch.query(1), vectors[1])

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(ShapeError):
            QueryBatch.from_vectors([rng.random(5), rng.random(6)])

    def test_rejects_non_finite(self):
        with pytest.raises(ValidationError):
            QueryBatch(np.array([[np.nan], [1.0]]))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            QueryBatch.from_vectors([])

    def test_query_hash_is_content_keyed(self, rng):
        column = rng.random(6)
        first = QueryBatch(column[:, None])
        second = QueryBatch(np.stack([column, rng.random(6)], axis=1))
        assert first.query_hash(0) == second.query_hash(0)
        assert second.query_hash(0) != second.query_hash(1)


class TestBatchedEquivalence:
    def test_batched_scores_match_model(self, model, queries):
        # GEMM vs GEMV summation order differs in the last ULP, so
        # scores agree to ~1e-15 while *rankings* agree exactly.
        engine = BatchQueryEngine(model.term_basis,
                                  model.document_vectors())
        scores = engine.score_batch(queries)
        for i in range(queries.shape[1]):
            expected = model.score(queries[:, i])
            np.testing.assert_allclose(scores[i], expected,
                                       rtol=0, atol=1e-12)

    @pytest.mark.parametrize("top_k", [1, 3, None])
    def test_batched_ranking_matches_looped(self, model, queries,
                                            top_k):
        engine = BatchQueryEngine(model.term_basis,
                                  model.document_vectors())
        batched = engine.rank_batch(queries, top_k=top_k)
        for i in range(queries.shape[1]):
            expected = model.rank_documents(queries[:, i], top_k=top_k)
            assert np.array_equal(batched[i], expected)

    def test_zero_query_scores_zero(self, model):
        engine = BatchQueryEngine(model.term_basis,
                                  model.document_vectors())
        assert np.all(engine.score(np.zeros(model.n_terms)) == 0.0)

    def test_tombstoned_documents_never_ranked(self, model, queries):
        engine = BatchQueryEngine(model.term_basis,
                                  model.document_vectors(),
                                  tombstones=(0, 5))
        ranked = engine.rank_batch(queries)
        assert ranked.shape[1] == model.n_documents - 2
        assert 0 not in ranked and 5 not in ranked
        assert np.all(engine.score(queries[:, 0])[[0, 5]] == 0.0)

    def test_wrong_term_space_raises(self, model):
        engine = BatchQueryEngine(model.term_basis,
                                  model.document_vectors())
        with pytest.raises(ShapeError):
            engine.rank_batch(np.ones((model.n_terms + 1, 2)))

    def test_out_of_range_tombstone_raises(self, model):
        with pytest.raises(ValidationError):
            BatchQueryEngine(model.term_basis,
                             model.document_vectors(),
                             tombstones=(999,))


class TestLRUResultCache:
    def test_hit_miss_counters(self):
        cache = LRUResultCache(2)
        assert cache.get("a") is None
        cache.put("a", np.array([1, 2]))
        assert np.array_equal(cache.get("a"), [1, 2])
        assert (cache.hits, cache.misses) == (1, 1)

    def test_eviction_is_least_recently_used(self):
        cache = LRUResultCache(2)
        cache.put("a", np.array([1]))
        cache.put("b", np.array([2]))
        cache.get("a")                      # refresh a
        cache.put("c", np.array([3]))       # evicts b
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.evictions == 1

    def test_returned_arrays_are_copies(self):
        cache = LRUResultCache(2)
        cache.put("a", np.array([1, 2]))
        cache.get("a")[0] = 99
        assert np.array_equal(cache.get("a"), [1, 2])

    def test_zero_capacity_disables(self):
        cache = LRUResultCache(0)
        cache.put("a", np.array([1]))
        assert cache.get("a") is None and len(cache) == 0

    def test_concurrent_access_stays_consistent(self):
        # Regression for the unsynchronized OrderedDict: get() is
        # read-and-reorder and put() is insert-and-evict, so without
        # the lock concurrent workers corrupt the dict (KeyError from
        # move_to_end racing popitem) and the counters drift.
        import threading

        cache = LRUResultCache(capacity=16)
        n_threads, n_ops = 8, 300
        barrier = threading.Barrier(n_threads)
        errors = []

        def hammer(worker):
            try:
                barrier.wait()
                for i in range(n_ops):
                    key = ("v", (worker * 11 + i) % 40, 10)
                    cache.put(key, np.arange(5) + worker)
                    got = cache.get(key)
                    if got is not None and got.shape != (5,):
                        errors.append(f"bad shape {got.shape}")
                cache.clear()
            except Exception as error:  # noqa: BLE001 - recorded
                errors.append(repr(error))

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= 16
        # Every lookup is counted exactly once under the lock.
        assert cache.hits + cache.misses == n_threads * n_ops


class TestIndexWriter:
    def test_drift_monotone_in_adds(self, model, rng):
        writer = IndexWriter(model)
        drifts = [writer.drift]
        for _ in range(4):
            writer.add_documents(rng.random((model.n_terms, 3)))
            drifts.append(writer.drift)
        assert all(b >= a for a, b in zip(drifts, drifts[1:]))
        assert drifts[-1] > drifts[0]
        assert 0.0 <= drifts[-1] < 1.0

    def test_in_subspace_foldin_adds_no_drift(self, model):
        in_subspace = model.term_basis @ np.ones((model.rank, 2))
        writer = IndexWriter(model)
        writer.add_documents(in_subspace)
        assert writer.drift == pytest.approx(0.0, abs=1e-12)

    def test_delete_adds_drift_and_tombstones(self, model):
        writer = IndexWriter(model)
        writer.remove_documents([3])
        assert writer.tombstones == (3,)
        assert writer.drift > 0.0
        assert writer.n_active == model.n_documents - 1

    def test_delete_twice_raises(self, model):
        writer = IndexWriter(model)
        writer.remove_documents([3])
        with pytest.raises(ValidationError):
            writer.remove_documents([3])
        with pytest.raises(ValidationError):
            writer.remove_documents([model.n_documents])

    def test_threshold_flags_refit(self, model, rng):
        writer = IndexWriter(model, drift_threshold=1e-6)
        assert not writer.needs_refit
        writer.add_documents(rng.random((model.n_terms, 5)))
        assert writer.needs_refit
        report = writer.drift_report()
        assert report.needs_refit and report.drift == writer.drift

    def test_refit_resets_accounting(self, model, dense_matrix, rng):
        writer = IndexWriter(model, drift_threshold=1e-6)
        writer.add_documents(rng.random((model.n_terms, 5)))
        writer.remove_documents([0])
        writer.refit(dense_matrix)
        assert writer.drift == 0.0
        assert writer.tombstones == ()
        assert writer.fold_ins_since_refit == 0
        assert writer.deletes_since_refit == 0
        assert writer.refits == 1
        assert not writer.needs_refit

    def test_foldin_ids_are_appended(self, model, rng):
        writer = IndexWriter(model)
        ids = writer.add_documents(rng.random((model.n_terms, 2)))
        assert np.array_equal(
            ids, [model.n_documents, model.n_documents + 1])
        assert writer.n_folded == 2


class TestBundleRoundTrip:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_roundtrip_preserves_rankings_dense(
            self, dense_matrix, queries, tmp_path, engine):
        model = LSIModel.fit(dense_matrix, 4, engine=engine, seed=0)
        index = ServedIndex(model)
        before = index.rank_batch(queries, top_k=10)
        loaded = ServedIndex.load(index.save(tmp_path / "b"))
        assert np.array_equal(loaded.rank_batch(queries, top_k=10),
                              before)

    def test_roundtrip_preserves_rankings_sparse(
            self, tiny_matrix, tmp_path, rng):
        index = ServedIndex.fit(tiny_matrix, 4, seed=0)
        block = rng.random((tiny_matrix.shape[0], 5))
        before = index.rank_batch(block, top_k=7)
        loaded = ServedIndex.load(index.save(tmp_path / "b"))
        assert np.array_equal(loaded.rank_batch(block, top_k=7),
                              before)

    def test_truncated_model_roundtrips(self, dense_matrix, tmp_path):
        model = LSIModel.fit(dense_matrix, 6, engine="exact")
        truncated = LSIModel(model.svd.truncate(3))
        index = ServedIndex(truncated)
        loaded = ServedIndex.load(index.save(tmp_path / "b"))
        assert loaded.rank == 3
        np.testing.assert_array_equal(
            loaded.model.singular_values,
            truncated.singular_values)

    def test_state_survives_roundtrip(self, served, rng, tmp_path):
        served.add_documents(rng.random((served.n_terms, 3)))
        served.remove_documents([1, 4])
        loaded = ServedIndex.load(served.save(tmp_path / "b"))
        assert loaded.n_documents == served.n_documents
        assert loaded.drift == pytest.approx(served.drift)
        assert loaded.needs_refit == served.needs_refit
        writer_stats = loaded.stats()
        assert writer_stats.fold_ins_since_refit == 3
        assert writer_stats.deletes_since_refit == 2

    def test_vocabulary_roundtrips(self, dense_matrix, tmp_path):
        terms = tuple(f"t{i}" for i in range(dense_matrix.shape[0]))
        index = ServedIndex.fit(dense_matrix, 3, engine="exact",
                                vocabulary=terms)
        loaded = ServedIndex.load(index.save(tmp_path / "b"))
        assert loaded.vocabulary == terms

    def test_manifest_records_env_and_checksum(self, served, tmp_path):
        path = served.save(tmp_path / "b")
        manifest = read_manifest(path, verify_arrays=True)
        assert manifest["format"] == BUNDLE_FORMAT
        assert set(environment_fingerprint()) <= set(manifest["env"])
        for name in ("u.npy", "vt.npy", "doc_vectors.npy",
                     "doc_unit.npy", "doc_norms.npy"):
            assert manifest["checksums"][name].startswith("sha256:")


class TestBundleRejection:
    def test_missing_bundle(self, tmp_path):
        with pytest.raises(PersistenceError, match="not an index"):
            read_bundle(tmp_path / "nope")

    def test_corrupted_arrays_detected(self, served, tmp_path):
        path = served.save(tmp_path / "b")
        arrays = path / "doc_vectors.npy"
        blob = bytearray(arrays.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        arrays.write_bytes(bytes(blob))
        with pytest.raises(PersistenceError, match="corrupted"):
            read_bundle(path)

    def test_foreign_format_marker_rejected(self, served, tmp_path):
        path = served.save(tmp_path / "b")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["format"] = "someone-elses-index"
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="foreign"):
            read_bundle(path)

    def test_future_schema_rejected(self, served, tmp_path):
        path = served.save(tmp_path / "b")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["schema_version"] = 99
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="schema_version"):
            read_manifest(path)

    def test_unparsable_manifest_rejected(self, served, tmp_path):
        path = served.save(tmp_path / "b")
        (path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(PersistenceError, match="unreadable"):
            read_manifest(path)

    def test_manifest_shape_mismatch_rejected(self, served, tmp_path):
        path = served.save(tmp_path / "b")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["n_documents"] = 9999
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="mismatch"):
            read_bundle(path)

    def test_legacy_v1_bundle_loads_with_defaults(self, model,
                                                  tmp_path):
        bundle = IndexBundle.from_model(model)
        path = write_bundle(tmp_path / "b", bundle)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["schema_version"] = 1
        for key in ("n_original", "n_tombstoned", "stats",
                    "unabsorbed_energy", "drift_threshold"):
            manifest.pop(key, None)
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        # v1 bundles carried only the factors, in a single npz.
        v1 = {name: np.load(path / f"{name}.npy")
              for name in ("u", "singular_values", "vt",
                           "frobenius_norm_sq")}
        for stale in path.glob("*.npy"):
            stale.unlink()
        with open(path / ARRAYS_NAME, "wb") as handle:
            np.savez(handle, **v1)
        checksum = manifest["checksums"] = {
            ARRAYS_NAME: "sha256:" + __import__("hashlib").sha256(
                (path / ARRAYS_NAME).read_bytes()).hexdigest()}
        assert checksum
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        loaded = ServedIndex.load(path)
        assert loaded.n_documents == model.n_documents
        assert loaded.drift == 0.0
        assert loaded.stats() == ServingStats()


class TestServedIndex:
    def test_satisfies_retriever_protocol(self, served, model,
                                          tiny_matrix):
        from repro.core.folding import FoldingIndex
        from repro.core.two_step import TwoStepLSI
        from repro.ir.bm25 import BM25Model
        from repro.ir.vsm import VectorSpaceModel

        assert isinstance(served, Retriever)
        assert isinstance(model, Retriever)
        assert isinstance(
            VectorSpaceModel.fit(tiny_matrix), Retriever)
        assert isinstance(BM25Model.fit(tiny_matrix), Retriever)
        folding_model = LSIModel.fit(tiny_matrix, 4, seed=0)
        assert isinstance(FoldingIndex(folding_model), Retriever)
        assert isinstance(
            TwoStepLSI.fit(tiny_matrix, 4, 20, seed=0), Retriever)

    def test_rankings_match_plain_model(self, served, model, queries):
        for i in range(queries.shape[1]):
            assert np.array_equal(
                served.rank_documents(queries[:, i], top_k=5),
                model.rank_documents(queries[:, i], top_k=5))

    def test_repeat_query_hits_cache(self, served, queries):
        query = queries[:, 0]
        first = served.rank_documents(query, top_k=5)
        second = served.rank_documents(query, top_k=5)
        assert np.array_equal(first, second)
        stats = served.stats()
        assert stats.cache_hits == 1
        assert stats.queries_served == 2

    def test_update_invalidates_cache(self, served, queries, rng):
        query = queries[:, 0]
        served.rank_documents(query, top_k=5)
        generation_before = served.index_version
        served.add_documents(rng.random((served.n_terms, 2)))
        assert served.index_version != generation_before
        served.rank_documents(query, top_k=5)
        assert served.stats().cache_hits == 0

    def test_batch_mixes_cached_and_fresh(self, served, queries):
        served.rank_documents(queries[:, 2], top_k=4)
        batched = served.rank_batch(queries, top_k=4)
        assert served.stats().cache_hits == 1
        engine = BatchQueryEngine(
            served.model.term_basis,
            served.model.document_vectors())
        assert np.array_equal(batched,
                              engine.rank_batch(queries, top_k=4))

    def test_removed_documents_leave_rankings(self, served, queries):
        removed = int(served.rank_documents(queries[:, 0], top_k=1)[0])
        served.remove_documents([removed])
        ranked = served.rank_documents(queries[:, 0])
        assert removed not in ranked
        assert ranked.shape[0] == served.n_active

    def test_refit_restores_health(self, served, dense_matrix, rng):
        served = ServedIndex(
            served.model,
            config=ServingConfig(drift_threshold=1e-6))
        served.add_documents(rng.random((served.n_terms, 4)))
        assert served.needs_refit
        served.refit(dense_matrix, engine="exact")
        assert not served.needs_refit
        assert served.stats().refits == 1

    def test_stats_accumulate_across_roundtrip(self, served, queries,
                                               tmp_path):
        served.rank_batch(queries, top_k=3)
        saved_queries = served.stats().queries_served
        loaded = ServedIndex.load(served.save(tmp_path / "b"))
        loaded.rank_documents(queries[:, 0], top_k=3)
        assert loaded.stats().queries_served == saved_queries + 1


class TestServeStatsCLI:
    def test_text_output(self, served, queries, tmp_path, capsys):
        from repro.cli import main

        served.rank_batch(queries, top_k=5)
        path = served.save(tmp_path / "b")
        assert main(["serve-stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "queries served" in out and "drift" in out

    def test_json_output(self, served, tmp_path, capsys):
        from repro.cli import main

        path = served.save(tmp_path / "b")
        assert main(["serve-stats", str(path), "--json"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["format"] == BUNDLE_FORMAT

    def test_verify_detects_corruption(self, served, tmp_path,
                                       capsys):
        from repro.cli import main

        path = served.save(tmp_path / "b")
        arrays = path / "u.npy"
        blob = bytearray(arrays.read_bytes())
        blob[-1] ^= 0xFF
        arrays.write_bytes(bytes(blob))
        assert main(["serve-stats", str(path), "--verify"]) == 2
        captured = capsys.readouterr()
        assert "FAILED" in captured.out
        assert "u.npy" in captured.err
        assert "expected" in captured.err

    def test_non_bundle_path_errors(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["serve-stats", str(tmp_path / "nope")]) == 2
        assert "not an index bundle" in capsys.readouterr().err


class TestServingStats:
    def test_dict_roundtrip_ignores_unknown_keys(self):
        stats = ServingStats(queries_served=3, cache_hits=1,
                             cache_misses=1)
        payload = stats.as_dict()
        payload["from_the_future"] = 42
        assert ServingStats.from_dict(payload) == stats

    def test_hit_rate(self):
        assert ServingStats().cache_hit_rate == 0.0
        stats = ServingStats(cache_hits=3, cache_misses=1)
        assert stats.cache_hit_rate == pytest.approx(0.75)
