"""Tests for the stemmer, stop words, and the text pipeline."""

import numpy as np
import pytest

from repro.corpus.pipeline import TextPipeline
from repro.corpus.stemmer import porter_stem, stem_tokens
from repro.corpus.stopwords import (
    ENGLISH_STOP_WORDS,
    high_document_frequency_terms,
    is_stop_word,
    low_document_frequency_terms,
    prune_terms,
    remove_stop_words,
)
from repro.errors import EmptyCorpusError, NotFittedError, ValidationError
from repro.linalg.sparse import CSRMatrix


class TestPorterStemmer:
    # The canonical examples from Porter's 1980 paper, step by step.
    @pytest.mark.parametrize("word,stem", [
        ("caresses", "caress"), ("ponies", "poni"), ("ties", "ti"),
        ("caress", "caress"), ("cats", "cat"),
    ])
    def test_step_1a(self, word, stem):
        assert porter_stem(word) == stem

    @pytest.mark.parametrize("word,stem", [
        ("feed", "feed"), ("agreed", "agre"), ("plastered", "plaster"),
        ("bled", "bled"), ("motoring", "motor"), ("sing", "sing"),
        ("conflated", "conflat"), ("troubled", "troubl"),
        ("sized", "size"), ("hopping", "hop"), ("tanned", "tan"),
        ("falling", "fall"), ("hissing", "hiss"), ("fizzed", "fizz"),
        ("failing", "fail"), ("filing", "file"),
    ])
    def test_step_1b(self, word, stem):
        assert porter_stem(word) == stem

    @pytest.mark.parametrize("word,stem", [
        ("happy", "happi"), ("sky", "sky"),
    ])
    def test_step_1c(self, word, stem):
        assert porter_stem(word) == stem

    @pytest.mark.parametrize("word,stem", [
        ("relational", "relat"), ("conditional", "condit"),
        ("rational", "ration"), ("valenci", "valenc"),
        ("digitizer", "digit"), ("conformabli", "conform"),
        ("radicalli", "radic"), ("differentli", "differ"),
        ("vileli", "vile"), ("analogousli", "analog"),
        ("vietnamization", "vietnam"), ("predication", "predic"),
        ("operator", "oper"), ("feudalism", "feudal"),
        ("decisiveness", "decis"), ("hopefulness", "hope"),
        ("callousness", "callous"), ("formaliti", "formal"),
        ("sensitiviti", "sensit"), ("sensibiliti", "sensibl"),
    ])
    def test_step_2(self, word, stem):
        assert porter_stem(word) == stem

    @pytest.mark.parametrize("word,stem", [
        ("triplicate", "triplic"), ("formative", "form"),
        ("formalize", "formal"), ("electriciti", "electr"),
        ("electrical", "electr"), ("hopeful", "hope"),
        ("goodness", "good"),
    ])
    def test_step_3(self, word, stem):
        assert porter_stem(word) == stem

    @pytest.mark.parametrize("word,stem", [
        ("revival", "reviv"), ("allowance", "allow"),
        ("inference", "infer"), ("airliner", "airlin"),
        ("gyroscopic", "gyroscop"), ("adjustable", "adjust"),
        ("defensible", "defens"), ("irritant", "irrit"),
        ("replacement", "replac"), ("adjustment", "adjust"),
        ("dependent", "depend"), ("adoption", "adopt"),
        ("communism", "commun"), ("activate", "activ"),
        ("homologous", "homolog"), ("effective", "effect"),
        ("bowdlerize", "bowdler"),
    ])
    def test_step_4(self, word, stem):
        assert porter_stem(word) == stem

    @pytest.mark.parametrize("word,stem", [
        ("probate", "probat"), ("rate", "rate"), ("cease", "ceas"),
        ("controll", "control"), ("roll", "roll"),
    ])
    def test_step_5(self, word, stem):
        assert porter_stem(word) == stem

    def test_short_words_unchanged(self):
        assert porter_stem("at") == "at"
        assert porter_stem("by") == "by"

    def test_lowercases(self):
        assert porter_stem("Running") == porter_stem("running")

    def test_conflates_morphological_family(self):
        stems = {porter_stem(w) for w in
                 ("connect", "connected", "connecting", "connection",
                  "connections")}
        assert len(stems) == 1

    def test_stem_tokens(self):
        assert stem_tokens(["cats", "running"]) == ["cat", "run"]


class TestStopWords:
    def test_common_words_are_stops(self):
        for word in ("the", "and", "of", "is"):
            assert is_stop_word(word)
            assert is_stop_word(word.upper())

    def test_content_words_are_not(self):
        for word in ("galaxy", "starship", "automobile"):
            assert not is_stop_word(word)

    def test_remove_stop_words(self):
        tokens = ["the", "galaxy", "and", "starship"]
        assert remove_stop_words(tokens) == ["galaxy", "starship"]

    def test_remove_with_extra(self):
        assert remove_stop_words(["foo", "bar"], extra=["foo"]) == ["bar"]

    def test_stop_list_is_lowercase(self):
        assert all(w == w.lower() for w in ENGLISH_STOP_WORDS)


class TestDFPruning:
    @pytest.fixture
    def matrix(self):
        # Term 0 everywhere, term 1 in one doc, term 2 in half.
        return CSRMatrix.from_dense(np.array([
            [1.0, 1.0, 1.0, 1.0],
            [1.0, 0.0, 0.0, 0.0],
            [1.0, 1.0, 0.0, 0.0]]))

    def test_high_df(self, matrix):
        assert list(high_document_frequency_terms(matrix, 0.6)) == [0]

    def test_low_df(self, matrix):
        assert list(low_document_frequency_terms(matrix, 2)) == [1]

    def test_prune_both(self, matrix):
        pruned, kept = prune_terms(matrix, max_df_fraction=0.6,
                                   min_documents=2)
        assert list(kept) == [2]
        assert pruned.shape == (1, 4)

    def test_prune_everything_rejected(self, matrix):
        with pytest.raises(ValidationError):
            prune_terms(matrix, max_df_fraction=0.1, min_documents=5)


class TestTextPipeline:
    DOCS = [
        "The starships were connecting to the galaxy's relay",
        "Starship connections in the galaxy",
        "Databases store the employee and the manager salaries",
        "A database stores salaries for employees",
    ]

    def test_fit_transform_shapes(self):
        pipeline = TextPipeline()
        matrix = pipeline.fit_transform(self.DOCS)
        assert matrix.shape[1] == 4
        assert matrix.shape[0] == len(pipeline.vocabulary)

    def test_stop_words_removed(self):
        pipeline = TextPipeline()
        pipeline.fit_transform(self.DOCS)
        assert "the" not in pipeline.vocabulary
        assert "and" not in pipeline.vocabulary

    def test_stemming_conflates(self):
        pipeline = TextPipeline(stem=True)
        pipeline.fit_transform(self.DOCS)
        vocabulary = set(pipeline.vocabulary)
        # 'starships'/'starship' and 'connecting'/'connections'
        # conflate to one stem each.
        assert porter_stem("starships") in vocabulary
        assert "starships" not in vocabulary

    def test_no_stemming_keeps_forms(self):
        pipeline = TextPipeline(stem=False)
        pipeline.fit_transform(self.DOCS)
        assert "starships" in pipeline.vocabulary
        assert "starship" in pipeline.vocabulary

    def test_transform_matches_fit_space(self):
        pipeline = TextPipeline()
        trained = pipeline.fit_transform(self.DOCS)
        again = pipeline.transform(self.DOCS)
        # Same counts (fit_transform used count weighting by default).
        assert np.allclose(again.to_dense(), trained.to_dense())

    def test_transform_drops_oov(self):
        pipeline = TextPipeline()
        pipeline.fit_transform(self.DOCS)
        column = pipeline.transform(["zyzzyx unknownword"]).get_column(0)
        assert np.all(column == 0)

    def test_query_vector(self):
        pipeline = TextPipeline()
        pipeline.fit_transform(self.DOCS)
        query = pipeline.query_vector("galaxy starship")
        assert query.sum() == 2

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            TextPipeline().transform(["text"])

    def test_min_documents_pruning(self):
        pipeline = TextPipeline(min_documents=2, stem=True)
        pipeline.fit_transform(self.DOCS)
        # 'relay' appears once; pruned.
        assert porter_stem("relay") not in pipeline.vocabulary
        assert porter_stem("galaxy") in pipeline.vocabulary

    def test_weighting_applied(self):
        pipeline = TextPipeline(weighting="binary")
        matrix = pipeline.fit_transform(
            ["galaxy galaxy galaxy", "galaxy starship"])
        assert set(np.unique(matrix.data)) <= {1.0}

    def test_bad_weighting_rejected(self):
        with pytest.raises(ValidationError):
            TextPipeline(weighting="bogus")

    def test_empty_collection_rejected(self):
        with pytest.raises(EmptyCorpusError):
            TextPipeline().fit_transform([])

    def test_all_stopword_collection_rejected(self):
        with pytest.raises(EmptyCorpusError):
            TextPipeline().fit_transform(["the and of", "is was"])

    def test_end_to_end_lsi_retrieval(self):
        from repro.core.lsi import LSIModel

        pipeline = TextPipeline()
        matrix = pipeline.fit_transform(self.DOCS)
        lsi = LSIModel.fit(matrix, 2, engine="exact")
        query = pipeline.query_vector("galaxy starships")
        top = lsi.rank_documents(query, top_k=2)
        assert set(int(d) for d in top) == {0, 1}
