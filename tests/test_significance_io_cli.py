"""Tests for significance tests, corpus persistence, and the CLI."""

import numpy as np
import pytest

from repro.corpus import build_separable_model, generate_corpus
from repro.corpus.io import (
    load_corpus,
    load_matrix,
    save_corpus,
    save_matrix,
)
from repro.errors import ValidationError
from repro.ir.significance import (
    paired_bootstrap_test,
    paired_sign_test,
)


class TestSignTest:
    def test_clear_winner(self):
        a = [0.9] * 20
        b = [0.1] * 20
        result = paired_sign_test(a, b)
        assert result.mean_difference == pytest.approx(0.8)
        assert result.p_value < 0.001
        assert result.significant()

    def test_identical_systems(self):
        scores = [0.5, 0.6, 0.7]
        result = paired_sign_test(scores, scores)
        assert result.p_value == 1.0
        assert not result.significant()

    def test_exact_binomial_value(self):
        # 5 wins, 0 losses: two-sided p = 2 * (1/32) = 1/16.
        result = paired_sign_test([1] * 5, [0] * 5)
        assert result.p_value == pytest.approx(2 / 32)

    def test_ties_discarded(self):
        a = [1.0, 1.0, 0.9, 0.9, 0.9]
        b = [1.0, 1.0, 0.1, 0.1, 0.1]
        result = paired_sign_test(a, b)
        # 3 decided pairs, all wins: p = 2 * (1/8) = 0.25.
        assert result.p_value == pytest.approx(0.25)

    def test_mixed_evidence_not_significant(self):
        a = [0.6, 0.4, 0.6, 0.4]
        b = [0.4, 0.6, 0.4, 0.6]
        assert not paired_sign_test(a, b).significant()

    def test_length_mismatch(self):
        with pytest.raises(Exception):
            paired_sign_test([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            paired_sign_test([], [])


class TestBootstrapTest:
    def test_clear_winner(self, rng):
        a = 0.8 + 0.05 * rng.standard_normal(40)
        b = 0.3 + 0.05 * rng.standard_normal(40)
        result = paired_bootstrap_test(a, b, seed=1)
        assert result.significant()
        assert result.mean_difference > 0.4

    def test_noise_not_significant(self, rng):
        a = rng.standard_normal(30)
        b = a + 0.001 * rng.standard_normal(30)
        result = paired_bootstrap_test(a, b, n_resamples=2000, seed=2)
        assert result.p_value > 0.05

    def test_deterministic_given_seed(self, rng):
        a = rng.standard_normal(20)
        b = rng.standard_normal(20)
        r1 = paired_bootstrap_test(a, b, seed=3)
        r2 = paired_bootstrap_test(a, b, seed=3)
        assert r1.p_value == r2.p_value

    def test_alpha_validated(self, rng):
        result = paired_bootstrap_test([1.0, 2.0], [0.0, 1.0], seed=4)
        with pytest.raises(ValidationError):
            result.significant(alpha=2.0)

    def test_symmetry_of_direction(self, rng):
        a = rng.standard_normal(25) + 1.0
        b = rng.standard_normal(25)
        forward = paired_bootstrap_test(a, b, seed=5)
        backward = paired_bootstrap_test(b, a, seed=5)
        assert forward.mean_difference == pytest.approx(
            -backward.mean_difference)


class TestRetrievalSignificance:
    def test_lsi_vs_vsm_significant(self):
        from repro.experiments.retrieval_exp import (
            RetrievalConfig,
            run_retrieval_experiment,
        )

        result = run_retrieval_experiment(RetrievalConfig(
            n_terms=250, n_topics=5, n_documents=150,
            projection_dim=50, queries_per_topic=4, seed=19))
        test = result.significance("lsi", "vsm", "single-term", seed=0)
        assert test.mean_difference > 0
        assert test.significant()


class TestMatrixIO:
    def test_round_trip(self, tiny_matrix, tmp_path):
        path = save_matrix(tiny_matrix, tmp_path / "matrix")
        assert path.suffix == ".npz"
        assert load_matrix(path) == tiny_matrix

    def test_empty_matrix(self, tmp_path):
        from repro.linalg.sparse import CSRMatrix

        empty = CSRMatrix.zeros(3, 4)
        path = save_matrix(empty, tmp_path / "empty.npz")
        assert load_matrix(path) == empty

    def test_format_check(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, format=np.asarray("other"), x=np.zeros(3))
        with pytest.raises(ValidationError):
            load_matrix(bogus)

    def test_type_check(self, tmp_path):
        with pytest.raises(ValidationError):
            save_matrix(np.eye(3), tmp_path / "x")


class TestCorpusIO:
    def test_round_trip_documents(self, tiny_corpus, tmp_path):
        path = save_corpus(tiny_corpus, tmp_path / "corpus")
        loaded = load_corpus(path)
        assert len(loaded) == len(tiny_corpus)
        for original, restored in zip(tiny_corpus, loaded):
            assert restored.term_counts == original.term_counts

    def test_labels_survive(self, tiny_corpus, tmp_path):
        path = save_corpus(tiny_corpus, tmp_path / "corpus")
        loaded = load_corpus(path)
        assert np.array_equal(loaded.topic_labels(),
                              tiny_corpus.topic_labels())

    def test_matrix_identical_after_round_trip(self, tiny_corpus,
                                               tmp_path):
        path = save_corpus(tiny_corpus, tmp_path / "corpus")
        loaded = load_corpus(path)
        assert loaded.term_document_matrix() == \
            tiny_corpus.term_document_matrix()

    def test_unlabeled_corpus(self, tmp_path):
        from repro.corpus.corpus import Corpus
        from repro.corpus.document import Document

        corpus = Corpus([Document({0: 2, 3: 1}, universe_size=5)])
        path = save_corpus(corpus, tmp_path / "plain")
        loaded = load_corpus(path)
        assert not loaded.has_labels()
        assert loaded[0].term_counts == {0: 2, 3: 1}


class TestCLI:
    def test_list_command(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "t1" in output and "e10" in output and "x5" in output

    def test_info_command(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        assert "repro" in capsys.readouterr().out

    def test_run_t1_scaled(self, capsys):
        from repro.cli import main

        assert main(["run", "t1", "--scale", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "Intratopic" in output

    def test_run_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["run", "zzz"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_paper_table_command(self, capsys):
        from repro.cli import main

        assert main(["paper-table", "--scale", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "paper reported" in output

    def test_seed_override(self, capsys):
        from repro.cli import main

        assert main(["run", "t1", "--scale", "0.1",
                     "--seed", "5"]) == 0
        first = capsys.readouterr().out
        assert main(["run", "t1", "--scale", "0.1",
                     "--seed", "5"]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_no_command_prints_help(self, capsys):
        from repro.cli import main

        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()
