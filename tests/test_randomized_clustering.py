"""Tests for the randomized SVD engine and the clustering module."""

import numpy as np
import pytest

from repro.core.clustering import (
    CLUSTER_SPACES,
    NearestCentroidClassifier,
    cluster_documents,
)
from repro.corpus import build_separable_model, generate_corpus
from repro.errors import NotFittedError, ValidationError
from repro.linalg.randomized import (
    adaptive_rank_svd,
    estimated_residual_norm,
    randomized_range_finder,
    randomized_svd,
)
from repro.linalg.svd import exact_svd, truncated_svd
from repro.utils.kmeans import clustering_accuracy


@pytest.fixture(scope="module")
def gapped(rng=None):
    generator = np.random.default_rng(7)
    u = np.linalg.qr(generator.standard_normal((60, 60)))[0]
    v = np.linalg.qr(generator.standard_normal((45, 45)))[0]
    sigma = np.concatenate([[40, 35, 30, 25, 20], np.full(40, 0.5)])
    return (u[:, :45] * sigma) @ v.T


class TestRandomizedRangeFinder:
    def test_orthonormal_output(self, gapped):
        basis = randomized_range_finder(gapped, 8, seed=1)
        assert np.allclose(basis.T @ basis, np.eye(basis.shape[1]),
                           atol=1e-9)

    def test_captures_dominant_range(self, gapped):
        basis = randomized_range_finder(gapped, 8, seed=2)
        u = np.linalg.svd(gapped, full_matrices=False)[0][:, :5]
        # Top-5 left singular vectors lie (almost) inside the range.
        residual = u - basis @ (basis.T @ u)
        assert np.linalg.norm(residual) < 1e-6

    def test_power_iterations_sharpen(self, gapped):
        flat = randomized_range_finder(gapped, 6, power_iterations=0,
                                       seed=3)
        sharp = randomized_range_finder(gapped, 6, power_iterations=3,
                                        seed=3)
        assert estimated_residual_norm(gapped, sharp) <= \
            estimated_residual_norm(gapped, flat) + 1e-9


class TestRandomizedSVD:
    def test_matches_exact_on_gapped(self, gapped):
        u, s, vt = randomized_svd(gapped, 5, seed=4)
        exact = np.linalg.svd(gapped, compute_uv=False)
        assert np.allclose(s, exact[:5], rtol=1e-6)

    def test_engine_front_end(self, gapped):
        result = truncated_svd(gapped, 5, engine="randomized", seed=5)
        exact = np.linalg.svd(gapped, compute_uv=False)
        assert np.allclose(result.singular_values, exact[:5], rtol=1e-6)

    def test_sparse_input(self, tiny_matrix):
        result = truncated_svd(tiny_matrix, 4, engine="randomized",
                               seed=6, power_iterations=4)
        reference = exact_svd(tiny_matrix)
        assert np.allclose(result.singular_values,
                           reference.singular_values[:4], rtol=1e-3)

    def test_factors_orthonormal(self, gapped):
        u, s, vt = randomized_svd(gapped, 5, seed=7)
        assert np.allclose(u.T @ u, np.eye(5), atol=1e-8)
        assert np.allclose(vt @ vt.T, np.eye(5), atol=1e-8)


class TestAdaptiveRank:
    def test_discovers_topic_count(self):
        model = build_separable_model(300, 6)
        corpus = generate_corpus(model, 150, seed=8)
        matrix = corpus.term_document_matrix()
        # Tolerance placed between the k-topic and (k+1)-topic residual
        # levels: the discovered rank should be ~6.
        reference = exact_svd(matrix)
        target = reference.truncate(6).residual_norm() \
            / matrix.frobenius_norm()
        result = adaptive_rank_svd(matrix,
                                   relative_tolerance=target * 1.02,
                                   block_size=2, seed=9)
        assert 5 <= result.rank <= 8

    def test_residual_below_tolerance(self, gapped):
        result = adaptive_rank_svd(gapped, relative_tolerance=0.3,
                                   block_size=4, seed=10)
        assert result.residual_norm() <= \
            0.3 * np.linalg.norm(gapped) + 1e-6

    def test_max_rank_respected(self, gapped):
        result = adaptive_rank_svd(gapped, relative_tolerance=0.0001,
                                   block_size=4, max_rank=6, seed=11)
        assert result.rank <= 8  # 6 rounded up to a block boundary

    def test_zero_matrix_rejected(self):
        with pytest.raises(ValidationError):
            adaptive_rank_svd(np.zeros((5, 5)))

    def test_bad_tolerance(self, gapped):
        with pytest.raises(ValidationError):
            adaptive_rank_svd(gapped, relative_tolerance=1.5)

    def test_estimated_residual_matches_direct(self, gapped):
        basis = randomized_range_finder(gapped, 5, seed=12)
        direct = np.linalg.norm(gapped - basis @ (basis.T @ gapped))
        assert estimated_residual_norm(gapped, basis) == \
            pytest.approx(direct, rel=1e-8)


@pytest.fixture(scope="module")
def short_doc_corpus():
    model = build_separable_model(250, 5, length_low=8, length_high=16)
    corpus = generate_corpus(model, 200, seed=13)
    return corpus, corpus.term_document_matrix(), corpus.topic_labels()


class TestClusterDocuments:
    @pytest.mark.parametrize("space", CLUSTER_SPACES)
    def test_spaces_recover_topics(self, short_doc_corpus, space):
        _, matrix, labels = short_doc_corpus
        predicted = cluster_documents(matrix, 5, space=space, seed=1)
        assert clustering_accuracy(predicted, labels) > 0.9

    def test_unknown_space(self, short_doc_corpus):
        _, matrix, _ = short_doc_corpus
        with pytest.raises(ValidationError):
            cluster_documents(matrix, 5, space="quantum")

    def test_label_count(self, short_doc_corpus):
        _, matrix, _ = short_doc_corpus
        predicted = cluster_documents(matrix, 5, space="lsi", seed=2)
        assert predicted.shape == (matrix.shape[1],)
        assert len(np.unique(predicted)) <= 5


class TestNearestCentroid:
    def test_lsi_classifier_accuracy(self, short_doc_corpus):
        corpus, _, _ = short_doc_corpus
        train, test = corpus.split(0.7, seed=3)
        classifier = NearestCentroidClassifier(space="lsi", rank=5)
        classifier.fit(train.term_document_matrix(),
                       train.topic_labels(), seed=3)
        assert classifier.score(test.term_document_matrix(),
                                test.topic_labels()) > 0.85

    def test_raw_classifier_works(self, short_doc_corpus):
        corpus, _, _ = short_doc_corpus
        train, test = corpus.split(0.7, seed=4)
        classifier = NearestCentroidClassifier(space="raw")
        classifier.fit(train.term_document_matrix(),
                       train.topic_labels())
        assert classifier.score(test.term_document_matrix(),
                                test.topic_labels()) > 0.8

    def test_predict_shape(self, short_doc_corpus):
        corpus, matrix, labels = short_doc_corpus
        classifier = NearestCentroidClassifier(space="lsi", rank=5)
        classifier.fit(matrix, labels, seed=5)
        assert classifier.predict(matrix).shape == labels.shape

    def test_training_accuracy_high(self, short_doc_corpus):
        _, matrix, labels = short_doc_corpus
        classifier = NearestCentroidClassifier(space="lsi", rank=5)
        classifier.fit(matrix, labels, seed=6)
        assert classifier.score(matrix, labels) > 0.95

    def test_lsi_requires_rank(self):
        with pytest.raises(ValidationError):
            NearestCentroidClassifier(space="lsi")

    def test_bad_space(self):
        with pytest.raises(ValidationError):
            NearestCentroidClassifier(space="graph")

    def test_unfitted(self, short_doc_corpus):
        _, matrix, _ = short_doc_corpus
        with pytest.raises(NotFittedError):
            NearestCentroidClassifier(space="raw").predict(matrix)

    def test_label_mismatch(self, short_doc_corpus):
        _, matrix, _ = short_doc_corpus
        with pytest.raises(ValidationError):
            NearestCentroidClassifier(space="raw").fit(matrix, [0, 1])


class TestClassificationExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.classification_exp import (
            ClassificationConfig,
            run_classification,
        )

        return run_classification(ClassificationConfig(
            n_terms=200, n_topics=4, n_documents=160,
            epsilons=(0.05, 0.5)))

    def test_lsi_best_at_small_epsilon(self, result):
        assert result.lsi_clusters_best_at_small_epsilon()

    def test_lsi_classifies_well(self, result):
        assert result.lsi_classifies_well()

    def test_lsi_beats_raw_clustering_at_high_noise(self, result):
        last = result.points[-1]
        assert last.clustering["lsi"] >= last.clustering["raw"] - 0.02

    def test_render(self, result):
        rendered = result.render()
        assert "X6a" in rendered and "X6b" in rendered
