"""Tests for the SVD engines: exact, Lanczos, subspace iteration."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, RankError, ValidationError
from repro.linalg.lanczos import lanczos_bidiagonalization, lanczos_svd
from repro.linalg.operator import MatrixOperator, as_operator
from repro.linalg.power_iteration import (
    dominant_eigenpair,
    dominant_singular_value,
    subspace_iteration_svd,
    top_eigenpairs,
)
from repro.linalg.sparse import CSRMatrix
from repro.linalg.svd import (
    SVDResult,
    best_rank_k_error,
    exact_svd,
    low_rank_residual,
    truncated_svd,
)


@pytest.fixture
def structured(rng):
    """A matrix with a clear spectral split: 4 strong directions."""
    u = np.linalg.qr(rng.standard_normal((30, 30)))[0]
    v = np.linalg.qr(rng.standard_normal((25, 25)))[0]
    sigma = np.concatenate([[50, 40, 30, 20], np.full(21, 0.5)])
    return (u[:, :25] * sigma) @ v.T


class TestOperator:
    def test_dense_products(self, small_dense, rng):
        op = MatrixOperator(small_dense)
        x, y = rng.standard_normal(15), rng.standard_normal(20)
        assert np.allclose(op.matvec(x), small_dense @ x)
        assert np.allclose(op.rmatvec(y), small_dense.T @ y)
        assert not op.is_sparse

    def test_sparse_products(self, small_dense, small_sparse, rng):
        op = MatrixOperator(small_sparse)
        x = rng.standard_normal(15)
        assert np.allclose(op.matvec(x), small_dense @ x)
        assert op.is_sparse

    def test_as_operator_idempotent(self, small_dense):
        op = as_operator(small_dense)
        assert as_operator(op) is op

    def test_frobenius(self, small_dense):
        assert as_operator(small_dense).frobenius_norm() == pytest.approx(
            np.linalg.norm(small_dense))

    def test_rejects_1d(self):
        with pytest.raises(Exception):
            MatrixOperator(np.zeros(3))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            MatrixOperator(np.array([[np.nan]]))


class TestPowerIteration:
    def test_dominant_eigenpair(self, rng):
        q = np.linalg.qr(rng.standard_normal((8, 8)))[0]
        eigenvalues = np.array([10.0, 3, 2, 1, 0.5, 0.2, 0.1, 0.05])
        matrix = (q * eigenvalues) @ q.T
        value, vector = dominant_eigenpair(matrix, seed=1)
        assert value == pytest.approx(10.0, rel=1e-6)
        assert abs(vector @ q[:, 0]) == pytest.approx(1.0, abs=1e-5)

    def test_zero_matrix(self):
        value, vector = dominant_eigenpair(np.zeros((4, 4)), seed=0)
        assert value == 0.0
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_top_eigenpairs_deflation(self, rng):
        q = np.linalg.qr(rng.standard_normal((6, 6)))[0]
        eigenvalues = np.array([9.0, 5.0, 2.0, 0.5, 0.2, 0.1])
        matrix = (q * eigenvalues) @ q.T
        values, vectors = top_eigenpairs(matrix, 3, seed=2)
        assert np.allclose(values, [9.0, 5.0, 2.0], rtol=1e-5)
        assert np.allclose(vectors.T @ vectors, np.eye(3), atol=1e-5)

    def test_dominant_singular_value(self, structured):
        assert dominant_singular_value(structured, seed=3) == \
            pytest.approx(50.0, rel=1e-6)

    def test_dominant_singular_value_empty(self):
        assert dominant_singular_value(np.zeros((0, 3))) == 0.0

    def test_convergence_error_on_tiny_budget(self, structured):
        with pytest.raises(ConvergenceError):
            dominant_eigenpair(structured @ structured.T, max_iter=1,
                               tol=1e-16, seed=0)


class TestSubspaceIteration:
    def test_matches_exact(self, structured):
        u, s, vt = subspace_iteration_svd(structured, 4, seed=4)
        exact = np.linalg.svd(structured, compute_uv=False)
        assert np.allclose(s, exact[:4], rtol=1e-7)

    def test_orthonormal_factors(self, structured):
        u, s, vt = subspace_iteration_svd(structured, 4, seed=4)
        assert np.allclose(u.T @ u, np.eye(4), atol=1e-8)
        assert np.allclose(vt @ vt.T, np.eye(4), atol=1e-8)

    def test_reconstruction(self, structured):
        u, s, vt = subspace_iteration_svd(structured, 4, seed=4)
        exact_u, exact_s, exact_vt = np.linalg.svd(structured)
        approx = (u * s) @ vt
        best = (exact_u[:, :4] * exact_s[:4]) @ exact_vt[:4]
        assert np.linalg.norm(approx - best) < 1e-5

    def test_sparse_input(self, small_sparse, small_dense):
        u, s, vt = subspace_iteration_svd(small_sparse, 3, seed=5)
        exact = np.linalg.svd(small_dense, compute_uv=False)
        assert np.allclose(s, exact[:3], atol=1e-6)


class TestLanczos:
    def test_bidiagonalization_factorizes(self, structured):
        p, alphas, betas, q = lanczos_bidiagonalization(structured, 10,
                                                        seed=6)
        assert np.allclose(p.T @ p, np.eye(p.shape[1]), atol=1e-8)
        assert np.allclose(q.T @ q, np.eye(q.shape[1]), atol=1e-8)

    def test_svd_matches_exact(self, structured):
        u, s, vt = lanczos_svd(structured, 4, seed=7)
        exact = np.linalg.svd(structured, compute_uv=False)
        assert np.allclose(s, exact[:4], rtol=1e-8)

    def test_full_rank_exact(self, rng):
        a = rng.standard_normal((8, 6))
        u, s, vt = lanczos_svd(a, 6, seed=8)
        assert np.allclose((u * s) @ vt, a, atol=1e-8)

    def test_rank_deficient_raises(self, rng):
        column = rng.standard_normal((10, 1))
        rank1 = column @ rng.standard_normal((1, 8))
        with pytest.raises(ConvergenceError):
            lanczos_svd(rank1, 3, seed=9)

    def test_sparse_input(self, small_sparse, small_dense):
        u, s, vt = lanczos_svd(small_sparse, 3, seed=10)
        exact = np.linalg.svd(small_dense, compute_uv=False)
        assert np.allclose(s, exact[:3], atol=1e-8)


class TestSVDResult:
    def test_exact_svd_reconstructs(self, small_dense):
        result = exact_svd(small_dense)
        assert np.allclose(result.reconstruct(), small_dense, atol=1e-9)

    def test_truncate(self, small_dense):
        result = exact_svd(small_dense)
        truncated = result.truncate(3)
        assert truncated.rank == 3
        assert truncated.frobenius_norm_sq == result.frobenius_norm_sq

    def test_truncate_beyond_rank_rejected(self, small_dense):
        with pytest.raises(RankError):
            exact_svd(small_dense).truncate(100)

    def test_residual_pythagoras(self, small_dense):
        result = exact_svd(small_dense).truncate(4)
        direct = np.linalg.norm(small_dense - result.reconstruct())
        assert result.residual_norm() == pytest.approx(direct, abs=1e-8)

    def test_energy_fraction_bounds(self, small_dense):
        result = exact_svd(small_dense)
        assert result.truncate(1).energy_fraction() <= 1.0
        assert result.energy_fraction() == pytest.approx(1.0)

    def test_document_vectors_shape(self, small_dense):
        result = exact_svd(small_dense).truncate(3)
        vectors = result.document_vectors()
        assert vectors.shape == (3, 15)
        # Column j equals Uk^T A e_j.
        assert np.allclose(vectors, result.u.T @ small_dense, atol=1e-8)

    def test_increasing_singular_values_rejected(self):
        with pytest.raises(ValidationError):
            SVDResult(np.eye(3), np.array([1.0, 2.0, 3.0]), np.eye(3), 14.0)

    def test_negative_singular_values_rejected(self):
        with pytest.raises(ValidationError):
            SVDResult(np.eye(2), np.array([1.0, -0.5]), np.eye(2), 1.25)

    def test_inconsistent_ranks_rejected(self):
        with pytest.raises(ValidationError):
            SVDResult(np.eye(3)[:, :2], np.array([1.0]), np.eye(3), 1.0)


class TestTruncatedSVDFrontend:
    @pytest.mark.parametrize("engine", ["exact", "lanczos", "subspace"])
    def test_engines_agree(self, structured, engine):
        result = truncated_svd(structured, 4, engine=engine, seed=11)
        exact = np.linalg.svd(structured, compute_uv=False)
        assert np.allclose(result.singular_values, exact[:4], rtol=1e-6)

    def test_unknown_engine_rejected(self, small_dense):
        with pytest.raises(ValidationError):
            truncated_svd(small_dense, 2, engine="magic")

    def test_rank_too_large_rejected(self, small_dense):
        with pytest.raises(RankError):
            truncated_svd(small_dense, 100)

    def test_low_rank_residual_cross_check(self, small_dense):
        result = truncated_svd(small_dense, 4, engine="exact")
        assert low_rank_residual(small_dense, result) == pytest.approx(
            result.residual_norm(), abs=1e-8)

    def test_best_rank_k_error(self, small_dense):
        sigma = np.linalg.svd(small_dense, compute_uv=False)
        assert best_rank_k_error(small_dense, 4) == pytest.approx(
            np.sqrt(np.sum(sigma[4:] ** 2)))
