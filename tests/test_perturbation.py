"""Tests for the Lemma 1 / Stewart perturbation machinery."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.linalg.dense import orthonormalize_columns
from repro.linalg.perturbation import (
    align_bases,
    residual_after_rotation,
    singular_subspace_perturbation,
    sin_theta_distance,
    stewart_invariant_subspace_bound,
)


@pytest.fixture
def gapped(rng):
    """Matrix with a large gap after the 4th singular value."""
    u = np.linalg.qr(rng.standard_normal((25, 25)))[0]
    v = np.linalg.qr(rng.standard_normal((20, 20)))[0]
    sigma = np.concatenate([[30, 28, 26, 24], np.full(16, 0.3)])
    return (u[:, :20] * sigma) @ v.T


class TestSinTheta:
    def test_identical_subspaces(self, rng):
        basis = rng.standard_normal((10, 3))
        assert sin_theta_distance(basis, basis) == pytest.approx(0.0,
                                                                 abs=1e-7)

    def test_orthogonal_subspaces(self):
        a = np.eye(8)[:, :2]
        b = np.eye(8)[:, 4:6]
        assert sin_theta_distance(a, b) == pytest.approx(1.0)

    def test_rotation_invariance(self, rng):
        basis = orthonormalize_columns(rng.standard_normal((10, 3)))
        rotation = np.linalg.qr(rng.standard_normal((3, 3)))[0]
        assert sin_theta_distance(basis, basis @ rotation) == \
            pytest.approx(0.0, abs=1e-7)

    def test_symmetry(self, rng):
        a = rng.standard_normal((10, 3))
        b = rng.standard_normal((10, 3))
        assert sin_theta_distance(a, b) == pytest.approx(
            sin_theta_distance(b, a), abs=1e-10)


class TestProcrustes:
    def test_align_recovers_rotation(self, rng):
        basis = orthonormalize_columns(rng.standard_normal((12, 4)))
        rotation = np.linalg.qr(rng.standard_normal((4, 4)))[0]
        recovered = align_bases(basis, basis @ rotation)
        assert np.allclose(recovered, rotation, atol=1e-10)

    def test_aligned_rotation_is_orthonormal(self, rng):
        r = align_bases(rng.standard_normal((10, 3)),
                        rng.standard_normal((10, 3)))
        assert np.allclose(r.T @ r, np.eye(3), atol=1e-10)

    def test_residual_zero_for_rotated_copy(self, rng):
        basis = orthonormalize_columns(rng.standard_normal((12, 4)))
        rotation = np.linalg.qr(rng.standard_normal((4, 4)))[0]
        assert residual_after_rotation(basis, basis @ rotation) == \
            pytest.approx(0.0, abs=1e-9)

    def test_residual_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            align_bases(rng.standard_normal((10, 3)),
                        rng.standard_normal((10, 4)))


class TestSingularSubspacePerturbation:
    def test_small_perturbation_small_motion(self, gapped, rng):
        f = rng.standard_normal(gapped.shape)
        f *= 0.01 / np.linalg.svd(f, compute_uv=False)[0]
        report = singular_subspace_perturbation(gapped, f, 4)
        assert report.epsilon == pytest.approx(0.01, rel=1e-6)
        # Lemma 1 shape: residual is O(eps); generous constant of 20.
        assert report.residual_norm <= 20 * report.epsilon
        assert report.sin_theta <= 20 * report.epsilon

    def test_zero_perturbation(self, gapped):
        report = singular_subspace_perturbation(
            gapped, np.zeros_like(gapped), 4)
        assert report.epsilon == 0.0
        assert report.sin_theta == pytest.approx(0.0, abs=1e-7)
        assert report.residual_norm == pytest.approx(0.0, abs=1e-7)

    def test_residual_scales_with_epsilon(self, gapped, rng):
        direction = rng.standard_normal(gapped.shape)
        direction /= np.linalg.svd(direction, compute_uv=False)[0]
        small = singular_subspace_perturbation(gapped, 0.01 * direction, 4)
        large = singular_subspace_perturbation(gapped, 0.2 * direction, 4)
        assert large.residual_norm >= small.residual_norm

    def test_gap_ratio_reported(self, gapped):
        report = singular_subspace_perturbation(
            gapped, np.zeros_like(gapped), 4)
        assert report.gap_ratio == pytest.approx((24 - 0.3) / 30, rel=1e-6)

    def test_shape_mismatch_rejected(self, gapped):
        with pytest.raises(ShapeError):
            singular_subspace_perturbation(gapped, np.zeros((2, 2)), 2)


class TestStewart:
    def test_applicable_case_bounds_motion(self, gapped, rng):
        b = gapped @ gapped.T
        f = rng.standard_normal(gapped.shape)
        f *= 0.05 / np.linalg.svd(f, compute_uv=False)[0]
        e = f @ gapped.T + gapped @ f.T + f @ f.T
        result = stewart_invariant_subspace_bound(b, e, 4)
        assert result.applicable
        assert result.delta > 0
        assert result.bound >= 0

    def test_huge_perturbation_not_applicable(self, gapped):
        b = gapped @ gapped.T
        e = 1e6 * np.eye(b.shape[0])
        result = stewart_invariant_subspace_bound(b, e, 4)
        assert not result.applicable
        assert np.isnan(result.bound)

    def test_asymmetric_b_rejected(self, rng):
        b = rng.standard_normal((5, 5))
        with pytest.raises(ValidationError):
            stewart_invariant_subspace_bound(b, np.zeros((5, 5)), 2)

    def test_asymmetric_e_rejected(self, rng):
        b = np.eye(5)
        e = rng.standard_normal((5, 5))
        with pytest.raises(ValidationError):
            stewart_invariant_subspace_bound(b, e, 2)

    def test_block_norms_reported(self, gapped):
        b = gapped @ gapped.T
        e = 0.01 * np.eye(b.shape[0])
        result = stewart_invariant_subspace_bound(b, e, 4)
        # E = 0.01 I commutes with any basis: diagonal blocks carry it.
        n11, n12, n21, n22 = result.e_blocks_norms
        assert n11 == pytest.approx(0.01, abs=1e-9)
        assert n12 == pytest.approx(0.0, abs=1e-9)
        assert n21 == pytest.approx(0.0, abs=1e-9)
        assert n22 == pytest.approx(0.01, abs=1e-9)
