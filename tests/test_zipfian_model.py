"""Tests for the Zipfian ε-separable model builder."""

import numpy as np
import pytest

from repro.corpus import generate_corpus
from repro.corpus.separable import (
    build_separable_model,
    build_zipfian_separable_model,
)
from repro.errors import ValidationError


class TestZipfianModel:
    @pytest.fixture(scope="class")
    def model(self):
        return build_zipfian_separable_model(200, 4, primary_mass=0.9,
                                             exponent=1.0, seed=1)

    def test_distributions_valid(self, model):
        for topic in model.topics:
            assert topic.probabilities.sum() == pytest.approx(1.0)
            assert np.all(topic.probabilities >= 0)

    def test_separability_matches_uniform_builder(self, model):
        uniform = build_separable_model(200, 4, primary_mass=0.9)
        assert model.separability() == pytest.approx(
            uniform.separability())

    def test_primary_sets_disjoint(self, model):
        assert model.primary_sets_disjoint()

    def test_tau_larger_than_uniform(self, model):
        uniform = build_separable_model(200, 4, primary_mass=0.9)
        assert model.max_term_probability() > \
            uniform.max_term_probability()

    def test_zipf_shape_within_primary(self, model):
        topic = model.topics[0]
        primary_probs = np.sort(
            topic.probabilities[sorted(topic.primary_terms)])[::-1]
        # Rank-1 over rank-2 ratio ≈ 2 for exponent 1 (plus the small
        # uniform leak).
        assert primary_probs[0] / primary_probs[1] == pytest.approx(
            2.0, rel=0.05)

    def test_higher_exponent_more_skew(self):
        mild = build_zipfian_separable_model(200, 4, exponent=0.5,
                                             seed=2)
        steep = build_zipfian_separable_model(200, 4, exponent=1.5,
                                              seed=2)
        assert steep.max_term_probability() > \
            mild.max_term_probability()

    def test_per_topic_rank_orders_differ(self, model):
        # The permutation is per-topic: the argmax offset within each
        # primary block should not be identical across all topics.
        offsets = []
        for i, topic in enumerate(model.topics):
            block = topic.probabilities[i * 50:(i + 1) * 50]
            offsets.append(int(np.argmax(block)))
        assert len(set(offsets)) > 1

    def test_sampling_works(self, model):
        corpus = generate_corpus(model, 30, seed=3)
        assert len(corpus) == 30
        assert corpus.has_labels()

    def test_lsi_still_separates(self, model):
        from repro.core.lsi import LSIModel
        from repro.core.skewness import skewness

        corpus = generate_corpus(model, 120, seed=4)
        lsi = LSIModel.fit(corpus.term_document_matrix(), 4,
                           engine="exact")
        assert skewness(lsi.document_vectors(),
                        corpus.topic_labels()) < 0.35

    def test_bad_exponent(self):
        with pytest.raises(ValidationError):
            build_zipfian_separable_model(100, 4, exponent=0.0)

    def test_oversized_primary_sets(self):
        with pytest.raises(ValidationError):
            build_zipfian_separable_model(100, 4, primary_size=50)

    def test_reproducible_given_seed(self):
        a = build_zipfian_separable_model(100, 4, seed=9)
        b = build_zipfian_separable_model(100, 4, seed=9)
        for topic_a, topic_b in zip(a.topics, b.topics):
            assert np.array_equal(topic_a.probabilities,
                                  topic_b.probabilities)
