"""Tests for the raw-speed serving paths: float32, mmap, blocked GEMM.

The speed features are opt-in and every one carries a correctness
contract this file pins down:

- float32 compute is *measured* against float64 (top-k agreement,
  bounded score delta), never assumed equivalent;
- mmap-loaded indexes rank bit-identically to eager loads, and a
  mutation transparently materialises the writer;
- blocked (panelled) scoring is opt-in because BLAS kernel selection
  makes it non-bitwise — rankings must still agree at top-k;
- the bundle remembers its compute dtype (sticky across load).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.lsi import LSIModel
from repro.errors import ValidationError
from repro.serving import (
    COMPUTE_DTYPES,
    BatchQueryEngine,
    ServedIndex,
    ServingConfig,
    ServingStats,
    ranking_overlap,
    read_bundle,
    read_manifest,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def dense_matrix(rng):
    matrix = rng.random((60, 45))
    matrix[matrix < 0.4] = 0.0
    return matrix


@pytest.fixture
def model(dense_matrix):
    return LSIModel.fit(dense_matrix, 6, engine="exact")


@pytest.fixture
def queries(rng):
    return rng.random((60, 10))


class TestRankingOverlap:
    def test_identical_rankings_score_one(self):
        ranks = np.array([[0, 1, 2], [3, 4, 5]])
        assert ranking_overlap(ranks, ranks) == 1.0

    def test_disjoint_rankings_score_zero(self):
        a = np.array([[0, 1, 2]])
        b = np.array([[3, 4, 5]])
        assert ranking_overlap(a, b) == 0.0

    def test_partial_overlap_is_mean_fraction(self):
        a = np.array([[0, 1, 2], [0, 1, 2]])
        b = np.array([[0, 1, 9], [7, 8, 9]])
        assert ranking_overlap(a, b) == pytest.approx(1.0 / 3.0)

    def test_order_within_topk_does_not_matter(self):
        a = np.array([[0, 1, 2]])
        b = np.array([[2, 0, 1]])
        assert ranking_overlap(a, b) == 1.0

    def test_shape_mismatch_raises(self):
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            ranking_overlap(np.zeros((2, 3), dtype=int),
                            np.zeros((2, 4), dtype=int))

    def test_empty_is_vacuously_one(self):
        empty = np.zeros((0, 5), dtype=int)
        assert ranking_overlap(empty, empty) == 1.0


class TestFloat32Engine:
    def test_unknown_dtype_rejected(self, model):
        with pytest.raises(ValidationError):
            BatchQueryEngine(model.svd.u, model.document_vectors(),
                             dtype="float16")

    def test_dtype_names_exported(self):
        assert COMPUTE_DTYPES == ("float64", "float32")

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_topk_agreement_across_seeds(self, dense_matrix, seed):
        # Property: over random models and query blocks, float32
        # rankings agree with float64 at top-5 and scores stay within
        # single-precision slack.  Agreement is measured, not assumed.
        local = np.random.default_rng(seed)
        matrix = local.random((80, 64))
        model = LSIModel.fit(matrix, 8, engine="exact")
        queries = local.random((80, 16))
        e64 = BatchQueryEngine(model.svd.u, model.document_vectors())
        e32 = BatchQueryEngine(model.svd.u, model.document_vectors(),
                               dtype="float32")
        overlap = ranking_overlap(e64.rank_batch(queries, top_k=5),
                                  e32.rank_batch(queries, top_k=5))
        assert overlap >= 0.95
        delta = np.abs(
            e64.score_batch(queries)
            - e32.score_batch(queries).astype(np.float64)).max()
        assert delta < 1e-4

    def test_float32_scores_have_float32_dtype(self, model, queries):
        engine = BatchQueryEngine(model.svd.u,
                                  model.document_vectors(),
                                  dtype="float32")
        assert engine.dtype == "float32"
        assert engine.score_batch(queries).dtype == np.float32

    def test_float64_path_unchanged_by_default(self, model, queries):
        engine = BatchQueryEngine(model.svd.u,
                                  model.document_vectors())
        assert engine.dtype == "float64"
        assert engine.score_batch(queries).dtype == np.float64

    def test_scratch_reuse_does_not_leak_between_batches(
            self, model, queries):
        # Same engine, different batches: preallocated scratch must
        # not let one batch's scores contaminate the next.
        engine = BatchQueryEngine(model.svd.u,
                                  model.document_vectors(),
                                  dtype="float32")
        first = engine.score_batch(queries).copy()
        engine.score_batch(queries[:, ::-1].copy())
        again = engine.score_batch(queries)
        assert np.array_equal(first, again)

    def test_varying_batch_width_reallocates(self, model, queries):
        engine = BatchQueryEngine(model.svd.u,
                                  model.document_vectors())
        wide = engine.score_batch(queries)
        narrow = engine.score_batch(queries[:, :3])
        assert wide.shape[0] == queries.shape[1]
        assert narrow.shape[0] == 3
        assert np.array_equal(narrow, wide[:3])


class TestBlockedGemm:
    def test_budget_produces_agreeing_rankings(self, model, queries):
        default = BatchQueryEngine(model.svd.u,
                                   model.document_vectors())
        budgeted = BatchQueryEngine(model.svd.u,
                                    model.document_vectors(),
                                    cache_budget_bytes=2048)
        overlap = ranking_overlap(
            default.rank_batch(queries, top_k=10),
            budgeted.rank_batch(queries, top_k=10))
        assert overlap >= 0.99

    def test_no_budget_is_bitwise_default(self, model, queries):
        a = BatchQueryEngine(model.svd.u, model.document_vectors())
        b = BatchQueryEngine(model.svd.u, model.document_vectors(),
                             cache_budget_bytes=None)
        assert np.array_equal(a.score_batch(queries),
                              b.score_batch(queries))

    def test_tiny_budget_clamps_to_one_column(self, model, queries):
        engine = BatchQueryEngine(model.svd.u,
                                  model.document_vectors(),
                                  cache_budget_bytes=1)
        scores = engine.score_batch(queries)
        assert np.isfinite(scores).all()


class TestDtypeStickiness:
    def test_bundle_records_compute_dtype(self, model, tmp_path):
        index = ServedIndex(model,
                            config=ServingConfig(dtype="float32"))
        path = index.save(tmp_path / "b")
        manifest = read_manifest(path)
        assert manifest["compute_dtype"] == "float32"

    def test_load_inherits_bundle_dtype(self, model, tmp_path):
        float32 = ServedIndex(
            model, config=ServingConfig(dtype="float32"))
        path = float32.save(tmp_path / "b")
        loaded = ServedIndex.load(path)
        assert loaded.dtype == "float32"

    def test_load_dtype_override_wins(self, model, tmp_path):
        float32 = ServedIndex(
            model, config=ServingConfig(dtype="float32"))
        path = float32.save(tmp_path / "b")
        loaded = ServedIndex.load(
            path, config=ServingConfig(dtype="float64"))
        assert loaded.dtype == "float64"

    def test_legacy_manifest_defaults_float64(self, model, tmp_path):
        path = ServedIndex(model).save(tmp_path / "b")
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["compute_dtype"]
        manifest_path.write_text(json.dumps(manifest))
        assert ServedIndex.load(path).dtype == "float64"

    def test_stats_carry_dtype(self, model, queries, tmp_path):
        index = ServedIndex(model,
                            config=ServingConfig(dtype="float32"))
        index.rank_batch(queries, top_k=3)
        assert index.stats().dtype == "float32"
        path = index.save(tmp_path / "b")
        assert ServedIndex.load(path).stats().dtype == "float32"

    def test_stats_from_dict_defaults_dtype(self):
        stats = ServingStats.from_dict({"queries_served": 2})
        assert stats.dtype == "float64"

    def test_serve_stats_cli_prints_dtype(self, model, tmp_path,
                                          capsys):
        from repro.cli import main

        float32 = ServedIndex(
            model, config=ServingConfig(dtype="float32"))
        path = float32.save(tmp_path / "b")
        assert main(["serve-stats", str(path)]) == 0
        assert "float32" in capsys.readouterr().out


class TestMmapLoad:
    def test_mmap_rankings_bit_identical_to_eager(self, model,
                                                  queries, tmp_path):
        path = ServedIndex(model).save(tmp_path / "b")
        eager = ServedIndex.load(path)
        lazy = ServedIndex.load(path,
                                config=ServingConfig(mmap=True))
        assert lazy.mmapped and not eager.mmapped
        assert np.array_equal(eager.rank_batch(queries, top_k=7),
                              lazy.rank_batch(queries, top_k=7))
        assert np.array_equal(
            eager.rank_batch(queries, top_k=model.n_documents),
            lazy.rank_batch(queries, top_k=model.n_documents))

    def test_mmap_bundle_arrays_are_readonly_maps(self, model,
                                                  tmp_path):
        path = ServedIndex(model).save(tmp_path / "b")
        bundle = read_bundle(path, mmap=True)
        assert isinstance(bundle.svd.u, np.memmap)
        assert not bundle.svd.u.flags.writeable
        assert bundle.doc_unit is not None
        assert isinstance(bundle.doc_unit, np.memmap)

    def test_mmap_properties_work_without_materialising(self, model,
                                                        tmp_path):
        path = ServedIndex(model).save(tmp_path / "b")
        lazy = ServedIndex.load(path,
                                config=ServingConfig(mmap=True))
        assert lazy.rank == model.rank
        assert lazy.n_documents == model.n_documents
        assert 0.0 <= lazy.drift <= 1.0
        assert lazy.mmapped  # still lazy after metadata reads

    def test_mutation_materialises_then_behaves(self, model, rng,
                                                tmp_path):
        path = ServedIndex(model).save(tmp_path / "b")
        lazy = ServedIndex.load(path,
                                config=ServingConfig(mmap=True))
        lazy.add_documents(rng.random((model.n_terms, 2)))
        assert not lazy.mmapped
        assert lazy.n_documents == model.n_documents + 2

    def test_materialised_index_saves_over_own_bundle(self, model,
                                                      rng, tmp_path):
        # Saving over the same directory the mmap reads from must not
        # corrupt anything: _ensure_writer detaches from the mapped
        # files before the writer truncates them.
        path = ServedIndex(model).save(tmp_path / "b")
        lazy = ServedIndex.load(path,
                                config=ServingConfig(mmap=True))
        lazy.add_documents(rng.random((model.n_terms, 1)))
        lazy.save(path)
        reloaded = ServedIndex.load(path)
        assert reloaded.n_documents == model.n_documents + 1

    def test_mmap_float32_casts_at_engine_build(self, model, queries,
                                                tmp_path):
        path = ServedIndex(model).save(tmp_path / "b")
        lazy = ServedIndex.load(
            path, config=ServingConfig(mmap=True, dtype="float32"))
        assert lazy.dtype == "float32"
        ranked = lazy.rank_batch(queries, top_k=5)
        assert ranked.shape == (queries.shape[1], 5)
        eager32 = ServedIndex.load(
            path, config=ServingConfig(dtype="float32"))
        assert np.array_equal(ranked,
                              eager32.rank_batch(queries, top_k=5))

    def test_mmap_on_legacy_npz_falls_back_to_eager(self, model,
                                                    tmp_path):
        # npz members cannot be memory-mapped; a v1/v2 bundle loads
        # eagerly even when mmap was requested.
        import hashlib

        from repro.serving.bundle import ARRAYS_NAME

        path = ServedIndex(model).save(tmp_path / "b")
        arrays = {}
        for npy in path.glob("*.npy"):
            arrays[npy.stem] = np.load(npy, allow_pickle=False)
            npy.unlink()
        legacy = {name: arrays[name]
                  for name in ("u", "singular_values", "vt",
                               "frobenius_norm_sq", "doc_vectors",
                               "tombstones")}
        np.savez(path / ARRAYS_NAME, **legacy)
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = 2
        manifest["checksums"] = {ARRAYS_NAME: "sha256:" + hashlib.sha256(
            (path / ARRAYS_NAME).read_bytes()).hexdigest()}
        manifest_path.write_text(json.dumps(manifest))
        loaded = ServedIndex.load(path,
                                config=ServingConfig(mmap=True))
        assert not loaded.mmapped
        assert loaded.n_documents == model.n_documents


class TestColdStartRss:
    def test_mmap_peak_rss_well_below_eager(self, tmp_path):
        # Regression guard for the O(manifest) cold start: on a
        # moderate bundle (~37 MB of arrays) the mmap child's peak RSS
        # must stay under half the eager child's.  The scale bench
        # gates the real < 25% claim; half is the looser, noise-proof
        # floor a unit test can assert.  Fresh subprocesses because
        # peak RSS is a process-lifetime high-water mark, and VmHWM
        # (not ru_maxrss) because the rusage counter survives
        # fork+exec and would report the parent's peak.
        rng = np.random.default_rng(0)
        basis, _ = np.linalg.qr(rng.standard_normal((512, 32)))
        from repro.linalg.svd import SVDResult

        singular = np.sort(rng.uniform(1.0, 10.0, 32))[::-1].copy()
        vt = rng.standard_normal((32, 50_000)) / np.sqrt(32.0)
        frob = float(np.sum(singular**2) * 1.25)
        model = LSIModel(SVDResult(np.ascontiguousarray(basis),
                                   singular, vt, frob))
        path = ServedIndex(model).save(tmp_path / "b")

        child = r"""
import resource, sys
from repro.serving import ServedIndex, ServingConfig


def peak_rss_kb():
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


index = ServedIndex.load(
    sys.argv[1], config=ServingConfig(mmap=(sys.argv[2] == "mmap")))
print(peak_rss_kb())
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep \
            + env.get("PYTHONPATH", "")
        rss = {}
        for mode in ("eager", "mmap"):
            proc = subprocess.run(
                [sys.executable, "-c", child, str(path), mode],
                capture_output=True, text=True, env=env)
            assert proc.returncode == 0, proc.stderr
            rss[mode] = int(proc.stdout.strip())
        assert rss["mmap"] < 0.5 * rss["eager"], rss
