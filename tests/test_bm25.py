"""Tests for the Okapi BM25 baseline."""

import numpy as np
import pytest

from repro.errors import NotFittedError, ValidationError
from repro.ir.bm25 import BM25Model
from repro.linalg.sparse import CSRMatrix


@pytest.fixture
def small_index():
    # term x doc counts; doc lengths 3, 6, 2.
    dense = np.array([
        [2.0, 1.0, 0.0],   # term 0: common
        [1.0, 0.0, 0.0],   # term 1: rare
        [0.0, 5.0, 2.0]])  # term 2
    return CSRMatrix.from_dense(dense), dense


class TestBM25Scoring:
    def test_zero_for_nonmatching_documents(self, small_index):
        matrix, _ = small_index
        model = BM25Model.fit(matrix)
        query = np.array([0.0, 1.0, 0.0])   # term 1: only doc 0 has it
        scores = model.score(query)
        assert scores[0] > 0
        assert scores[1] == 0 and scores[2] == 0

    def test_rare_terms_weighted_higher(self, small_index):
        matrix, _ = small_index
        model = BM25Model.fit(matrix)
        common = model.score(np.array([1.0, 0.0, 0.0]))[0]
        rare = model.score(np.array([0.0, 1.0, 0.0]))[0]
        # Doc 0 has tf=2 for the common term vs tf=1 for the rare term,
        # yet idf dominance should be visible per-unit-tf; compare idf
        # weights directly through single-occurrence scoring on doc 0.
        assert model._idf[1] > model._idf[0]
        assert rare > 0 and common > 0

    def test_tf_saturation(self):
        # Two docs, same length; tf 1 vs tf 10 on the query term.
        dense = np.array([[1.0, 10.0], [10.0, 1.0]])
        model = BM25Model.fit(CSRMatrix.from_dense(dense), k1=1.2)
        scores = model.score(np.array([1.0, 0.0]))
        # Higher tf wins, but by far less than 10x (saturation).
        assert scores[1] > scores[0]
        assert scores[1] < 4 * scores[0]

    def test_length_normalisation_penalises_long_docs(self):
        # Same tf on the query term; doc 1 is much longer.
        dense = np.array([[2.0, 2.0], [0.0, 30.0]])
        model = BM25Model.fit(CSRMatrix.from_dense(dense), b=0.75)
        scores = model.score(np.array([1.0, 0.0]))
        assert scores[0] > scores[1]

    def test_b_zero_disables_length_norm(self):
        dense = np.array([[2.0, 2.0], [0.0, 30.0]])
        model = BM25Model.fit(CSRMatrix.from_dense(dense), b=0.0)
        scores = model.score(np.array([1.0, 0.0]))
        assert scores[0] == pytest.approx(scores[1])

    def test_rank_descending(self, small_index):
        matrix, _ = small_index
        model = BM25Model.fit(matrix)
        query = np.array([1.0, 1.0, 1.0])
        ranking = model.rank(query)
        scores = model.score(query)
        assert np.all(np.diff(scores[ranking]) <= 1e-12)

    def test_rank_top_k(self, small_index):
        matrix, _ = small_index
        model = BM25Model.fit(matrix)
        assert model.rank(np.ones(3), top_k=2).shape == (2,)

    def test_query_term_weights_scale(self, small_index):
        matrix, _ = small_index
        model = BM25Model.fit(matrix)
        single = model.score(np.array([1.0, 0.0, 0.0]))
        double = model.score(np.array([2.0, 0.0, 0.0]))
        assert np.allclose(double, 2 * single)


class TestBM25Validation:
    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            BM25Model().score(np.zeros(3))

    def test_bad_k1(self):
        with pytest.raises(ValidationError):
            BM25Model(k1=-1.0)

    def test_bad_b(self):
        with pytest.raises(ValidationError):
            BM25Model(b=1.5)

    def test_fit_type_check(self):
        with pytest.raises(ValidationError):
            BM25Model.fit(np.eye(3))

    def test_query_size_mismatch(self, small_index):
        matrix, _ = small_index
        model = BM25Model.fit(matrix)
        with pytest.raises(ValidationError):
            model.score(np.zeros(7))

    def test_repr(self, small_index):
        matrix, _ = small_index
        assert "unfitted" in repr(BM25Model())
        assert "m=3" in repr(BM25Model.fit(matrix))


class TestBM25OnCorpus:
    def test_topical_retrieval(self, tiny_corpus, tiny_matrix):
        model = BM25Model.fit(tiny_matrix)
        labels = tiny_corpus.topic_labels()
        query = tiny_matrix.get_column(0)
        top = model.rank(query, top_k=10)
        hits = sum(1 for d in top if labels[d] == labels[0])
        assert hits >= 8

    def test_blind_to_term_free_documents(self, tiny_corpus,
                                          tiny_matrix):
        # BM25's structural limitation (the reason LSI wins E8):
        # documents without the query term score exactly zero.
        model = BM25Model.fit(tiny_matrix)
        term = 5
        query = np.zeros(tiny_matrix.shape[0])
        query[term] = 1.0
        scores = model.score(query)
        missing = tiny_matrix.get_row(term) == 0
        assert np.all(scores[missing] == 0.0)
