"""Tests for the from-scratch k-means and clustering accuracy."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.kmeans import KMeansResult, clustering_accuracy, kmeans


@pytest.fixture
def three_blobs(rng):
    """Three well-separated Gaussian blobs with labels."""
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.concatenate([
        center + 0.3 * rng.standard_normal((30, 2)) for center in centers])
    labels = np.repeat([0, 1, 2], 30)
    return points, labels


class TestKMeans:
    def test_recovers_blobs(self, three_blobs):
        points, labels = three_blobs
        result = kmeans(points, 3, seed=1)
        assert clustering_accuracy(result.labels, labels) == 1.0

    def test_result_fields(self, three_blobs):
        points, _ = three_blobs
        result = kmeans(points, 3, seed=1)
        assert isinstance(result, KMeansResult)
        assert result.centers.shape == (3, 2)
        assert result.inertia >= 0
        assert result.iterations >= 1

    def test_k_equals_n_zero_inertia(self, rng):
        points = rng.standard_normal((5, 2))
        result = kmeans(points, 5, seed=2)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_single_cluster_centroid(self, rng):
        points = rng.standard_normal((20, 3))
        result = kmeans(points, 1, seed=3)
        assert np.allclose(result.centers[0], points.mean(axis=0))

    def test_k_larger_than_n_rejected(self, rng):
        with pytest.raises(ValidationError):
            kmeans(rng.standard_normal((3, 2)), 5)

    def test_identical_points(self):
        points = np.ones((10, 2))
        result = kmeans(points, 2, seed=4)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_given_seed(self, three_blobs):
        points, _ = three_blobs
        a = kmeans(points, 3, seed=9)
        b = kmeans(points, 3, seed=9)
        assert np.array_equal(a.labels, b.labels)


class TestClusteringAccuracy:
    def test_perfect(self):
        assert clustering_accuracy([0, 0, 1, 1], [5, 5, 7, 7]) == 1.0

    def test_permutation_invariant(self):
        assert clustering_accuracy([1, 1, 0, 0], [0, 0, 1, 1]) == 1.0

    def test_partial(self):
        assert clustering_accuracy([0, 0, 1, 1], [0, 1, 1, 1]) == \
            pytest.approx(0.75)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            clustering_accuracy([0, 1], [0, 1, 2])

    def test_different_cluster_counts(self):
        # Predicted has 3 clusters, truth has 2: matching still works.
        accuracy = clustering_accuracy([0, 1, 2, 2], [0, 0, 1, 1])
        assert 0.0 < accuracy <= 1.0
