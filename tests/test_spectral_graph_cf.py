"""Tests for Theorem 6 discovery and the collaborative-filtering module."""

import numpy as np
import pytest

from repro.core.cf import (
    CosineKNNRecommender,
    InteractionData,
    LatentPreferenceModel,
    PopularityRecommender,
    SpectralRecommender,
    evaluate_recommender,
)
from repro.core.spectral_graph import (
    discover_topics,
    spectral_embedding,
    theorem6_premises,
)
from repro.errors import NotFittedError, ValidationError
from repro.graphs.random_graphs import planted_partition_graph


class TestSpectralDiscovery:
    @pytest.fixture(scope="class")
    def planted(self):
        return planted_partition_graph([20, 20, 20],
                                       inter_fraction=0.05, seed=1)

    def test_recovers_blocks(self, planted):
        graph, labels = planted
        discovery = discover_topics(graph, 3, seed=2)
        assert discovery.accuracy_against(labels) == 1.0

    def test_eigengap_positive(self, planted):
        graph, _ = planted
        discovery = discover_topics(graph, 3, seed=2)
        assert discovery.eigengap > 0.3
        assert discovery.eigenvalues.shape == (4,)

    def test_embedding_rows_unit(self, planted):
        graph, _ = planted
        embedding = spectral_embedding(graph, 3)
        norms = np.linalg.norm(embedding, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_k_bounds(self, planted):
        graph, _ = planted
        with pytest.raises(ValidationError):
            discover_topics(graph, graph.n_vertices)
        with pytest.raises(ValidationError):
            spectral_embedding(graph, graph.n_vertices + 1)

    def test_premises_on_truth(self, planted):
        graph, labels = planted
        premises = theorem6_premises(graph, labels)
        assert premises.block_conductances.shape == (3,)
        assert np.all(premises.block_conductances > 0.3)
        assert premises.max_cross_fraction < 0.3
        assert premises.satisfied()

    def test_premises_fail_on_random_labels(self, planted, rng):
        graph, _ = planted
        random_labels = rng.integers(0, 3, graph.n_vertices)
        premises = theorem6_premises(graph, random_labels)
        assert premises.max_cross_fraction > 0.3

    def test_premises_label_shape(self, planted):
        graph, _ = planted
        with pytest.raises(ValidationError):
            theorem6_premises(graph, [0, 1])

    def test_singleton_block_conductance_zero(self, planted):
        graph, labels = planted
        modified = labels.copy()
        modified[0] = 99  # a one-vertex block
        premises = theorem6_premises(graph, modified)
        assert 0.0 in premises.block_conductances.tolist()


@pytest.fixture(scope="module")
def cf_data():
    model = LatentPreferenceModel(80, 4, primary_mass=0.9,
                                  interactions_low=15,
                                  interactions_high=40)
    return model, model.generate(60, holdout_fraction=0.25, seed=3)


class TestLatentPreferenceModel:
    def test_shapes(self, cf_data):
        model, data = cf_data
        assert data.n_items == 80
        assert data.n_users == 60
        assert data.taste_labels.shape == (60,)
        assert len(data.held_out) == 60

    def test_holdout_disjoint_from_train(self, cf_data):
        _, data = cf_data
        for user, hidden in enumerate(data.held_out):
            column = data.train.get_column(user)
            for item in hidden:
                assert column[item] == 0

    def test_every_user_keeps_training_items(self, cf_data):
        _, data = cf_data
        for user in range(data.n_users):
            assert data.train.get_column(user).sum() > 0

    def test_holdout_fraction_validated(self, cf_data):
        model, _ = cf_data
        with pytest.raises(ValidationError):
            model.generate(10, holdout_fraction=0.0)


class TestRecommenders:
    def test_spectral_beats_popularity(self, cf_data):
        _, data = cf_data
        spectral = SpectralRecommender(4).fit(data.train)
        popularity = PopularityRecommender().fit(data.train)
        ev_s = evaluate_recommender(spectral, data, top_n=10)
        ev_p = evaluate_recommender(popularity, data, top_n=10)
        assert ev_s.precision_at_n > ev_p.precision_at_n

    def test_recommendations_exclude_seen(self, cf_data):
        _, data = cf_data
        spectral = SpectralRecommender(4).fit(data.train)
        for user in range(5):
            recs = spectral.recommend(user, data.train, top_n=10)
            seen = set(np.flatnonzero(data.train.get_column(user) > 0))
            assert not (set(int(r) for r in recs) & seen)

    def test_unfitted_raises(self, cf_data):
        _, data = cf_data
        with pytest.raises(NotFittedError):
            SpectralRecommender(3).scores(0)
        with pytest.raises(NotFittedError):
            PopularityRecommender().scores(0)
        with pytest.raises(NotFittedError):
            CosineKNNRecommender().scores(0)

    def test_popularity_uniform_across_users(self, cf_data):
        _, data = cf_data
        popularity = PopularityRecommender().fit(data.train)
        assert np.array_equal(popularity.scores(0), popularity.scores(5))

    def test_knn_self_excluded(self, cf_data):
        _, data = cf_data
        knn = CosineKNNRecommender(5).fit(data.train)
        # Scores should come from neighbours, not the user's own column:
        # a user with unique items still gets finite scores.
        assert np.all(np.isfinite(knn.scores(0)))

    def test_user_out_of_range(self, cf_data):
        _, data = cf_data
        spectral = SpectralRecommender(4).fit(data.train)
        with pytest.raises(ValidationError):
            spectral.scores(9999)

    def test_evaluation_fields(self, cf_data):
        _, data = cf_data
        spectral = SpectralRecommender(4).fit(data.train)
        ev = evaluate_recommender(spectral, data, top_n=5)
        assert 0.0 <= ev.precision_at_n <= 1.0
        assert 0.0 <= ev.recall_at_n <= 1.0
        assert 0.0 <= ev.hit_rate <= 1.0
        assert ev.top_n == 5

    def test_evaluation_no_holdout_rejected(self, cf_data):
        _, data = cf_data
        empty = InteractionData(train=data.train,
                                held_out=[set()] * data.n_users,
                                taste_labels=data.taste_labels)
        spectral = SpectralRecommender(4).fit(data.train)
        with pytest.raises(ValidationError):
            evaluate_recommender(spectral, empty)

    def test_rank_matters(self, cf_data):
        _, data = cf_data
        right = SpectralRecommender(4).fit(data.train)
        tiny = SpectralRecommender(1).fit(data.train)
        ev_right = evaluate_recommender(right, data, top_n=10)
        ev_tiny = evaluate_recommender(tiny, data, top_n=10)
        assert ev_right.precision_at_n >= ev_tiny.precision_at_n
