"""Tests for Corollary 4 / Lemma 3, term vectors, Poisson lengths."""

import numpy as np
import pytest

from repro.core.lsi import LSIModel
from repro.core.random_projection import OrthonormalProjector
from repro.corpus import build_separable_model, generate_corpus
from repro.corpus.model import PureTopicFactors
from repro.errors import ValidationError
from repro.theory.corollary4 import (
    Corollary4Report,
    corollary4_check,
    lemma3_check,
)


@pytest.fixture(scope="module")
def projection_pair():
    model = build_separable_model(400, 6)
    corpus = generate_corpus(model, 150, seed=91)
    matrix = corpus.term_document_matrix()
    projector = OrthonormalProjector(400, 120, seed=92)
    return matrix, projector.project(matrix)


class TestCorollary4:
    def test_holds_at_adequate_dimension(self, projection_pair):
        matrix, projected = projection_pair
        report = corollary4_check(matrix, projected, 6, epsilon=0.35)
        assert report.holds
        assert report.energy_ratio >= 1.0 - 0.35

    def test_lemma3_recursion_holds(self, projection_pair):
        matrix, projected = projection_pair
        assert lemma3_check(matrix, projected, 6, epsilon=0.35)

    def test_energy_ratio_near_one(self, projection_pair):
        matrix, projected = projection_pair
        report = corollary4_check(matrix, projected, 6, epsilon=0.35)
        # At l=120 the top-2k projected spectrum captures nearly all of
        # ||A_k||^2 (the corollary's floor is loose).
        assert report.energy_ratio > 0.9

    def test_report_fields(self, projection_pair):
        matrix, projected = projection_pair
        report = corollary4_check(matrix, projected, 6, epsilon=0.2)
        assert isinstance(report, Corollary4Report)
        assert report.bound == pytest.approx(0.8 * report.direct_energy)
        assert report.projected_energy > 0

    def test_epsilon_validated(self, projection_pair):
        matrix, projected = projection_pair
        with pytest.raises(ValidationError):
            corollary4_check(matrix, projected, 6, epsilon=1.5)

    def test_document_count_mismatch(self, projection_pair):
        matrix, _ = projection_pair
        with pytest.raises(ValidationError):
            corollary4_check(matrix, np.zeros((10, 3)), 2, epsilon=0.2)

    def test_projection_conserves_total_energy(self, projection_pair):
        # The √(n/l) scaling keeps E‖B‖²_F = ‖A‖²_F, which is why the
        # corollary never fails even at tiny l: few dimensions just
        # carry proportionally larger singular values.
        matrix, _ = projection_pair
        projector = OrthonormalProjector(400, 60, seed=93)
        projected = projector.project(matrix)
        ratio = (np.linalg.norm(projected) ** 2
                 / matrix.frobenius_norm() ** 2)
        assert 0.7 < ratio < 1.3


class TestTermVectors:
    def test_shape_and_duality(self, tiny_matrix):
        lsi = LSIModel.fit(tiny_matrix, 4, engine="exact")
        term_vectors = lsi.term_vectors()
        assert term_vectors.shape == (tiny_matrix.shape[0], 4)
        # Duality: A_k = (U_k D_k) V_k^T = term_vectors @ vt.
        assert np.allclose(term_vectors @ lsi.svd.vt,
                           lsi.reconstruct(), atol=1e-9)

    def test_synonym_module_consistency(self):
        from repro.core.synonymy import synonym_collapse
        from repro.corpus import build_separable_model, generate_corpus
        from repro.corpus.synonyms import split_term_into_synonyms
        from repro.linalg.dense import cosine_similarity

        model = build_separable_model(100, 4)
        corpus = generate_corpus(model, 80, seed=94)
        matrix = split_term_into_synonyms(
            corpus.term_document_matrix(), 2, seed=95)
        report = synonym_collapse(matrix, 2, matrix.shape[0] - 1,
                                  rank=4)
        lsi = LSIModel.fit(matrix, 4, engine="exact")
        vectors = lsi.term_vectors()
        direct = cosine_similarity(vectors[2], vectors[-1])
        assert direct == pytest.approx(report.lsi_cosine, abs=1e-9)


class TestPoissonLengths:
    def test_mean_matches(self):
        factors = PureTopicFactors(poisson_mean=30.0)
        rng = np.random.default_rng(96)
        lengths = [factors.sample(4, 0, rng).length
                   for _ in range(800)]
        assert np.mean(lengths) == pytest.approx(30.0, rel=0.05)

    def test_always_positive(self):
        factors = PureTopicFactors(poisson_mean=1.0)
        rng = np.random.default_rng(97)
        assert all(factors.sample(2, 0, rng).length >= 1
                   for _ in range(200))

    def test_mean_below_one_rejected(self):
        with pytest.raises(ValidationError):
            PureTopicFactors(poisson_mean=0.5)

    def test_corpus_generation_with_poisson(self):
        from repro.corpus.model import CorpusModel
        from repro.corpus.topic import Topic

        model = CorpusModel(
            40, [Topic.uniform(40)],
            PureTopicFactors(poisson_mean=15.0))
        corpus = generate_corpus(model, 25, seed=98)
        assert len(corpus) == 25
        assert all(doc.length >= 1 for doc in corpus)
