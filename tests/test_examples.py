"""Smoke tests: every example script runs to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "synonymy_retrieval.py",
    "topic_discovery_graph.py",
    "movie_recommender.py",
    "fast_lsi_random_projection.py",
    "text_pipeline_search.py",
    "choosing_the_rank.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert len(output) > 100  # produced a real report


def test_reproduce_paper_table_quick(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["reproduce_paper_table.py",
                                      "--quick"])
    runpy.run_path(str(EXAMPLES_DIR / "reproduce_paper_table.py"),
                   run_name="__main__")
    output = capsys.readouterr().out
    assert "Intratopic" in output
    assert "paper's reported values" in output
