"""Tests for the experiment harness (scaled-down configurations)."""

import numpy as np
import pytest

from repro.experiments import (
    AngleTableConfig,
    CFConfig,
    FKVConfig,
    GraphTopicsConfig,
    JLDistortionConfig,
    RPRecoveryConfig,
    RetrievalConfig,
    SkewnessSweepConfig,
    SynonymyConfig,
    TimingConfig,
    run_angle_table,
    run_cf_experiment,
    run_fkv_experiment,
    run_graph_topics,
    run_jl_distortion,
    run_retrieval_experiment,
    run_rp_recovery,
    run_skewness_sweep,
    run_synonymy,
    run_timing,
)


class TestAngleTable:
    @pytest.fixture(scope="class")
    def result(self):
        return run_angle_table(AngleTableConfig().scaled(0.12))

    def test_paper_phenomenon(self, result):
        # Intratopic angles collapse; intertopic stay orthogonal.
        assert result.lsi.intratopic_mean < \
            result.original.intratopic_mean / 4
        assert result.lsi.intertopic_mean > 1.3
        assert result.original.intertopic_mean > 1.5

    def test_skewness_improves(self, result):
        assert result.lsi_skewness < result.original_skewness

    def test_render_contains_tables(self, result):
        rendered = result.render()
        assert "Intratopic" in rendered
        assert "Intertopic" in rendered
        assert "skewness" in rendered

    def test_scaled_config(self):
        config = AngleTableConfig().scaled(0.1)
        assert config.n_terms == 200
        assert config.n_topics == 20
        assert config.n_documents == 100


class TestSkewnessSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_skewness_sweep(SkewnessSweepConfig(
            n_terms=200, n_topics=5, corpus_sizes=(50, 200),
            epsilons=(0.0, 0.2), fixed_corpus_size=100))

    def test_epsilon_series_increasing(self, result):
        assert result.epsilon_series_increasing()

    def test_zero_epsilon_near_zero_skew(self, result):
        assert result.by_epsilon[0.0] < 0.01

    def test_render(self, result):
        assert "Skewness vs epsilon" in result.render()


class TestRPRecovery:
    @pytest.fixture(scope="class")
    def result(self):
        return run_rp_recovery(RPRecoveryConfig(
            n_terms=200, n_topics=5, n_documents=80,
            projection_dims=(20, 80), epsilon_labels=(0.5, 0.25)))

    def test_bounds_hold(self, result):
        assert result.all_bounds_hold()

    def test_recovery_improves(self, result):
        assert result.recovery_improves_with_l()

    def test_parallel_config_enforced(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            run_rp_recovery(RPRecoveryConfig(projection_dims=(10,),
                                             epsilon_labels=(0.5, 0.2)))


class TestJLDistortion:
    @pytest.fixture(scope="class")
    def result(self):
        return run_jl_distortion(JLDistortionConfig(
            n_terms=300, n_topics=5, n_documents=40,
            projection_dims=(20, 150)))

    def test_distortion_shrinks(self, result):
        assert result.distortion_shrinks_with_l()

    def test_concentration_within_bound(self, result):
        assert result.concentration.within_bound

    def test_render(self, result):
        assert "JL distance distortion" in result.render()


class TestTiming:
    def test_runs_and_renders(self):
        result = run_timing(TimingConfig(universe_sizes=(150, 300),
                                         n_topics=5, n_documents=60,
                                         projection_dim=30, repeats=1))
        assert len(result.points) == 2
        assert all(p.direct_seconds > 0 for p in result.points)
        assert "two-step" in result.render()
        assert result.points[0].predicted_speedup > 0


class TestSynonymy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_synonymy(SynonymyConfig(n_terms=200, n_topics=5,
                                           n_documents=150,
                                           n_synonym_pairs=2))

    def test_pairs_collapse(self, result):
        assert result.all_pairs_collapse(min_lsi_cosine=0.85)

    def test_controls_stay_apart(self, result):
        assert result.controls_stay_apart(max_control_cosine=0.5)

    def test_difference_direction_small(self, result):
        for outcome in result.outcomes:
            assert outcome.direction.relative_energy < 0.1


class TestGraphTopics:
    @pytest.fixture(scope="class")
    def result(self):
        return run_graph_topics(GraphTopicsConfig(
            n_blocks=4, block_size=20, inter_fractions=(0.02, 0.3),
            corpus_n_terms=150, corpus_n_documents=80))

    def test_recovery_at_small_epsilon(self, result):
        assert result.recovery_at_small_epsilon()

    def test_corpus_graph_works(self, result):
        assert result.corpus_graph_accuracy > 0.9

    def test_render(self, result):
        assert "planted partition" in result.render()


class TestRetrieval:
    @pytest.fixture(scope="class")
    def result(self):
        return run_retrieval_experiment(RetrievalConfig(
            n_terms=250, n_topics=5, n_documents=120,
            projection_dim=50, queries_per_topic=3))

    def test_engine_grid_complete(self, result):
        engines = {"vsm", "bm25", "lsi", "rp-lsi"}
        workloads = {"topic", "single-term"}
        assert set(result.scores) == {(e, w) for e in engines
                                      for w in workloads}

    def test_lsi_wins_single_terms(self, result):
        assert result.lsi_wins_on_single_terms()

    def test_lsi_beats_bm25_single_terms(self, result):
        assert result.lsi_beats_bm25_on_single_terms()

    def test_pr_curves_valid(self, result):
        for scores in result.scores.values():
            assert scores.pr_curve.shape == (11,)
            assert np.all(scores.pr_curve >= 0)
            assert np.all(scores.pr_curve <= 1)


class TestFKV:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fkv_experiment(FKVConfig(
            n_terms=200, n_topics=5, n_documents=100,
            sample_counts=(15, 60)))

    def test_bounds_hold(self, result):
        assert result.fkv_bounds_hold()

    def test_more_samples_better(self, result):
        assert result.fkv_improves_with_samples()

    def test_three_methods_per_budget(self, result):
        methods = {p.method for p in result.points}
        assert methods == {"fkv", "uniform", "rp-lsi"}


class TestCF:
    @pytest.fixture(scope="class")
    def result(self):
        return run_cf_experiment(CFConfig(n_items=120, n_groups=4,
                                          n_users=80, rank_sweep=(2, 4)))

    def test_spectral_beats_popularity(self, result):
        assert result.spectral_beats_popularity()

    def test_all_engines_evaluated(self, result):
        names = set(result.evaluations)
        assert "popularity" in names
        assert any(n.startswith("user-knn") for n in names)
        assert any(n.startswith("item-knn") for n in names)
        assert any(n.startswith("spectral") for n in names)
