"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.corpus import build_separable_model, generate_corpus
from repro.linalg.sparse import CSRMatrix


@pytest.fixture
def rng():
    """A deterministic generator for test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dense(rng):
    """A small dense matrix with ~30% nonzeros."""
    matrix = rng.random((20, 15))
    matrix[matrix < 0.7] = 0.0
    return matrix


@pytest.fixture
def small_sparse(small_dense):
    """The CSR version of ``small_dense``."""
    return CSRMatrix.from_dense(small_dense)


@pytest.fixture(scope="session")
def tiny_model():
    """A small separable model: 120 terms, 4 topics, 0.95 primary mass."""
    return build_separable_model(120, 4, primary_mass=0.95,
                                 length_low=30, length_high=50)


@pytest.fixture(scope="session")
def tiny_corpus(tiny_model):
    """An 80-document corpus from ``tiny_model`` (seed-fixed)."""
    return generate_corpus(tiny_model, 80, seed=777)


@pytest.fixture(scope="session")
def tiny_matrix(tiny_corpus):
    """The term-document count matrix of ``tiny_corpus``."""
    return tiny_corpus.term_document_matrix()
