"""Property-based tests (hypothesis) for the linear-algebra substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.dense import (
    cosine_similarity,
    orthonormalize_columns,
    principal_angles,
)
from repro.linalg.sparse import CSRMatrix
from repro.linalg.svd import exact_svd

finite_floats = st.floats(min_value=-100.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False,
                          width=64)


@st.composite
def dense_matrices(draw, max_rows=12, max_cols=12, sparsify=True):
    n = draw(st.integers(1, max_rows))
    m = draw(st.integers(1, max_cols))
    matrix = draw(arrays(np.float64, (n, m), elements=finite_floats))
    if sparsify and draw(st.booleans()):
        mask = draw(arrays(np.bool_, (n, m)))
        matrix = np.where(mask, matrix, 0.0)
    return matrix


class TestCSRProperties:
    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_dense_round_trip(self, dense):
        assert np.array_equal(CSRMatrix.from_dense(dense).to_dense(),
                              dense)

    @given(dense_matrices(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_matvec_linearity(self, dense, seed):
        sparse = CSRMatrix.from_dense(dense)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(dense.shape[1])
        y = rng.standard_normal(dense.shape[1])
        alpha = float(rng.standard_normal())
        left = sparse.matvec(alpha * x + y)
        right = alpha * sparse.matvec(x) + sparse.matvec(y)
        assert np.allclose(left, right, atol=1e-8)

    @given(dense_matrices(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_adjoint_identity(self, dense, seed):
        # <A x, y> == <x, A^T y> — the defining property of rmatvec.
        sparse = CSRMatrix.from_dense(dense)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(dense.shape[1])
        y = rng.standard_normal(dense.shape[0])
        assert sparse.matvec(x) @ y == pytest.approx(
            x @ sparse.rmatvec(y), rel=1e-8, abs=1e-6)

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, dense):
        sparse = CSRMatrix.from_dense(dense)
        assert sparse.transpose().transpose() == sparse

    @given(dense_matrices())
    @settings(max_examples=60, deadline=None)
    def test_frobenius_matches_dense(self, dense):
        assert CSRMatrix.from_dense(dense).frobenius_norm() == \
            pytest.approx(np.linalg.norm(dense), rel=1e-10, abs=1e-12)

    @given(dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_gram_is_psd(self, dense):
        gram = CSRMatrix.from_dense(dense).gram()
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() >= -1e-6 * max(1.0, abs(eigenvalues).max())

    @given(dense_matrices(), dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_add_commutative_when_shapes_match(self, a, b):
        if a.shape != b.shape:
            return
        sa, sb = CSRMatrix.from_dense(a), CSRMatrix.from_dense(b)
        assert np.allclose(sa.add(sb).to_dense(),
                           sb.add(sa).to_dense())


class TestSVDProperties:
    @given(dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_reconstruction(self, dense):
        result = exact_svd(dense)
        assert np.allclose(result.reconstruct(), dense, atol=1e-7)

    @given(dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_singular_values_sorted_nonnegative(self, dense):
        s = exact_svd(dense).singular_values
        assert np.all(s >= -1e-12)
        assert np.all(np.diff(s) <= 1e-9)

    @given(dense_matrices(), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_truncation_monotone_residual(self, dense, k):
        result = exact_svd(dense)
        k = min(k, result.rank)
        if k < 1:
            return
        small = result.truncate(k)
        assert small.residual_norm() >= result.residual_norm() - 1e-9
        if k > 1:
            smaller = result.truncate(k - 1)
            assert smaller.residual_norm() >= \
                small.residual_norm() - 1e-9

    @given(dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_energy_conservation(self, dense):
        result = exact_svd(dense)
        assert result.captured_energy() == pytest.approx(
            float(np.sum(dense * dense)), rel=1e-8, abs=1e-8)


class TestGeometryProperties:
    unit_vectors = arrays(
        np.float64, (6,),
        elements=st.floats(min_value=-10, max_value=10,
                           allow_nan=False, allow_infinity=False,
                           width=64))

    @given(unit_vectors, unit_vectors)
    @settings(max_examples=80, deadline=None)
    def test_cosine_bounds_and_symmetry(self, u, v):
        value = cosine_similarity(u, v)
        assert -1.0 <= value <= 1.0
        assert value == pytest.approx(cosine_similarity(v, u), abs=1e-12)

    @given(unit_vectors, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_cosine_scale_invariance(self, u, alpha):
        if np.linalg.norm(u) < 1e-9:
            return
        assert cosine_similarity(u, alpha * u) == pytest.approx(
            1.0, abs=1e-9)

    @given(dense_matrices(max_rows=10, max_cols=6, sparsify=False))
    @settings(max_examples=40, deadline=None)
    def test_orthonormalize_output_orthonormal(self, matrix):
        q = orthonormalize_columns(matrix)
        assert np.allclose(q.T @ q, np.eye(q.shape[1]), atol=1e-8)

    @given(dense_matrices(max_rows=10, max_cols=4, sparsify=False),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_principal_angles_range(self, matrix, seed):
        rng = np.random.default_rng(seed)
        other = rng.standard_normal(matrix.shape)
        angles = principal_angles(matrix, other)
        assert np.all(angles >= -1e-12)
        assert np.all(angles <= np.pi / 2 + 1e-12)
