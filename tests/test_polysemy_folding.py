"""Tests for polysemy construction/analysis and folding-in."""

import numpy as np
import pytest

from repro.core.folding import FoldingIndex, folding_drift
from repro.core.lsi import LSIModel
from repro.core.polysemy import (
    context_disambiguation,
    sense_superposition,
    topic_directions,
)
from repro.corpus import build_separable_model, generate_corpus
from repro.corpus.polysemy import merge_matrix_terms, merge_topic_terms
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def poly_setup():
    model = build_separable_model(120, 4, primary_mass=0.95,
                                  length_low=40, length_high=60)
    merged = merge_topic_terms(model, 0, 3 * 30 + 0)  # topics 0 and 3
    corpus = generate_corpus(merged, 200, seed=51)
    matrix = corpus.term_document_matrix()
    lsi = LSIModel.fit(matrix, 4, engine="exact")
    return merged, corpus, matrix, lsi


class TestMergeTopicTerms:
    def test_universe_shrinks(self, poly_setup):
        merged, *_ = poly_setup
        assert merged.universe_size == 119

    def test_distributions_valid(self, poly_setup):
        merged, *_ = poly_setup
        for topic in merged.topics:
            assert topic.probabilities.sum() == pytest.approx(1.0)

    def test_polyseme_in_both_primaries(self, poly_setup):
        merged, *_ = poly_setup
        owners = [t for t in merged.topics if 0 in t.primary_terms]
        assert len(owners) == 2

    def test_same_term_rejected(self):
        model = build_separable_model(50, 2)
        with pytest.raises(ValidationError):
            merge_topic_terms(model, 3, 3)

    def test_out_of_range(self):
        model = build_separable_model(50, 2)
        with pytest.raises(ValidationError):
            merge_topic_terms(model, 3, 999)


class TestMergeMatrixTerms:
    def test_counts_conserved(self, tiny_matrix):
        merged = merge_matrix_terms(tiny_matrix, 2, 5)
        assert merged.shape == (tiny_matrix.shape[0] - 1,
                                tiny_matrix.shape[1])
        combined = tiny_matrix.get_row(2) + tiny_matrix.get_row(5)
        assert np.allclose(merged.get_row(2), combined)

    def test_later_rows_shift(self, tiny_matrix):
        merged = merge_matrix_terms(tiny_matrix, 2, 5)
        assert np.allclose(merged.get_row(5), tiny_matrix.get_row(6))
        assert np.allclose(merged.get_row(merged.shape[0] - 1),
                           tiny_matrix.get_row(tiny_matrix.shape[0] - 1))

    def test_total_mass_conserved(self, tiny_matrix):
        merged = merge_matrix_terms(tiny_matrix, 2, 5)
        assert merged.row_sums().sum() == pytest.approx(
            tiny_matrix.row_sums().sum())


class TestSenseAnalysis:
    def test_topic_directions_unit(self, poly_setup):
        _, corpus, _, lsi = poly_setup
        directions = topic_directions(lsi, corpus.topic_labels())
        assert directions.shape == (4, 4)
        assert np.allclose(np.linalg.norm(directions, axis=1), 1.0)

    def test_polyseme_superposed(self, poly_setup):
        _, corpus, _, lsi = poly_setup
        report = sense_superposition(lsi, corpus.topic_labels(), 0,
                                     (0, 3))
        assert report.is_superposed
        assert report.sense_mass_fraction > 0.8

    def test_ordinary_term_not_superposed(self, poly_setup):
        _, corpus, _, lsi = poly_setup
        # Term 40: a primary term of topic 1 only.
        report = sense_superposition(lsi, corpus.topic_labels(), 40,
                                     (0, 3))
        assert not report.is_superposed

    def test_context_disambiguates(self, poly_setup):
        merged, corpus, _, lsi = poly_setup
        labels = corpus.topic_labels()
        context = [t for t in merged.topics[0].primary_terms
                   if t != 0][:3]
        report = context_disambiguation(lsi, labels, 0, 0, context)
        assert report.contextual_precision >= 0.9
        assert report.context_helps

    def test_out_of_range_term(self, poly_setup):
        _, corpus, _, lsi = poly_setup
        with pytest.raises(ValidationError):
            sense_superposition(lsi, corpus.topic_labels(), 9999, (0, 1))


@pytest.fixture(scope="module")
def folding_setup():
    model = build_separable_model(150, 4)
    base = generate_corpus(model, 120, seed=61)
    new = generate_corpus(model, 30, seed=62)
    return (model, base.term_document_matrix(),
            new.term_document_matrix())


class TestFoldingIndex:
    def test_fold_in_grows_store(self, folding_setup):
        _, base, new = folding_setup
        index = FoldingIndex(LSIModel.fit(base, 4, engine="exact"))
        assert index.n_folded == 0
        vectors = index.fold_in(new)
        assert vectors.shape == (4, 30)
        assert index.n_documents == 150
        assert index.n_folded == 30

    def test_folded_vectors_are_projections(self, folding_setup):
        _, base, new = folding_setup
        model = LSIModel.fit(base, 4, engine="exact")
        index = FoldingIndex(model)
        vectors = index.fold_in(new)
        assert np.allclose(vectors, model.project_documents(new))

    def test_retrieval_reaches_folded_documents(self, folding_setup):
        _, base, new = folding_setup
        index = FoldingIndex(LSIModel.fit(base, 4, engine="exact"))
        index.fold_in(new)
        query = new.get_column(0)
        top = index.rank_documents(query, top_k=5)
        assert any(int(d) >= 120 for d in top)

    def test_scores_cover_all_documents(self, folding_setup):
        _, base, new = folding_setup
        index = FoldingIndex(LSIModel.fit(base, 4, engine="exact"))
        index.fold_in(new)
        assert index.score(new.get_column(0)).shape == (150,)

    def test_wrap_type_checked(self):
        with pytest.raises(ValidationError):
            FoldingIndex("not a model")


class TestFoldingDrift:
    def test_in_model_drift_small(self, folding_setup):
        _, base, new = folding_setup
        drift = folding_drift(base, new, 4)
        assert drift.subspace_drift < 0.3
        assert drift.residual_excess < 0.05
        assert drift.folded_fraction == pytest.approx(30 / 150)

    def test_more_folding_more_drift(self, folding_setup):
        model = build_separable_model(150, 4)
        _, base, _ = folding_setup
        small = generate_corpus(model, 10, seed=63) \
            .term_document_matrix()
        large = generate_corpus(model, 100, seed=63) \
            .term_document_matrix()
        drift_small = folding_drift(base, small, 4)
        drift_large = folding_drift(base, large, 4)
        assert drift_large.residual_excess >= \
            drift_small.residual_excess - 1e-6

    def test_term_space_mismatch(self, folding_setup):
        _, base, _ = folding_setup
        with pytest.raises(ValidationError):
            folding_drift(base, np.zeros((3, 2)), 2)
