"""Tests for the Boolean retrieval baseline."""

import numpy as np
import pytest

from repro.corpus.vocabulary import Vocabulary
from repro.ir.boolean import BooleanQueryError, BooleanRetriever
from repro.ir.index import InvertedIndex
from repro.linalg.sparse import CSRMatrix


@pytest.fixture
def retriever():
    """4 docs over terms: car(0), automobile(1), truck(2), engine(3)."""
    dense = np.array([
        # d0   d1   d2   d3
        [1.0, 0.0, 1.0, 0.0],   # car
        [0.0, 1.0, 0.0, 0.0],   # automobile
        [0.0, 0.0, 1.0, 1.0],   # truck
        [1.0, 1.0, 0.0, 1.0]])  # engine
    index = InvertedIndex.from_matrix(CSRMatrix.from_dense(dense))
    vocabulary = Vocabulary(["car", "automobile", "truck", "engine"])
    return BooleanRetriever(index, vocabulary=vocabulary)


class TestBooleanQueries:
    def test_single_term(self, retriever):
        assert retriever.search("car") == {0, 2}

    def test_or(self, retriever):
        assert retriever.search("car OR automobile") == {0, 1, 2}

    def test_and(self, retriever):
        assert retriever.search("car AND engine") == {0}

    def test_juxtaposition_is_and(self, retriever):
        assert retriever.search("car engine") == {0}

    def test_not(self, retriever):
        assert retriever.search("NOT truck") == {0, 1}

    def test_and_not(self, retriever):
        assert retriever.search("engine AND NOT truck") == {0, 1}

    def test_parentheses(self, retriever):
        assert retriever.search("(car OR automobile) AND engine") == \
            {0, 1}

    def test_nested_parentheses(self, retriever):
        assert retriever.search(
            "((car OR automobile) AND NOT (truck OR engine))") == set()

    def test_precedence_and_over_or(self, retriever):
        # car OR (automobile AND engine), not (car OR automobile) AND...
        assert retriever.search("car OR automobile AND engine") == \
            {0, 1, 2}

    def test_double_negation(self, retriever):
        assert retriever.search("NOT NOT car") == {0, 2}

    def test_unknown_term_is_empty(self, retriever):
        assert retriever.search("spaceship") == set()
        assert retriever.search("car OR spaceship") == {0, 2}

    def test_case_insensitive_operators(self, retriever):
        assert retriever.search("car and engine") == {0}
        assert retriever.search("car or truck") == {0, 2, 3}

    def test_ranked_form_sorted(self, retriever):
        assert retriever.search_ranked("car OR truck") == [0, 2, 3]


class TestBooleanErrors:
    def test_empty_query(self, retriever):
        with pytest.raises(BooleanQueryError):
            retriever.search("")

    def test_unbalanced_parenthesis(self, retriever):
        with pytest.raises(BooleanQueryError):
            retriever.search("(car OR truck")

    def test_dangling_operator(self, retriever):
        with pytest.raises(BooleanQueryError):
            retriever.search("car AND")

    def test_stray_close(self, retriever):
        with pytest.raises(BooleanQueryError):
            retriever.search("car )")

    def test_not_alone(self, retriever):
        with pytest.raises(BooleanQueryError):
            retriever.search("NOT")


class TestPseudoTerms:
    def test_tid_queries_without_vocabulary(self, tiny_matrix):
        index = InvertedIndex.from_matrix(tiny_matrix)
        retriever = BooleanRetriever(index)
        docs = retriever.search("t0 OR t1")
        row0 = set(np.flatnonzero(tiny_matrix.get_row(0)).tolist())
        row1 = set(np.flatnonzero(tiny_matrix.get_row(1)).tolist())
        assert docs == row0 | row1

    def test_non_pseudo_term_rejected(self, tiny_matrix):
        retriever = BooleanRetriever(
            InvertedIndex.from_matrix(tiny_matrix))
        with pytest.raises(BooleanQueryError):
            retriever.search("car")

    def test_out_of_range_pseudo_term_empty(self, tiny_matrix):
        retriever = BooleanRetriever(
            InvertedIndex.from_matrix(tiny_matrix))
        assert retriever.search("t99999") == set()


class TestTokenProcessing:
    def test_process_token_normalises_queries(self):
        from repro.corpus.pipeline import TextPipeline
        from repro.corpus.stemmer import porter_stem

        pipeline = TextPipeline()
        matrix = pipeline.fit_transform(
            ["connected galaxies", "galaxy connection",
             "database salaries"])
        retriever = BooleanRetriever(
            InvertedIndex.from_matrix(matrix),
            vocabulary=pipeline.vocabulary,
            process_token=porter_stem)
        # Surface forms in the query map onto the stemmed vocabulary.
        assert retriever.search("connecting") == {0, 1}
        assert retriever.search("galaxies AND connections") == {0, 1}
