"""Tests for the benchmark harness: registry, runner, report, gate."""

import json
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from harness import (  # noqa: E402
    REGISTRY,
    BenchmarkRegistry,
    BenchmarkSpec,
    benchmark,
    discover,
)
from harness.compare import compare_reports  # noqa: E402
from harness.main import main as harness_main  # noqa: E402
from harness.registry import DuplicateBenchmarkError  # noqa: E402
from harness.report import (  # noqa: E402
    SCHEMA,
    SCHEMA_VERSION,
    ReportError,
    build_report,
    load_report,
    render_summary,
    write_report,
)
from harness.runner import (  # noqa: E402
    BenchmarkOutcome,
    RunOptions,
    run_selected,
    run_variant,
)

from repro.cli import main as repro_main  # noqa: E402


def make_spec(fn, name="synthetic", *, sizes=None, time_metrics=(),
              tags=("test",)):
    """A registry-free spec for runner-level tests."""
    return BenchmarkSpec(name=name, fn=fn, tags=tags,
                         sizes=sizes or {"smoke": {"n": 4}},
                         time_metrics=time_metrics, module=__name__)


def only_variant(spec):
    variants = spec.variants()
    assert len(variants) == 1
    return variants[0]


class TestRegistry:
    def test_discover_finds_every_bench_script(self):
        registry = discover()
        scripts = sorted(BENCH_DIR.glob("bench_*.py"))
        assert len(scripts) == 19
        modules = {spec.module for spec in registry.specs()}
        assert modules == {path.stem for path in scripts}

    def test_every_spec_has_smoke_and_full_sizes(self):
        # smoke and full are mandatory tiers; the serving benches add
        # an optional scale tier on top (ROADMAP: serving at scale).
        registry = discover()
        assert len(registry) >= 16
        for spec in registry.specs():
            assert {"smoke", "full"} <= set(spec.sizes), spec.name
            assert set(spec.sizes) <= {"smoke", "full", "scale"}, \
                spec.name

    def test_scale_tier_covers_serving_benches(self):
        registry = discover()
        scale = registry.variants(size="scale")
        names = {v.spec.name for v in scale}
        assert {"serving_batched_queries", "serving_float32_agreement",
                "serving_mmap_coldstart",
                "serving_blocked_gemm"} <= names
        assert all("serving" in v.spec.tags for v in scale)

    def test_variant_id_and_tags_include_size(self):
        registry = discover()
        variant = registry.variants(names=("retrieval_quality",),
                                    size="smoke")[0]
        assert variant.id == "retrieval_quality[smoke]"
        assert "smoke" in variant.tags
        assert set(variant.spec.tags) <= set(variant.tags)

    def test_tag_selection_picks_smoke_variants(self):
        registry = discover()
        smoke = registry.variants(tags=("smoke",))
        assert smoke
        assert all(v.size == "smoke" for v in smoke)
        assert len(smoke) == len(registry)

    def test_name_selection_accepts_name_and_id(self):
        registry = discover()
        by_name = registry.variants(names=("synonymy",))
        assert {v.id for v in by_name} == {"synonymy[smoke]",
                                           "synonymy[full]"}
        by_id = registry.variants(names=("synonymy[full]",))
        assert [v.id for v in by_id] == ["synonymy[full]"]

    def test_decorator_returns_function_unchanged(self):
        registry = BenchmarkRegistry()

        @benchmark(name="ret", registry=registry)
        def fn(params, seed):
            """Summary line."""
            return {"x": 1}

        assert fn({}, 0) == {"x": 1}
        assert "ret" in registry
        spec = registry.specs()[0]
        assert spec.summary == "Summary line."
        assert spec.sizes == {"full": {}}

    def test_duplicate_name_rejected_same_function_tolerated(self):
        registry = BenchmarkRegistry()

        def fn(params, seed):
            return {}

        registry.register(make_spec(fn, "dup"))
        registry.register(make_spec(fn, "dup"))  # same fn: no-op
        assert len(registry) == 1

        def other(params, seed):
            return {}

        with pytest.raises(DuplicateBenchmarkError):
            registry.register(make_spec(other, "dup"))


class TestRunner:
    def test_metrics_normalised_bools_become_01(self):
        def fn(params, seed):
            return {"claim": True, "other": False, "value": 2}

        outcome = run_variant(only_variant(make_spec(fn)))
        assert outcome.ok
        assert outcome.metrics == {"claim": 1.0, "other": 0.0,
                                   "value": 2.0}
        assert outcome.seed == RunOptions().seed
        assert len(outcome.wall_seconds) == 1

    def test_params_and_seed_are_threaded_through(self):
        seen = []

        def fn(params, seed):
            seen.append((dict(params), seed))
            return {"n": params["n"], "seed": seed}

        spec = make_spec(fn, sizes={"smoke": {"n": 7}})
        outcome = run_variant(only_variant(spec),
                              RunOptions(seed=99, repeats=2))
        assert outcome.metrics == {"n": 7.0, "seed": 99.0}
        # profiled run + 2 timed repeats, identical inputs each time
        assert seen == [({"n": 7}, 99)] * 3
        assert len(outcome.wall_seconds) == 2

    def test_error_is_captured_not_raised(self):
        def fn(params, seed):
            raise RuntimeError("boom")

        outcome = run_variant(only_variant(make_spec(fn)))
        assert outcome.status == "error"
        assert not outcome.ok
        assert "boom" in outcome.error
        assert outcome.metrics == {}

    def test_non_numeric_metric_is_a_protocol_error(self):
        def fn(params, seed):
            return {"bad": "a string"}

        outcome = run_variant(only_variant(make_spec(fn)))
        assert outcome.status == "error"
        assert "bad" in outcome.error

    def test_timeout_produces_timeout_status(self):
        def fn(params, seed):
            time.sleep(5.0)
            return {}

        outcome = run_variant(only_variant(make_spec(fn)),
                              RunOptions(timeout_seconds=0.2))
        assert outcome.status == "timeout"
        assert "0.2" in outcome.error

    def test_deterministic_rerun_of_a_real_benchmark(self):
        registry = discover()
        variant = registry.variants(names=("gram_cost[smoke]",))[0]
        options = RunOptions(seed=777)
        first = run_variant(variant, options)
        second = run_variant(variant, options)
        assert first.ok and second.ok
        timelike = set(variant.spec.time_metrics)
        stable_first = {k: v for k, v in first.metrics.items()
                        if k not in timelike}
        stable_second = {k: v for k, v in second.metrics.items()
                         if k not in timelike}
        assert stable_first == stable_second

    def test_run_selected_reports_progress(self):
        def fn(params, seed):
            return {"x": 1}

        lines = []
        outcomes = run_selected([only_variant(make_spec(fn))],
                                progress=lines.append)
        assert len(outcomes) == 1
        assert any("synthetic[smoke]" in line for line in lines)


class TestReport:
    def outcome(self, **overrides):
        base = dict(benchmark="b[smoke]", name="b", size="smoke",
                    tags=("smoke",), params={"n": 1}, seed=1,
                    status="ok", wall_seconds=(0.5, 0.7),
                    peak_alloc_bytes=100, peak_rss_kb=2048,
                    metrics={"m": 1.0}, time_metrics=())
        base.update(overrides)
        return BenchmarkOutcome(**base)

    def test_schema_round_trip(self, tmp_path):
        document = build_report([self.outcome()],
                                RunOptions(repeats=2, seed=1))
        path = write_report(document, tmp_path)
        assert path.name.startswith("BENCH_")
        assert path.suffix == ".json"
        loaded = load_report(path)
        assert loaded == json.loads(json.dumps(document))
        assert loaded["schema"] == SCHEMA
        assert loaded["schema_version"] == SCHEMA_VERSION
        entry = loaded["results"][0]
        assert entry["mean_seconds"] == pytest.approx(0.6)
        assert entry["best_seconds"] == pytest.approx(0.5)

    def test_same_second_reports_do_not_collide(self, tmp_path):
        document = build_report([self.outcome()])
        first = write_report(document, tmp_path)
        second = write_report(document, tmp_path)
        assert first != second
        assert load_report(second) == load_report(first)

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"results": []}))
        with pytest.raises(ReportError, match="schema"):
            load_report(path)

    def test_future_schema_version_rejected(self, tmp_path):
        document = build_report([self.outcome()])
        document["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ReportError, match="schema_version"):
            load_report(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ReportError, match="no such report"):
            load_report(tmp_path / "nope.json")

    def test_env_fingerprint_is_recorded(self):
        document = build_report([])
        env = document["env"]
        assert env["python"] == sys.version.split()[0]
        assert "numpy" in env and "git_commit" in env

    def test_render_summary_mentions_every_benchmark(self):
        document = build_report([self.outcome()])
        rendered = render_summary(document)
        assert "b[smoke]" in rendered


class TestCompare:
    def report_with(self, metrics, *, benchmark_id="b[smoke]",
                    status="ok", time_metrics=(), mean_seconds=1.0):
        return {
            "schema": SCHEMA, "schema_version": SCHEMA_VERSION,
            "results": [{
                "benchmark": benchmark_id, "status": status,
                "metrics": metrics, "time_metrics": list(time_metrics),
                "mean_seconds": mean_seconds,
            }],
        }

    def test_identical_reports_pass(self):
        baseline = self.report_with({"m": 1.0, "claim": 1.0})
        result = compare_reports(baseline, baseline)
        assert result.ok()
        assert not result.regressions
        assert "PASS" in result.render()

    def test_small_drift_within_tolerance_passes(self):
        baseline = self.report_with({"m": 1.0})
        current = self.report_with({"m": 1.04})
        assert compare_reports(baseline, current,
                               tolerance=0.05).ok()

    def test_regression_beyond_tolerance_fails(self):
        baseline = self.report_with({"m": 1.0})
        current = self.report_with({"m": 0.9})
        result = compare_reports(baseline, current, tolerance=0.05)
        assert not result.ok()
        (bad,) = result.regressions
        assert bad.metric == "m"
        assert bad.delta == pytest.approx(-0.1)
        assert "FAIL" in result.render()

    def test_improvement_beyond_tolerance_also_fails(self):
        baseline = self.report_with({"m": 1.0})
        current = self.report_with({"m": 1.2})
        assert not compare_reports(baseline, current,
                                   tolerance=0.05).ok()

    def test_zero_baseline_uses_absolute_slack(self):
        baseline = self.report_with({"claim": 0.0})
        drifted = self.report_with({"claim": 1.0})
        assert not compare_reports(baseline, drifted).ok()
        same = self.report_with({"claim": 0.0})
        assert compare_reports(baseline, same).ok()

    def test_missing_benchmark_fails_unless_allowed(self):
        baseline = self.report_with({"m": 1.0})
        current = {"schema": SCHEMA,
                   "schema_version": SCHEMA_VERSION, "results": []}
        result = compare_reports(baseline, current)
        assert result.missing == ("b[smoke]",)
        assert not result.ok()
        assert result.ok(allow_missing=True)

    def test_added_benchmark_is_informational(self):
        baseline = {"schema": SCHEMA,
                    "schema_version": SCHEMA_VERSION, "results": []}
        current = self.report_with({"m": 1.0})
        result = compare_reports(baseline, current)
        assert result.added == ("b[smoke]",)
        assert result.ok()

    def test_broken_current_benchmark_fails(self):
        baseline = self.report_with({"m": 1.0})
        current = self.report_with({}, status="error")
        result = compare_reports(baseline, current)
        assert result.broken == ("b[smoke]",)
        assert not result.ok()

    def test_broken_baseline_benchmark_is_skipped(self):
        baseline = self.report_with({}, status="error")
        current = self.report_with({"m": 1.0})
        result = compare_reports(baseline, current)
        assert result.ok()
        assert not result.comparisons

    def test_time_metrics_skipped_unless_requested(self):
        baseline = self.report_with({"m": 1.0, "seconds": 1.0},
                                    time_metrics=("seconds",))
        current = self.report_with({"m": 1.0, "seconds": 10.0},
                                   time_metrics=("seconds",))
        assert compare_reports(baseline, current).ok()
        timed = compare_reports(baseline, current, check_time=True,
                                time_tolerance=0.5)
        assert not timed.ok()
        kinds = {c.metric: c.kind for c in timed.comparisons}
        assert kinds["seconds"] == "time"
        assert kinds["mean_seconds"] == "time"
        assert kinds["m"] == "metric"


class TestCli:
    def test_list_smoke_selection(self, capsys):
        assert harness_main(["list", "--tag", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "retrieval_quality[smoke]" in out
        assert "[full]" not in out

    def test_empty_selection_is_an_error(self, capsys):
        assert harness_main(["list", "--tag", "no-such-tag"]) == 1
        assert harness_main(["--tag", "no-such-tag"]) == 2

    def test_repro_cli_dispatches_bench(self, capsys):
        assert repro_main(["bench", "list", "--tag", "smoke"]) == 0
        assert "benchmark(s)" in capsys.readouterr().out

    def test_compare_cli_pass_and_fail(self, tmp_path, capsys):
        def fn(params, seed):
            return {"m": 1.0}

        outcome = run_variant(only_variant(make_spec(fn)))
        document = build_report([outcome])
        baseline = write_report(document, tmp_path / "a")
        current = write_report(document, tmp_path / "b")
        assert harness_main(["compare", str(baseline),
                             str(current)]) == 0
        drifted = json.loads(current.read_text())
        drifted["results"][0]["metrics"]["m"] = 2.0
        bad = tmp_path / "b" / "drifted.json"
        bad.write_text(json.dumps(drifted))
        assert harness_main(["compare", str(baseline),
                             str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_cli_load_error_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert harness_main(["compare", str(missing),
                             str(missing)]) == 2


class TestCommittedBaseline:
    BASELINE = BENCH_DIR / "baselines" / "smoke.json"

    def test_baseline_loads_and_covers_every_smoke_variant(self):
        document = load_report(self.BASELINE)
        recorded = {entry["benchmark"]
                    for entry in document["results"]}
        registered = {v.id for v in
                      discover().variants(tags=("smoke",))}
        assert recorded == registered
        assert all(entry["status"] == "ok"
                   for entry in document["results"])

    def test_baseline_passes_against_itself(self):
        document = load_report(self.BASELINE)
        assert compare_reports(document, document).ok()

    def test_interprocedural_claims_hold_in_baseline(self):
        # The interprocedural-lint acceptance claims, pinned to the
        # committed report: warm runs replay every record, the clean
        # chain stays clean, each mutation probe yields exactly one
        # finding, and editing only a callee re-concludes its caller.
        document = load_report(self.BASELINE)
        metrics = {entry["benchmark"]: entry["metrics"]
                   for entry in document["results"]}
        interproc = metrics["reprolint_interprocedural[smoke]"]
        assert interproc["interproc_warm_replays"] == 1.0
        assert interproc["interproc_findings_stable"] == 1.0
        assert interproc["tree_clean"] == 1.0
        assert interproc["r113_probe_exact_one"] == 1.0
        assert interproc["r120_probe_exact_one"] == 1.0
        assert interproc["callee_edit_flips_caller"] == 1.0
        assert interproc["callgraph_edges"] >= 20.0
        cache = metrics["reprolint_incremental_cache[smoke]"]
        assert cache["cache_fully_warm"] == 1.0
        assert cache["violations_stable"] == 1.0

    def test_incremental_claims_hold_in_baseline(self):
        # The streaming-SVD acceptance claims, pinned to the committed
        # report: the merge's triangle-inequality bound dominates the
        # true residual, streamed fitting agrees with the exact SVD at
        # top-10 >= 0.99, the streamed path stays under half the eager
        # path's subprocess peak RSS, and the incremental refit ranks
        # like a full refit.
        document = load_report(self.BASELINE)
        metrics = {entry["benchmark"]: entry["metrics"]
                   for entry in document["results"]}
        merge = metrics["incremental_merge_throughput[smoke]"]
        assert merge["bound_valid"] == 1.0
        streamed = metrics["incremental_streamed_agreement[smoke]"]
        assert streamed["streamed_top10_agreement"] >= 0.99
        assert streamed["streamed_agreement_ok"] == 1.0
        capped = metrics["incremental_memory_cap[smoke]"]
        assert capped["rss_ratio"] < 0.5
        assert capped["streamed_rss_under_half"] == 1.0
        assert capped["streamed_agreement_ok"] == 1.0
        refit = metrics["incremental_refit[smoke]"]
        assert refit["refit_agreement_ok"] == 1.0


class TestScaleBaseline:
    BASELINE = BENCH_DIR / "baselines" / "scale.json"

    def test_baseline_covers_every_scale_variant(self):
        document = load_report(self.BASELINE)
        recorded = {entry["benchmark"]
                    for entry in document["results"]}
        registered = {v.id for v in
                      discover().variants(size="scale")}
        assert recorded == registered
        assert all(entry["status"] == "ok"
                   for entry in document["results"])

    def test_baseline_passes_against_itself(self):
        document = load_report(self.BASELINE)
        assert compare_reports(document, document).ok()

    def test_gated_serving_claims_hold_in_baseline(self):
        # The PR's acceptance claims, pinned to the committed report:
        # float32 agrees and is fast enough, mmap cold start is small
        # and bit-identical.
        document = load_report(self.BASELINE)
        metrics = {entry["benchmark"]: entry["metrics"]
                   for entry in document["results"]}
        agreement = metrics["serving_float32_agreement[scale]"]
        assert agreement["float32_top10_agreement"] >= 0.99
        assert agreement["float32_agreement_ok"] == 1.0
        assert agreement["float32_speedup_ok"] == 1.0
        coldstart = metrics["serving_mmap_coldstart[scale]"]
        assert coldstart["mmap_rankings_exact"] == 1.0
        assert coldstart["mmap_rss_ratio"] < 0.25
        assert coldstart["mmap_rss_under_quarter"] == 1.0
        sharded = metrics["serving_sharded_throughput[scale]"]
        for n_shards in (1, 2, 4):
            assert sharded[f"merge_exact_{n_shards}shard"] == 1.0
        capped = metrics["incremental_memory_cap[scale]"]
        assert capped["rss_ratio"] < 0.5
        assert capped["streamed_rss_under_half"] == 1.0
        assert capped["streamed_agreement_ok"] == 1.0


class TestMarkdownSummary:
    def _report(self):
        def fn(params, seed):
            return {"float32_top10_agreement": 1.0,
                    "float32_agreement_ok": True,
                    "queries_per_second": 1234.5}

        spec = make_spec(fn, "served",
                         time_metrics=("queries_per_second",))
        outcome = run_variant(only_variant(spec))
        return build_report([outcome])

    def test_claims_and_timings_split_into_tables(self):
        from harness.summary import render_markdown_summary

        text = render_markdown_summary(self._report())
        assert "### Claims & agreement" in text
        assert "| served[smoke] | float32_agreement_ok | ✅ |" in text
        assert "### Timing & throughput (not gated)" in text
        assert "queries_per_second" in text

    def test_continuous_agreement_not_rendered_as_claim(self):
        from harness.summary import render_markdown_summary

        text = render_markdown_summary(self._report())
        assert "| served[smoke] | float32_top10_agreement | 1 |" \
            in text

    def test_baseline_column_shows_delta(self):
        from harness.summary import render_markdown_summary

        current = self._report()
        baseline = json.loads(json.dumps(current))
        baseline["results"][0]["metrics"]["queries_per_second"] = 1000.0
        text = render_markdown_summary(current, baseline)
        assert "(+23.4%)" in text

    def test_broken_benchmarks_listed(self):
        from harness.summary import render_markdown_summary

        def fn(params, seed):
            raise RuntimeError("boom")

        outcome = run_variant(only_variant(make_spec(fn, "broken")))
        text = render_markdown_summary(build_report([outcome]))
        assert "### Broken" in text
        assert "broken[smoke]" in text

    def test_empty_report_renders_placeholder(self):
        from harness.summary import render_markdown_summary

        text = render_markdown_summary(build_report([]))
        assert "no results to summarise" in text

    def test_summary_cli_roundtrip(self, tmp_path, capsys):
        path = write_report(self._report(), tmp_path)
        assert harness_main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "## Bench summary" in out
        assert harness_main(["summary",
                             str(tmp_path / "nope.json")]) == 2


class TestFixtureDiskCache:
    def test_disk_cache_roundtrips_matrix(self, tmp_path, monkeypatch):
        from harness import fixtures

        monkeypatch.setenv(fixtures.CACHE_ENV, str(tmp_path))
        fixtures.clear_caches()
        first = fixtures.separable_matrix(60, 4, 40, 3)
        cached_files = list(tmp_path.glob("separable-matrix-*.npz"))
        assert len(cached_files) == 1
        fixtures.clear_caches()  # drop lru so the disk layer answers
        second = fixtures.separable_matrix(60, 4, 40, 3)
        assert second.shape == first.shape
        assert (second.indptr == first.indptr).all()
        assert (second.data == first.data).all()
        fixtures.clear_caches()

    def test_cache_disabled_without_env(self, tmp_path, monkeypatch):
        from harness import fixtures

        monkeypatch.delenv(fixtures.CACHE_ENV, raising=False)
        fixtures.clear_caches()
        fixtures.separable_matrix(60, 4, 40, 3)
        assert not list(tmp_path.glob("*.npz"))
        fixtures.clear_caches()

    def test_fingerprint_keys_cache_filenames(self, tmp_path,
                                              monkeypatch):
        from harness import fixtures

        monkeypatch.setenv(fixtures.CACHE_ENV, str(tmp_path))
        fixtures.clear_caches()
        factors = fixtures.synthetic_index_factors(64, 8, 32, 5)
        name = next(tmp_path.glob("index-factors-*.npz")).name
        assert fixtures.fixture_fingerprint() in name
        fixtures.clear_caches()
        again = fixtures.synthetic_index_factors(64, 8, 32, 5)
        assert (again.u == factors.u).all()
        assert (again.singular_values
                == factors.singular_values).all()
        fixtures.clear_caches()

    def test_synthetic_factors_are_wellformed(self):
        from harness import fixtures

        factors = fixtures.synthetic_index_factors(64, 8, 32, 5)
        assert factors.u.shape == (64, 8)
        assert factors.vt.shape == (8, 32)
        gram = factors.u.T @ factors.u
        assert abs(gram - __import__("numpy").eye(8)).max() < 1e-10
        sv = factors.singular_values
        assert (sv[:-1] >= sv[1:]).all()
        assert factors.frobenius_norm_sq > float((sv * sv).sum())
