"""Tests for the Corpus container, weighting, vocabulary, text, synonyms."""

import numpy as np
import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.document import Document
from repro.corpus.synonyms import split_term_into_synonyms, split_topic_term
from repro.corpus.text import (
    parse_corpus,
    parse_document,
    render_corpus,
    render_document,
    tokenize,
)
from repro.corpus.vocabulary import Vocabulary, synthetic_words
from repro.corpus.weighting import WEIGHTING_SCHEMES, apply_weighting
from repro.errors import EmptyCorpusError, ValidationError
from repro.linalg.sparse import CSRMatrix


class TestCorpus:
    def test_empty_rejected(self):
        with pytest.raises(EmptyCorpusError):
            Corpus([])

    def test_mixed_universes_rejected(self):
        docs = [Document({0: 1}, universe_size=3),
                Document({0: 1}, universe_size=4)]
        with pytest.raises(ValidationError):
            Corpus(docs)

    def test_ids_renumbered(self):
        docs = [Document({0: 1}, universe_size=3, doc_id=99),
                Document({1: 1}, universe_size=3, doc_id=99)]
        corpus = Corpus(docs)
        assert [d.doc_id for d in corpus] == [0, 1]

    def test_matrix_orientation(self, tiny_corpus, tiny_matrix):
        # Rows = terms, columns = documents, counts preserved.
        assert tiny_matrix.shape == (tiny_corpus.universe_size,
                                     len(tiny_corpus))
        doc0 = tiny_corpus[0]
        column = tiny_matrix.get_column(0)
        for term, count in doc0.term_counts.items():
            assert column[term] == count

    def test_document_lengths(self, tiny_corpus):
        lengths = tiny_corpus.document_lengths()
        assert lengths[3] == tiny_corpus[3].length

    def test_labels(self, tiny_corpus):
        labels = tiny_corpus.topic_labels()
        assert labels.shape == (len(tiny_corpus),)
        assert tiny_corpus.has_labels()

    def test_labels_missing_raise(self):
        corpus = Corpus([Document({0: 1}, universe_size=2)])
        assert not corpus.has_labels()
        with pytest.raises(ValidationError):
            corpus.topic_labels()

    def test_subcorpus_with_repeats(self, tiny_corpus):
        sub = tiny_corpus.subcorpus([1, 1, 3])
        assert len(sub) == 3
        assert sub[0].term_counts == tiny_corpus[1].term_counts
        assert sub[1].term_counts == tiny_corpus[1].term_counts

    def test_subcorpus_out_of_range(self, tiny_corpus):
        with pytest.raises(ValidationError):
            tiny_corpus.subcorpus([999])

    def test_subcorpus_empty_rejected(self, tiny_corpus):
        with pytest.raises(EmptyCorpusError):
            tiny_corpus.subcorpus([])

    def test_split_partitions(self, tiny_corpus):
        first, second = tiny_corpus.split(0.25, seed=1)
        assert len(first) + len(second) == len(tiny_corpus)
        assert len(first) == round(0.25 * len(tiny_corpus))

    def test_split_invalid_fraction(self, tiny_corpus):
        with pytest.raises(ValidationError):
            tiny_corpus.split(1.0)


class TestWeighting:
    def test_all_schemes_preserve_shape(self, tiny_matrix):
        for scheme in WEIGHTING_SCHEMES:
            weighted = apply_weighting(tiny_matrix, scheme)
            assert weighted.shape == tiny_matrix.shape

    def test_count_is_identity(self, tiny_matrix):
        assert apply_weighting(tiny_matrix, "count") == tiny_matrix

    def test_binary_is_01(self, tiny_matrix):
        binary = apply_weighting(tiny_matrix, "binary")
        assert set(np.unique(binary.data)) <= {1.0}
        assert binary.nnz == tiny_matrix.nnz

    def test_tf_columns_sum_to_one(self, tiny_matrix):
        tf = apply_weighting(tiny_matrix, "tf")
        assert np.allclose(tf.column_sums(), 1.0)

    def test_log_tf_monotone(self, tiny_matrix):
        log_tf = apply_weighting(tiny_matrix, "log_tf")
        assert np.all(log_tf.data >= 1.0)

    def test_tfidf_downweights_common_terms(self):
        # Term 0 appears everywhere, term 1 in one document.
        matrix = CSRMatrix.from_dense(np.array([
            [1.0, 1.0, 1.0, 1.0],
            [1.0, 0.0, 0.0, 0.0]]))
        tfidf = apply_weighting(matrix, "tfidf").to_dense()
        assert tfidf[1, 0] > tfidf[0, 0]

    def test_log_entropy_focused_term_wins(self):
        matrix = CSRMatrix.from_dense(np.array([
            [2.0, 2.0, 2.0, 2.0],   # spread evenly -> low weight
            [8.0, 0.0, 0.0, 0.0]]))  # focused -> high weight
        weighted = apply_weighting(matrix, "log_entropy").to_dense()
        assert weighted[1, 0] > weighted[0, 0]

    def test_unknown_scheme(self, tiny_matrix):
        with pytest.raises(ValidationError):
            apply_weighting(tiny_matrix, "bogus")

    def test_non_csr_rejected(self):
        with pytest.raises(ValidationError):
            apply_weighting(np.eye(3), "count")


class TestVocabulary:
    def test_synthetic_words_distinct(self):
        words = synthetic_words(500)
        assert len(words) == len(set(words)) == 500

    def test_synthetic_words_deterministic(self):
        assert synthetic_words(50) == synthetic_words(50)

    def test_round_trip(self):
        vocab = Vocabulary(["alpha", "beta", "gamma"])
        assert vocab.term(1) == "beta"
        assert vocab.term_id("gamma") == 2
        assert vocab.terms([0, 2]) == ["alpha", "gamma"]
        assert vocab.term_ids(["beta"]) == [1]

    def test_contains_and_iter(self):
        vocab = Vocabulary(["a", "b"])
        assert "a" in vocab
        assert list(vocab) == ["a", "b"]
        assert len(vocab) == 2

    def test_duplicates_rejected(self):
        with pytest.raises(ValidationError):
            Vocabulary(["x", "x"])

    def test_unknown_term(self):
        with pytest.raises(ValidationError):
            Vocabulary(["a"]).term_id("zzz")

    def test_out_of_range_id(self):
        with pytest.raises(ValidationError):
            Vocabulary(["a"]).term(5)


class TestText:
    def test_tokenize(self):
        assert tokenize("Hello, World! 123 foo-bar") == \
            ["hello", "world", "foo", "bar"]

    def test_render_parse_round_trip(self, tiny_corpus):
        vocab = Vocabulary.synthetic(tiny_corpus.universe_size)
        texts = render_corpus(tiny_corpus.subcorpus(range(4)), vocab,
                              seed=2)
        parsed = parse_corpus(texts, vocab)
        original = tiny_corpus.subcorpus(range(4)).term_document_matrix()
        assert parsed.term_document_matrix() == original

    def test_render_length_matches(self, tiny_corpus):
        vocab = Vocabulary.synthetic(tiny_corpus.universe_size)
        text = render_document(tiny_corpus[0], vocab, seed=3)
        assert len(text.split()) == tiny_corpus[0].length

    def test_parse_skips_unknown(self):
        vocab = Vocabulary(["known"])
        document = parse_document("known unknown known", vocab)
        assert document.term_counts == {0: 2}

    def test_parse_strict_mode(self):
        vocab = Vocabulary(["known"])
        with pytest.raises(ValidationError):
            parse_document("unknown", vocab, skip_unknown=False)

    def test_parse_all_unknown_raises(self):
        vocab = Vocabulary(["known"])
        with pytest.raises(EmptyCorpusError):
            parse_document("stranger things", vocab)

    def test_vocab_size_mismatch(self, tiny_corpus):
        with pytest.raises(ValidationError):
            render_document(tiny_corpus[0], Vocabulary(["one"]))


class TestSynonyms:
    def test_split_conserves_counts(self, tiny_matrix):
        split = split_term_into_synonyms(tiny_matrix, 5, seed=1)
        assert split.shape == (tiny_matrix.shape[0] + 1,
                               tiny_matrix.shape[1])
        total = split.get_row(5) + split.get_row(tiny_matrix.shape[0])
        assert np.allclose(total, tiny_matrix.get_row(5))

    def test_split_leaves_other_rows(self, tiny_matrix):
        split = split_term_into_synonyms(tiny_matrix, 5, seed=1)
        for row in (0, 3, 10):
            assert np.array_equal(split.get_row(row),
                                  tiny_matrix.get_row(row))

    def test_split_out_of_range(self, tiny_matrix):
        with pytest.raises(ValidationError):
            split_term_into_synonyms(tiny_matrix, 9999)

    def test_split_requires_counts(self, tiny_matrix):
        fractional = tiny_matrix.scale(0.5)
        with pytest.raises(ValidationError):
            split_term_into_synonyms(fractional, 5)

    def test_split_topic_term_model(self, tiny_model):
        extended = split_topic_term(tiny_model, 3)
        assert extended.universe_size == tiny_model.universe_size + 1
        for old, new in zip(tiny_model.topics, extended.topics):
            synonym_id = extended.universe_size - 1
            assert new.probabilities[3] == pytest.approx(
                old.probabilities[3] / 2)
            assert new.probabilities[synonym_id] == pytest.approx(
                old.probabilities[3] / 2)
            assert new.probabilities.sum() == pytest.approx(1.0)

    def test_split_topic_term_primary_membership(self, tiny_model):
        extended = split_topic_term(tiny_model, 3)
        owner = next(t for t in extended.topics if 3 in t.primary_terms)
        assert extended.universe_size - 1 in owner.primary_terms

    def test_split_topic_term_out_of_range(self, tiny_model):
        with pytest.raises(ValidationError):
            split_topic_term(tiny_model, 10_000)
