"""Unit tests for the from-scratch CSR matrix."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.linalg.sparse import CSRMatrix


class TestConstruction:
    def test_from_triplets_round_trip(self):
        matrix = CSRMatrix.from_triplets(3, 4, [0, 1, 2], [1, 2, 3],
                                         [1.0, 2.0, 3.0])
        expected = np.zeros((3, 4))
        expected[0, 1], expected[1, 2], expected[2, 3] = 1.0, 2.0, 3.0
        assert np.array_equal(matrix.to_dense(), expected)

    def test_duplicates_are_summed(self):
        matrix = CSRMatrix.from_triplets(2, 2, [0, 0, 0], [1, 1, 0],
                                         [1.0, 2.0, 4.0])
        assert matrix.to_dense()[0, 1] == 3.0
        assert matrix.to_dense()[0, 0] == 4.0

    def test_duplicates_rejected_when_disallowed(self):
        with pytest.raises(ValidationError):
            CSRMatrix.from_triplets(2, 2, [0, 0], [1, 1], [1.0, 2.0],
                                    sum_duplicates=False)

    def test_explicit_zeros_dropped(self):
        matrix = CSRMatrix.from_triplets(2, 2, [0, 1], [0, 1], [0.0, 5.0])
        assert matrix.nnz == 1

    def test_duplicates_cancelling_to_zero_dropped(self):
        matrix = CSRMatrix.from_triplets(2, 2, [0, 0], [1, 1], [2.0, -2.0])
        assert matrix.nnz == 0

    def test_from_dense_round_trip(self, small_dense):
        assert np.array_equal(CSRMatrix.from_dense(small_dense).to_dense(),
                              small_dense)

    def test_from_columns(self):
        matrix = CSRMatrix.from_columns(4, [{0: 2.0}, {1: 1.0, 3: 5.0}])
        assert matrix.shape == (4, 2)
        assert matrix.get_column(1)[3] == 5.0

    def test_zeros_and_identity(self):
        assert CSRMatrix.zeros(3, 5).nnz == 0
        identity = CSRMatrix.identity(4)
        assert np.array_equal(identity.to_dense(), np.eye(4))

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValidationError):
            CSRMatrix.from_triplets(2, 2, [0], [5], [1.0])
        with pytest.raises(ValidationError):
            CSRMatrix.from_triplets(2, 2, [-1], [0], [1.0])

    def test_non_finite_values_rejected(self):
        with pytest.raises(ValidationError):
            CSRMatrix.from_triplets(2, 2, [0], [0], [np.nan])

    def test_mismatched_triplet_lengths_rejected(self):
        with pytest.raises(ShapeError):
            CSRMatrix.from_triplets(2, 2, [0, 1], [0], [1.0])

    def test_indices_sorted_within_rows(self):
        matrix = CSRMatrix.from_triplets(1, 5, [0, 0, 0], [4, 0, 2],
                                         [1.0, 2.0, 3.0])
        assert list(matrix.indices) == [0, 2, 4]

    def test_equality(self, small_dense):
        a = CSRMatrix.from_dense(small_dense)
        b = CSRMatrix.from_dense(small_dense)
        assert a == b
        assert a != b.scale(2.0)

    def test_copy_is_deep(self, small_sparse):
        clone = small_sparse.copy()
        assert clone == small_sparse
        assert clone.data is not small_sparse.data


class TestProperties:
    def test_nnz_and_density(self):
        matrix = CSRMatrix.from_triplets(2, 5, [0, 1], [0, 4], [1.0, 1.0])
        assert matrix.nnz == 2
        assert matrix.density == pytest.approx(0.2)

    def test_mean_nonzeros_per_column(self, small_dense):
        matrix = CSRMatrix.from_dense(small_dense)
        expected = np.count_nonzero(small_dense) / small_dense.shape[1]
        assert matrix.mean_nonzeros_per_column() == pytest.approx(expected)

    def test_repr_mentions_shape(self, small_sparse):
        assert "shape=(20, 15)" in repr(small_sparse)


class TestProducts:
    def test_matvec_matches_dense(self, small_dense, small_sparse, rng):
        x = rng.standard_normal(15)
        assert np.allclose(small_sparse.matvec(x), small_dense @ x)

    def test_rmatvec_matches_dense(self, small_dense, small_sparse, rng):
        y = rng.standard_normal(20)
        assert np.allclose(small_sparse.rmatvec(y), small_dense.T @ y)

    def test_matmat_matches_dense(self, small_dense, small_sparse, rng):
        block = rng.standard_normal((15, 3))
        assert np.allclose(small_sparse.matmat(block), small_dense @ block)

    def test_rmatmat_matches_dense(self, small_dense, small_sparse, rng):
        block = rng.standard_normal((20, 4))
        assert np.allclose(small_sparse.rmatmat(block),
                           small_dense.T @ block)

    def test_gram_matches_dense(self, small_dense, small_sparse):
        assert np.allclose(small_sparse.gram(),
                           small_dense.T @ small_dense)

    def test_cogram_matches_dense(self, small_dense, small_sparse):
        assert np.allclose(small_sparse.cogram(),
                           small_dense @ small_dense.T)

    def test_matvec_wrong_length_rejected(self, small_sparse):
        with pytest.raises(ShapeError):
            small_sparse.matvec(np.zeros(3))

    def test_rmatvec_wrong_length_rejected(self, small_sparse):
        with pytest.raises(ShapeError):
            small_sparse.rmatvec(np.zeros(3))

    def test_empty_row_handling(self):
        matrix = CSRMatrix.from_triplets(3, 2, [0, 2], [0, 1], [1.0, 2.0])
        result = matrix.matvec(np.array([1.0, 1.0]))
        assert np.array_equal(result, [1.0, 0.0, 2.0])


class TestNorms:
    def test_frobenius(self, small_dense, small_sparse):
        assert small_sparse.frobenius_norm() == pytest.approx(
            np.linalg.norm(small_dense))

    def test_column_norms(self, small_dense, small_sparse):
        assert np.allclose(small_sparse.column_norms(),
                           np.linalg.norm(small_dense, axis=0))

    def test_row_norms(self, small_dense, small_sparse):
        assert np.allclose(small_sparse.row_norms(),
                           np.linalg.norm(small_dense, axis=1))

    def test_column_sums(self, small_dense, small_sparse):
        assert np.allclose(small_sparse.column_sums(),
                           small_dense.sum(axis=0))

    def test_row_sums(self, small_dense, small_sparse):
        assert np.allclose(small_sparse.row_sums(),
                           small_dense.sum(axis=1))

    def test_document_frequency(self, small_dense, small_sparse):
        expected = np.count_nonzero(small_dense, axis=1)
        assert np.array_equal(small_sparse.document_frequency(), expected)


class TestTransforms:
    def test_transpose(self, small_dense, small_sparse):
        assert np.array_equal(small_sparse.transpose().to_dense(),
                              small_dense.T)

    def test_transpose_involution(self, small_sparse):
        assert small_sparse.transpose().transpose() == small_sparse

    def test_scale(self, small_dense, small_sparse):
        assert np.allclose(small_sparse.scale(2.5).to_dense(),
                           2.5 * small_dense)

    def test_scale_by_zero_gives_empty(self, small_sparse):
        assert small_sparse.scale(0.0).nnz == 0

    def test_scale_rows(self, small_dense, small_sparse, rng):
        weights = rng.random(20) + 0.5
        assert np.allclose(small_sparse.scale_rows(weights).to_dense(),
                           weights[:, None] * small_dense)

    def test_scale_columns(self, small_dense, small_sparse, rng):
        weights = rng.random(15) + 0.5
        assert np.allclose(small_sparse.scale_columns(weights).to_dense(),
                           small_dense * weights[None, :])

    def test_map_data(self, small_dense, small_sparse):
        mapped = small_sparse.map_data(lambda d: d ** 2)
        assert np.allclose(mapped.to_dense(), small_dense ** 2)

    def test_map_data_shape_change_rejected(self, small_sparse):
        with pytest.raises(ShapeError):
            small_sparse.map_data(lambda d: d[:1])

    def test_select_columns(self, small_dense, small_sparse):
        chosen = [3, 0, 3, 7]
        assert np.array_equal(
            small_sparse.select_columns(chosen).to_dense(),
            small_dense[:, chosen])

    def test_select_rows(self, small_dense, small_sparse):
        chosen = [5, 5, 1]
        assert np.array_equal(
            small_sparse.select_rows(chosen).to_dense(),
            small_dense[chosen])

    def test_select_columns_out_of_range(self, small_sparse):
        with pytest.raises(ValidationError):
            small_sparse.select_columns([99])

    def test_get_column_and_row(self, small_dense, small_sparse):
        assert np.array_equal(small_sparse.get_column(4),
                              small_dense[:, 4])
        assert np.array_equal(small_sparse.get_row(9), small_dense[9])

    def test_get_column_out_of_range(self, small_sparse):
        with pytest.raises(ValidationError):
            small_sparse.get_column(100)

    def test_add(self, small_dense, small_sparse):
        doubled = small_sparse.add(small_sparse)
        assert np.allclose(doubled.to_dense(), 2 * small_dense)

    def test_add_shape_mismatch(self, small_sparse):
        with pytest.raises(ShapeError):
            small_sparse.add(CSRMatrix.zeros(2, 2))

    def test_add_cancellation_stays_sparse(self):
        a = CSRMatrix.from_triplets(2, 2, [0], [0], [3.0])
        b = CSRMatrix.from_triplets(2, 2, [0], [0], [-3.0])
        assert a.add(b).nnz == 0
