"""Tests for the corpus model (Definition 4) and the two-step sampler."""

import numpy as np
import pytest

from repro.corpus.document import Document
from repro.corpus.model import (
    CorpusModel,
    DocumentFactors,
    MixtureTopicFactors,
    PureTopicFactors,
)
from repro.corpus.sampler import generate_corpus, generate_document
from repro.corpus.separable import build_separable_model
from repro.corpus.style import Style
from repro.corpus.topic import Topic
from repro.errors import EmptyCorpusError, ValidationError


class TestDocumentFactors:
    def test_pure_detection(self):
        factors = DocumentFactors(np.array([0.0, 1.0]), np.zeros(0), 10)
        assert factors.is_pure
        assert factors.dominant_topic() == 1

    def test_mixture_not_pure(self):
        factors = DocumentFactors(np.array([0.5, 0.5]), np.zeros(0), 10)
        assert not factors.is_pure

    def test_invalid_weights_rejected(self):
        with pytest.raises(Exception):
            DocumentFactors(np.array([0.5, 0.6]), np.zeros(0), 10)

    def test_zero_length_rejected(self):
        with pytest.raises(ValidationError):
            DocumentFactors(np.array([1.0]), np.zeros(0), 0)


class TestPureTopicFactors:
    def test_samples_single_topic(self, rng):
        factors = PureTopicFactors(length_low=5, length_high=9)
        for _ in range(20):
            sample = factors.sample(4, 0, rng)
            assert sample.is_pure
            assert 5 <= sample.length <= 9

    def test_is_pure_flag(self):
        assert PureTopicFactors().is_pure

    def test_bad_length_range(self):
        with pytest.raises(ValidationError):
            PureTopicFactors(length_low=10, length_high=5)

    def test_topic_prior_respected(self, rng):
        factors = PureTopicFactors(topic_prior=np.array([1.0, 0.0]))
        for _ in range(10):
            assert factors.sample(2, 0, rng).dominant_topic() == 0

    def test_topic_prior_size_mismatch(self, rng):
        factors = PureTopicFactors(topic_prior=np.array([0.5, 0.5]))
        with pytest.raises(ValidationError):
            factors.sample(3, 0, rng)


class TestMixtureTopicFactors:
    def test_blends_requested_count(self, rng):
        factors = MixtureTopicFactors(topics_per_document=3)
        sample = factors.sample(10, 0, rng)
        assert np.count_nonzero(sample.topic_weights) <= 3
        assert sample.topic_weights.sum() == pytest.approx(1.0)

    def test_not_pure(self):
        assert not MixtureTopicFactors().is_pure

    def test_styles_sampled_when_enabled(self, rng):
        factors = MixtureTopicFactors(use_styles=True)
        sample = factors.sample(5, 3, rng)
        assert sample.style_weights.shape == (3,)
        assert sample.style_weights.sum() == pytest.approx(1.0)

    def test_more_topics_than_available(self, rng):
        factors = MixtureTopicFactors(topics_per_document=10)
        sample = factors.sample(3, 0, rng)
        assert np.count_nonzero(sample.topic_weights) <= 3

    def test_bad_concentration(self):
        with pytest.raises(ValidationError):
            MixtureTopicFactors(concentration=0.0)


class TestCorpusModel:
    def test_requires_topics(self):
        with pytest.raises(ValidationError):
            CorpusModel(10, [], PureTopicFactors())

    def test_universe_size_mismatch(self):
        with pytest.raises(ValidationError):
            CorpusModel(10, [Topic.uniform(5)], PureTopicFactors())

    def test_style_universe_mismatch(self):
        with pytest.raises(ValidationError):
            CorpusModel(10, [Topic.uniform(10)], PureTopicFactors(),
                        styles=[Style.identity(5)])

    def test_factors_type_checked(self):
        with pytest.raises(ValidationError):
            CorpusModel(10, [Topic.uniform(10)], "not factors")

    def test_term_distribution_pure(self, tiny_model):
        factors = tiny_model.sample_factors(seed=1)
        distribution = tiny_model.term_distribution(factors)
        topic = tiny_model.topics[factors.dominant_topic()]
        assert np.allclose(distribution, topic.probabilities)

    def test_term_distribution_with_style(self):
        topics = [Topic.uniform(6)]
        styles = [Style.uniform_noise(6, 0.5)]
        model = CorpusModel(6, topics, MixtureTopicFactors(use_styles=True),
                            styles=styles)
        factors = model.sample_factors(seed=2)
        distribution = model.term_distribution(factors)
        assert distribution.sum() == pytest.approx(1.0)

    def test_separability_of_builder(self):
        model = build_separable_model(100, 5, primary_mass=0.9)
        # epsilon = off-primary mass = 0.1 * (fraction of uniform leak
        # falling outside the primary set) = 0.1 * 80/100.
        assert model.separability() == pytest.approx(0.1 * 80 / 100)
        assert model.primary_sets_disjoint()

    def test_separability_without_primary_sets(self):
        model = CorpusModel(10, [Topic.uniform(10)], PureTopicFactors())
        assert model.separability() == 1.0

    def test_is_style_free(self, tiny_model):
        assert tiny_model.is_style_free
        assert tiny_model.is_pure

    def test_max_term_probability(self):
        model = build_separable_model(100, 5, primary_mass=0.9)
        expected = 0.9 / 20 + 0.1 / 100
        assert model.max_term_probability() == pytest.approx(expected)


class TestSampler:
    def test_document_length_matches_factors(self, tiny_model):
        document = generate_document(tiny_model, seed=3)
        assert document.length == document.factors.length

    def test_document_terms_in_universe(self, tiny_model):
        document = generate_document(tiny_model, seed=4)
        assert all(0 <= t < tiny_model.universe_size
                   for t in document.term_counts)

    def test_corpus_size(self, tiny_model):
        corpus = generate_corpus(tiny_model, 12, seed=5)
        assert len(corpus) == 12

    def test_corpus_reproducible(self, tiny_model):
        a = generate_corpus(tiny_model, 5, seed=6)
        b = generate_corpus(tiny_model, 5, seed=6)
        for doc_a, doc_b in zip(a, b):
            assert doc_a.term_counts == doc_b.term_counts

    def test_corpus_seeds_differ(self, tiny_model):
        a = generate_corpus(tiny_model, 5, seed=6)
        b = generate_corpus(tiny_model, 5, seed=7)
        assert any(doc_a.term_counts != doc_b.term_counts
                   for doc_a, doc_b in zip(a, b))

    def test_pure_documents_concentrate_on_primary(self, tiny_model):
        corpus = generate_corpus(tiny_model, 20, seed=8)
        for document in corpus:
            topic = tiny_model.topics[document.topic_label]
            primary_hits = sum(
                count for term, count in document.term_counts.items()
                if term in topic.primary_terms)
            # 95% primary mass: expect the large majority on-primary.
            assert primary_hits / document.length > 0.7

    def test_invalid_size_rejected(self, tiny_model):
        with pytest.raises(ValidationError):
            generate_corpus(tiny_model, 0)


class TestDocument:
    def test_empty_rejected(self):
        with pytest.raises(EmptyCorpusError):
            Document(term_counts={}, universe_size=5)

    def test_out_of_range_term(self):
        with pytest.raises(ValidationError):
            Document(term_counts={9: 1}, universe_size=5)

    def test_non_positive_count(self):
        with pytest.raises(ValidationError):
            Document(term_counts={1: 0}, universe_size=5)

    def test_length_and_distinct(self):
        document = Document(term_counts={0: 2, 3: 5}, universe_size=5)
        assert document.length == 7
        assert document.distinct_terms == 2

    def test_to_vector_round_trip(self):
        document = Document(term_counts={1: 4}, universe_size=3)
        vector = document.to_vector()
        assert np.array_equal(vector, [0, 4, 0])
        back = Document.from_count_vector(vector)
        assert back.term_counts == document.term_counts

    def test_from_samples(self):
        document = Document.from_samples([1, 1, 2, 1], universe_size=4)
        assert document.term_counts == {1: 3, 2: 1}

    def test_topic_label_none_without_factors(self):
        document = Document(term_counts={0: 1}, universe_size=2)
        assert document.topic_label is None
